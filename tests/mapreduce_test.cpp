// Unit tests for the disk-based MapReduce baseline: input splitting with
// block-boundary lines, sort/spill/merge, combiner, partitioning, chaining,
// and the cost hooks (startup, spill accounting).
#include <gtest/gtest.h>

#include <charconv>

#include "apps/counting.h"
#include "cluster/cluster.h"
#include "common/hash.h"
#include "dfs/mini_dfs.h"
#include "mapreduce/job_runner.h"

using namespace hamr;
using namespace hamr::mapreduce;

namespace {

struct Env {
  explicit Env(uint32_t nodes, dfs::DfsConfig dfs_config = {})
      : cluster(cluster::ClusterConfig::fast(nodes)),
        dfs(cluster, dfs_config),
        runner(cluster, dfs) {}

  cluster::Cluster cluster;
  dfs::MiniDfs dfs;
  JobRunner runner;
};

class IdentityMapper : public Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value, MrContext& ctx) override {
    const size_t space = value.find(' ');
    if (space == std::string_view::npos) {
      ctx.emit(value, "");
    } else {
      ctx.emit(value.substr(0, space), value.substr(space + 1));
    }
  }
};

class ConcatReducer : public Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              MrContext& ctx) override {
    std::string joined;
    for (const auto& v : values) {
      if (!joined.empty()) joined.push_back(',');
      joined.append(v);
    }
    ctx.emit(key, joined);
  }
};

class TokenCountMapper : public Mapper {
 public:
  void map(std::string_view, std::string_view value, MrContext& ctx) override {
    size_t pos = 0;
    while (pos < value.size()) {
      size_t space = value.find(' ', pos);
      if (space == std::string_view::npos) space = value.size();
      if (space > pos) ctx.emit(value.substr(pos, space - pos), "1");
      pos = space + 1;
    }
  }
};

std::map<std::string, std::string> read_output(Env& env, const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const std::string& path : env.dfs.list(dir)) {
    auto data = env.dfs.read(0, path);
    data.status().ExpectOk();
    const std::string& text = data.value();
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line = std::string_view(text).substr(pos, eol - pos);
      const size_t tab = line.find('\t');
      if (tab != std::string_view::npos) {
        out[std::string(line.substr(0, tab))] = std::string(line.substr(tab + 1));
      }
      pos = eol + 1;
    }
  }
  return out;
}

MrJobConfig fast_job() {
  MrJobConfig config;
  config.job_startup_cost = Duration::zero();
  config.task_startup_cost = Duration::zero();
  return config;
}

}  // namespace

TEST(MapReduce, SimpleJobGroupsAndSorts) {
  Env env(3);
  env.dfs.write(0, "/in", "b 2\na 1\nb 3\nc 4\n").ExpectOk();
  env.runner.run(fast_job(), {"/in"}, "/out",
                 [] { return std::make_unique<IdentityMapper>(); },
                 [] { return std::make_unique<ConcatReducer>(); });
  const auto out = read_output(env, "/out");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.at("a"), "1");
  EXPECT_EQ(out.at("b"), "2,3");
  EXPECT_EQ(out.at("c"), "4");
}

TEST(MapReduce, LinesAcrossBlockBoundariesProcessedOnce) {
  // Tiny blocks force many lines to straddle block boundaries.
  dfs::DfsConfig dfs_config;
  dfs_config.block_size = 64;
  Env env(4, dfs_config);

  std::string input;
  uint64_t expected_tokens = 0;
  for (int i = 0; i < 200; ++i) {
    input += "token" + std::to_string(i) + " filler filler\n";
    expected_tokens += 3;
  }
  env.dfs.write(0, "/in", input).ExpectOk();

  auto result = env.runner.run(fast_job(), {"/in"}, "/out",
                               [] { return std::make_unique<TokenCountMapper>(); },
                               [] { return std::make_unique<apps::SumReducer>(); });
  EXPECT_GT(result.map_tasks, 10u);  // really was split into many blocks

  const auto out = read_output(env, "/out");
  uint64_t total = 0;
  for (const auto& [key, value] : out) total += std::stoull(value);
  EXPECT_EQ(total, expected_tokens);
  EXPECT_EQ(out.at("filler"), "400");
  EXPECT_EQ(out.at("token0"), "1");
  EXPECT_EQ(out.at("token199"), "1");
}

TEST(MapReduce, SpillAndMergeUnderSmallSortBuffer) {
  Env env(2);
  std::string input;
  for (int i = 0; i < 2000; ++i) input += "k" + std::to_string(i % 50) + " 1\n";
  env.dfs.write(0, "/in", input).ExpectOk();

  MrJobConfig config = fast_job();
  config.map_sort_buffer_bytes = 2048;  // forces many spills + a merge pass
  auto result = env.runner.run(config, {"/in"}, "/out",
                               [] { return std::make_unique<IdentityMapper>(); },
                               [] { return std::make_unique<apps::SumReducer>(); });
  EXPECT_GT(result.spill_bytes, 0u);

  const auto out = read_output(env, "/out");
  ASSERT_EQ(out.size(), 50u);
  for (const auto& [key, value] : out) EXPECT_EQ(value, "40") << key;
}

TEST(MapReduce, CombinerShrinksIntermediateData) {
  Env env(2);
  std::string input;
  for (int i = 0; i < 4000; ++i) input += "hot 1\n";
  env.dfs.write(0, "/in", input).ExpectOk();

  MrJobConfig plain = fast_job();
  plain.map_sort_buffer_bytes = 4096;
  auto without = env.runner.run(plain, {"/in"}, "/out_plain",
                                [] { return std::make_unique<IdentityMapper>(); },
                                [] { return std::make_unique<apps::SumReducer>(); });

  MrJobConfig combined = fast_job();
  combined.map_sort_buffer_bytes = 4096;
  combined.combiner = [] { return std::make_unique<apps::SumReducer>(); };
  auto with = env.runner.run(combined, {"/in"}, "/out_comb",
                             [] { return std::make_unique<IdentityMapper>(); },
                             [] { return std::make_unique<apps::SumReducer>(); });

  EXPECT_LT(with.spill_bytes, without.spill_bytes / 4);
  EXPECT_EQ(read_output(env, "/out_plain"), read_output(env, "/out_comb"));
  EXPECT_EQ(read_output(env, "/out_comb").at("hot"), "4000");
}

TEST(MapReduce, PartitioningSpansReducersAndStaysConsistent) {
  Env env(4);
  std::string input;
  for (int i = 0; i < 500; ++i) input += "key" + std::to_string(i) + " v\n";
  env.dfs.write(0, "/in", input).ExpectOk();

  MrJobConfig config = fast_job();
  config.num_reduce_tasks = 7;  // not a multiple of node count
  auto result = env.runner.run(config, {"/in"}, "/out",
                               [] { return std::make_unique<IdentityMapper>(); },
                               [] { return std::make_unique<ConcatReducer>(); });
  EXPECT_EQ(result.reduce_tasks, 7u);
  EXPECT_EQ(read_output(env, "/out").size(), 500u);

  // Each part file only contains keys of its partition.
  for (const std::string& path : env.dfs.list("/out")) {
    const uint32_t part =
        static_cast<uint32_t>(std::stoul(path.substr(path.rfind('-') + 1)));
    auto data = env.dfs.read(0, path);
    const std::string& text = data.value();
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line = std::string_view(text).substr(pos, eol - pos);
      if (const size_t tab = line.find('\t'); tab != std::string_view::npos) {
        EXPECT_EQ(partition_of(line.substr(0, tab), 7), part);
      }
      pos = eol + 1;
    }
  }
}

TEST(MapReduce, ChainedJobsThroughDfs) {
  Env env(2);
  env.dfs.write(0, "/in", "a 1\nb 2\na 3\n").ExpectOk();
  env.runner.run(fast_job(), {"/in"}, "/mid",
                 [] { return std::make_unique<IdentityMapper>(); },
                 [] { return std::make_unique<apps::SumReducer>(); });
  // Second job consumes the first's output lines ("key\tsum").
  class TabMapper : public Mapper {
   public:
    void map(std::string_view, std::string_view value, MrContext& ctx) override {
      const size_t tab = value.find('\t');
      if (tab != std::string_view::npos) {
        ctx.emit("total", value.substr(tab + 1));
      }
    }
  };
  env.runner.run(fast_job(), env.dfs.list("/mid"), "/final",
                 [] { return std::make_unique<TabMapper>(); },
                 [] { return std::make_unique<apps::SumReducer>(); });
  EXPECT_EQ(read_output(env, "/final").at("total"), "6");
}

TEST(MapReduce, EmptyInputProducesEmptyPartFiles) {
  Env env(2);
  env.dfs.write(0, "/in", "").ExpectOk();
  auto result = env.runner.run(fast_job(), {"/in"}, "/out",
                               [] { return std::make_unique<IdentityMapper>(); },
                               [] { return std::make_unique<ConcatReducer>(); });
  EXPECT_EQ(result.reduce_tasks, 2u);
  EXPECT_EQ(env.dfs.list("/out").size(), 2u);  // Hadoop writes empty parts too
  EXPECT_TRUE(read_output(env, "/out").empty());
}

TEST(MapReduce, JobStartupCostIsPaid) {
  Env env(1);
  env.dfs.write(0, "/in", "a 1\n").ExpectOk();
  MrJobConfig config = fast_job();
  config.job_startup_cost = millis(120);
  auto result = env.runner.run(config, {"/in"}, "/out",
                               [] { return std::make_unique<IdentityMapper>(); },
                               [] { return std::make_unique<ConcatReducer>(); });
  EXPECT_GE(result.wall_seconds, 0.11);
}

TEST(MapReduce, MapTasksPreferLocalReplicas) {
  dfs::DfsConfig dfs_config;
  dfs_config.block_size = 256;
  dfs_config.replication = 2;
  Env env(4, dfs_config);
  std::string input(4096, 'x');
  for (size_t i = 63; i < input.size(); i += 64) input[i] = '\n';
  env.dfs.write(2, "/in", input).ExpectOk();

  // All blocks have replica 2 (writer) - with locality-first scheduling and
  // balanced counting, every task must land on a node that holds a replica.
  auto info = env.dfs.stat("/in").value();
  EXPECT_GT(info.blocks.size(), 4u);
  // Indirectly verified: a run completes with zero remote block fetch RPCs.
  const uint64_t rx_before = env.cluster.total_counter("net.rx_msgs");
  env.runner.run(fast_job(), {"/in"}, "/out",
                 [] { return std::make_unique<TokenCountMapper>(); },
                 [] { return std::make_unique<apps::SumReducer>(); });
  // Some shuffle traffic is expected; assert the job ran and emitted parts.
  EXPECT_GE(env.cluster.total_counter("net.rx_msgs"), rx_before);
  EXPECT_EQ(env.dfs.list("/out").size(), 4u);
}
