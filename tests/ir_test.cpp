// Tests for the typed flowlet IR (src/ir/): verifier rules, the optimizing
// passes, the backend lowering, and the EventLog-measurable effect of fusion
// (fused graphs emit byte-identical output through strictly fewer bin
// dispatches).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/common.h"
#include "apps/wordcount.h"
#include "engine/engine.h"
#include "ir/ir.h"
#include "ir/lower.h"
#include "ir/passes.h"
#include "obs/event_log.h"

namespace hamr {
namespace {

using ir::EdgeAttrs;
using ir::Graph;
using ir::NodeId;
using ir::NodeKind;

// Structure-only tests never run the flowlets, so a factory that produces
// nothing satisfies the verifier without dragging real operators in.
engine::FlowletFactory stub_factory() {
  return [] { return std::unique_ptr<engine::Flowlet>(); };
}

EdgeAttrs hash_attrs() { return {}; }

// --- verifier -------------------------------------------------------------

TEST(IrVerify, AcceptsAWellFormedChain) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory(), {"", "line"});
  const NodeId map = g.add_map("m", stub_factory(), {"", "line"}, {"k", "v"});
  const NodeId sink = g.add_sink("sink", stub_factory(), {"k", "v"});
  g.connect(src, map, ir::local_attrs());
  g.connect(map, sink);
  EXPECT_NO_THROW(ir::verify(g));
}

TEST(IrVerify, RejectsTypeMismatchAcrossAnEdge) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory(), {"word", "count"});
  const NodeId sink = g.add_sink("sink", stub_factory(), {"word", "rank"});
  g.connect(src, sink);
  try {
    ir::verify(g);
    FAIL() << "expected type mismatch";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("type mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(IrVerify, EmptyTagComponentIsAWildcard) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory(), {"word", "count"});
  const NodeId sink = g.add_sink("sink", stub_factory(), {"", "count"});
  g.connect(src, sink);
  EXPECT_NO_THROW(ir::verify(g));
}

TEST(IrVerify, RejectsDanglingNode) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.connect(src, sink);
  g.add_map("orphan", stub_factory());  // never connected
  try {
    ir::verify(g);
    FAIL() << "expected dangling-node error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dangling"), std::string::npos)
        << e.what();
  }
}

TEST(IrVerify, RejectsTapOnCombineEdgeWithClearError) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId comb = g.add_combine("fold", stub_factory());
  g.node(comb).effect = true;
  EdgeAttrs attrs;
  attrs.combine = true;
  attrs.tap = [](uint32_t, std::string_view, std::string_view) {};
  g.connect(src, comb, attrs);
  try {
    ir::verify(g);
    FAIL() << "expected tap-on-combine rejection";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tap on combine"), std::string::npos) << what;
    // The message must explain the why and the fix, not just point.
    EXPECT_NE(what.find("fold before routing"), std::string::npos) << what;
    EXPECT_NE(what.find("remove the tap"), std::string::npos) << what;
  }
}

TEST(IrVerify, RejectsCombineEdgeIntoNonCombineNode) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  EdgeAttrs attrs;
  attrs.combine = true;
  g.connect(src, sink, attrs);
  EXPECT_THROW(ir::verify(g), std::invalid_argument);
}

TEST(IrVerify, RejectsSplitsOnNonSource) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.connect(src, sink);
  g.node(sink).splits.push_back(engine::InputSplit{});
  EXPECT_THROW(ir::verify(g), std::invalid_argument);
}

TEST(IrVerify, RejectsCycle) {
  Graph g;
  const NodeId a = g.add_map("a", stub_factory());
  const NodeId b = g.add_map("b", stub_factory());
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(ir::verify(g), std::invalid_argument);
}

TEST(IrVerify, RejectsNodeWithoutFactory) {
  Graph g;
  const NodeId src = g.add_source("src", engine::FlowletFactory{});
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.connect(src, sink);
  EXPECT_THROW(ir::verify(g), std::invalid_argument);
}

// --- passes ---------------------------------------------------------------

TEST(IrPasses, FuseMapsCollapsesALocalChain) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory(), {"", "line"});
  const NodeId m1 =
      g.add_map("m1", stub_factory(), {"", "line"}, {"", "token"});
  const NodeId m2 = g.add_map("m2", stub_factory(), {"", "token"}, {"k", "v"});
  const NodeId sink = g.add_sink("sink", stub_factory(), {"k", "v"});
  g.connect(src, m1, ir::local_attrs());
  g.connect(m1, m2, ir::local_attrs());
  g.connect(m2, sink, ir::local_attrs());

  const Graph fused = fuse_maps(g);
  ir::verify(fused, "test");
  ASSERT_EQ(fused.nodes.size(), 1u);
  EXPECT_EQ(fused.edges.size(), 0u);
  EXPECT_EQ(fused.nodes[0].kind, NodeKind::kSource);
  EXPECT_EQ(fused.nodes[0].name, "src+m1+m2+sink");
  EXPECT_TRUE(fused.nodes[0].effect);  // the sink's side effect survives
}

TEST(IrPasses, FuseMapsStopsAtShuffleEdges) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId map = g.add_map("m", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.connect(src, map, hash_attrs());  // shuffle: not fusible
  g.connect(map, sink, ir::local_attrs());

  const Graph fused = fuse_maps(g);
  ir::verify(fused, "test");
  ASSERT_EQ(fused.nodes.size(), 2u);  // only map+sink collapsed
  EXPECT_EQ(fused.nodes[1].name, "m+sink");
}

TEST(IrPasses, FuseMapsHonoursFusibleFalse) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId map = g.add_map("m", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.node(map).fusible = false;
  g.node(sink).fusible = false;
  g.connect(src, map, ir::local_attrs());
  g.connect(map, sink, ir::local_attrs());

  const Graph fused = fuse_maps(g);
  EXPECT_EQ(fused.nodes.size(), 3u);
}

TEST(IrPasses, FuseMapsLeavesFanOutProducersAlone) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId a = g.add_sink("a", stub_factory());
  const NodeId b = g.add_sink("b", stub_factory());
  g.connect(src, a, ir::local_attrs());
  g.connect(src, b, ir::local_attrs());

  // Two consumers: fusing either would change the other's port numbering.
  const Graph fused = fuse_maps(g);
  EXPECT_EQ(fused.nodes.size(), 3u);
}

TEST(IrPasses, PlaceCombinerEnablesOnlyEligibleEdges) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId opted = g.add_combine("opted", stub_factory());
  const NodeId not_opted = g.add_combine("not-opted", stub_factory());
  const NodeId local = g.add_combine("local", stub_factory());
  const NodeId tapped = g.add_combine("tapped", stub_factory());
  g.node(opted).combinable = true;
  g.node(local).combinable = true;
  g.node(tapped).combinable = true;
  for (NodeId n : {opted, not_opted, local, tapped}) g.node(n).effect = true;

  g.connect(src, opted, hash_attrs());
  g.connect(src, not_opted, hash_attrs());
  g.connect(src, local, ir::local_attrs());
  EdgeAttrs tap_attrs;
  tap_attrs.tap = [](uint32_t, std::string_view, std::string_view) {};
  g.connect(src, tapped, tap_attrs);

  const Graph placed = place_combiner(g);
  ir::verify(placed, "test");
  EXPECT_TRUE(placed.edges[0].attrs.combine);    // shuffle into opted-in
  EXPECT_FALSE(placed.edges[1].attrs.combine);   // not opted in
  EXPECT_FALSE(placed.edges[2].attrs.combine);   // local edge: nothing to win
  EXPECT_FALSE(placed.edges[3].attrs.combine);   // tap would be blinded
}

TEST(IrPasses, FuseMapCombineFoldsTheMapBelowTheShuffle) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId map = g.add_map("m", stub_factory());
  const NodeId comb = g.add_combine("fold", stub_factory());
  g.node(comb).combinable = true;
  g.node(comb).effect = true;
  g.connect(src, map, ir::local_attrs());
  g.connect(map, comb, hash_attrs());

  const Graph placed = place_combiner(g);
  ASSERT_TRUE(placed.edges[1].attrs.combine);
  const Graph fused = fuse_map_combine(placed);
  ir::verify(fused, "test");
  ASSERT_EQ(fused.nodes.size(), 2u);
  EXPECT_EQ(fused.nodes[0].name, "src+m");
  EXPECT_TRUE(fused.edges[0].attrs.combine);  // combine edge survives fusion
}

TEST(IrPasses, EliminateDeadDropsBranchesWithoutEffects) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  const NodeId dead = g.add_map("dead", stub_factory());
  g.connect(src, sink, ir::local_attrs());
  g.connect(src, dead, ir::local_attrs());
  // `dead` hangs off src's trailing out-port, so removing it cannot
  // renumber the sink edge.
  const Graph cleaned = eliminate_dead(g);
  ir::verify(cleaned, "test");
  ASSERT_EQ(cleaned.nodes.size(), 2u);
  EXPECT_EQ(cleaned.nodes[1].name, "sink");
}

TEST(IrPasses, EliminateDeadKeepsNodesThatWouldRenumberPorts) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId dead = g.add_map("dead", stub_factory());
  const NodeId sink = g.add_sink("sink", stub_factory());
  g.connect(src, dead, ir::local_attrs());  // port 0: dead
  g.connect(src, sink, ir::local_attrs());  // port 1: live
  // Removing `dead` would shift the sink edge from port 1 to port 0 and
  // break the source flowlet's emit(1, ...) calls - so it must stay.
  const Graph cleaned = eliminate_dead(g);
  ir::verify(cleaned, "test");
  EXPECT_EQ(cleaned.nodes.size(), 3u);
}

TEST(IrPasses, StandardPipelineIsVerifiedBetweenPasses) {
  // A graph that is invalid from the start fails in run() with the
  // context-free message, before any pass mutates it.
  Graph g;
  g.add_map("orphan", stub_factory());
  EXPECT_THROW(ir::PassPipeline::standard().run(g), std::invalid_argument);
}

TEST(IrPasses, NoFusionPipelinePreservesShape) {
  ir::Graph g = apps::wordcount::build_ir(/*combine=*/true);
  const ir::Graph out = ir::PassPipeline::no_fusion().run(g);
  EXPECT_EQ(out.nodes.size(), g.nodes.size());
  EXPECT_EQ(out.edges.size(), g.edges.size());
  // ... but still places the combiner on the shuffle edge.
  bool combined = false;
  for (const auto& e : out.edges) combined |= e.attrs.combine;
  EXPECT_TRUE(combined);
}

// --- dump -----------------------------------------------------------------

TEST(IrDump, RendersNodesEdgesAndAttributes) {
  Graph g;
  const NodeId src = g.add_source("TextLoader", stub_factory(), {"", "line"});
  const NodeId map =
      g.add_map("Splitter", stub_factory(), {"", "line"}, {"word", "count"});
  const NodeId comb =
      g.add_combine("Counter", stub_factory(), {"word", "count"}, {});
  g.node(comb).effect = true;
  g.node(comb).combinable = true;
  g.node(src).splits.resize(4);
  g.connect(src, map, ir::local_attrs());
  EdgeAttrs attrs;
  attrs.combine = true;
  g.connect(map, comb, attrs);

  const std::string text = ir::dump(g);
  EXPECT_NE(text.find("n0: source \"TextLoader\" out=(,line) splits=4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("n1: map \"Splitter\" in=(,line) out=(word,count)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("effect combinable"), std::string::npos) << text;
  EXPECT_NE(text.find("e0: n0 -> n1 [local]"), std::string::npos) << text;
  EXPECT_NE(text.find("e1: n1 -> n2 [combine]"), std::string::npos) << text;
}

// --- lowering -------------------------------------------------------------

TEST(IrLower, UnfusedWordCountPreservesHandBuiltFlowletIds) {
  // The chaos suite pins crash points to loader=0, splitter=1, count=2;
  // the shape-preserving lowering must keep that contract forever.
  uint32_t loader = 99;
  const engine::FlowletGraph g = apps::wordcount::build_graph(&loader);
  EXPECT_EQ(loader, 0u);
  ASSERT_EQ(g.num_flowlets(), 3u);
  EXPECT_EQ(g.flowlet(0).kind, engine::FlowletKind::kLoader);
  EXPECT_EQ(g.flowlet(1).kind, engine::FlowletKind::kMap);
  EXPECT_EQ(g.flowlet(2).kind, engine::FlowletKind::kPartialReduce);
}

TEST(IrLower, CopiesSplitsAndEdgeAttrsIntoTheEngineGraph) {
  Graph g;
  const NodeId src = g.add_source("src", stub_factory());
  const NodeId comb = g.add_combine("fold", stub_factory());
  g.node(comb).effect = true;
  engine::InputSplit split;
  split.path = "input/x";
  split.length = 7;
  split.preferred_node = 1;
  g.node(src).splits.push_back(split);
  EdgeAttrs attrs;
  attrs.combine = true;
  g.connect(src, comb, attrs);

  const ir::Lowered lowered = ir::lower(g);
  ASSERT_EQ(lowered.graph.num_flowlets(), 2u);
  ASSERT_EQ(lowered.flowlet_of.size(), 2u);
  EXPECT_TRUE(lowered.graph.edge(0).options.combine);
  const auto& splits = lowered.inputs.splits.at(lowered.flowlet_of[src]);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].path, "input/x");
  EXPECT_EQ(splits[0].preferred_node, 1u);
}

TEST(IrLower, FusedWordCountHasTwoFlowlets) {
  uint32_t loader = 99;
  const ir::Lowered lowered =
      apps::wordcount::build_fused(&loader, /*combine=*/false);
  EXPECT_EQ(lowered.graph.num_flowlets(), 2u);  // loader+splitter, counter
  EXPECT_EQ(lowered.graph.flowlet(loader).kind, engine::FlowletKind::kLoader);
}

// --- end-to-end: fusion is an optimization, not a semantics change --------

std::vector<std::string> wc_shards(uint32_t nodes) {
  return apps::make_shards(nodes, [](uint32_t i) {
    std::string s;
    for (int line = 0; line < 40; ++line) {
      s += "alpha beta gamma delta w" + std::to_string(i) + " w" +
           std::to_string(line % 7) + "\n";
    }
    return s;
  });
}

struct LoggedRun {
  std::map<std::string, uint64_t> output;
  uint64_t bins_enqueued = 0;
  uint64_t bins_processed = 0;
};

LoggedRun run_wordcount_logged(bool fused) {
  obs::EventLog log;
  engine::EngineConfig config = engine::EngineConfig::fast();
  config.event_log = &log;
  apps::BenchEnv env =
      apps::BenchEnv::make(cluster::ClusterConfig::fast(4, 2), config);
  const apps::StagedInput input =
      apps::stage_input(env, "wordcount", wc_shards(4));
  apps::wordcount::run_hamr(env, input, /*combine=*/false,
                            /*use_full_reduce=*/false, fused);
  LoggedRun run;
  run.output = apps::wordcount::hamr_output(env);
  run.bins_enqueued = log.count(obs::EventKind::kBinEnqueued);
  run.bins_processed = log.count(obs::EventKind::kBinProcessed);
  return run;
}

TEST(IrEventLog, FusedWordCountIsByteIdenticalWithStrictlyFewerBinEvents) {
  const LoggedRun unfused = run_wordcount_logged(false);
  const LoggedRun fused = run_wordcount_logged(true);

  EXPECT_EQ(unfused.output, apps::wordcount::reference(wc_shards(4)));
  EXPECT_EQ(fused.output, unfused.output);

  // Fusing loader+splitter removes every bin on the local edge between
  // them: the fused job must dispatch strictly fewer bins, not just equal.
  EXPECT_LT(fused.bins_enqueued, unfused.bins_enqueued)
      << "fused=" << fused.bins_enqueued
      << " unfused=" << unfused.bins_enqueued;
  EXPECT_LT(fused.bins_processed, unfused.bins_processed);
}

TEST(IrEventLog, FusedCombinerWordCountStaysByteIdentical) {
  obs::EventLog log;
  engine::EngineConfig config = engine::EngineConfig::fast();
  config.event_log = &log;
  apps::BenchEnv env =
      apps::BenchEnv::make(cluster::ClusterConfig::fast(4, 2), config);
  const apps::StagedInput input =
      apps::stage_input(env, "wordcount", wc_shards(4));
  apps::wordcount::run_hamr(env, input, /*combine=*/true,
                            /*use_full_reduce=*/false, /*fused=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(env),
            apps::wordcount::reference(wc_shards(4)));
}

}  // namespace
}  // namespace hamr
