#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "common/random.h"
#include "serde/codec.h"
#include "serde/serde.h"
#include "query/row.h"

using namespace hamr;
using serde::Codec;
using serde::DecodeError;
using serde::Reader;
using serde::Writer;

namespace {

template <typename T>
T roundtrip(const T& value) {
  return serde::decode_from<T>(serde::encode_to_string(value));
}

}  // namespace

// --- varint ----------------------------------------------------------------

class VarintSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintSweep, RoundTrips) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_varint(GetParam());
  Reader r(buf.view());
  EXPECT_EQ(r.get_varint(), GetParam());
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintSweep,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) - 1,
                      std::numeric_limits<uint64_t>::max()));

TEST(Varint, EncodedSizeIsMinimal) {
  auto size_of = [](uint64_t v) {
    ByteBuffer buf;
    Writer w(buf);
    w.put_varint(v);
    return buf.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(Varint, RejectsOverlongEncoding) {
  // 11 continuation bytes cannot encode a u64.
  std::string bad(11, '\x80');
  Reader r(bad);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(Varint, RejectsTruncation) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_varint(1ull << 40);
  Reader r(buf.view().substr(0, 2));
  EXPECT_THROW(r.get_varint(), DecodeError);
}

// --- zigzag -----------------------------------------------------------------

class ZigzagSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ZigzagSweep, RoundTrips) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_zigzag(GetParam());
  Reader r(buf.view());
  EXPECT_EQ(r.get_zigzag(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, ZigzagSweep,
    ::testing::Values(0ll, 1ll, -1ll, 63ll, -64ll, 64ll,
                      std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(Zigzag, SmallMagnitudesAreSmall) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_zigzag(-1);
  EXPECT_EQ(buf.size(), 1u);  // -1 encodes as 1
}

// --- fixed / double / bytes ---------------------------------------------------

TEST(Serde, FixedRoundTrip) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_fixed32(0xdeadbeef);
  w.put_fixed64(0x0123456789abcdefULL);
  Reader r(buf.view());
  EXPECT_EQ(r.get_fixed32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_fixed64(), 0x0123456789abcdefULL);
}

TEST(Serde, DoubleRoundTripIncludingSpecials) {
  for (double v : {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                   std::numeric_limits<double>::infinity()}) {
    ByteBuffer buf;
    Writer w(buf);
    w.put_double(v);
    Reader r(buf.view());
    EXPECT_EQ(r.get_double(), v);
  }
  ByteBuffer buf;
  Writer w(buf);
  w.put_double(std::numeric_limits<double>::quiet_NaN());
  Reader r(buf.view());
  EXPECT_TRUE(std::isnan(r.get_double()));
}

TEST(Serde, BytesRoundTripWithEmbeddedNulsAndEmpty) {
  const std::string payload("a\0b\0\xff", 5);
  ByteBuffer buf;
  Writer w(buf);
  w.put_bytes(payload);
  w.put_bytes("");
  w.put_bytes("tail");
  Reader r(buf.view());
  EXPECT_EQ(r.get_bytes(), payload);
  EXPECT_EQ(r.get_bytes(), "");
  EXPECT_EQ(r.get_bytes(), "tail");
  EXPECT_TRUE(r.at_end());
}

TEST(Serde, TruncatedBytesThrow) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_bytes("hello world");
  Reader r(buf.view().substr(0, 5));
  EXPECT_THROW(r.get_bytes(), DecodeError);
}

TEST(Serde, ReaderBoundsChecked) {
  Reader r(std::string_view("ab"));
  EXPECT_THROW(r.get_fixed64(), DecodeError);
  EXPECT_EQ(r.remaining(), 2u);  // failed read consumed nothing of the fixed
}

// --- typed codecs ----------------------------------------------------------------

TEST(Codec, Primitives) {
  EXPECT_EQ(roundtrip<uint64_t>(1234567890123ull), 1234567890123ull);
  EXPECT_EQ(roundtrip<uint32_t>(77u), 77u);
  EXPECT_EQ(roundtrip<int64_t>(-42), -42);
  EXPECT_EQ(roundtrip<int32_t>(-7), -7);
  EXPECT_EQ(roundtrip<double>(3.14159), 3.14159);
  EXPECT_EQ(roundtrip<bool>(true), true);
  EXPECT_EQ(roundtrip<std::string>("hi\0there"), std::string("hi\0there"));
}

TEST(Codec, Containers) {
  const std::vector<uint64_t> v{1, 2, 3, 1ull << 40};
  EXPECT_EQ(roundtrip(v), v);
  const std::vector<std::string> vs{"a", "", "ccc"};
  EXPECT_EQ(roundtrip(vs), vs);
  const std::map<std::string, uint64_t> m{{"x", 1}, {"y", 2}};
  EXPECT_EQ(roundtrip(m), m);
  const std::pair<std::string, double> p{"k", 2.5};
  EXPECT_EQ(roundtrip(p), p);
  const std::vector<std::pair<uint32_t, double>> nested{{1, 0.5}, {9, -2.0}};
  EXPECT_EQ(roundtrip(nested), nested);
}

TEST(Codec, HostileVectorLengthRejected) {
  ByteBuffer buf;
  Writer w(buf);
  w.put_varint(1ull << 40);  // claims a trillion elements
  EXPECT_THROW(serde::decode_from<std::vector<uint64_t>>(buf.view()), DecodeError);
}

TEST(Codec, TrailingBytesRejected) {
  std::string bytes = serde::encode_to_string<uint64_t>(5);
  bytes.push_back('x');
  EXPECT_THROW(serde::decode_from<uint64_t>(bytes), DecodeError);
}

// Property: random record batches survive a full encode/decode cycle.
TEST(Codec, RandomRecordBatchesRoundTrip) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::string, std::string>> records;
    const uint64_t n = rng.next_below(64);
    for (uint64_t i = 0; i < n; ++i) {
      std::string key, value;
      const uint64_t klen = rng.next_below(32);
      const uint64_t vlen = rng.next_below(256);
      for (uint64_t j = 0; j < klen; ++j)
        key.push_back(static_cast<char>(rng.next_below(256)));
      for (uint64_t j = 0; j < vlen; ++j)
        value.push_back(static_cast<char>(rng.next_below(256)));
      records.emplace_back(std::move(key), std::move(value));
    }
    ByteBuffer buf;
    Writer w(buf);
    for (const auto& [k, v] : records) {
      w.put_bytes(k);
      w.put_bytes(v);
    }
    Reader r(buf.view());
    for (const auto& [k, v] : records) {
      EXPECT_EQ(r.get_bytes(), k);
      EXPECT_EQ(r.get_bytes(), v);
    }
    EXPECT_TRUE(r.at_end());
  }
}

// --- query row codec --------------------------------------------------------
// The relational layer's row format builds directly on the primitives above;
// its byte-identical differential contract needs the row codec itself to be
// an exact, strictly-validating bijection (see src/query/row.h).

namespace {

query::Schema mixed_schema() {
  query::Schema schema;
  schema.cols = {{"id", query::ColType::kI64},
                 {"x", query::ColType::kF64},
                 {"name", query::ColType::kStr}};
  return schema;
}

}  // namespace

TEST(QueryRow, RoundTripsExtremeValues) {
  const query::Schema schema = mixed_schema();
  const std::vector<query::Row> rows = {
      {query::Value::of(int64_t{0}), query::Value::of(0.0),
       query::Value::of("")},  // empty string
      {query::Value::of(std::numeric_limits<int64_t>::min()),
       query::Value::of(std::numeric_limits<double>::lowest()),
       query::Value::of(std::string(1, '\0'))},
      {query::Value::of(std::numeric_limits<int64_t>::max()),
       query::Value::of(std::numeric_limits<double>::max()),
       query::Value::of("line\nbreak\tand\x7f bytes")},
      {query::Value::of(int64_t{-1}),
       query::Value::of(std::numeric_limits<double>::denorm_min()),
       query::Value::of(std::string(4096, 'z'))},
  };
  for (const query::Row& row : rows) {
    const std::string bytes = schema.encode_row(row);
    const query::Row back = schema.decode_row(bytes);
    ASSERT_EQ(back.size(), row.size());
    EXPECT_EQ(back, row);
    // Injectivity in the other direction: re-encoding reproduces the bytes.
    EXPECT_EQ(schema.encode_row(back), bytes);
  }
}

TEST(QueryRow, RandomRowsRoundTripThroughRowAndKeyCodecs) {
  Rng rng(2025);
  for (int iter = 0; iter < 200; ++iter) {
    query::Schema schema;
    const uint64_t cols = 1 + rng.next_below(6);
    std::vector<query::ColType> types;
    for (uint64_t c = 0; c < cols; ++c) {
      types.push_back(static_cast<query::ColType>(rng.next_below(3)));
      schema.cols.push_back({"c" + std::to_string(c), types.back()});
    }
    query::Row row;
    std::vector<uint32_t> all_cols;
    for (uint64_t c = 0; c < cols; ++c) {
      all_cols.push_back(static_cast<uint32_t>(c));
      switch (types[c]) {
        case query::ColType::kI64:
          row.push_back(query::Value::of(static_cast<int64_t>(rng.next_u64())));
          break;
        case query::ColType::kF64:
          // Random bits, skipping NaNs (NaN != NaN under value semantics is
          // irrelevant here: Value compares f64 by bit pattern, but keep the
          // domain within what queries can produce).
          row.push_back(query::Value::of(
              static_cast<double>(static_cast<int64_t>(rng.next_u64())) / 16.0));
          break;
        case query::ColType::kStr: {
          std::string s;
          const uint64_t len = rng.next_below(32);
          for (uint64_t i = 0; i < len; ++i)
            s.push_back(static_cast<char>(rng.next_below(256)));
          row.push_back(query::Value::of(std::move(s)));
          break;
        }
      }
    }
    EXPECT_EQ(schema.decode_row(schema.encode_row(row)), row);
    // Key form: self-describing, decodes back with the type list.
    const std::string key = query::encode_key(row, all_cols);
    EXPECT_EQ(query::decode_key(key, types), row);
  }
}

TEST(QueryRow, DecodeRejectsTruncatedAndTrailingBytes) {
  const query::Schema schema = mixed_schema();
  const query::Row row = {query::Value::of(int64_t{123456789}),
                          query::Value::of(3.25),
                          query::Value::of("hello")};
  const std::string bytes = schema.encode_row(row);

  // Every proper prefix must throw, never return a partial row.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(schema.decode_row(std::string_view(bytes.data(), len)),
                 DecodeError)
        << "prefix length " << len;
  }
  // Trailing garbage after a complete row is an error for the whole-buffer
  // overload (a Reader-based caller may continue with the next row instead).
  EXPECT_THROW(schema.decode_row(bytes + "x"), DecodeError);

  // Key decode checks the type tags, not just the lengths.
  const std::string key = query::encode_key(row, {0});
  EXPECT_THROW(query::decode_key(key, {query::ColType::kStr}), DecodeError);
  EXPECT_THROW(
      query::decode_key(key.substr(0, key.size() - 1), {query::ColType::kI64}),
      DecodeError);
}

TEST(QueryRow, EncodeValidatesSchemaShape) {
  const query::Schema schema = mixed_schema();
  // Arity mismatch.
  EXPECT_THROW(schema.encode_row({query::Value::of(int64_t{1})}),
               std::invalid_argument);
  // Type mismatch in column 1 (expects f64).
  EXPECT_THROW(
      schema.encode_row({query::Value::of(int64_t{1}),
                         query::Value::of(int64_t{2}),
                         query::Value::of("s")}),
      std::invalid_argument);
  // Typed accessors refuse the wrong kind.
  EXPECT_THROW(query::Value::of(int64_t{1}).as_str(), std::invalid_argument);
  EXPECT_THROW(query::Value::of("s").as_f64(), std::invalid_argument);
}

TEST(QueryRow, HexTransportRoundTripsAndRejectsGarbage) {
  std::string raw;
  for (int i = 0; i < 256; ++i) raw.push_back(static_cast<char>(i));
  EXPECT_EQ(query::from_hex(query::to_hex(raw)), raw);
  EXPECT_THROW(query::from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(query::from_hex("zz"), std::invalid_argument);    // bad digit
}
