// Unit tests for the hot-path memory/scheduling primitives added by the
// perf rework: Arena, FlatAccTable, BufferPool, and ShardedScheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "common/pool.h"
#include "engine/flat_table.h"
#include "engine/runtime.h"
#include "engine/scheduler.h"

namespace hamr {
namespace {

// --- Arena ------------------------------------------------------------------

TEST(Arena, StoreReturnsStableViewsAcrossGrowth) {
  Arena arena(nullptr, /*chunk_bytes=*/128);
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 200; ++i) {
    originals.push_back("key-" + std::to_string(i) + std::string(i % 40, 'x'));
  }
  for (const std::string& s : originals) views.push_back(arena.store(s));
  // Many chunks later, every early view still reads back exactly.
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
  }
  EXPECT_GT(arena.reserved_bytes(), 0u);
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  Arena arena(nullptr, /*chunk_bytes=*/64);
  std::string big(1000, 'b');
  const std::string_view v = arena.store(big);
  EXPECT_EQ(v, big);
  EXPECT_GE(arena.reserved_bytes(), 1000u);
}

TEST(Arena, GaugeTracksReservedBytesThroughClearAndMove) {
  Gauge g;
  {
    Arena arena(&g, /*chunk_bytes=*/256);
    EXPECT_EQ(g.get(), 0);
    arena.store(std::string(100, 'a'));
    EXPECT_EQ(g.get(), static_cast<int64_t>(arena.reserved_bytes()));

    // Move: the charge travels with the chunks, no double count.
    Arena moved = std::move(arena);
    EXPECT_EQ(g.get(), static_cast<int64_t>(moved.reserved_bytes()));

    moved.clear();
    EXPECT_EQ(g.get(), 0);
    EXPECT_EQ(moved.used_bytes(), 0u);

    // A cleared arena is reusable and re-charges the gauge.
    moved.store("hello");
    EXPECT_GT(g.get(), 0);
  }
  // Destruction un-charges.
  EXPECT_EQ(g.get(), 0);
}

// --- FlatAccTable -----------------------------------------------------------

TEST(FlatAccTable, HeterogeneousLookupFindsSameSlot) {
  engine::FlatAccTable table;
  // Probe with a string_view into a larger buffer: no std::string key is ever
  // materialized by the caller.
  const std::string buffer = "xxapplexx";
  const std::string_view key = std::string_view(buffer).substr(2, 5);
  table.find_or_insert(key) = "1";
  EXPECT_EQ(table.size(), 1u);
  // A different view with the same bytes hits the same accumulator.
  const std::string other = "apple";
  std::string& acc = table.find_or_insert(other);
  EXPECT_EQ(acc, "1");
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatAccTable, GrowthKeepsAllEntriesAndInsertionOrder) {
  engine::FlatAccTable table;
  // Far past the initial 64 slots, forcing several rebuilds.
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    table.find_or_insert("key-" + std::to_string(i)) = std::to_string(i);
  }
  ASSERT_EQ(table.size(), static_cast<size_t>(n));
  // Every key still resolves to its accumulator.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(table.find_or_insert("key-" + std::to_string(i)),
              std::to_string(i));
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(n));
  // Entries iterate in insertion order (flush paths depend on determinism).
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(table.entries()[i].key, "key-" + std::to_string(i));
    EXPECT_EQ(table.entries()[i].acc, std::to_string(i));
  }
}

TEST(FlatAccTable, MoveDrainAndRearmKeepsByteAccountingExact) {
  Gauge g;
  engine::FlatAccTable table(&g);
  for (int i = 0; i < 1000; ++i) {
    table.find_or_insert("some-reasonably-long-key-" + std::to_string(i)) = "v";
  }
  const int64_t charged = g.get();
  EXPECT_GT(charged, 0);
  EXPECT_EQ(charged, static_cast<int64_t>(table.arena_bytes()));

  // Overflow-flush pattern: move the table out, re-arm an empty one.
  engine::FlatAccTable drained = std::move(table);
  table = engine::FlatAccTable(&g);
  EXPECT_EQ(g.get(), charged);  // the charge moved, nothing double-counted
  EXPECT_EQ(drained.size(), 1000u);
  EXPECT_EQ(table.size(), 0u);

  // Re-armed table is fully usable.
  table.find_or_insert("fresh") = "f";
  EXPECT_EQ(table.size(), 1u);

  drained.clear();
  EXPECT_EQ(static_cast<int64_t>(table.arena_bytes()), g.get());
}

TEST(FlatAccTable, EmptyKeyAndBinaryKeysWork) {
  engine::FlatAccTable table;
  table.find_or_insert("") = "empty";
  const std::string binary("\x00\x01\xff\x00", 4);
  table.find_or_insert(binary) = "bin";
  EXPECT_EQ(table.find_or_insert(""), "empty");
  EXPECT_EQ(table.find_or_insert(binary), "bin");
  EXPECT_EQ(table.size(), 2u);
}

// --- key prefix / reduce record ordering ------------------------------------

TEST(KeyPrefix, OrdersLikeLexicographicCompare) {
  const std::vector<std::string> keys = {
      "", "a", "ab", "abcdefgh", "abcdefghZ", "abcdefghz", "b", "zzzzzzzzz",
      std::string("\x00", 1), std::string("\xff\x01", 2)};
  for (const std::string& x : keys) {
    for (const std::string& y : keys) {
      const uint64_t px = engine::internal::key_prefix(x);
      const uint64_t py = engine::internal::key_prefix(y);
      if (px < py) {
        EXPECT_LT(x, y) << "prefix order disagrees for '" << x << "' vs '" << y;
      } else if (px > py) {
        EXPECT_GT(x, y) << "prefix order disagrees for '" << x << "' vs '" << y;
      }
      // Equal prefixes: reduce_rec_less falls back to full key compare,
      // nothing to check here.
    }
  }
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, RecyclesCapacityAndCountsHits) {
  BufferPool pool(/*max_buffers=*/4, /*max_buffer_bytes=*/1024);
  Counter hits, misses;
  pool.set_metrics(&hits, &misses);

  std::string a = pool.acquire();
  EXPECT_EQ(misses.get(), 1u);
  a.assign(500, 'x');
  const size_t cap = a.capacity();
  pool.release(std::move(a));
  EXPECT_EQ(pool.free_count(), 1u);

  std::string b = pool.acquire();
  EXPECT_EQ(hits.get(), 1u);
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), cap);  // the heap buffer survived the round trip
}

TEST(BufferPool, DropsOversizedAndSurplusBuffers) {
  BufferPool pool(/*max_buffers=*/2, /*max_buffer_bytes=*/100);

  std::string big(1000, 'x');
  pool.release(std::move(big));
  EXPECT_EQ(pool.free_count(), 0u);  // over max_buffer_bytes: dropped

  for (int i = 0; i < 5; ++i) {
    std::string s(50, 'y');
    s.shrink_to_fit();
    pool.release(std::move(s));
  }
  EXPECT_LE(pool.free_count(), 2u);  // bounded at max_buffers
}

// --- ShardedScheduler --------------------------------------------------------

TEST(ShardedScheduler, FifoPerSenderStrictWithSingleConsumer) {
  // With one consumer there is no dequeue/record race to blur observation:
  // every sender's items must come back in exact arrival order even though
  // several producer threads interleave their pushes.
  for (int run = 0; run < 10; ++run) {
    const uint32_t kSenders = 5;
    const uint32_t kPerSender = 200;
    engine::ShardedScheduler sched(/*workers=*/1, /*byte_budget=*/1ull << 30);

    std::map<uint32_t, std::vector<uint32_t>> dequeued;  // src -> seq order
    std::thread worker([&] {
      engine::ShardedScheduler::Work work;
      while (sched.next(0, &work)) {
        if (!work.is_item) continue;
        dequeued[work.item.src].push_back(
            static_cast<uint32_t>(std::stoul(work.item.payload)));
      }
    });

    std::vector<std::thread> senders;
    for (uint32_t s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (uint32_t i = 0; i < kPerSender; ++i) {
          engine::QueueItem item;
          item.src = s;
          item.payload = std::to_string(i);
          ASSERT_TRUE(sched.push_bin(std::move(item)));
        }
      });
    }
    for (auto& t : senders) t.join();

    while (sched.queued_items() != 0) std::this_thread::yield();
    sched.stop();
    worker.join();

    for (uint32_t s = 0; s < kSenders; ++s) {
      ASSERT_EQ(dequeued[s].size(), kPerSender) << "sender " << s;
      for (uint32_t i = 0; i < kPerSender; ++i) {
      ASSERT_EQ(dequeued[s][i], i)
          << "sender " << s << " dequeued out of order at " << i;
      }
    }
  }
}

TEST(ShardedScheduler, FifoPerSenderAcrossEightWorkersUnderRepeatRuns) {
  // With 8 workers stealing from each other, the shard deques are still
  // front-pop-only, so successive takes of any ONE consumer from any one
  // sender must be monotonically increasing (a LIFO or back-pop steal would
  // break this), and every item must be dequeued exactly once. This is the
  // strongest per-sender FIFO statement observable race-free from outside
  // the shard lock: two consumers' records of adjacent items can interleave
  // in wall-clock order even though the deque itself popped them in order.
  for (int run = 0; run < 20; ++run) {
    const uint32_t kWorkers = 8;
    const uint32_t kSenders = 5;
    const uint32_t kPerSender = 200;
    engine::ShardedScheduler sched(kWorkers, /*byte_budget=*/1ull << 30);

    std::vector<std::map<uint32_t, std::vector<uint32_t>>> per_worker(kWorkers);

    std::vector<std::thread> workers;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        // Batched pop with batch stealing: the exact engine dequeue path.
        std::vector<engine::ShardedScheduler::Work> batch;
        while (sched.next_batch(w, &batch, 16) > 0) {
          for (auto& work : batch) {
            if (!work.is_item) continue;
            per_worker[w][work.item.src].push_back(
                static_cast<uint32_t>(std::stoul(work.item.payload)));
          }
          batch.clear();
        }
      });
    }

    std::vector<std::thread> senders;
    for (uint32_t s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (uint32_t i = 0; i < kPerSender; ++i) {
          engine::QueueItem item;
          item.src = s;
          item.payload = std::to_string(i);
          ASSERT_TRUE(sched.push_bin(std::move(item)));
        }
      });
    }
    for (auto& t : senders) t.join();

    while (sched.queued_items() != 0) std::this_thread::yield();
    sched.stop();
    for (auto& t : workers) t.join();

    std::map<uint32_t, std::vector<uint32_t>> all;  // completeness check
    for (uint32_t w = 0; w < kWorkers; ++w) {
      for (const auto& [src, seqs] : per_worker[w]) {
        for (size_t i = 1; i < seqs.size(); ++i) {
          ASSERT_LT(seqs[i - 1], seqs[i])
              << "worker " << w << " saw sender " << src << " out of order";
        }
        all[src].insert(all[src].end(), seqs.begin(), seqs.end());
      }
    }
    for (uint32_t s = 0; s < kSenders; ++s) {
      ASSERT_EQ(all[s].size(), kPerSender) << "sender " << s;
      std::sort(all[s].begin(), all[s].end());
      for (uint32_t i = 0; i < kPerSender; ++i) {
        ASSERT_EQ(all[s][i], i) << "sender " << s << " item lost or duplicated";
      }
    }
  }
}

TEST(ShardedScheduler, IdleWorkersStealFromBusyShards) {
  // All items come from one sender, so they land in one shard; the other
  // workers can only make progress by stealing.
  const uint32_t kWorkers = 8;
  engine::ShardedScheduler sched(kWorkers, 1ull << 30);
  Counter steals;
  engine::ShardedScheduler::Hooks hooks;
  hooks.steals = &steals;
  sched.set_hooks(hooks);

  std::atomic<uint64_t> processed{0};
  std::vector<std::thread> workers;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      engine::ShardedScheduler::Work work;
      while (sched.next(w, &work)) {
        processed.fetch_add(1);
        // A little work so thieves have something to take.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  const uint64_t kItems = 400;
  for (uint64_t i = 0; i < kItems; ++i) {
    engine::QueueItem item;
    item.src = 7;  // one shard gets everything
    item.payload = "x";
    ASSERT_TRUE(sched.push_bin(std::move(item)));
  }
  while (sched.queued_items() != 0) std::this_thread::yield();
  sched.stop();
  for (auto& t : workers) t.join();

  EXPECT_EQ(processed.load(), kItems);
  EXPECT_GT(steals.get(), 0u) << "no worker ever stole from the hot shard";
}

TEST(ShardedScheduler, ByteBudgetBlocksAndForceBypasses) {
  engine::ShardedScheduler sched(/*workers=*/1, /*byte_budget=*/64);

  engine::QueueItem a;
  a.src = 0;
  a.payload = std::string(64, 'a');
  ASSERT_TRUE(sched.push_bin(std::move(a)));  // fills the budget exactly

  // A forced push (crash-retry path) must not block even though the budget
  // is exhausted.
  engine::QueueItem b;
  b.src = 0;
  b.payload = std::string(64, 'b');
  ASSERT_TRUE(sched.push_bin(std::move(b), /*force=*/true));
  EXPECT_EQ(sched.queued_bytes(), 128u);

  // A normal push now blocks until a worker pops; run one pop concurrently.
  std::thread popper([&] {
    engine::ShardedScheduler::Work work;
    ASSERT_TRUE(sched.next(0, &work));
    ASSERT_TRUE(sched.next(0, &work));
  });
  engine::QueueItem c;
  c.src = 0;
  c.payload = std::string(8, 'c');
  ASSERT_TRUE(sched.push_bin(std::move(c)));  // returns once under budget
  popper.join();

  engine::ShardedScheduler::Work work;
  std::thread last([&] { ASSERT_TRUE(sched.next(0, &work)); });
  last.join();
  EXPECT_EQ(sched.queued_bytes(), 0u);
  sched.stop();
}

TEST(ShardedScheduler, TasksRunAndStopDrainsEverything) {
  const uint32_t kWorkers = 4;
  engine::ShardedScheduler sched(kWorkers, 1ull << 30);
  std::vector<std::thread> workers;
  std::atomic<uint64_t> ran{0};
  for (uint32_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      engine::ShardedScheduler::Work work;
      while (sched.next(w, &work)) {
        if (!work.is_item) work.task();
      }
    });
  }
  const uint64_t kTasks = 1000;
  for (uint64_t i = 0; i < kTasks; ++i) {
    sched.push_task([&ran] { ran.fetch_add(1); });
  }
  while (sched.queued_items() != 0) std::this_thread::yield();
  sched.stop();
  for (auto& t : workers) t.join();
  EXPECT_EQ(ran.load(), kTasks);
}

}  // namespace
}  // namespace hamr
