#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/random.h"
#include "storage/device.h"
#include "storage/file_store.h"
#include "storage/run_file.h"

using namespace hamr;
using namespace hamr::storage;

// --- ThrottledDevice ---------------------------------------------------------

TEST(ThrottledDevice, DisabledIsFree) {
  DeviceConfig config;
  config.enabled = false;
  ThrottledDevice dev(config);
  Stopwatch w;
  for (int i = 0; i < 100; ++i) dev.charge(1 << 20);
  // Generous bound: a disabled device must not sleep at all, but the test
  // process itself may be preempted on a loaded CI machine.
  EXPECT_LT(w.elapsed_seconds(), 0.5);
}

TEST(ThrottledDevice, ChargesBandwidth) {
  DeviceConfig config;
  config.bandwidth_bytes_per_sec = 10e6;  // 10 MB/s
  config.seek_latency = Duration::zero();
  ThrottledDevice dev(config);
  Stopwatch w;
  dev.charge(1 << 20);  // 1 MiB at 10 MB/s ~= 105 ms
  const double elapsed = w.elapsed_seconds();
  EXPECT_GE(elapsed, 0.09);
  // Upper bound guards against double-charging, not scheduling noise: a
  // bug would double it to ~210 ms, while preemption rarely adds seconds.
  EXPECT_LT(elapsed, 2.0);
}

TEST(ThrottledDevice, ChargesSeekPerOp) {
  DeviceConfig config;
  config.bandwidth_bytes_per_sec = 1e12;  // bandwidth negligible
  config.seek_latency = millis(10);
  ThrottledDevice dev(config);
  Stopwatch w;
  for (int i = 0; i < 5; ++i) dev.charge_seek();
  EXPECT_GE(w.elapsed_seconds(), 0.045);
}

TEST(ThrottledDevice, SerializesConcurrentRequests) {
  // Two concurrent 0.5 MB requests on a 10 MB/s disk must take ~100 ms total
  // (one spindle), not ~50 ms (parallel).
  DeviceConfig config;
  config.bandwidth_bytes_per_sec = 10e6;
  config.seek_latency = Duration::zero();
  ThrottledDevice dev(config);
  Stopwatch w;
  std::thread t1([&] { dev.charge(512 * 1024); });
  std::thread t2([&] { dev.charge(512 * 1024); });
  t1.join();
  t2.join();
  EXPECT_GE(w.elapsed_seconds(), 0.09);
}

TEST(ThrottledDevice, CountsBytesInMetrics) {
  Metrics metrics;
  DeviceConfig config;
  config.enabled = true;
  config.bandwidth_bytes_per_sec = 1e12;
  config.seek_latency = Duration::zero();
  ThrottledDevice dev(config, &metrics);
  dev.charge(1000);
  dev.charge(2000);
  EXPECT_EQ(metrics.value("disk.bytes"), 3000u);
  EXPECT_EQ(metrics.value("disk.ops"), 2u);
}

// --- FileStore ----------------------------------------------------------------

TEST(FileStore, WriteReadRoundTrip) {
  FileStore store;
  store.write_file("a/b", "hello");
  EXPECT_EQ(store.read_file("a/b").value(), "hello");
  EXPECT_TRUE(store.exists("a/b"));
  EXPECT_FALSE(store.exists("a/c"));
  EXPECT_EQ(store.file_size("a/b").value(), 5u);
}

TEST(FileStore, OverwriteTruncates) {
  FileStore store;
  store.write_file("f", "long content");
  store.write_file("f", "x");
  EXPECT_EQ(store.read_file("f").value(), "x");
}

TEST(FileStore, AppendCreatesAndExtends) {
  FileStore store;
  store.append("log", "a");
  store.append("log", "bc");
  EXPECT_EQ(store.read_file("log").value(), "abc");
}

TEST(FileStore, ReadRangeClamps) {
  FileStore store;
  store.write_file("f", "0123456789");
  EXPECT_EQ(store.read_range("f", 2, 3).value(), "234");
  EXPECT_EQ(store.read_range("f", 8, 100).value(), "89");
  EXPECT_EQ(store.read_range("f", 100, 5).value(), "");
}

TEST(FileStore, MissingFileIsNotFound) {
  FileStore store;
  EXPECT_EQ(store.read_file("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.file_size("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.remove("nope").code(), StatusCode::kNotFound);
}

TEST(FileStore, ListByPrefixSorted) {
  FileStore store;
  store.write_file("x/2", "");
  store.write_file("x/1", "");
  store.write_file("y/1", "");
  const auto listed = store.list("x/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "x/1");
  EXPECT_EQ(listed[1], "x/2");
  EXPECT_EQ(store.list("").size(), 3u);
}

TEST(FileStore, RemoveAndTotalBytes) {
  FileStore store;
  store.write_file("a", "1234");
  store.write_file("b", "56");
  EXPECT_EQ(store.total_bytes(), 6u);
  EXPECT_TRUE(store.remove("a").ok());
  EXPECT_EQ(store.total_bytes(), 2u);
}

// --- run files -------------------------------------------------------------------

TEST(RunFile, WriteReadRoundTrip) {
  FileStore store;
  {
    RunWriter w(&store, "run");
    w.add("a", "1");
    w.add("b", "2");
    w.add("b", "3");
    EXPECT_EQ(w.records(), 3u);
    w.close();
  }
  RunReader r(&store, "run");
  std::string_view k, v;
  ASSERT_TRUE(r.next(&k, &v));
  EXPECT_EQ(k, "a");
  EXPECT_EQ(v, "1");
  ASSERT_TRUE(r.next(&k, &v));
  EXPECT_EQ(k, "b");
  EXPECT_EQ(v, "2");
  ASSERT_TRUE(r.next(&k, &v));
  EXPECT_EQ(v, "3");
  EXPECT_FALSE(r.next(&k, &v));
}

TEST(RunFile, EmptyRun) {
  FileStore store;
  RunWriter w(&store, "empty");
  w.close();
  RunReader r(&store, "empty");
  std::string_view k, v;
  EXPECT_FALSE(r.next(&k, &v));
}

TEST(RunFile, MergePreservesSortAndStability) {
  FileStore store;
  {
    RunWriter w(&store, "r0");
    w.add("a", "r0-a");
    w.add("c", "r0-c");
    w.close();
  }
  {
    RunWriter w(&store, "r1");
    w.add("a", "r1-a");
    w.add("b", "r1-b");
    w.close();
  }
  EXPECT_EQ(merge_runs(&store, {"r0", "r1"}, "merged"), 4u);
  RunReader r(&store, "merged");
  std::vector<std::pair<std::string, std::string>> out;
  std::string_view k, v;
  while (r.next(&k, &v)) out.emplace_back(k, v);
  ASSERT_EQ(out.size(), 4u);
  // Sorted by key; equal keys keep run order (r0 before r1).
  EXPECT_EQ(out[0], (std::pair<std::string, std::string>{"a", "r0-a"}));
  EXPECT_EQ(out[1], (std::pair<std::string, std::string>{"a", "r1-a"}));
  EXPECT_EQ(out[2].first, "b");
  EXPECT_EQ(out[3].first, "c");
}

// Property: merging K random sorted runs equals sorting the concatenation.
TEST(RunFile, MergeEqualsSortedConcat) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    FileStore store;
    std::vector<std::pair<std::string, std::string>> all;
    std::vector<std::string> paths;
    const uint64_t runs = 1 + rng.next_below(6);
    for (uint64_t i = 0; i < runs; ++i) {
      std::vector<std::pair<std::string, std::string>> records;
      const uint64_t n = rng.next_below(100);
      for (uint64_t j = 0; j < n; ++j) {
        records.emplace_back("k" + std::to_string(rng.next_below(30)),
                             "v" + std::to_string(j));
      }
      std::stable_sort(records.begin(), records.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      const std::string path = "run" + std::to_string(i);
      RunWriter w(&store, path);
      for (const auto& [k, v] : records) w.add(k, v);
      w.close();
      paths.push_back(path);
      all.insert(all.end(), records.begin(), records.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    merge_runs(&store, paths, "merged");
    RunReader r(&store, "merged");
    std::string_view k, v;
    size_t idx = 0;
    while (r.next(&k, &v)) {
      ASSERT_LT(idx, all.size());
      EXPECT_EQ(k, all[idx].first);
      ++idx;
    }
    EXPECT_EQ(idx, all.size());
  }
}

TEST(FileStore, ChargedReadsHitDevice) {
  Metrics metrics;
  DeviceConfig config;
  config.bandwidth_bytes_per_sec = 1e12;
  config.seek_latency = Duration::zero();
  ThrottledDevice dev(config, &metrics);
  FileStore store(&dev);
  store.write_file("f", std::string(1000, 'x'));
  (void)store.read_file("f");
  EXPECT_EQ(metrics.value("disk.bytes"), 2000u);  // write + read
}
