// Tests for the built-in loaders and the engine's streaming path details.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "cluster/cluster.h"
#include "engine/engine.h"
#include "engine/loaders.h"

using namespace hamr;
using namespace hamr::engine;

namespace {

struct Env {
  explicit Env(uint32_t nodes)
      : cluster(cluster::ClusterConfig::fast(nodes)),
        engine(cluster, EngineConfig::fast()) {}

  cluster::Cluster cluster;
  Engine engine;
};

// Collects (key, value) lines to the local store for post-run inspection.
class Collector : public MapFlowlet {
 public:
  void process(const KvPair& record, Context& ctx) override {
    (void)ctx;
    std::lock_guard<std::mutex> lock(mu_);
    lines_ += std::string(record.key) + "\t" + std::string(record.value) + "\n";
  }
  void finish(Context& ctx) override {
    ctx.local_store().write_file("test/loader_out" + std::to_string(ctx.node()),
                                 lines_);
  }

 private:
  std::mutex mu_;
  std::string lines_;
};

std::vector<std::pair<std::string, std::string>> collect(cluster::Cluster& cluster) {
  std::vector<std::pair<std::string, std::string>> out;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (const auto& path : cluster.node(n).store().list("test/loader_out")) {
      const std::string text = cluster.node(n).store().read_file(path).value();
      size_t pos = 0;
      while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        const size_t tab = line.find('\t');
        if (tab != std::string::npos) {
          out.emplace_back(line.substr(0, tab), line.substr(tab + 1));
        }
        pos = eol + 1;
      }
    }
  }
  return out;
}

}  // namespace

TEST(TextLoader, EmitsEveryLineWithByteOffsets) {
  Env env(2);
  std::string file;
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 100; ++i) {
    offsets.push_back(file.size());
    file += "line_" + std::to_string(i) + "\n";
  }
  env.cluster.node(0).store().write_file("input/f", file);

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<TextLoader>(7); });
  auto sink = g.add_map("sink", [] { return std::make_unique<Collector>(); });
  g.connect(loader, sink, local_edge());

  JobInputs inputs;
  InputSplit split;
  split.path = "input/f";
  split.length = file.size();
  split.preferred_node = 0;
  inputs.add(loader, split);
  env.engine.run(g, inputs);

  auto got = collect(env.cluster);
  ASSERT_EQ(got.size(), 100u);
  std::set<std::string> keys;
  for (const auto& [key, value] : got) {
    keys.insert(key);
    const uint64_t offset = std::stoull(key);
    // The value must be exactly the line found at that offset.
    const size_t eol = file.find('\n', offset);
    EXPECT_EQ(value, file.substr(offset, eol - offset));
  }
  EXPECT_EQ(keys.size(), 100u);  // all offsets distinct
}

TEST(TextLoader, SkipsEmptyLinesAndHandlesMissingTrailingNewline) {
  Env env(1);
  env.cluster.node(0).store().write_file("input/f", "a\n\n\nb\nc");  // no final \n

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<TextLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<Collector>(); });
  g.connect(loader, sink, local_edge());
  JobInputs inputs;
  InputSplit split;
  split.path = "input/f";
  split.length = 7;
  inputs.add(loader, split);
  env.engine.run(g, inputs);

  auto got = collect(env.cluster);
  ASSERT_EQ(got.size(), 3u);
  std::multiset<std::string> values;
  for (auto& [k, v] : got) values.insert(v);
  EXPECT_EQ(values, (std::multiset<std::string>{"a", "b", "c"}));
}

TEST(TextLoader, RespectsSplitRanges) {
  Env env(1);
  // Two splits over one file; split 2 starts exactly at a line boundary.
  const std::string file = "aaaa\nbbbb\ncccc\ndddd\n";
  env.cluster.node(0).store().write_file("input/f", file);

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<TextLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<Collector>(); });
  g.connect(loader, sink, local_edge());
  JobInputs inputs;
  InputSplit s1{"input/f", 0, 10, 0, 0};
  InputSplit s2{"input/f", 10, 10, 0, 0};
  inputs.add(loader, s1);
  inputs.add(loader, s2);
  env.engine.run(g, inputs);

  auto got = collect(env.cluster);
  std::multiset<std::string> values;
  for (auto& [k, v] : got) values.insert(v);
  EXPECT_EQ(values, (std::multiset<std::string>{"aaaa", "bbbb", "cccc", "dddd"}));
}

TEST(RateLimitedSource, PacesEmissionRate) {
  Env env(1);
  class Source : public RateLimitedSource {
   public:
    Source() : RateLimitedSource(/*records_per_sec=*/2000, /*chunk=*/100) {}
    void make_record(const InputSplit&, uint64_t index, std::string* key,
                     std::string* value) override {
      *key = std::to_string(index);
      *value = "x";
    }
  };
  FlowletGraph g;
  auto source = g.add_loader("src", [] { return std::make_unique<Source>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<Collector>(); });
  g.connect(source, sink, local_edge());
  JobInputs inputs;
  inputs.add(source, InputSplit{});

  Stopwatch watch;
  const auto result =
      env.engine.run_streaming(g, inputs, millis(500), Duration::zero());
  const double elapsed = watch.elapsed_seconds();
  EXPECT_GE(elapsed, 0.45);
  // ~2000 rec/s for ~0.5 s => roughly 1000 records (chunked, so allow slack).
  EXPECT_GT(result.records_emitted, 500u);
  EXPECT_LT(result.records_emitted, 2500u);
}

TEST(Streaming, SourcesStopAndJobDrainsCompletely) {
  Env env(2);
  class Source : public RateLimitedSource {
   public:
    Source() : RateLimitedSource(50000, 64) {}
    void make_record(const InputSplit& split, uint64_t index, std::string* key,
                     std::string* value) override {
      *key = "n" + std::to_string(split.preferred_node);
      *value = std::to_string(index);
    }
  };
  FlowletGraph g;
  auto source = g.add_loader("src", [] { return std::make_unique<Source>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<Collector>(); });
  g.connect(source, sink);
  JobInputs inputs;
  for (uint32_t n = 0; n < 2; ++n) {
    InputSplit split;
    split.preferred_node = n;
    inputs.add(source, split);
  }
  const auto result = env.engine.run_streaming(g, inputs, millis(300), millis(50));
  // Everything emitted was delivered (no records lost at shutdown).
  EXPECT_EQ(collect(env.cluster).size(), result.records_emitted);
}
