// Dataset cache test suite (DESIGN.md §15): residency and eviction policy,
// pin leases, generation invalidation, the stable-partitioning contract, and
// the cache's integration points - iterative app drivers falling back cold on
// a miss, JobService publish/invalidate hooks across tenants, and the query
// planner's staged-table reuse.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "apps/common.h"
#include "apps/pagerank.h"
#include "cache/dataset_cache.h"
#include "cache/scan_loader.h"
#include "cluster/cluster.h"
#include "common/hash.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "obs/event_log.h"
#include "query/planner.h"
#include "query/reference.h"
#include "query/testgen.h"
#include "service/job_service.h"

using namespace hamr;
using namespace hamr::cache;

namespace {

DatasetCache::Config small_budget(uint64_t bytes,
                                  obs::EventLog* log = nullptr) {
  DatasetCache::Config cfg;
  cfg.byte_budget = bytes;
  cfg.block_bytes = 1024;
  cfg.event_log = log;
  return cfg;
}

// Commits a dataset whose shard n holds `per_shard` records keyed
// "<name>/<n>/<i>", each with a `value_bytes`-sized value.
std::shared_ptr<const Dataset> publish(DatasetCache& dcache,
                                       const std::string& name,
                                       uint32_t nodes, uint32_t per_shard,
                                       size_t value_bytes,
                                       PublishOptions options = {}) {
  auto writer = dcache.begin(name, options);
  const std::string value(value_bytes, 'v');
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t i = 0; i < per_shard; ++i) {
      writer->append(n, name + "/" + std::to_string(n) + "/" + std::to_string(i),
                     value);
    }
  }
  EXPECT_TRUE(writer->commit());
  return dcache.pin(name);
}

// All (key, value) records of one shard, in append order.
std::vector<std::pair<std::string, std::string>> read_shard(
    const Dataset& dataset, uint32_t node) {
  std::vector<std::pair<std::string, std::string>> out;
  ShardCursor cursor;
  std::string_view key, value;
  while (next_record(dataset.shard(node), &cursor, &key, &value)) {
    out.emplace_back(std::string(key), std::string(value));
  }
  return out;
}

}  // namespace

// --- residency, eviction, pins ----------------------------------------------

TEST(DatasetCache, CommitPublishesFramedRecordsPerShard) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(3));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  auto writer = dcache.begin("t/basic");
  writer->append(0, "a", "1");
  writer->append(2, "b", std::string(3000, 'x'));  // spans multiple blocks
  writer->append(2, "c", "3");
  ASSERT_TRUE(writer->commit());

  auto ds = dcache.pin("t/basic");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->nodes(), 3u);
  EXPECT_EQ(ds->total_records(), 3u);
  EXPECT_EQ(read_shard(*ds, 0),
            (std::vector<std::pair<std::string, std::string>>{{"a", "1"}}));
  EXPECT_TRUE(read_shard(*ds, 1).empty());
  const auto shard2 = read_shard(*ds, 2);
  ASSERT_EQ(shard2.size(), 2u);
  EXPECT_EQ(shard2[0].first, "b");
  EXPECT_EQ(shard2[0].second, std::string(3000, 'x'));
  EXPECT_EQ(shard2[1], (std::pair<std::string, std::string>{"c", "3"}));
  EXPECT_EQ(dcache.stats().hits, 1u);
}

TEST(DatasetCache, LruEvictsUnpinnedDatasetsToFitBudget) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  obs::EventLog log;
  DatasetCache dcache(cluster, small_budget(64 * 1024, &log));

  // Three ~28KB datasets against a 64KB budget: committing "c" must evict
  // the least recently used one.
  publish(dcache, "t/a", 2, 14, 1000).reset();
  publish(dcache, "t/b", 2, 14, 1000).reset();
  ASSERT_NE(dcache.pin("t/a"), nullptr);  // touch: "b" is now LRU
  publish(dcache, "t/c", 2, 14, 1000).reset();

  EXPECT_EQ(dcache.pin("t/b"), nullptr);  // evicted
  EXPECT_NE(dcache.pin("t/a"), nullptr);
  EXPECT_NE(dcache.pin("t/c"), nullptr);
  EXPECT_LE(dcache.bytes_resident(), dcache.byte_budget());
  EXPECT_GE(dcache.stats().evictions, 1u);
  EXPECT_GE(log.count(obs::EventKind::kDatasetEvict), 1u);
  EXPECT_GE(log.count(obs::EventKind::kDatasetPin), 3u);
}

TEST(DatasetCache, PinnedDatasetIsNeverEvicted) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(64 * 1024));

  auto pinned = publish(dcache, "t/pinned", 2, 14, 1000);
  ASSERT_NE(pinned, nullptr);
  // Blow well past the budget while the pin is held: "t/pinned" must survive
  // every eviction pass (budget overshoot is allowed for leases).
  publish(dcache, "t/f1", 2, 14, 1000).reset();
  publish(dcache, "t/f2", 2, 14, 1000).reset();
  publish(dcache, "t/f3", 2, 14, 1000).reset();
  EXPECT_NE(dcache.pin("t/pinned"), nullptr);

  // Released, it becomes ordinary LRU prey.
  pinned.reset();
  dcache.pin("t/pinned").reset();  // hit-release so the pin count drops
  publish(dcache, "t/f4", 2, 14, 1000).reset();
  publish(dcache, "t/f5", 2, 14, 1000).reset();
  EXPECT_LE(dcache.bytes_resident(), dcache.byte_budget());
}

TEST(DatasetCache, InvalidateDropsNewPinsButOutstandingLeasesStillRead) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  auto lease = publish(dcache, "t/inv", 2, 4, 100);
  ASSERT_NE(lease, nullptr);
  dcache.invalidate("t/inv");

  EXPECT_EQ(dcache.pin("t/inv"), nullptr);  // new pins miss
  EXPECT_EQ(read_shard(*lease, 0).size(), 4u);  // old lease reads its snapshot
  EXPECT_GE(dcache.stats().invalidations, 1u);
  EXPECT_GE(dcache.stats().misses, 1u);
}

TEST(DatasetCache, InvalidateFencesWritersBegunBeforeIt) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  auto stale = dcache.begin("t/fence");
  stale->append(0, "old", "1");
  dcache.invalidate("t/fence");
  EXPECT_FALSE(stale->commit());       // fenced: begun before the invalidate
  EXPECT_EQ(dcache.pin("t/fence"), nullptr);

  auto fresh = dcache.begin("t/fence");  // begun after: commits fine
  fresh->append(0, "new", "2");
  EXPECT_TRUE(fresh->commit());
  auto ds = dcache.pin("t/fence");
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(read_shard(*ds, 0).front().first, "new");
}

TEST(DatasetCache, StampMismatchIsAMiss) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  PublishOptions options;
  options.stamp = 42;
  publish(dcache, "t/stamp", 2, 2, 10, options).reset();

  EXPECT_NE(dcache.pin("t/stamp", 42), nullptr);
  EXPECT_NE(dcache.pin("t/stamp"), nullptr);      // 0 = don't care
  EXPECT_EQ(dcache.pin("t/stamp", 43), nullptr);  // stale-source guard
}

TEST(DatasetCache, AbortedWriterLeavesCacheUntouched) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  publish(dcache, "t/abort", 2, 2, 10).reset();
  const uint64_t bytes_before = dcache.bytes_resident();

  auto writer = dcache.begin("t/abort");
  writer->append(0, "junk", std::string(5000, 'j'));
  writer->abort();

  auto ds = dcache.pin("t/abort");  // previous generation still served
  ASSERT_NE(ds, nullptr);
  EXPECT_EQ(ds->total_records(), 4u);
  EXPECT_EQ(dcache.bytes_resident(), bytes_before);
}

// --- stable partitioning -----------------------------------------------------

TEST(DatasetCache, KeyPartitionedPublishInheritsShardLayout) {
  // The cached PageRank chain publishes "pagerank/adj" from the reduce that
  // built adjacency: shard n must hold exactly the keys whose hash partition
  // is n, and aligned_edge() must compile to a shuffle-free local edge.
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged = apps::stage_input(env, "pr_layout", shards, 16 * 1024);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 1;
  apps::pagerank::run_hamr_cached(env, staged, params);

  auto adj = env.dataset_cache->pin("pagerank/adj");
  ASSERT_NE(adj, nullptr);
  EXPECT_TRUE(adj->options().key_partitioned);
  EXPECT_GT(adj->total_records(), 0u);
  for (uint32_t n = 0; n < adj->nodes(); ++n) {
    for (const auto& [key, value] : read_shard(*adj, n)) {
      EXPECT_EQ(partition_of(key, adj->nodes()), n) << "key " << key;
    }
  }
  const engine::EdgeOptions edge = aligned_edge(*adj);
  EXPECT_TRUE(edge.local);
}

TEST(DatasetCache, CustomPartitionerIsInheritedByConsumers) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(4));
  DatasetCache dcache(cluster, small_budget(1 << 20));

  PublishOptions options;
  options.partitioner = [](std::string_view key, uint32_t nodes) {
    return static_cast<uint32_t>(key.size() % nodes);
  };
  publish(dcache, "t/custom", 4, 2, 10, options).reset();

  auto ds = dcache.pin("t/custom");
  ASSERT_NE(ds, nullptr);
  const engine::EdgeOptions edge = aligned_edge(*ds);
  EXPECT_FALSE(edge.local);  // not provably aligned - shuffle stays
  ASSERT_NE(edge.partitioner, nullptr);
  EXPECT_EQ(edge.partitioner("abc", 4), 3u);
}

// --- iterative drivers: miss -> cold fallback --------------------------------

TEST(CachedPageRank, RanksAreExactlyEqualToTheColdPath) {
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  apps::BenchEnv cold = apps::BenchEnv::fast(4);
  auto shards = apps::make_shards(cold.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged_cold = apps::stage_input(cold, "pr_eq", shards, 16 * 1024);
  apps::pagerank::run_hamr(cold, staged_cold, params);
  const auto expected = apps::pagerank::hamr_ranks(cold, params);

  apps::BenchEnv cached = apps::BenchEnv::fast(4);
  auto staged = apps::stage_input(cached, "pr_eq", shards, 16 * 1024);
  apps::pagerank::run_hamr_cached(cached, staged, params);
  EXPECT_EQ(apps::pagerank::hamr_ranks(cached, params), expected);
  EXPECT_GE(cached.dataset_cache->stats().hits, 2u);  // iterations 2 and 3
}

TEST(CachedPageRank, MidChainInvalidationFallsBackColdAndRepublishes) {
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  apps::BenchEnv cold = apps::BenchEnv::fast(4);
  auto shards = apps::make_shards(cold.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged_cold = apps::stage_input(cold, "pr_inv", shards, 16 * 1024);
  apps::pagerank::run_hamr(cold, staged_cold, params);
  const auto expected = apps::pagerank::hamr_ranks(cold, params);

  // Drive the cached chain iteration by iteration and yank the dataset out
  // from under it after iteration 1: iteration 2 must miss, rebuild cold,
  // republish, and iteration 3 must hit the fresh generation.
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  auto staged = apps::stage_input(env, "pr_inv", shards, 16 * 1024);
  apps::pagerank::clear_pagerank_state(env);
  apps::pagerank::run_hamr_cached_iteration(env, staged, params, 0);
  apps::pagerank::run_hamr_cached_iteration(env, staged, params, 1);
  env.dataset_cache->invalidate("pagerank/adj");
  const auto before = env.dataset_cache->stats();
  apps::pagerank::run_hamr_cached_iteration(env, staged, params, 2);

  const auto after = env.dataset_cache->stats();
  EXPECT_GT(after.misses, before.misses);  // the fallback actually triggered
  EXPECT_NE(env.dataset_cache->pin("pagerank/adj"), nullptr);  // republished
  EXPECT_EQ(apps::pagerank::hamr_ranks(env, params), expected);
}

// --- JobService integration --------------------------------------------------

namespace {

// Minimal publishing job: the loader emits its split's records, a sink map
// discards them, and a publish_tap on the connecting edge writes every routed
// record into the dataset writer.
class CountLoader : public engine::LoaderFlowlet {
 public:
  bool load_chunk(const engine::InputSplit& split, uint64_t*,
                  engine::Context& ctx) override {
    for (uint64_t i = 0; i < split.user_tag; ++i) {
      const std::string id = std::to_string(split.offset + i);
      ctx.emit(0, "k" + id, "v" + id);
    }
    return false;
  }
};

class DropMap : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair&, engine::Context&) override {}
};

service::JobWork publishing_job(uint32_t nodes, uint64_t base,
                                std::shared_ptr<DatasetWriter> writer) {
  service::JobWork work;
  const auto loader =
      work.graph.add_loader("src", [] { return std::make_unique<CountLoader>(); });
  const auto sink =
      work.graph.add_map("sink", [] { return std::make_unique<DropMap>(); });
  work.graph.connect(loader, sink,
                     publish_tap(engine::EdgeOptions{}, writer));
  for (uint32_t n = 0; n < nodes; ++n) {
    engine::InputSplit split;
    split.preferred_node = n;
    split.offset = base + 10 * n;
    split.user_tag = 3;  // three records per node
    work.inputs.add(loader, split);
  }
  work.publish.push_back(std::move(writer));
  return work;
}

}  // namespace

TEST(CacheService, TwoTenantsPublishDisjointDatasetsWithoutCrossTalk) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(4));
  DatasetCache dcache(cluster, small_budget(1 << 20));
  service::ServiceConfig cfg;
  cfg.lanes = 2;
  cfg.engine = engine::EngineConfig::fast();
  cfg.dataset_cache = &dcache;
  service::JobService svc(cluster, cfg);

  service::JobSpec alice, bob;
  alice.tenant = "alice";
  bob.tenant = "bob";
  auto t1 = svc.submit(alice, publishing_job(4, 100, dcache.begin("alice/data")));
  auto t2 = svc.submit(bob, publishing_job(4, 900, dcache.begin("bob/data")));
  ASSERT_EQ(t1->wait(), service::JobStatus::kDone);
  ASSERT_EQ(t2->wait(), service::JobStatus::kDone);

  auto a = dcache.pin("alice/data");
  auto b = dcache.pin("bob/data");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->total_records(), 12u);
  EXPECT_EQ(b->total_records(), 12u);
  // Key sets are disjoint: no record leaked across tenants' datasets.
  std::set<std::string> a_keys, b_keys;
  for (uint32_t n = 0; n < 4; ++n) {
    for (const auto& [key, value] : read_shard(*a, n)) a_keys.insert(key);
    for (const auto& [key, value] : read_shard(*b, n)) b_keys.insert(key);
  }
  EXPECT_EQ(a_keys.size(), 12u);
  EXPECT_EQ(b_keys.size(), 12u);
  for (const auto& key : a_keys) EXPECT_EQ(b_keys.count(key), 0u) << key;
}

TEST(CacheService, FailedPublisherIsAbortedAndResidentGenerationInvalidated) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  DatasetCache dcache(cluster, small_budget(1 << 20));
  service::ServiceConfig cfg;
  cfg.lanes = 1;
  cfg.engine = engine::EngineConfig::fast();
  cfg.dataset_cache = &dcache;
  service::JobService svc(cluster, cfg);

  // A good generation is resident; a failed re-derivation must take it down
  // (the writer may have been refreshing state whose upstream changed).
  publish(dcache, "svc/data", 2, 4, 100).reset();
  ASSERT_NE(dcache.pin("svc/data"), nullptr);

  service::JobWork bad;
  bad.graph.add_loader("broken", nullptr);  // Engine::run throws
  bad.publish.push_back(dcache.begin("svc/data"));
  auto ticket = svc.submit(service::JobSpec{}, std::move(bad));
  ASSERT_EQ(ticket->wait(), service::JobStatus::kFailed);

  EXPECT_EQ(dcache.pin("svc/data"), nullptr);
  EXPECT_GE(dcache.stats().invalidations, 1u);
}

// --- query planner integration -----------------------------------------------

TEST(CacheQuery, StagedTablesAreReusedAcrossQueriesInOneSession) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  query::GeneratedQuery q =
      query::generate_query(query::Family::kJoinGroupBy, /*seed=*/3);
  const query::Schema schema = query::output_schema(*q.plan, q.catalog);
  const auto expected =
      query::canonical(schema, query::reference_eval(*q.plan, q.catalog));
  ASSERT_FALSE(expected.empty());

  DatasetCache* dcache = env.dataset_cache.get();
  const auto first = query::canonical(
      schema,
      query::run_on_engine(*env.engine, *q.plan, q.catalog, "q1", dcache));
  EXPECT_EQ(first, expected);
  const auto staged_after_first = dcache->stats();

  // Same tables, new tag: the second query must pin the staged datasets
  // instead of re-staging, and still match the reference exactly.
  const auto second = query::canonical(
      schema,
      query::run_on_engine(*env.engine, *q.plan, q.catalog, "q2", dcache));
  EXPECT_EQ(second, expected);
  EXPECT_GT(dcache->stats().hits, staged_after_first.hits);
}
