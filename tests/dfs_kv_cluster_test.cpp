#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "dfs/mini_dfs.h"
#include "kvstore/kv_store.h"

using namespace hamr;

namespace {

cluster::ClusterConfig fast4() { return cluster::ClusterConfig::fast(4); }

}  // namespace

// --- Cluster ------------------------------------------------------------------

TEST(Cluster, BringUpAndTearDown) {
  cluster::Cluster cluster(fast4());
  EXPECT_EQ(cluster.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(cluster.node(i).id(), i);
  cluster.shutdown();  // explicit + idempotent with destructor
}

TEST(Cluster, AggregateMetricsSums) {
  cluster::Cluster cluster(fast4());
  cluster.node(0).metrics().counter("x")->add(1);
  cluster.node(3).metrics().counter("x")->add(2);
  EXPECT_EQ(cluster.total_counter("x"), 3u);
  Metrics total;
  cluster.aggregate_metrics(&total);
  EXPECT_EQ(total.value("x"), 3u);
}

// --- MiniDfs ------------------------------------------------------------------

class MiniDfsTest : public ::testing::Test {
 protected:
  MiniDfsTest() : cluster_(fast4()) {
    dfs::DfsConfig config;
    config.block_size = 1024;
    config.replication = 2;
    dfs_ = std::make_unique<dfs::MiniDfs>(cluster_, config);
  }

  cluster::Cluster cluster_;
  std::unique_ptr<dfs::MiniDfs> dfs_;
};

TEST_F(MiniDfsTest, WriteReadRoundTrip) {
  const std::string data(5000, 'a');
  ASSERT_TRUE(dfs_->write(0, "/f", data).ok());
  EXPECT_EQ(dfs_->read(0, "/f").value(), data);
  EXPECT_EQ(dfs_->read(3, "/f").value(), data);  // remote reads too
}

TEST_F(MiniDfsTest, BlocksAndReplication) {
  ASSERT_TRUE(dfs_->write(1, "/f", std::string(2500, 'b')).ok());
  auto info = dfs_->stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 2500u);
  ASSERT_EQ(info.value().blocks.size(), 3u);  // 1024+1024+452
  for (const auto& block : info.value().blocks) {
    EXPECT_EQ(block.replicas.size(), 2u);
    EXPECT_EQ(block.replicas[0], 1u);  // writer-local first replica
    EXPECT_NE(block.replicas[1], 1u);
  }
  EXPECT_EQ(info.value().blocks[2].length, 2500u - 2048u);
}

TEST_F(MiniDfsTest, ReadRange) {
  std::string data;
  for (int i = 0; i < 3000; ++i) data.push_back(static_cast<char>('a' + i % 26));
  ASSERT_TRUE(dfs_->write(0, "/f", data).ok());
  EXPECT_EQ(dfs_->read_range(2, "/f", 1000, 500).value(), data.substr(1000, 500));
  EXPECT_EQ(dfs_->read_range(2, "/f", 0, 10).value(), data.substr(0, 10));
  EXPECT_EQ(dfs_->read_range(2, "/f", 2990, 100).value(), data.substr(2990));
  EXPECT_EQ(dfs_->read_range(2, "/f", 5000, 10).value(), "");
}

TEST_F(MiniDfsTest, OverwriteRemoveListTotalSize) {
  ASSERT_TRUE(dfs_->write(0, "/dir/a", "1111").ok());
  ASSERT_TRUE(dfs_->write(0, "/dir/b", "22").ok());
  ASSERT_TRUE(dfs_->write(0, "/dir/a", "9").ok());  // overwrite
  EXPECT_EQ(dfs_->read(0, "/dir/a").value(), "9");
  EXPECT_EQ(dfs_->list("/dir/").size(), 2u);
  EXPECT_EQ(dfs_->total_size("/dir/"), 3u);
  EXPECT_TRUE(dfs_->remove("/dir/a").ok());
  EXPECT_FALSE(dfs_->exists("/dir/a"));
  EXPECT_EQ(dfs_->read(0, "/dir/a").status().code(), StatusCode::kNotFound);
}

TEST_F(MiniDfsTest, EmptyFile) {
  ASSERT_TRUE(dfs_->write(0, "/empty", "").ok());
  EXPECT_EQ(dfs_->read(1, "/empty").value(), "");
  EXPECT_TRUE(dfs_->exists("/empty"));
}

TEST_F(MiniDfsTest, BlockDataLandsOnReplicaStores) {
  ASSERT_TRUE(dfs_->write(0, "/f", std::string(100, 'x')).ok());
  auto info = dfs_->stat("/f").value();
  const auto& block = info.blocks[0];
  for (auto replica : block.replicas) {
    EXPECT_TRUE(cluster_.node(replica).store().exists(
        "dfs/blk_" + std::to_string(block.block_id)));
  }
}

// --- KvStore --------------------------------------------------------------------

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() : cluster_(fast4()), kv_(cluster_) {}

  cluster::Cluster cluster_;
  kv::KvStore kv_;
};

TEST_F(KvStoreTest, PutGetLocalAndRemote) {
  const std::string key = "somekey";
  const kv::NodeId owner = kv_.owner_of(key);
  kv_.put(owner, key, "local-write");  // local path
  EXPECT_EQ(kv_.get((owner + 1) % 4, key).value(), "local-write");  // remote read
  kv_.put((owner + 2) % 4, key, "remote-write");  // remote write
  EXPECT_EQ(kv_.get(owner, key).value(), "remote-write");
}

TEST_F(KvStoreTest, MissingKeyIsError) {
  EXPECT_FALSE(kv_.get(0, "never-written").ok());
}

TEST_F(KvStoreTest, AppendBuildsLists) {
  kv_.append(0, "list", "a");
  kv_.append(1, "list", "bb");
  kv_.append(2, "list", "");
  const auto list = kv_.get_list(3, "list");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[1], "bb");
  EXPECT_EQ(list[2], "");
}

TEST_F(KvStoreTest, ListCodecRoundTrip) {
  std::string packed;
  packed += kv::encode_list_element("x");
  packed += kv::encode_list_element(std::string("\0\xff", 2));
  const auto decoded = kv::decode_list(packed);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1], std::string("\0\xff", 2));
}

TEST_F(KvStoreTest, ClearNamespaceOnlyTouchesPrefix) {
  kv_.put(0, "app1/a", "1");
  kv_.put(0, "app1/b", "2");
  kv_.put(0, "app2/a", "3");
  kv_.clear_namespace("app1/");
  EXPECT_FALSE(kv_.get(0, "app1/a").ok());
  EXPECT_FALSE(kv_.get(0, "app1/b").ok());
  EXPECT_EQ(kv_.get(0, "app2/a").value(), "3");
}

TEST_F(KvStoreTest, LocalStoreForEachPrefixAndSizes) {
  kv::LocalStore store(4);
  store.put("p/x", "1");
  store.put("p/y", "22");
  store.put("q/z", "3");
  int seen = 0;
  store.for_each_prefix("p/", [&](const std::string& k, const std::string& v) {
    ++seen;
    EXPECT_TRUE(k == "p/x" || k == "p/y");
    (void)v;
  });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.bytes(), 4u + 5u + 4u);
  EXPECT_TRUE(store.contains("q/z"));
  EXPECT_FALSE(store.contains("q/zz"));
}

TEST_F(KvStoreTest, ConcurrentAppendsAllLand) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        kv_.append(t, "counter-list", std::to_string(t * 100 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv_.get_list(0, "counter-list").size(), 400u);
}

TEST_F(KvStoreTest, OwnerConsistentWithPartitionFn) {
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(kv_.owner_of(key), partition_of(key, cluster_.size()));
  }
}
