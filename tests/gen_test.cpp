// Property tests for the workload generators: determinism, format validity,
// target sizes, and the distributions the benchmarks rely on.
#include <gtest/gtest.h>

#include <charconv>
#include <set>

#include "apps/histograms.h"
#include "apps/movie_vectors.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::gen;

namespace {

std::vector<std::string_view> lines_of(const std::string& text) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos) out.push_back(std::string_view(text).substr(pos, eol - pos));
    pos = eol + 1;
  }
  return out;
}

}  // namespace

TEST(Generators, DeterministicPerSeedAndShard) {
  TextSpec spec;
  spec.total_bytes = 64 * 1024;
  EXPECT_EQ(text_shard(spec, 0, 4), text_shard(spec, 0, 4));
  EXPECT_NE(text_shard(spec, 0, 4), text_shard(spec, 1, 4));
  TextSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(text_shard(spec, 0, 4), text_shard(other, 0, 4));
}

TEST(Generators, ShardSizesNearTarget) {
  TextSpec spec;
  spec.total_bytes = 256 * 1024;
  uint64_t total = 0;
  for (uint32_t i = 0; i < 4; ++i) total += text_shard(spec, i, 4).size();
  EXPECT_GT(total, spec.total_bytes * 9 / 10);
  EXPECT_LT(total, spec.total_bytes * 11 / 10 + 16 * 1024);
}

TEST(Generators, TextWordsAreZipfSkewed) {
  TextSpec spec;
  spec.total_bytes = 256 * 1024;
  spec.vocab = 1000;
  const std::string shard = text_shard(spec, 0, 1);
  std::map<std::string, int> counts;
  for (auto line : lines_of(shard)) {
    size_t pos = 0;
    while (pos < line.size()) {
      size_t sp = line.find(' ', pos);
      if (sp == std::string_view::npos) sp = line.size();
      ++counts[std::string(line.substr(pos, sp - pos))];
      pos = sp + 1;
    }
  }
  // w0 should dominate any deep-tail word by a wide margin.
  EXPECT_GT(counts["w0"], 50 * std::max(1, counts["w900"]));
}

TEST(Generators, MoviesLinesParseAndRatingsSkewToFour) {
  MoviesSpec spec;
  spec.total_bytes = 128 * 1024;
  const std::string shard = movies_shard(spec, 0, 1);
  uint64_t hist[6] = {0};
  for (auto line : lines_of(shard)) {
    apps::histograms::MovieLine movie;
    ASSERT_TRUE(apps::histograms::parse_movie_line(line, &movie)) << line;
    for (uint32_t r : movie.ratings) {
      ASSERT_GE(r, 1u);
      ASSERT_LE(r, 5u);
      ++hist[r];
    }
  }
  // Default distribution peaks at rating 4 - the HistogramRatings hot key.
  for (int r = 1; r <= 5; ++r) {
    if (r != 4) EXPECT_GT(hist[4], hist[r]) << "rating " << r;
  }
}

TEST(Generators, MovieIdsUniqueAcrossShards) {
  MoviesSpec spec;
  spec.total_bytes = 64 * 1024;
  std::set<std::string> ids;
  for (uint32_t shard = 0; shard < 3; ++shard) {
    const std::string text = movies_shard(spec, shard, 3);
    for (auto line : lines_of(text)) {
      const auto id = std::string(line.substr(0, line.find(':')));
      EXPECT_TRUE(ids.insert(id).second) << "duplicate movie id " << id;
    }
  }
}

TEST(Generators, MovieVectorsParseWithAscendingUsers) {
  MoviesSpec spec;
  spec.total_bytes = 64 * 1024;
  const std::string shard = movie_vectors_shard(spec, 0, 2);
  for (auto line : lines_of(shard)) {
    apps::movies::MovieVector v;
    ASSERT_TRUE(apps::movies::parse_movie_vector(line, &v)) << line;
    for (size_t i = 1; i < v.coords.size(); ++i) {
      EXPECT_GT(v.coords[i].first, v.coords[i - 1].first) << line;
    }
  }
}

TEST(Generators, DocsHaveLabelAndWords) {
  DocsSpec spec;
  spec.total_bytes = 64 * 1024;
  spec.num_labels = 7;
  const std::string shard = docs_shard(spec, 0, 1);
  for (auto line : lines_of(shard)) {
    const size_t tab = line.find('\t');
    ASSERT_NE(tab, std::string_view::npos);
    EXPECT_EQ(line.substr(0, 5), "label");
    uint32_t label = 99;
    std::from_chars(line.data() + 5, line.data() + tab, label);
    EXPECT_LT(label, 7u);
    EXPECT_FALSE(apps::tokenize(line.substr(tab + 1)).empty());
  }
}

TEST(Generators, WebGraphEdgesInRangeAndSkewedInDegree) {
  WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 20000;
  std::map<uint64_t, int> indegree;
  uint64_t edges = 0;
  for (uint32_t shard = 0; shard < 2; ++shard) {
    const std::string text = web_graph_shard(spec, shard, 2);
    for (auto line : lines_of(text)) {
      const size_t sp = line.find(' ');
      ASSERT_NE(sp, std::string_view::npos);
      uint64_t src = 999999, dst = 999999;
      std::from_chars(line.data(), line.data() + sp, src);
      std::from_chars(line.data() + sp + 1, line.data() + line.size(), dst);
      ASSERT_LT(src, spec.num_pages);
      ASSERT_LT(dst, spec.num_pages);
      EXPECT_NE(src, dst);
      ++indegree[dst];
      ++edges;
    }
  }
  EXPECT_EQ(edges, spec.num_edges);
  // Page 0 (zipf rank 0) attracts far more links than a mid-rank page.
  EXPECT_GT(indegree[0], 10 * std::max(1, indegree[200]));
}

TEST(Generators, RmatEdgesNormalizedLoHi) {
  RmatSpec spec;
  spec.scale = 8;
  spec.num_edges = 5000;
  uint64_t edges = 0;
  const std::string shard = rmat_shard(spec, 0, 1);
  for (auto line : lines_of(shard)) {
    const size_t sp = line.find(' ');
    uint64_t a = 0, b = 0;
    std::from_chars(line.data(), line.data() + sp, a);
    std::from_chars(line.data() + sp + 1, line.data() + line.size(), b);
    EXPECT_LT(a, b);  // canonical lo < hi, no self loops
    EXPECT_LT(b, 1ull << spec.scale);
    ++edges;
  }
  EXPECT_EQ(edges, spec.num_edges);
}

TEST(Generators, RmatSplitsEdgeCountAcrossShards) {
  RmatSpec spec;
  spec.scale = 8;
  spec.num_edges = 1001;  // not divisible
  uint64_t total = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    total += lines_of(rmat_shard(spec, shard, 4)).size();
  }
  EXPECT_EQ(total, spec.num_edges);
}
