// Differential tests for the relational query layer (DESIGN.md §13).
//
// The in-memory reference evaluator is the spec; the engine path (stage →
// lower → flowlet DAG → collect) must produce byte-identical results after
// canonicalization (sorted encoded rows). Every generated query draws from
// value domains where aggregation is order-independent (see testgen.h), so
// any divergence is a real lowering or operator bug, not float noise.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/common.h"
#include "query/planner.h"
#include "query/reference.h"
#include "query/testgen.h"
#include "service/job_service.h"

namespace {

using namespace hamr;
using namespace hamr::query;

constexpr uint64_t kSeedsPerFamily = 8;

Value V(int64_t v) { return Value::of(v); }
Value V(double v) { return Value::of(v); }
Value V(const char* v) { return Value::of(std::string(v)); }

// One shared 4-node engine for the whole suite; each query uses a distinct
// tag so staged inputs and sink files never collide.
class QueryDifferential : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = new apps::BenchEnv(apps::BenchEnv::fast(4));
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }

  // Runs `plan` on both paths and asserts byte-identical canonical rows.
  static void expect_differential_match(const Plan& plan,
                                        const Catalog& catalog,
                                        const std::string& tag) {
    const Schema schema = output_schema(plan, catalog);
    const auto ref = canonical(schema, reference_eval(plan, catalog));
    const auto got =
        canonical(schema, run_on_engine(*env_->engine, plan, catalog, tag));
    ASSERT_EQ(got.size(), ref.size()) << tag;
    EXPECT_EQ(got, ref) << tag;
  }

  static void run_family(Family family) {
    for (uint64_t seed = 0; seed < kSeedsPerFamily; ++seed) {
      GeneratedQuery q = generate_query(family, seed);
      const std::string tag =
          std::string(family_name(family)) + "_" + std::to_string(seed);
      SCOPED_TRACE(tag);
      expect_differential_match(*q.plan, q.catalog, tag);
    }
  }

  static apps::BenchEnv* env_;
};

apps::BenchEnv* QueryDifferential::env_ = nullptr;

TEST_F(QueryDifferential, ScanFilterMatchesReference) {
  run_family(Family::kScanFilter);
}

TEST_F(QueryDifferential, ProjectMatchesReference) {
  run_family(Family::kProject);
}

TEST_F(QueryDifferential, JoinMatchesReference) { run_family(Family::kJoin); }

TEST_F(QueryDifferential, GroupByMatchesReference) {
  run_family(Family::kGroupBy);
}

TEST_F(QueryDifferential, JoinGroupByMatchesReference) {
  run_family(Family::kJoinGroupBy);
}

// ---- Targeted edge cases ---------------------------------------------------

Table three_col_table() {
  Table t;
  t.schema.cols = {{"k", ColType::kI64}, {"v", ColType::kF64},
                   {"s", ColType::kStr}};
  return t;
}

TEST_F(QueryDifferential, EmptyInputFlowsThroughEveryOperator) {
  Catalog catalog;
  catalog.tables["t1"] = three_col_table();  // zero rows
  catalog.tables["t2"] = three_col_table();

  PlanPtr plan = group_by(
      hash_join(filter(scan("t1"), Expr::cmp(0, CmpOp::kGt, V(int64_t{0}))),
                scan("t2"), 0, 0),
      {0}, {{AggKind::kCount, 0}, {AggKind::kSum, 1}});
  expect_differential_match(*plan, catalog, "edge_empty_input");
}

TEST_F(QueryDifferential, AllRowsFilteredOut) {
  Catalog catalog;
  Table t = three_col_table();
  for (int64_t i = 0; i < 64; ++i) {
    t.rows.push_back({V(i), V(static_cast<double>(i) / 16.0), V("x")});
  }
  catalog.tables["t1"] = std::move(t);

  // No row satisfies k < -1, so the group-by above sees nothing.
  PlanPtr plan =
      group_by(filter(scan("t1"), Expr::cmp(0, CmpOp::kLt, V(int64_t{-1}))),
               {2}, {{AggKind::kCount, 0}});
  const Schema schema = output_schema(*plan, catalog);
  EXPECT_TRUE(reference_eval(*plan, catalog).empty());
  expect_differential_match(*plan, catalog, "edge_all_filtered");
}

TEST_F(QueryDifferential, JoinWithNoMatches) {
  Catalog catalog;
  Table left = three_col_table();
  Table right = three_col_table();
  for (int64_t i = 0; i < 32; ++i) {
    left.rows.push_back({V(i), V(0.5), V("l")});
    right.rows.push_back({V(i + 1000), V(1.5), V("r")});  // disjoint keys
  }
  catalog.tables["t1"] = std::move(left);
  catalog.tables["t2"] = std::move(right);

  PlanPtr plan = hash_join(scan("t1"), scan("t2"), 0, 0);
  EXPECT_TRUE(reference_eval(*plan, catalog).empty());
  expect_differential_match(*plan, catalog, "edge_join_no_match");
}

TEST_F(QueryDifferential, MultiColumnJoinKeysComposeViaEncodeKey) {
  // Join on (i64, str) key tuples: rows must match only when BOTH columns
  // agree. Shared c0 values with differing c2 strings probe the composed
  // encode_key - a join that compared only the first column would produce
  // extra rows, a concatenation without self-describing framing could
  // confuse ("ab","c") with ("a","bc").
  Catalog catalog;
  Table left = three_col_table();
  Table right = three_col_table();
  for (int64_t i = 0; i < 48; ++i) {
    left.rows.push_back(
        {V(i % 8), V(static_cast<double>(i) / 16.0), V(i % 2 ? "ab" : "a")});
    right.rows.push_back(
        {V(i % 8), V(static_cast<double>(i) / 8.0), V(i % 3 ? "b" : "ab")});
  }
  catalog.tables["t1"] = std::move(left);
  catalog.tables["t2"] = std::move(right);

  PlanPtr plan = hash_join(scan("t1"), scan("t2"),
                           std::vector<uint32_t>{0, 2},
                           std::vector<uint32_t>{0, 2});
  const auto rows = reference_eval(*plan, catalog);
  ASSERT_FALSE(rows.empty());  // ("ab" x "ab") pairs exist by construction
  expect_differential_match(*plan, catalog, "edge_multicol_join");
}

TEST_F(QueryDifferential, SingleHotGroupByKey) {
  // Every row lands in one group: the whole fold funnels through a single
  // FlatAccTable slot on one node, and the sender-side combiner has maximal
  // opportunity to pre-merge - any non-commutative state bug shows up here.
  Catalog catalog;
  Table t = three_col_table();
  for (int64_t i = 0; i < 500; ++i) {
    t.rows.push_back(
        {V(int64_t{7}), V(static_cast<double>(i % 40) / 16.0), V("hot")});
  }
  catalog.tables["t1"] = std::move(t);

  PlanPtr plan = group_by(scan("t1"), {0},
                          {{AggKind::kCount, 0},
                           {AggKind::kSum, 1},
                           {AggKind::kMin, 1},
                           {AggKind::kMax, 2}});
  ASSERT_EQ(reference_eval(*plan, catalog).size(), 1u);
  expect_differential_match(*plan, catalog, "edge_hot_key");
}

// ---- Service path ----------------------------------------------------------

// The same differential contract holds when the query is submitted through
// the multi-tenant JobService instead of run directly on an Engine — and two
// concurrent queries on separate lanes must not cross wires.
TEST(QueryService, ConcurrentQueriesMatchReferenceThroughJobService) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(4, 2));
  service::ServiceConfig svc_cfg;
  svc_cfg.lanes = 2;
  svc_cfg.engine = engine::EngineConfig::fast();
  service::JobService jobs(cluster, svc_cfg);

  GeneratedQuery q1 = generate_query(Family::kJoinGroupBy, 101);
  GeneratedQuery q2 = generate_query(Family::kGroupBy, 202);

  SubmittedQuery s1 = submit_query(jobs, cluster, *q1.plan, q1.catalog,
                                   service::JobSpec{}, "svc_q1");
  SubmittedQuery s2 = submit_query(jobs, cluster, *q2.plan, q2.catalog,
                                   service::JobSpec{}, "svc_q2");

  ASSERT_EQ(s1.ticket->wait(), service::JobStatus::kDone);
  ASSERT_EQ(s2.ticket->wait(), service::JobStatus::kDone);

  const auto got1 = canonical(
      s1.out_schema, decode_payload(s1.out_schema, s1.ticket->payload()));
  const auto got2 = canonical(
      s2.out_schema, decode_payload(s2.out_schema, s2.ticket->payload()));
  EXPECT_EQ(got1, canonical(s1.out_schema, reference_eval(*q1.plan, q1.catalog)));
  EXPECT_EQ(got2, canonical(s2.out_schema, reference_eval(*q2.plan, q2.catalog)));
}

// ---- Plan validation -------------------------------------------------------

TEST(QueryValidation, RejectsMalformedPlans) {
  Catalog catalog;
  Table t;
  t.schema.cols = {{"k", ColType::kI64}, {"s", ColType::kStr}};
  t.rows.push_back({Value::of(int64_t{1}), Value::of(std::string("a"))});
  catalog.tables["t1"] = t;
  catalog.tables["t2"] = t;

  // Unknown table.
  EXPECT_THROW(reference_eval(*scan("missing"), catalog),
               std::invalid_argument);
  // Predicate column out of range.
  EXPECT_THROW(
      reference_eval(
          *filter(scan("t1"), Expr::cmp(9, CmpOp::kEq, Value::of(int64_t{0}))),
          catalog),
      std::invalid_argument);
  // Empty projection.
  EXPECT_THROW(reference_eval(*project(scan("t1"), {}), catalog),
               std::invalid_argument);
  // Join keys of different types (i64 vs str).
  EXPECT_THROW(reference_eval(*hash_join(scan("t1"), scan("t2"), 0, 1),
                              catalog),
               std::invalid_argument);
  // Mismatched key-list lengths.
  EXPECT_THROW(reference_eval(*hash_join(scan("t1"), scan("t2"),
                                         std::vector<uint32_t>{0, 1},
                                         std::vector<uint32_t>{0}),
                              catalog),
               std::invalid_argument);
  // Empty key lists.
  EXPECT_THROW(reference_eval(*hash_join(scan("t1"), scan("t2"),
                                         std::vector<uint32_t>{},
                                         std::vector<uint32_t>{}),
                              catalog),
               std::invalid_argument);
  // Second key pair type-mismatched (first pair fine).
  EXPECT_THROW(reference_eval(*hash_join(scan("t1"), scan("t2"),
                                         std::vector<uint32_t>{0, 0},
                                         std::vector<uint32_t>{0, 1}),
                              catalog),
               std::invalid_argument);
  // Sum over a string column.
  EXPECT_THROW(
      reference_eval(*group_by(scan("t1"), {0}, {{AggKind::kSum, 1}}),
                     catalog),
      std::invalid_argument);
  // Group-by with no keys.
  EXPECT_THROW(
      reference_eval(*group_by(scan("t1"), {}, {{AggKind::kCount, 0}}),
                     catalog),
      std::invalid_argument);
}

}  // namespace
