// Unit tests for the observability layer: TraceRecorder (ring buffers,
// wraparound, multi-thread drain, Chrome trace JSON), MetricsSnapshot
// (capture / delta / merge / JSON), and the deterministic EventLog.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "obs/event_log.h"
#include "obs/metrics_snapshot.h"
#include "obs/trace.h"

using namespace hamr;
using namespace hamr::obs;

namespace {

// Minimal recursive-descent JSON validator: enough to prove the emitters
// produce well-formed documents that chrome://tracing / Perfetto can parse,
// without pulling a JSON library into the build.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

// --- TraceRecorder --------------------------------------------------------------

TEST(TraceRecorder, RecordsAndDrainsInOrder) {
  TraceRecorder rec;
  rec.enable();
  const TimePoint t0 = now();
  rec.record_span("task.map", "engine.task", /*node=*/2, /*flowlet=*/7,
                  /*aux=*/11, t0, t0 + micros(250));
  rec.record_instant("shuffle.send", "engine.shuffle", 2, 7, 42);

  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "task.map");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_EQ(events[0].flowlet, 7);
  EXPECT_EQ(events[0].aux, 11);
  EXPECT_EQ(events[0].dur_us, 250u);
  EXPECT_STREQ(events[1].name, "shuffle.send");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].dur_us, 0u);
  EXPECT_GE(events[1].ts_us, events[0].ts_us);

  EXPECT_TRUE(rec.drain().empty());  // a drain consumes
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec;
  ASSERT_FALSE(rec.enabled());
  rec.record_instant("x", "y", 0);
  EXPECT_TRUE(rec.drain().empty());
  EXPECT_EQ(rec.ring_count(), 0u);  // never even registered a ring
}

TEST(TraceRecorder, RingWraparoundKeepsNewestAndCountsDropped) {
  TraceRecorder rec(/*ring_capacity=*/8);
  rec.enable();
  for (int i = 0; i < 20; ++i) rec.record_instant("e", "c", 0, -1, i);

  const auto events = rec.drain();
  ASSERT_EQ(events.size(), 8u);  // ring keeps the newest `capacity` events
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].aux, static_cast<int64_t>(12 + i));
  }
  EXPECT_EQ(rec.dropped(), 12u);
}

TEST(TraceRecorder, MultiThreadRingsDrainAfterJoin) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  TraceRecorder rec;
  rec.enable();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record_instant("e", "c", static_cast<uint32_t>(t), -1, i);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(rec.ring_count(), static_cast<size_t>(kThreads));
  const auto events = rec.drain();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.dropped(), 0u);

  // Per-thread order is preserved: within one tid, aux counts 0..99.
  std::map<uint32_t, int64_t> next_aux;
  std::set<uint32_t> tids;
  for (const TraceEvent& ev : events) {
    tids.insert(ev.tid);
    EXPECT_EQ(ev.aux, next_aux[ev.tid]++) << "tid " << ev.tid;
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceRecorder, EmitsValidChromeTraceJson) {
  TraceRecorder rec;
  rec.enable();
  const TimePoint t0 = now();
  rec.record_span("task.map", "engine.task", 1, 3, 5, t0, t0 + micros(10));
  rec.record_instant("bin.enqueue", "engine.bin", 1, 3, 9);
  const std::string json = rec.drain_to_json();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"task.map\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(TraceRecorder, EmptyDrainStillValidJson) {
  TraceRecorder rec;
  const std::string json = rec.drain_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// --- MetricsSnapshot ------------------------------------------------------------

TEST(MetricsSnapshot, CaptureReadsRegistry) {
  Metrics m;
  m.counter("a.count")->add(5);
  m.gauge("a.level")->set(-3);
  m.histogram("a.lat_us")->observe(100);
  m.histogram("a.lat_us")->observe(200);

  const MetricsSnapshot snap = MetricsSnapshot::capture(m);
  EXPECT_EQ(snap.counter("a.count"), 5u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauge("a.level"), -3);
  ASSERT_NE(snap.histogram("a.lat_us"), nullptr);
  EXPECT_EQ(snap.histogram("a.lat_us")->count, 2u);
  EXPECT_EQ(snap.histogram("a.lat_us")->sum, 300u);
  EXPECT_DOUBLE_EQ(snap.histogram("a.lat_us")->mean(), 150.0);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsSnapshot, DeltaSubtractsCountersKeepsGaugeLevels) {
  Metrics m;
  m.counter("c")->add(10);
  m.gauge("g")->set(7);
  m.histogram("h")->observe(50);
  const MetricsSnapshot before = MetricsSnapshot::capture(m);

  m.counter("c")->add(4);
  m.gauge("g")->set(2);  // level DROPS; the delta keeps the current level
  m.histogram("h")->observe(60);
  m.histogram("h")->observe(70);
  m.counter("new")->inc();  // registered after `before`

  const MetricsSnapshot delta = MetricsSnapshot::capture(m).delta_since(before);
  EXPECT_EQ(delta.counter("c"), 4u);
  EXPECT_EQ(delta.counter("new"), 1u);
  EXPECT_EQ(delta.gauge("g"), 2);
  ASSERT_NE(delta.histogram("h"), nullptr);
  EXPECT_EQ(delta.histogram("h")->count, 2u);
  EXPECT_EQ(delta.histogram("h")->sum, 130u);
}

TEST(MetricsSnapshot, MergeSumsAcrossNodes) {
  Metrics node0, node1;
  node0.counter("c")->add(3);
  node1.counter("c")->add(4);
  node0.gauge("g")->set(10);
  node1.gauge("g")->set(5);
  node0.histogram("h")->observe(1);
  node1.histogram("h")->observe(3);

  MetricsSnapshot merged;
  merged.merge_from(MetricsSnapshot::capture(node0));
  merged.merge_from(MetricsSnapshot::capture(node1));
  EXPECT_EQ(merged.counter("c"), 7u);
  EXPECT_EQ(merged.gauge("g"), 15);
  ASSERT_NE(merged.histogram("h"), nullptr);
  EXPECT_EQ(merged.histogram("h")->count, 2u);
  EXPECT_EQ(merged.histogram("h")->sum, 4u);
}

TEST(MetricsSnapshot, QuantileMirrorsHistogram) {
  Metrics m;
  Histogram* h = m.histogram("h");
  for (uint64_t v : {1u, 2u, 4u, 100u, 5000u, 100000u}) h->observe(v);
  const MetricsSnapshot snap = MetricsSnapshot::capture(m);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->quantile(0.5), h->quantile(0.5));
  EXPECT_EQ(snap.histogram("h")->quantile(0.99), h->quantile(0.99));
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);  // empty => 0
}

TEST(MetricsSnapshot, ToJsonIsWellFormed) {
  Metrics m;
  m.counter("engine.records")->add(42);
  m.counter("with\"quote\\and\tcontrol")->inc();  // exercises escaping
  m.gauge("net.ingress_queued_bytes")->set(-1);
  m.histogram("engine.task_us")->observe(123);

  const std::string json = MetricsSnapshot::capture(m).to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.records\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  EXPECT_TRUE(JsonChecker(MetricsSnapshot{}.to_json()).valid());
}

// --- EventLog -------------------------------------------------------------------

TEST(EventLog, AssignsGlobalAndPerStreamSequences) {
  EventLog log;
  log.record(0, EventKind::kBinEnqueued, 1, 10);
  log.record(1, EventKind::kBinEnqueued, 1, 20);
  log.record(0, EventKind::kBinProcessed, 1, 10);
  log.record(0, EventKind::kFlowletComplete, 2);

  const auto all = log.events();
  ASSERT_EQ(all.size(), 4u);
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].seq, i);

  // stream_seq counts within (node, flowlet): (0,1) got 0,1; (1,1) and
  // (0,2) each start at 0.
  const auto s01 = log.stream(0, 1);
  ASSERT_EQ(s01.size(), 2u);
  EXPECT_EQ(s01[0].stream_seq, 0u);
  EXPECT_EQ(s01[1].stream_seq, 1u);
  EXPECT_EQ(s01[0].kind, EventKind::kBinEnqueued);
  EXPECT_EQ(s01[1].kind, EventKind::kBinProcessed);
  EXPECT_EQ(log.stream(1, 1).at(0).stream_seq, 0u);
  EXPECT_EQ(log.stream(0, 2).at(0).stream_seq, 0u);
}

TEST(EventLog, CountsAndClear) {
  EventLog log;
  log.record(0, EventKind::kStallBegin, 3, 100);
  log.record(0, EventKind::kStallEnd, 3, 100);
  log.record(1, EventKind::kStallBegin, 3, 200);

  EXPECT_EQ(log.count(EventKind::kStallBegin), 2u);
  EXPECT_EQ(log.count(0, 3, EventKind::kStallBegin), 1u);
  EXPECT_EQ(log.count(1, 3, EventKind::kStallBegin), 1u);
  EXPECT_EQ(log.count(EventKind::kSpill), 0u);
  EXPECT_EQ(log.size(), 3u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  // stream_seq restarts after clear.
  log.record(0, EventKind::kStallBegin, 3, 100);
  EXPECT_EQ(log.events().at(0).stream_seq, 0u);
}

TEST(EventLog, KindNamesAreStable) {
  EXPECT_STREQ(to_string(EventKind::kBinEnqueued), "bin_enqueued");
  EXPECT_STREQ(to_string(EventKind::kFlowletComplete), "flowlet_complete");
  EXPECT_STREQ(to_string(EventKind::kStallBegin), "stall_begin");
}
