// Unit tests for the application-level building blocks: parsers, codecs,
// similarity math, and small helpers shared by the benchmarks.
#include <gtest/gtest.h>

#include "apps/common.h"
#include "apps/counting.h"
#include "apps/histograms.h"
#include "apps/movie_vectors.h"
#include "apps/naive_bayes.h"

using namespace hamr;
using namespace hamr::apps;

// --- tokenize / counts -----------------------------------------------------

TEST(Tokenize, SplitsOnSpacesAndTabs) {
  const auto tokens = tokenize("  a\tbb  ccc \t");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "ccc");
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize(" \t ").empty());
}

TEST(Counting, ParseCount) {
  EXPECT_EQ(parse_count("0"), 0u);
  EXPECT_EQ(parse_count("12345"), 12345u);
  EXPECT_EQ(parse_count(""), 0u);
  EXPECT_EQ(parse_count("junk"), 0u);
}

TEST(Common, ToCountsParsesDecimal) {
  std::map<std::string, std::string> kv{{"a", "3"}, {"b", "0"}};
  const auto counts = to_counts(kv);
  EXPECT_EQ(counts.at("a"), 3u);
  EXPECT_EQ(counts.at("b"), 0u);
}

// --- movie histogram parsing --------------------------------------------------

TEST(MovieLine, ParsesRatings) {
  histograms::MovieLine movie;
  ASSERT_TRUE(histograms::parse_movie_line("m42:1,5,3", &movie));
  EXPECT_EQ(movie.id, "m42");
  EXPECT_EQ(movie.ratings, (std::vector<uint32_t>{1, 5, 3}));
}

TEST(MovieLine, RejectsMalformed) {
  histograms::MovieLine movie;
  EXPECT_FALSE(histograms::parse_movie_line("", &movie));
  EXPECT_FALSE(histograms::parse_movie_line("no-colon", &movie));
  EXPECT_FALSE(histograms::parse_movie_line(":1,2", &movie));
  EXPECT_FALSE(histograms::parse_movie_line("m1:", &movie));
}

TEST(MovieBucket, RoundsToHalfSteps) {
  EXPECT_EQ(histograms::movie_bucket({3, 3, 3}), "3.0");
  EXPECT_EQ(histograms::movie_bucket({3, 4}), "3.5");
  EXPECT_EQ(histograms::movie_bucket({5}), "5.0");
  EXPECT_EQ(histograms::movie_bucket({1}), "1.0");
  EXPECT_EQ(histograms::movie_bucket({1, 2}), "1.5");
  // avg 3.2 -> 3.0 ; avg 3.3 -> 3.5
  EXPECT_EQ(histograms::movie_bucket({3, 3, 3, 3, 4}), "3.0");
  EXPECT_EQ(histograms::movie_bucket({3, 3, 4, 3, 4, 3}), "3.5");
}

// --- movie vectors / similarity -------------------------------------------------

TEST(MovieVector, ParsesUserRatings) {
  movies::MovieVector v;
  ASSERT_TRUE(movies::parse_movie_vector("m7:u3_5,u10_1", &v));
  EXPECT_EQ(v.id, "m7");
  ASSERT_EQ(v.coords.size(), 2u);
  EXPECT_EQ(v.coords[0], (std::pair<uint32_t, double>{3, 5.0}));
  EXPECT_EQ(v.coords[1], (std::pair<uint32_t, double>{10, 1.0}));
}

TEST(MovieVector, CosineIdenticalIsOne) {
  movies::MovieVector a, b;
  ASSERT_TRUE(movies::parse_movie_vector("m1:u1_2,u5_4", &a));
  ASSERT_TRUE(movies::parse_movie_vector("m2:u1_2,u5_4", &b));
  EXPECT_NEAR(movies::cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(MovieVector, CosineDisjointIsZero) {
  movies::MovieVector a, b;
  ASSERT_TRUE(movies::parse_movie_vector("m1:u1_3", &a));
  ASSERT_TRUE(movies::parse_movie_vector("m2:u2_3", &b));
  EXPECT_EQ(movies::cosine_similarity(a, b), 0.0);
}

TEST(MovieVector, CosineKnownValue) {
  movies::MovieVector a, b;
  // a = (3, 4) on users {1,2}; b = (4, 3): cos = 24/25.
  ASSERT_TRUE(movies::parse_movie_vector("m1:u1_3,u2_4", &a));
  ASSERT_TRUE(movies::parse_movie_vector("m2:u1_4,u2_3", &b));
  EXPECT_NEAR(movies::cosine_similarity(a, b), 24.0 / 25.0, 1e-12);
}

TEST(MovieVector, AssignClusterPicksMostSimilarWithLowIndexTies) {
  movies::MovieVector m;
  ASSERT_TRUE(movies::parse_movie_vector("m0:u1_5", &m));
  const std::vector<std::string> lines = {"c0:u2_5", "c1:u1_5", "c2:u1_5"};
  const auto centroids = movies::parse_centroids(lines);
  double sim = 0;
  EXPECT_EQ(movies::assign_cluster(m, centroids, &sim), 1u);  // tie c1/c2 -> c1
  EXPECT_NEAR(sim, 1.0, 1e-12);
}

TEST(MovieVector, InitialCentroidLines) {
  const std::string shard = "m0:u1_1\nm1:u2_2\nm2:u3_3\n";
  const auto lines = movies::initial_centroid_lines(shard, 2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "m0:u1_1");
  EXPECT_EQ(lines[1], "m1:u2_2");
  EXPECT_EQ(movies::initial_centroid_lines(shard, 10).size(), 3u);  // clamped
}

// --- naive bayes vector codec -----------------------------------------------------

TEST(NaiveBayesVector, CodecRoundTrip) {
  std::map<std::string, uint64_t> vec{{"w1", 3}, {"w10", 1}, {"w2", 7}};
  const std::string text = naive_bayes::encode_vector(vec);
  EXPECT_EQ(naive_bayes::parse_vector(text), vec);
}

TEST(NaiveBayesVector, EncodeSortedByFeature) {
  std::map<std::string, uint64_t> vec{{"b", 2}, {"a", 1}};
  EXPECT_EQ(naive_bayes::encode_vector(vec), "a:1 b:2");
  EXPECT_TRUE(naive_bayes::encode_vector({}).empty());
}

TEST(NaiveBayesVector, ParseIgnoresMalformedTokens) {
  const auto vec = naive_bayes::parse_vector("a:1 nocolon b:2");
  EXPECT_EQ(vec.size(), 2u);
  EXPECT_EQ(vec.at("b"), 2u);
}

// --- staging helpers ---------------------------------------------------------------

TEST(Staging, SplitsAreLineAlignedAndCoverEverything) {
  apps::BenchEnv env = apps::BenchEnv::fast(3);
  std::vector<std::string> shards;
  for (int s = 0; s < 3; ++s) {
    std::string shard;
    for (int i = 0; i < 200; ++i) {
      shard += "shard" + std::to_string(s) + "_line" + std::to_string(i) + "\n";
    }
    shards.push_back(shard);
  }
  const auto staged = apps::stage_input(env, "staging_test", shards, 512);
  EXPECT_GT(staged.splits.size(), 6u);

  uint64_t covered = 0;
  for (const auto& split : staged.splits) {
    covered += split.length;
    // Every split starts at a line boundary of its node's local file.
    auto head = env.cluster->node(split.preferred_node)
                    .store()
                    .read_range(split.path, split.offset, 6);
    EXPECT_EQ(head.value().substr(0, 5), "shard") << split.offset;
    if (split.offset > 0) {
      auto before = env.cluster->node(split.preferred_node)
                        .store()
                        .read_range(split.path, split.offset - 1, 1);
      EXPECT_EQ(before.value(), "\n");
    }
  }
  EXPECT_EQ(covered, staged.total_bytes);
  EXPECT_EQ(env.dfs->total_size(staged.dfs_path), staged.total_bytes);
}

TEST(Staging, CollectLocalKvMergesNodes) {
  apps::BenchEnv env = apps::BenchEnv::fast(2);
  env.cluster->node(0).store().write_file("merge/a", "x\t1\ny\t2\n");
  env.cluster->node(1).store().write_file("merge/b", "z\t3\nnotab\n");
  const auto kv = apps::collect_local_kv(*env.cluster, "merge/");
  EXPECT_EQ(kv.size(), 3u);
  EXPECT_EQ(kv.at("z"), "3");
}
