// Streaming subsystem tests: window math and key codecs, source determinism,
// event-time windowing end to end on the engine (bounded replay as a batch
// job), EventLog ordering invariants for window open / watermark advance /
// window emit (sleep-free, hold in every legal schedule), and the
// StreamService lifecycle (start / poll / drain / stop) including the RPC
// drain verb and source backpressure.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "engine/engine.h"
#include "obs/event_log.h"
#include "service/job_rpc.h"
#include "service/job_service.h"
#include "stream/source.h"
#include "stream/stream.h"
#include "stream/stream_service.h"
#include "stream/window.h"

using namespace hamr;
using namespace hamr::stream;

namespace {

// WordCount-over-windows fold: values are decimal counts.
void count_fold(std::string_view, std::string_view value, std::string& acc) {
  const uint64_t add = std::stoull(std::string(value));
  const uint64_t have = acc.empty() ? 0 : std::stoull(acc);
  acc = std::to_string(have + add);
}

StreamPipeline count_pipeline(GeneratorConfig gen, WindowSpec window,
                              const std::string& out_dir,
                              uint64_t punctuate_every = 256) {
  StreamPipeline p;
  p.source = [gen] { return std::make_unique<GeneratorSource>(gen); };
  p.source_options.window = window;
  p.source_options.events_per_chunk = 128;
  p.source_options.punctuate_every = punctuate_every;
  p.fold = count_fold;
  p.output_dir = out_dir;
  return p;
}

// Parses WindowFileSink output ("key\tvalue\n" per line) into a map. Fails
// the test on a duplicate key: the sink concatenates duplicate emissions
// with ';', which stoull would reject anyway - this catches it by name.
std::map<std::string, std::string> parse_sink(const std::string& bytes) {
  std::map<std::string, std::string> out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      ADD_FAILURE() << "unterminated sink line";
      break;
    }
    const std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      ADD_FAILURE() << "malformed sink line: " << line;
      continue;
    }
    const std::string key = line.substr(0, tab);
    const std::string value = line.substr(tab + 1);
    EXPECT_TRUE(out.emplace(key, value).second) << "duplicate key " << key;
    EXPECT_EQ(value.find(';'), std::string::npos)
        << "duplicate emission for " << key;
  }
  return out;
}

// Reference: replay the generator's pure event function through the same
// window assignment, multiplied across `nodes` identical per-node sources.
std::map<std::string, std::string> reference_counts(const GeneratorConfig& gen,
                                                    WindowSpec window,
                                                    uint32_t nodes) {
  GeneratorSource src(gen);
  std::map<std::string, uint64_t> counts;
  for (uint64_t i = 0; i < gen.total_events; ++i) {
    const std::string key = "k" + std::to_string(i % 64);
    window.each_window(src.event_ts(i), [&](int64_t end) {
      counts[window_key(end, key)] += nodes;
    });
  }
  std::map<std::string, std::string> out;
  for (const auto& [k, v] : counts) out[k] = std::to_string(v);
  return out;
}

}  // namespace

// --- window math and codecs -------------------------------------------------

TEST(WindowSpec, TumblingAssignsExactlyOneWindow) {
  WindowSpec w{.size_us = 1000, .slide_us = 0};
  std::vector<int64_t> ends;
  w.each_window(0, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({1000}));
  ends.clear();
  w.each_window(999, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({1000}));
  ends.clear();
  w.each_window(1000, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({2000}));
}

TEST(WindowSpec, NegativeTimestampsWindowCorrectly) {
  WindowSpec w{.size_us = 1000, .slide_us = 0};
  std::vector<int64_t> ends;
  w.each_window(-1, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({0}));
  ends.clear();
  w.each_window(-1000, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({0}));
  ends.clear();
  w.each_window(-1001, [&](int64_t e) { ends.push_back(e); });
  EXPECT_EQ(ends, std::vector<int64_t>({-1000}));
}

TEST(WindowSpec, SlidingAssignsEveryCoveringWindow) {
  WindowSpec w{.size_us = 1000, .slide_us = 250};
  std::vector<int64_t> ends;
  w.each_window(500, [&](int64_t e) { ends.push_back(e); });
  // Newest first: windows (start, start+1000] with start in {500,250,0,-250}.
  EXPECT_EQ(ends, std::vector<int64_t>({1500, 1250, 1000, 750}));
}

TEST(WindowKeys, RoundTripAndOrdering) {
  const std::string key = window_key(123456789, "hello");
  EXPECT_EQ(key.size(), kWindowKeyPrefix + 5);
  EXPECT_EQ(window_key_end(key), 123456789);
  EXPECT_EQ(window_key_user(key), "hello");
  // Hex encoding preserves window order lexicographically (for sorted sinks).
  EXPECT_LT(window_key(1000, "z"), window_key(2000, "a"));
  // Non-window keys decode to INT64_MIN.
  EXPECT_EQ(window_key_end("plain"), INT64_MIN);
  EXPECT_EQ(window_key_end("wnot-hex-but-17-ch|x"), INT64_MIN);
}

TEST(Punctuation, CodecRoundTripAndRejectsGarbage) {
  const std::string value = encode_punctuation(3, -987654321);
  uint32_t origin = 0;
  int64_t wm = 0;
  ASSERT_TRUE(decode_punctuation(value, &origin, &wm));
  EXPECT_EQ(origin, 3u);
  EXPECT_EQ(wm, -987654321);
  EXPECT_FALSE(decode_punctuation("", &origin, &wm));
  EXPECT_TRUE(is_punctuation_key(punctuation_key()));
  EXPECT_FALSE(is_punctuation_key(window_key(1, "wm")));
}

// --- sources ----------------------------------------------------------------

TEST(GeneratorSource, DeterministicAndWatermarkExact) {
  GeneratorConfig gen;
  gen.total_events = 500;
  gen.period_us = 100;
  gen.jitter_us = 250;
  gen.seed = 7;
  GeneratorSource a(gen);
  GeneratorSource b(gen);
  for (uint64_t i = 0; i < gen.total_events; ++i) {
    EXPECT_EQ(a.event_ts(i), b.event_ts(i));
    // Forward-only jitter: ts(i) in [i * period, i * period + jitter].
    EXPECT_GE(a.event_ts(i), static_cast<int64_t>(i) * gen.period_us);
    EXPECT_LE(a.event_ts(i),
              static_cast<int64_t>(i) * gen.period_us + gen.jitter_us);
  }
  // The watermark at cursor c lower-bounds every event at index >= c.
  engine::InputSplit split;
  for (uint64_t c : {0u, 100u, 499u}) {
    const int64_t wm = a.watermark(split, c);
    for (uint64_t i = c; i < gen.total_events; ++i) {
      EXPECT_GE(a.event_ts(i), wm) << "cursor " << c << " index " << i;
    }
  }
  EXPECT_EQ(a.watermark(split, gen.total_events), INT64_MAX);
}

TEST(FileTailSource, ParsesLinesSkipsMalformedKeepsPartialTail) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(1));
  storage::FileStore& store = cluster.node(0).store();
  store.write_file("tail/in",
                   "100\ta\t1\n"
                   "garbage-no-tabs\n"
                   "250\tb\t2\n"
                   "300\tc\t");  // incomplete: no newline yet
  // Complete the tail, then run a one-node bounded replay (stop_at_eof)
  // through the full pipeline - sources only see a Context via the engine.
  store.append("tail/in", "3\n400\td\t4\n");
  FileTailConfig cfg;
  cfg.path = "tail/in";
  cfg.stop_at_eof = true;

  StreamPipeline p;
  p.source = [cfg] { return std::make_unique<FileTailSource>(cfg); };
  p.source_options.window = WindowSpec{.size_us = 1'000'000, .slide_us = 0};
  p.source_options.punctuate_every = 1;
  p.fold = count_fold;
  p.output_dir = "tail/out";

  service::JobWork work = StreamService::make_work(p, 1, nullptr);
  engine::Engine eng(cluster, engine::EngineConfig::fast());
  eng.run(work.graph, work.inputs);
  const auto got = parse_sink(work.collect(eng));

  std::map<std::string, std::string> want;
  want[window_key(1'000'000, "a")] = "1";
  want[window_key(1'000'000, "b")] = "2";
  want[window_key(1'000'000, "c")] = "3";
  want[window_key(1'000'000, "d")] = "4";
  EXPECT_EQ(got, want);
}

// --- end-to-end event-time windowing ----------------------------------------

namespace {

struct StreamEnv {
  explicit StreamEnv(uint32_t nodes,
                     engine::EngineConfig config = engine::EngineConfig::fast())
      : cluster(cluster::ClusterConfig::fast(nodes)), engine(cluster, config) {}

  cluster::Cluster cluster;
  engine::Engine engine;
};

}  // namespace

TEST(EventTimeWindows, BoundedReplayMatchesReferenceExactly) {
  const uint32_t kNodes = 4;
  StreamEnv env(kNodes);
  GeneratorConfig gen;
  gen.total_events = 3000;
  gen.period_us = 100;
  gen.jitter_us = 500;  // out-of-order by up to 5 indices
  gen.seed = 11;
  const WindowSpec window{.size_us = 20'000, .slide_us = 0};

  service::JobWork work = StreamService::make_work(
      count_pipeline(gen, window, "et/out"), kNodes, nullptr);
  const engine::JobResult result = env.engine.run(work.graph, work.inputs);

  EXPECT_EQ(parse_sink(work.collect(env.engine)),
            reference_counts(gen, window, kNodes));
  // Windows were closed by watermarks mid-stream, not only at finish: the
  // emit-latency histogram only counts barrier-armed (mid-stream) closes.
  EXPECT_GT(result.metrics.counter("stream.events_ingested"),
            gen.total_events * (kNodes - 1));
  EXPECT_GT(result.metrics.counter("stream.windows_emitted"), 0u);
}

TEST(EventTimeWindows, SlidingWindowsCountEventsInEveryCover) {
  const uint32_t kNodes = 2;
  StreamEnv env(kNodes);
  GeneratorConfig gen;
  gen.total_events = 1000;
  gen.period_us = 100;
  gen.jitter_us = 0;
  const WindowSpec window{.size_us = 40'000, .slide_us = 10'000};

  service::JobWork work = StreamService::make_work(
      count_pipeline(gen, window, "sl/out"), kNodes, nullptr);
  env.engine.run(work.graph, work.inputs);

  const auto got = parse_sink(work.collect(env.engine));
  EXPECT_EQ(got, reference_counts(gen, window, kNodes));
  // Every event lands in size/slide = 4 windows: total mass quadruples.
  uint64_t mass = 0;
  for (const auto& [k, v] : got) mass += std::stoull(v);
  EXPECT_EQ(mass, gen.total_events * kNodes * 4);
}

TEST(EventTimeWindows, MetricsSurfaceInJobResult) {
  StreamEnv env(2);
  GeneratorConfig gen;
  gen.total_events = 2000;
  gen.period_us = 100;
  const WindowSpec window{.size_us = 10'000, .slide_us = 0};

  service::JobWork work = StreamService::make_work(
      count_pipeline(gen, window, "m/out", /*punctuate_every=*/128), 2,
      nullptr);
  const engine::JobResult result = env.engine.run(work.graph, work.inputs);

  EXPECT_EQ(result.metrics.counter("stream.events_ingested"), 2000u * 2);
  EXPECT_GT(result.metrics.counter("stream.windows_emitted"), 0u);
  const obs::HistogramSnapshot* lag =
      result.metrics.histogram("stream.watermark_lag_us");
  ASSERT_NE(lag, nullptr);
  EXPECT_GT(lag->count, 0u);
  const obs::HistogramSnapshot* emit =
      result.metrics.histogram("stream.window_emit_latency_us");
  ASSERT_NE(emit, nullptr);
  EXPECT_GT(emit->count, 0u);  // at least one mid-stream (barrier) close
}

// --- EventLog ordering invariants -------------------------------------------
//
// Sleep-free and schedule-independent, in the style of the EngineEventLog
// suite: these hold in EVERY legal interleaving because the runtime records
// each event under fs.wm_mu before the transition that makes it visible.

TEST(StreamEventLog, EmitNeverPrecedesTheWatermarkThatClosesTheWindow) {
  obs::EventLog log;
  engine::EngineConfig config = engine::EngineConfig::fast();
  config.event_log = &log;
  const uint32_t kNodes = 3;
  StreamEnv env(kNodes, config);

  GeneratorConfig gen;
  gen.total_events = 2000;
  gen.period_us = 100;
  gen.jitter_us = 300;
  const WindowSpec window{.size_us = 15'000, .slide_us = 0};
  service::JobWork work = StreamService::make_work(
      count_pipeline(gen, window, "log/out", /*punctuate_every=*/200), kNodes,
      nullptr);
  // stream.window is the second flowlet added by make_work.
  const int64_t win_flowlet = 1;
  env.engine.run(work.graph, work.inputs);

  EXPECT_GT(log.count(obs::EventKind::kWatermarkAdvance), 0u);
  EXPECT_GT(log.count(obs::EventKind::kWindowEmit), 0u);
  for (uint32_t n = 0; n < kNodes; ++n) {
    int64_t watermark = INT64_MIN;  // highest advance seen so far in-stream
    bool finished = false;
    std::set<int64_t> opened;
    std::set<int64_t> emitted;
    for (const obs::Event& ev : log.stream(n, win_flowlet)) {
      switch (ev.kind) {
        case obs::EventKind::kWatermarkAdvance:
          EXPECT_GT(ev.aux, watermark) << "node " << n;  // monotonic
          watermark = ev.aux;
          break;
        case obs::EventKind::kFlowletReady:
          finished = true;
          break;
        case obs::EventKind::kWindowOpen:
          EXPECT_TRUE(opened.insert(ev.aux).second)
              << "window " << ev.aux << " opened twice on node " << n;
          break;
        case obs::EventKind::kWindowEmit:
          // The window was opened on this node first...
          EXPECT_TRUE(opened.count(ev.aux))
              << "node " << n << " emitted unopened window " << ev.aux;
          // ...and is emitted exactly once (the exactly-once invariant)...
          EXPECT_TRUE(emitted.insert(ev.aux).second)
              << "window " << ev.aux << " emitted twice on node " << n;
          // ...and never before the watermark that closes it (or finish).
          EXPECT_TRUE(watermark >= ev.aux || finished)
              << "node " << n << " window " << ev.aux << " emitted at wm "
              << watermark;
          break;
        default:
          break;
      }
    }
    // Bounded replay: every opened window eventually emits.
    EXPECT_EQ(opened, emitted) << "node " << n;
  }
}

// --- StreamService lifecycle -------------------------------------------------

namespace {

struct ServiceEnv {
  explicit ServiceEnv(uint32_t nodes = 2, uint32_t lanes = 2)
      : cluster(cluster::ClusterConfig::fast(nodes)),
        jobs(cluster,
             service::ServiceConfig{.lanes = lanes,
                                    .engine = engine::EngineConfig::fast()}),
        streams(jobs) {}

  cluster::Cluster cluster;
  service::JobService jobs;
  StreamService streams;
};

StreamPipeline unbounded_pipeline(const std::string& out_dir) {
  GeneratorConfig gen;  // total_events = 0: runs until drained
  gen.period_us = 100;
  StreamPipeline p = count_pipeline(gen, WindowSpec{.size_us = 10'000}, out_dir,
                                    /*punctuate_every=*/512);
  return p;
}

}  // namespace

TEST(StreamService, StartPollDrainCompletesWithPayload) {
  ServiceEnv env;
  StreamSpec spec;
  spec.duration = std::chrono::seconds(30);  // drained long before this
  auto ticket = env.streams.start(unbounded_pipeline("svc/out"), spec);
  ASSERT_NE(ticket, nullptr);

  // Live progress: wait until events flow and the watermark moves.
  StreamTicket::Progress p;
  for (int i = 0; i < 4000; ++i) {
    p = ticket->poll();
    if (p.events_ingested > 0 && p.watermark_us != INT64_MIN) break;
    std::this_thread::sleep_for(millis(1));
  }
  EXPECT_GT(p.events_ingested, 0u);
  EXPECT_NE(p.watermark_us, INT64_MIN);

  EXPECT_TRUE(ticket->drain());
  EXPECT_EQ(ticket->wait(std::chrono::seconds(30)), service::JobStatus::kDone);
  const auto out = parse_sink(ticket->payload());
  EXPECT_FALSE(out.empty());
  // Drain flushed every buffered window through the final watermark.
  p = ticket->poll();
  EXPECT_EQ(out.size(), p.results_emitted);
  EXPECT_GT(p.windows_emitted, 0u);
  // Stream metrics merged into the job result next to service.jobs_*.
  const engine::JobResult result = ticket->result();
  EXPECT_EQ(result.metrics.counter("stream.events_ingested"),
            p.events_ingested);
  EXPECT_GT(result.metrics.counter("service.jobs_submitted"), 0u);
}

TEST(StreamService, StopCancelsInsteadOfDraining) {
  ServiceEnv env;
  StreamSpec spec;
  spec.duration = std::chrono::seconds(30);
  auto ticket = env.streams.start(unbounded_pipeline("stop/out"), spec);
  for (int i = 0; i < 4000; ++i) {
    if (ticket->poll().events_ingested > 0) break;
    std::this_thread::sleep_for(millis(1));
  }
  EXPECT_TRUE(ticket->stop());
  EXPECT_EQ(ticket->wait(std::chrono::seconds(30)),
            service::JobStatus::kCancelled);
  EXPECT_TRUE(ticket->payload().empty());
}

TEST(StreamService, DrainWhileQueuedStillCompletes) {
  // One lane occupied by a long stream; a second queued stream is drained
  // before it ever dispatches - it must still run (token duration) and
  // complete kDone.
  ServiceEnv env(/*nodes=*/2, /*lanes=*/1);
  StreamSpec spec;
  spec.duration = std::chrono::seconds(30);
  auto first = env.streams.start(unbounded_pipeline("q1/out"), spec);
  auto second = env.streams.start(unbounded_pipeline("q2/out"), spec);
  EXPECT_TRUE(second->drain());  // still queued behind `first`
  EXPECT_TRUE(first->drain());
  EXPECT_EQ(first->wait(std::chrono::seconds(30)), service::JobStatus::kDone);
  EXPECT_EQ(second->wait(std::chrono::seconds(30)), service::JobStatus::kDone);
}

TEST(StreamService, BackpressurePausesSourcesUntilDrain) {
  ServiceEnv env;
  StreamPipeline p = unbounded_pipeline("bp/out");
  // A budget of one byte stalls the sources as soon as any window opens.
  p.source_options.window_buffer_budget = 1;
  StreamSpec spec;
  spec.duration = std::chrono::seconds(30);
  auto ticket = env.streams.start(std::move(p), spec);
  StreamTicket::Progress prog;
  for (int i = 0; i < 4000; ++i) {
    prog = ticket->poll();
    if (prog.backpressure_stalls > 0) break;
    std::this_thread::sleep_for(millis(1));
  }
  EXPECT_GT(prog.backpressure_stalls, 0u);
  EXPECT_TRUE(ticket->drain());
  EXPECT_EQ(ticket->wait(std::chrono::seconds(30)), service::JobStatus::kDone);
  EXPECT_GT(ticket->result().metrics.counter("stream.backpressure_stalls"),
            0u);
}

TEST(StreamRpc, DrainVerbWindsDownARemoteStream) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  service::JobService svc(
      cluster, service::ServiceConfig{.engine = engine::EngineConfig::fast()});
  auto stats = std::make_shared<StreamStats>();
  svc.register_builder("stream", [stats](const service::JobSpec&) {
    service::JobWork w =
        StreamService::make_work(unbounded_pipeline("rpc/out"), 2, stats);
    w.stream_duration = std::chrono::seconds(30);
    return w;
  });
  service::JobRpcServer server(&svc, &cluster.node(0).rpc());
  service::JobClient client(cluster.node(1).rpc(), /*server=*/0);

  EXPECT_FALSE(client.drain(999999));  // unknown id: clean false
  service::JobSpec spec;
  spec.job_type = "stream";
  const uint64_t id = client.submit(spec);
  for (int i = 0; i < 4000; ++i) {
    if (stats->events_ingested.load() > 0) break;
    std::this_thread::sleep_for(millis(1));
  }
  EXPECT_TRUE(client.drain(id));
  EXPECT_EQ(client.wait(id, std::chrono::seconds(30)),
            service::JobStatus::kDone);
  const service::JobClient::RemoteResult result = client.result(id);
  EXPECT_EQ(result.status, service::JobStatus::kDone);
  EXPECT_FALSE(result.payload.empty());
}
