// Tests for the distributed sort subsystem (src/sort/): range partitioner
// boundary behavior on skewed / duplicate-heavy / empty inputs, the k-way
// loser-tree merge against a reference, the batch serde codecs, and the
// end-to-end sort with spills over the zero-copy reliable shuffle.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "apps/common.h"
#include "common/random.h"
#include "query/row.h"
#include "serde/batch.h"
#include "sort/merge.h"
#include "sort/partitioner.h"
#include "sort/sort.h"

using namespace hamr;

namespace {

std::vector<std::string> random_records(size_t n, uint64_t seed,
                                        size_t min_len = 8,
                                        size_t max_len = 64) {
  Rng rng(seed);
  std::vector<std::string> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t len = min_len + rng.next_below(max_len - min_len + 1);
    std::string rec;
    rec.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      rec.push_back(static_cast<char>(rng.next_below(256)));
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

// --- KeySampler -------------------------------------------------------------

TEST(KeySampler, DeterministicForSeedAndBoundedByCapacity) {
  const auto stream = random_records(5000, 3);
  sort::KeySampler a(64, 99), b(64, 99);
  for (const auto& r : stream) {
    a.add(r);
    b.add(r);
  }
  EXPECT_EQ(a.seen(), stream.size());
  EXPECT_EQ(a.samples().size(), 64u);
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(KeySampler, DifferentSeedsDiverge) {
  const auto stream = random_records(5000, 3);
  sort::KeySampler a(64, 1), b(64, 2);
  for (const auto& r : stream) {
    a.add(r);
    b.add(r);
  }
  EXPECT_NE(a.samples(), b.samples());
}

// --- RangePartitioner -------------------------------------------------------

TEST(RangePartitioner, BalancedPartitionsOnUniformKeys) {
  const auto keys = random_records(4000, 7, 16, 16);
  sort::RangePartitioner p = sort::RangePartitioner::from_samples(keys, 4);
  ASSERT_EQ(p.partitions(), 4u);
  std::vector<size_t> sizes(4, 0);
  for (const auto& k : keys) ++sizes[p.partition_of(k)];
  for (size_t s : sizes) {
    EXPECT_GT(s, keys.size() / 8);  // no partition under half its fair share
    EXPECT_LT(s, keys.size() / 2);
  }
}

TEST(RangePartitioner, MonotoneInKeyOrder) {
  auto keys = random_records(1000, 11);
  sort::RangePartitioner p = sort::RangePartitioner::from_samples(keys, 8);
  std::sort(keys.begin(), keys.end());
  uint32_t prev = 0;
  for (const auto& k : keys) {
    const uint32_t part = p.partition_of(k);
    EXPECT_GE(part, prev);
    EXPECT_LT(part, p.partitions());
    prev = part;
  }
}

TEST(RangePartitioner, DuplicateHeavySamplesCollapseBoundaries) {
  // One hot key dominates the sample: boundaries must stay strictly
  // increasing (duplicates collapsed), costing partitions but never
  // correctness.
  std::vector<std::string> samples(900, "hot-key");
  samples.push_back("aaa");
  samples.push_back("zzz");
  sort::RangePartitioner p = sort::RangePartitioner::from_samples(samples, 8);
  const auto& b = p.boundaries();
  for (size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
  EXPECT_LE(p.partitions(), 8u);
  EXPECT_LT(p.partition_of("hot-key"), p.partitions());
  EXPECT_LE(p.partition_of("aaa"), p.partition_of("hot-key"));
  EXPECT_LE(p.partition_of("hot-key"), p.partition_of("zzz"));
}

TEST(RangePartitioner, EmptySamplesYieldSinglePartition) {
  sort::RangePartitioner p = sort::RangePartitioner::from_samples({}, 8);
  EXPECT_EQ(p.partitions(), 1u);
  EXPECT_EQ(p.partition_of("anything"), 0u);
  EXPECT_EQ(p.partition_of(""), 0u);
}

TEST(RangePartitioner, EncodeDecodeRoundTrip) {
  const auto keys = random_records(500, 17);
  sort::RangePartitioner p = sort::RangePartitioner::from_samples(keys, 6);
  sort::RangePartitioner q = sort::RangePartitioner::decode(p.encode());
  EXPECT_EQ(p.boundaries(), q.boundaries());
  for (const auto& k : keys) EXPECT_EQ(p.partition_of(k), q.partition_of(k));
}

TEST(RangePartitioner, EdgePartitionerClampsIntoNodeRange) {
  // Built for 8 parts but routed across 3 nodes: clamped, still monotone.
  auto keys = random_records(500, 23);
  sort::RangePartitioner p = sort::RangePartitioner::from_samples(keys, 8);
  auto route = p.as_edge_partitioner();
  std::sort(keys.begin(), keys.end());
  uint32_t prev = 0;
  for (const auto& k : keys) {
    const uint32_t n = route(k, 3);
    EXPECT_LT(n, 3u);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

// --- LoserTree --------------------------------------------------------------

namespace {

// A sorted in-memory run exposing the merge-source contract.
struct VecSource {
  std::vector<std::pair<std::string, std::string>> recs;
  size_t pos = 0;
  bool next(std::string_view* key, std::string_view* value) {
    if (pos >= recs.size()) return false;
    *key = recs[pos].first;
    *value = recs[pos].second;
    ++pos;
    return true;
  }
};

std::vector<std::pair<std::string, std::string>> drain(
    sort::LoserTree<VecSource>& tree) {
  std::vector<std::pair<std::string, std::string>> out;
  std::string_view key, value;
  while (tree.next(&key, &value)) out.emplace_back(key, value);
  return out;
}

}  // namespace

TEST(LoserTree, MergesSeededRunsLikeReference) {
  Rng rng(31);
  std::vector<VecSource> sources(7);
  std::vector<std::pair<std::string, std::string>> all;
  for (auto& src : sources) {
    const size_t n = rng.next_below(200);
    for (size_t i = 0; i < n; ++i) {
      src.recs.emplace_back("k" + std::to_string(rng.next_below(100000)),
                            "v" + std::to_string(i));
    }
    std::sort(src.recs.begin(), src.recs.end());
    all.insert(all.end(), src.recs.begin(), src.recs.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sort::LoserTree<VecSource> tree(std::move(sources));
  const auto merged = drain(tree);
  ASSERT_EQ(merged.size(), all.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].first, all[i].first) << "at " << i;
  }
}

TEST(LoserTree, TiesBreakTowardSmallerSourceIndex) {
  std::vector<VecSource> sources(3);
  sources[0].recs = {{"k", "s0-a"}, {"k", "s0-b"}};
  sources[1].recs = {{"k", "s1-a"}};
  sources[2].recs = {{"a", "s2-a"}, {"k", "s2-a"}};
  sort::LoserTree<VecSource> tree(std::move(sources));
  const auto merged = drain(tree);
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].second, "s2-a");  // key "a"
  EXPECT_EQ(merged[1].second, "s0-a");
  EXPECT_EQ(merged[2].second, "s0-b");
  EXPECT_EQ(merged[3].second, "s1-a");
  EXPECT_EQ(merged[4].second, "s2-a");
}

TEST(LoserTree, HandlesSingleEmptyAndNoSources) {
  {
    std::vector<VecSource> one(1);
    one[0].recs = {{"a", "1"}, {"b", "2"}};
    sort::LoserTree<VecSource> tree(std::move(one));
    EXPECT_EQ(drain(tree).size(), 2u);
  }
  {
    std::vector<VecSource> mixed(4);  // all but one empty
    mixed[2].recs = {{"x", "1"}};
    sort::LoserTree<VecSource> tree(std::move(mixed));
    const auto merged = drain(tree);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].first, "x");
  }
  {
    sort::LoserTree<VecSource> tree({});
    std::string_view k, v;
    EXPECT_FALSE(tree.next(&k, &v));
  }
}

// --- batch codecs -----------------------------------------------------------

TEST(BatchCodec, FixedWidthRunsRoundTrip) {
  Rng rng(41);
  std::vector<uint64_t> u64s(257);
  for (auto& v : u64s) v = rng.next_u64();
  std::vector<double> f64s = {0.0, -1.5, 3.14159, 1e300, -0.0};

  ByteBuffer buf;
  serde::Writer w(buf);
  serde::put_u64_run(w, u64s);
  serde::put_f64_run(w, f64s);
  serde::put_u64_run(w, std::vector<uint64_t>{});  // empty run

  serde::Reader r(buf.view());
  std::vector<uint64_t> u_out;
  std::vector<double> f_out;
  std::vector<uint64_t> e_out;
  serde::get_u64_run(r, &u_out);
  serde::get_f64_run(r, &f_out);
  serde::get_u64_run(r, &e_out);
  EXPECT_EQ(u_out, u64s);
  EXPECT_EQ(f_out, f64s);
  EXPECT_TRUE(e_out.empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BatchCodec, StringRunsRoundTripIncludingEmpties) {
  const std::vector<std::string> values = {"", "a", "longer-value",
                                           std::string(300, 'x'), ""};
  std::vector<std::string_view> views(values.begin(), values.end());
  ByteBuffer buf;
  serde::Writer w(buf);
  serde::put_string_run(w, views);

  serde::Reader r(buf.view());
  std::vector<std::string_view> out;
  serde::get_string_run(r, &out);
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(out[i], values[i]);
  EXPECT_TRUE(r.at_end());
}

TEST(BatchCodec, TruncatedRunsThrow) {
  ByteBuffer buf;
  serde::Writer w(buf);
  serde::put_u64_run(w, std::vector<uint64_t>{1, 2, 3, 4});
  const std::string bytes(buf.view());
  serde::Reader r(std::string_view(bytes).substr(0, bytes.size() - 5));
  std::vector<uint64_t> out;
  EXPECT_THROW(serde::get_u64_run(r, &out), serde::DecodeError);

  ByteBuffer sbuf;
  serde::Writer sw(sbuf);
  std::vector<std::string_view> views = {"hello", "world"};
  serde::put_string_run(sw, views);
  const std::string sbytes(sbuf.view());
  serde::Reader sr(std::string_view(sbytes).substr(0, sbytes.size() - 3));
  std::vector<std::string_view> sout;
  EXPECT_THROW(serde::get_string_run(sr, &sout), serde::DecodeError);
}

TEST(BatchCodec, FramedRunDecodesInChunks) {
  const auto records = random_records(10, 43, 4, 32);
  ByteBuffer buf;
  serde::Writer w(buf);
  for (const auto& rec : records) serde::put_framed(w, rec);
  const std::string data(buf.view());

  size_t pos = 0;
  std::vector<std::string_view> out;
  EXPECT_EQ(serde::get_framed_run(data, &pos, 3, &out), 3u);
  EXPECT_EQ(serde::get_framed_run(data, &pos, 3, &out), 3u);
  EXPECT_EQ(serde::get_framed_run(data, &pos, 3, &out), 3u);
  EXPECT_EQ(serde::get_framed_run(data, &pos, 3, &out), 1u);  // stream end
  EXPECT_EQ(pos, data.size());
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) EXPECT_EQ(out[i], records[i]);

  size_t tpos = 0;
  std::vector<std::string_view> tout;
  EXPECT_THROW(
      serde::get_framed_run(data.substr(0, data.size() - 1), &tpos, 100, &tout),
      serde::DecodeError);
}

TEST(BatchCodec, RowBlockRoundTripAllColumnTypes) {
  query::Schema schema;
  schema.cols = {{"id", query::ColType::kI64},
                 {"score", query::ColType::kF64},
                 {"name", query::ColType::kStr}};
  std::vector<query::Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({query::Value::of(int64_t(i - 5)),
                    query::Value::of(i * 1.25),
                    query::Value::of("row-" + std::to_string(i))});
  }
  const std::string block = schema.encode_row_block(rows);
  const std::vector<query::Row> decoded = schema.decode_row_block(block);
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(decoded[i], rows[i]);

  // Per-block layout still enforces schema shape.
  std::vector<query::Row> bad = {{query::Value::of(int64_t(1))}};
  EXPECT_THROW(schema.encode_row_block(bad), std::invalid_argument);
  EXPECT_THROW(schema.decode_row_block(block.substr(0, block.size() - 2)),
               serde::DecodeError);
}

// --- end-to-end distributed sort -------------------------------------------

namespace {

struct SortRun {
  std::vector<std::string> sorted;
  sort::SortStats stats;
};

SortRun run_sort(apps::BenchEnv& env, const std::vector<std::string>& data,
                 uint64_t budget_bytes) {
  const uint32_t nodes = env.nodes();
  std::vector<std::vector<std::string>> shards(nodes);
  for (size_t i = 0; i < data.size(); ++i) shards[i % nodes].push_back(data[i]);
  std::vector<std::string> framed;
  for (const auto& s : shards) framed.push_back(sort::frame_records(s));

  sort::SortSpec spec;
  spec.memory_budget_bytes = budget_bytes;
  sort::stage_sort_input(*env.cluster, spec, framed);
  SortRun run;
  run.stats = sort::run_distributed_sort(*env.engine, spec);
  run.sorted = sort::collect_sorted(*env.cluster, spec);
  return run;
}

}  // namespace

TEST(DistributedSort, ByteIdenticalToReferenceWithSpillsOverReliableShuffle) {
  engine::EngineConfig cfg = engine::EngineConfig::fast();
  cfg.reliable_shuffle = true;
  apps::BenchEnv env =
      apps::BenchEnv::make(cluster::ClusterConfig::fast(4), cfg);

  const auto data = random_records(20000, 51, 16, 80);
  std::vector<std::string> expected = data;
  std::sort(expected.begin(), expected.end());

  // 64 KB budget forces several spill runs per node.
  const SortRun run = run_sort(env, data, 64 * 1024);
  EXPECT_EQ(run.sorted, expected);

  // New metrics: spills happened, the merge fan-in was recorded, the
  // zero-copy path never re-copied a frame, and the pool hit-rate gauge is
  // live.
  EXPECT_GT(env.cluster->total_counter("sort.spill_runs"), 0u);
  EXPECT_EQ(env.cluster->total_counter("engine.shuffle_frame_copies"), 0u);
  uint64_t fan_in_observations = 0;
  bool pool_gauge_live = false;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    fan_in_observations +=
        env.cluster->node(n).metrics().histogram("sort.merge_fan_in")->count();
    pool_gauge_live = pool_gauge_live ||
                      env.cluster->node(n).metrics().gauge("pool.hit_rate")->get() > 0;
  }
  EXPECT_GT(fan_in_observations, 0u);
  EXPECT_TRUE(pool_gauge_live);
}

TEST(DistributedSort, DuplicateHeavyInputStaysByteIdentical) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  // Three distinct records, heavily repeated: range boundaries collapse and
  // whole partitions hold one key, but the output must still be exact.
  std::vector<std::string> data;
  for (int i = 0; i < 6000; ++i) {
    data.push_back(i % 3 == 0 ? "apple" : i % 3 == 1 ? "banana" : "cherry");
  }
  std::vector<std::string> expected = data;
  std::sort(expected.begin(), expected.end());
  const SortRun run = run_sort(env, data, 16 * 1024);
  EXPECT_EQ(run.sorted, expected);
}

TEST(DistributedSort, EmptyInputCompletes) {
  apps::BenchEnv env = apps::BenchEnv::fast(2);
  const SortRun run = run_sort(env, {}, 1 << 20);
  EXPECT_TRUE(run.sorted.empty());
}

TEST(DistributedSort, SingleNodeMatchesReference) {
  apps::BenchEnv env = apps::BenchEnv::fast(1);
  const auto data = random_records(3000, 61, 8, 40);
  std::vector<std::string> expected = data;
  std::sort(expected.begin(), expected.end());
  const SortRun run = run_sort(env, data, 32 * 1024);
  EXPECT_EQ(run.sorted, expected);
}
