// Chaos test suite: deterministic fault injection and end-to-end recovery.
//
// The heart of the suite is the byte-identical guarantee: a job run under a
// fault plan (message drops / duplicates / delays, injected task crashes,
// failing spill writes) must produce EXACTLY the output of a fault-free run -
// not approximately, not "eventually". WordCount and PageRank both run to
// completion under chaos plans and are compared against the sequential
// reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "common/random.h"
#include "fault/fault.h"
#include "sort/sort.h"
#include "gen/generators.h"
#include "net/message.h"
#include "obs/metrics_snapshot.h"
#include "query/planner.h"
#include "query/reference.h"
#include "query/testgen.h"
#include "stream/source.h"
#include "stream/stream_service.h"
#include "stream/window.h"

using namespace hamr;

namespace {


// A chaos-rigged 4-node correctness environment: cost models off, injector
// wired into the transport, every disk, and the engine runtime.
struct ChaosEnv {
  fault::FaultInjector injector;
  apps::BenchEnv env;

  explicit ChaosEnv(const fault::FaultPlan& plan, uint32_t nodes = 4,
                    engine::EngineConfig base = engine::EngineConfig::fast())
      : injector(plan),
        env(apps::BenchEnv::make(cluster::ClusterConfig::fast(nodes),
                                 with_injector(base, &injector))) {
    env.cluster->set_fault_injector(&injector);
  }

  static engine::EngineConfig with_injector(engine::EngineConfig cfg,
                                            fault::FaultInjector* injector) {
    cfg.fault_injector = injector;
    return cfg;
  }
};

// Records the injector's decision sequence for a handful of streams.
std::string decision_trace(fault::FaultInjector& injector, int events) {
  std::string trace;
  for (int i = 0; i < events; ++i) {
    const auto m01 = injector.on_message(0, 1, net::msg_type::kEngineFrame);
    const auto m23 = injector.on_message(2, 3, net::msg_type::kEngineFrame);
    trace += static_cast<char>('a' + static_cast<int>(m01.action));
    trace += static_cast<char>('a' + static_cast<int>(m23.action));
    trace += injector.on_disk_write(1) ? 'W' : 'w';
    trace += injector.on_task_start(0, 2) ? 'C' : 'c';
  }
  return trace;
}

}  // namespace

// --- FaultInjector determinism --------------------------------------------

TEST(FaultInjector, SamePlanAndSeedYieldSameFaultSequence) {
  const fault::FaultPlan plan = fault::FaultPlan::chaos(42, 0.3, 0.1);
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);
  EXPECT_EQ(decision_trace(a, 400), decision_trace(b, 400));
  EXPECT_EQ(a.stats().total(), b.stats().total());
}

TEST(FaultInjector, DifferentSeedYieldsDifferentSequence) {
  fault::FaultPlan p1 = fault::FaultPlan::chaos(1, 0.3, 0.1);
  fault::FaultPlan p2 = p1;
  p2.seed = 2;
  fault::FaultInjector a(p1);
  fault::FaultInjector b(p2);
  EXPECT_NE(decision_trace(a, 400), decision_trace(b, 400));
}

TEST(FaultInjector, StreamsAreIndependentOfInterleaving) {
  // Consuming events of OTHER streams between queries must not change a
  // stream's own decision sequence (this is what makes multi-threaded runs
  // reproducible per stream).
  const fault::FaultPlan plan = fault::FaultPlan::chaos(7, 0.4);
  fault::FaultInjector a(plan);
  fault::FaultInjector b(plan);

  std::vector<fault::MessageFault> seq_a, seq_b;
  for (int i = 0; i < 100; ++i) {
    seq_a.push_back(a.on_message(0, 1, net::msg_type::kEngineFrame).action);
  }
  for (int i = 0; i < 100; ++i) {
    // Interleave traffic on other links and other hook types.
    b.on_message(1, 0, net::msg_type::kEngineFrame);
    b.on_message(2, 1, net::msg_type::kEngineFrame);
    b.on_disk_write(0);
    b.on_task_start(1, 1);
    seq_b.push_back(b.on_message(0, 1, net::msg_type::kEngineFrame).action);
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultInjector, LocalAndNonFaultableTrafficIsNeverFaulted) {
  fault::FaultPlan plan;
  plan.default_link.drop = 1.0;
  fault::FaultInjector injector(plan);
  // Local traffic.
  EXPECT_EQ(injector.on_message(3, 3, net::msg_type::kEngineFrame).action,
            fault::MessageFault::kNone);
  // Type not in faultable_types (defaults to the engine frame/ack channel).
  EXPECT_EQ(injector.on_message(0, 1, net::msg_type::kRpcRequest).action,
            fault::MessageFault::kNone);
  // Faultable remote traffic with drop=1 always drops.
  EXPECT_EQ(injector.on_message(0, 1, net::msg_type::kEngineFrame).action,
            fault::MessageFault::kDrop);
  EXPECT_EQ(injector.stats().messages_dropped, 1u);
}

TEST(FaultInjector, PerLinkOverridesBeatTheDefault) {
  fault::FaultPlan plan;
  plan.default_link.drop = 1.0;
  plan.links[{0, 1}] = fault::LinkFaults{};  // quiet link
  fault::FaultInjector injector(plan);
  EXPECT_EQ(injector.on_message(0, 1, net::msg_type::kEngineFrame).action,
            fault::MessageFault::kNone);
  EXPECT_EQ(injector.on_message(1, 0, net::msg_type::kEngineFrame).action,
            fault::MessageFault::kDrop);
}

TEST(FaultInjector, CrashPointsFireExactlyTimesThenStop) {
  fault::FaultPlan plan;
  fault::CrashPoint cp;
  cp.node = 2;
  cp.flowlet = 1;
  cp.times = 3;
  plan.crash_points.push_back(cp);
  fault::FaultInjector injector(plan);
  int crashes = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.on_task_start(2, 1)) ++crashes;
  }
  EXPECT_EQ(crashes, 3);
  EXPECT_FALSE(injector.on_task_start(2, 2));  // other flowlet unaffected
  EXPECT_FALSE(injector.on_task_start(1, 1));  // other node unaffected
  EXPECT_EQ(injector.stats().task_crashes, 3u);
}

// --- End-to-end chaos runs -------------------------------------------------

TEST(Chaos, WordCountSurvivesMessageChaosByteIdentical) {
  // 5% of shuffle frames suffer a fault (drop / duplicate / delay) and 2% of
  // task executions crash at start; the output must equal the reference
  // exactly.
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/11, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_chaos", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GT(info.engine_result.faults_injected, 0u);
}

TEST(ChaosIR, FusedWordCountSurvivesChaosByteIdentical) {
  // The same 5% drop + 2% crash plan, but the job is lowered through the
  // standard IR pass pipeline (loader+splitter fused into one task body).
  // Fusion moves work between flowlets, so retries replay bigger units -
  // the output must still match the sequential reference byte for byte.
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/11, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_chaos_ir", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged, /*combine=*/false,
                                        /*use_full_reduce=*/false,
                                        /*fused=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GT(info.engine_result.faults_injected, 0u);
}

TEST(ChaosIR, FusedCombinerWordCountSurvivesChaosByteIdentical) {
  // Fused lowering with the sender-side combiner placed by the IR pipeline:
  // the combine edge folds through the fused flowlet's forwarded fold().
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/23, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_chaos_irc", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged, /*combine=*/true,
                                        /*use_full_reduce=*/false,
                                        /*fused=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GT(info.engine_result.faults_injected, 0u);
}

TEST(Chaos, DroppedFramesAreRetransmittedUntilAcked) {
  // Half of all data frames (acks excluded) vanish in flight; the job can
  // only complete through retransmission, and the output must still be
  // exact despite every surviving duplicate.
  fault::FaultPlan plan;
  plan.seed = 17;
  plan.default_link.drop = 0.5;
  plan.faultable_types = {net::msg_type::kEngineFrame};
  ChaosEnv chaos(plan);

  gen::TextSpec spec;
  spec.total_bytes = 64 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_drop", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GT(chaos.injector.stats().messages_dropped, 0u);
  // Every dropped data frame had to be retransmitted for the job to finish.
  EXPECT_GT(info.engine_result.frames_resent, 0u);

  // The JobResult metrics snapshot carries the same story: resends happened,
  // frames flowed, and the scalar view agrees with the snapshot counter.
  const obs::MetricsSnapshot& m = info.engine_result.metrics;
  EXPECT_GT(m.counter("engine.resends"), 0u);
  EXPECT_EQ(m.counter("engine.resends"), info.engine_result.frames_resent);
  EXPECT_GT(m.counter("engine.frames_sent"), 0u);
  EXPECT_GT(m.counter("net.fault_dropped"), 0u);
  // First-delivery receives never exceed originals sent.
  EXPECT_LE(m.counter("engine.frames_recv"), m.counter("engine.frames_sent"));
}

TEST(Chaos, WordCountFullReduceSurvivesCrashAndDiskChaos) {
  fault::FaultPlan plan = fault::FaultPlan::chaos(/*seed=*/5, /*msg_rate=*/0.04,
                                                  /*crash_rate=*/0.03);
  plan.disk_write_error_rate = 0.3;
  engine::EngineConfig cfg = engine::EngineConfig::fast();
  // Tiny staging budget so the reduce path spills (and hits disk faults).
  cfg.memory_budget_bytes = 16 * 1024;
  ChaosEnv chaos(plan, 4, cfg);

  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_spill", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged, /*combine=*/false,
                                        /*use_full_reduce=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GT(info.engine_result.spill_retries, 0u);
}

TEST(Chaos, PageRankSurvivesChaosWithIdenticalRanks) {
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/13, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.01));
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  auto shards = apps::make_shards(chaos.env.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged = apps::stage_input(chaos.env, "pr_chaos", shards, 16 * 1024);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;
  const auto expected = apps::pagerank::reference(shards, params);

  auto info = apps::pagerank::run_hamr(chaos.env, staged, params);
  const auto ranks = apps::pagerank::hamr_ranks(chaos.env, params);
  ASSERT_EQ(ranks.size(), expected.size());
  for (const auto& [page, rank] : expected) {
    EXPECT_NEAR(ranks.at(page), rank, 1e-12) << "page " << page;
  }
  uint64_t faults = 0;
  for (const auto& r : info.engine_results) faults += r.faults_injected;
  EXPECT_GT(faults, 0u);
}

TEST(Chaos, CachedPageRankStaysByteIdenticalUnderChaos) {
  // The dataset-cache iterative chain (DESIGN.md §15) under the standard 5%
  // message chaos + 2% task-crash plan: final ranks must be EXACTLY the
  // clean cold path's - the cache changes where contributions come from
  // (resident blocks vs. KV store), never what they sum to, and recovery
  // must not replay a published record (taps fire once per emitted record).
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  apps::BenchEnv clean = apps::BenchEnv::fast(4);
  auto shards = apps::make_shards(clean.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged_clean = apps::stage_input(clean, "pr_cc", shards, 16 * 1024);
  apps::pagerank::run_hamr(clean, staged_clean, params);
  const auto expected = apps::pagerank::hamr_ranks(clean, params);

  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/19, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  auto staged = apps::stage_input(chaos.env, "pr_cc", shards, 16 * 1024);
  auto info = apps::pagerank::run_hamr_cached(chaos.env, staged, params);
  EXPECT_EQ(apps::pagerank::hamr_ranks(chaos.env, params), expected);

  uint64_t faults = 0;
  for (const auto& r : info.engine_results) faults += r.faults_injected;
  EXPECT_GT(faults, 0u);
  // The warm iterations really served from the cache, chaos notwithstanding.
  EXPECT_GE(chaos.env.dataset_cache->stats().hits, 2u);
}

TEST(Chaos, CacheInvalidationMidChainForcesColdFallbackByteIdentical) {
  // Crash-invalidates-generation scenario: the adjacency dataset vanishes
  // between iterations (as the JobService does when a publishing job fails).
  // The next iteration must miss, rebuild cold under the same chaos plan,
  // republish, and the chain's final ranks must still be exact.
  gen::WebGraphSpec spec;
  spec.num_pages = 256;
  spec.num_edges = 2048;
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  apps::BenchEnv clean = apps::BenchEnv::fast(4);
  auto shards = apps::make_shards(clean.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged_clean = apps::stage_input(clean, "pr_ci", shards, 16 * 1024);
  apps::pagerank::run_hamr(clean, staged_clean, params);
  const auto expected = apps::pagerank::hamr_ranks(clean, params);

  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/41, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  auto staged = apps::stage_input(chaos.env, "pr_ci", shards, 16 * 1024);
  apps::pagerank::clear_pagerank_state(chaos.env);
  apps::pagerank::run_hamr_cached_iteration(chaos.env, staged, params, 0);
  apps::pagerank::run_hamr_cached_iteration(chaos.env, staged, params, 1);
  chaos.env.dataset_cache->invalidate("pagerank/adj");
  const auto misses_before = chaos.env.dataset_cache->stats().misses;
  apps::pagerank::run_hamr_cached_iteration(chaos.env, staged, params, 2);

  EXPECT_GT(chaos.env.dataset_cache->stats().misses, misses_before);
  EXPECT_NE(chaos.env.dataset_cache->pin("pagerank/adj"), nullptr);
  EXPECT_EQ(apps::pagerank::hamr_ranks(chaos.env, params), expected);
  EXPECT_GT(chaos.injector.stats().total(), 0u);
}

TEST(Chaos, ExplicitCrashPointsAreRetriedToCompletion) {
  fault::FaultPlan plan;
  // The wordcount graph is loader(0) -> splitter map(1) -> count(2); crash
  // the splitter's first four bins on node 0 and the counter's first two on
  // node 3.
  plan.crash_points.push_back(fault::CrashPoint{0, 1, 4});
  plan.crash_points.push_back(fault::CrashPoint{3, 2, 2});
  ChaosEnv chaos(plan);

  gen::TextSpec spec;
  spec.total_bytes = 64 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_cp", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_GE(info.engine_result.task_retries, 6u);
  EXPECT_GE(chaos.injector.stats().task_crashes, 6u);
}

TEST(Chaos, ZeroFaultPlanRunsCleanlyOverReliableChannel) {
  // An injector with an all-zero plan still engages the seq/ack channel; the
  // run must be fault-free, retransmission-free, and correct.
  ChaosEnv chaos(fault::FaultPlan{});
  gen::TextSpec spec;
  spec.total_bytes = 64 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_zero", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  EXPECT_EQ(info.engine_result.faults_injected, 0u);
  EXPECT_EQ(info.engine_result.task_retries, 0u);
  EXPECT_EQ(info.engine_result.duplicate_frames, 0u);

  // With a zero-fault plan EVERY fault counter in the metrics snapshot is
  // zero - the reliable channel must not manufacture faults of its own.
  const obs::MetricsSnapshot& m = info.engine_result.metrics;
  for (const char* name :
       {"engine.resends", "engine.dup_frames", "engine.task_retries",
        "engine.spill_retries", "net.fault_dropped", "disk.write_errors"}) {
    EXPECT_EQ(m.counter(name), 0u) << name;
  }

  // The same snapshot carries the per-flowlet task-latency histograms
  // registered at job build time (wordcount: loader 0 -> map 1 -> reduce 2).
  for (int f : {0, 1, 2}) {
    const std::string name = "engine.flowlet." + std::to_string(f) + ".task_us";
    const obs::HistogramSnapshot* h = m.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0u) << name;
  }
  const obs::HistogramSnapshot* task_us = m.histogram("engine.task_us");
  ASSERT_NE(task_us, nullptr);
  EXPECT_GT(task_us->count, 0u);
}

TEST(Chaos, ReliableShuffleFlagWorksWithoutInjector) {
  engine::EngineConfig cfg = engine::EngineConfig::fast();
  cfg.reliable_shuffle = true;
  apps::BenchEnv env =
      apps::BenchEnv::make(cluster::ClusterConfig::fast(3), cfg);
  gen::TextSpec spec;
  spec.total_bytes = 48 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 3); });
  auto staged = apps::stage_input(env, "wc_rel", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  apps::wordcount::run_hamr(env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);
}

TEST(Chaos, BackToBackJobsShareTheChannelState) {
  // Sequence numbers keep counting across jobs on the same engine; a second
  // job under the same injector must still be exact.
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/3, /*msg_rate=*/0.05));
  gen::TextSpec spec;
  spec.total_bytes = 48 * 1024;
  auto shards = apps::make_shards(chaos.env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(chaos.env, "wc_twice", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
  apps::wordcount::run_hamr(chaos.env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(chaos.env), expected);
}

TEST(Chaos, WordCountSurvivesChaosWithEightWorkerStealing) {
  // Same byte-identical guarantee with 8 workers per node: the stealing
  // scheduler's overlapped bin processing must not change recovery semantics
  // or output. (CI runs this under TSan via the chaos label.)
  fault::FaultInjector injector(fault::FaultPlan::chaos(/*seed=*/29,
                                                        /*msg_rate=*/0.05,
                                                        /*crash_rate=*/0.02));
  auto env = apps::BenchEnv::make(
      cluster::ClusterConfig::fast(/*nodes=*/4, /*threads=*/8),
      ChaosEnv::with_injector(engine::EngineConfig::fast(), &injector));
  env.cluster->set_fault_injector(&injector);

  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards =
      apps::make_shards(env.nodes(), [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "wc_chaos8", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  auto info = apps::wordcount::run_hamr(env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);
  EXPECT_GT(info.engine_result.faults_injected, 0u);
  // Stealing actually engaged: 8 workers, 4 sender shards.
  uint64_t steals = 0;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    steals += env.cluster->node(n).metrics().counter("engine.sched_steal")->get();
  }
  EXPECT_GT(steals, 0u);
}

TEST(ChaosStream, WindowedWordCountStaysByteIdenticalUnderChaos) {
  // Event-time streaming exactly-once probe: a bounded generator replay
  // through source -> windows -> sink, run clean and under a 5% message
  // chaos + 2% task-crash plan. The WindowFileSink concatenates duplicate
  // emissions with ';', so ANY window emitted twice (or a lost one) changes
  // the output bytes - the two runs must match exactly.
  stream::GeneratorConfig gen;
  gen.total_events = 2500;
  gen.period_us = 100;
  gen.jitter_us = 400;  // out-of-order arrivals within each source
  gen.seed = 5;
  const stream::WindowSpec window{.size_us = 20'000, .slide_us = 0};

  auto pipeline = [&] {
    stream::StreamPipeline p;
    p.source = [gen] { return std::make_unique<stream::GeneratorSource>(gen); };
    p.source_options.window = window;
    p.source_options.events_per_chunk = 128;
    p.source_options.punctuate_every = 256;
    p.fold = [](std::string_view, std::string_view value, std::string& acc) {
      const uint64_t add = std::stoull(std::string(value));
      const uint64_t have = acc.empty() ? 0 : std::stoull(acc);
      acc = std::to_string(have + add);
    };
    p.output_dir = "chaos_stream/out";
    return p;
  };
  auto run = [&](apps::BenchEnv& env) {
    service::JobWork work =
        stream::StreamService::make_work(pipeline(), env.nodes(), nullptr);
    env.engine->run(work.graph, work.inputs);
    return stream::WindowFileSink::read_all(*env.cluster, "chaos_stream/out");
  };

  apps::BenchEnv clean = apps::BenchEnv::fast(4);
  const std::string expected = run(clean);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(expected.find(';'), std::string::npos);

  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/23, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));
  EXPECT_EQ(run(chaos.env), expected);
  EXPECT_GT(chaos.injector.stats().total(), 0u);
}

TEST(ChaosSort, DistributedSortStaysByteIdenticalUnderChaos) {
  // TeraSort-class probe: records are opaque bytes sorted lexicographically,
  // so a single duplicated or lost record changes the output bytes. Run the
  // full sampling + range-partitioned shuffle + spill/merge pipeline under
  // 5% frame drops and 2% task crashes; the concatenated per-node partitions
  // must equal a single-threaded std::sort of the same dataset exactly.
  fault::FaultPlan plan;
  plan.seed = 37;
  plan.default_link.drop = 0.05;
  plan.task_crash_rate = 0.02;
  plan.resend_after = millis(20);  // recover dropped frames quickly
  ChaosEnv chaos(plan);

  Rng rng(67);
  std::vector<std::string> data;
  data.reserve(8000);
  for (size_t i = 0; i < 8000; ++i) {
    std::string rec;
    const size_t len = 8 + rng.next_below(56);
    rec.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      rec.push_back(static_cast<char>(rng.next_below(256)));
    }
    data.push_back(std::move(rec));
  }
  std::vector<std::string> expected = data;
  std::sort(expected.begin(), expected.end());

  std::vector<std::vector<std::string>> shards(chaos.env.nodes());
  for (size_t i = 0; i < data.size(); ++i) {
    shards[i % shards.size()].push_back(data[i]);
  }
  std::vector<std::string> framed;
  for (const auto& s : shards) framed.push_back(sort::frame_records(s));

  sort::SortSpec spec;
  spec.memory_budget_bytes = 64 * 1024;  // force spill runs under chaos too
  sort::stage_sort_input(*chaos.env.cluster, spec, framed);
  sort::run_distributed_sort(*chaos.env.engine, spec);

  EXPECT_EQ(sort::collect_sorted(*chaos.env.cluster, spec), expected);
  EXPECT_GT(chaos.injector.stats().total(), 0u);
  EXPECT_GT(chaos.env.cluster->total_counter("sort.spill_runs"), 0u);
}

TEST(ChaosQuery, JoinGroupByQueryStaysByteIdenticalUnderChaos) {
  // Differential probe for the relational layer: a join + group-by query
  // (two shuffle stages, sender-side combining on the fold) run under the
  // standard 5% message chaos + 2% task-crash plan must produce EXACTLY the
  // reference evaluator's rows. Aggregate states are commutative +
  // associative merges (DESIGN.md §13), so retried tasks and pre-combined
  // duplicates may reorder the fold but never change the bytes.
  ChaosEnv chaos(fault::FaultPlan::chaos(/*seed=*/31, /*msg_rate=*/0.05,
                                         /*crash_rate=*/0.02));

  query::GeneratedQuery q = query::generate_query(query::Family::kJoinGroupBy,
                                                  /*seed=*/7);
  const query::Schema schema = query::output_schema(*q.plan, q.catalog);
  const auto expected =
      query::canonical(schema, query::reference_eval(*q.plan, q.catalog));
  ASSERT_FALSE(expected.empty());

  const auto got = query::canonical(
      schema,
      query::run_on_engine(*chaos.env.engine, *q.plan, q.catalog, "chaos_q"));
  EXPECT_EQ(got, expected);
  EXPECT_GT(chaos.injector.stats().total(), 0u);
}
