#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "fault/fault.h"
#include "net/inproc_transport.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/tcp_transport.h"

using namespace hamr;
using namespace hamr::net;

namespace {

NetConfig fast_net() {
  NetConfig config;
  config.enabled = false;
  return config;
}

// Collects delivered messages per node.
struct Sink {
  std::mutex mu;
  std::vector<Message> messages;
  std::condition_variable cv;

  MessageHandler handler() {
    return [this](Message&& m) {
      std::lock_guard<std::mutex> lock(mu);
      messages.push_back(std::move(m));
      cv.notify_all();
    };
  }

  size_t wait_for(size_t n, Duration timeout = std::chrono::seconds(10)) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, timeout, [&] { return messages.size() >= n; });
    return messages.size();
  }
};

}  // namespace

// --- InProcTransport ---------------------------------------------------------

TEST(InProc, DeliversBetweenNodes) {
  InProcTransport fabric(2, fast_net());
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  fabric.endpoint(0)->send(1, 7, "payload");
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_EQ(sink.messages[0].type, 7u);
  EXPECT_EQ(sink.messages[0].src, 0u);
  EXPECT_EQ(sink.messages[0].payload, "payload");
}

TEST(InProc, SelfSendWorks) {
  InProcTransport fabric(1, fast_net());
  Sink sink;
  fabric.endpoint(0)->set_handler(sink.handler());
  fabric.start();
  fabric.endpoint(0)->send(0, 1, "self");
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_EQ(sink.messages[0].payload, "self");
}

TEST(InProc, FifoPerSenderSingleThread) {
  InProcTransport fabric(2, fast_net());
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  for (int i = 0; i < 200; ++i) {
    fabric.endpoint(0)->send(1, 1, std::to_string(i));
  }
  ASSERT_EQ(sink.wait_for(200), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sink.messages[i].payload, std::to_string(i));
}

TEST(InProc, LatencyModelDelaysDelivery) {
  NetConfig config;
  config.latency = millis(50);
  config.bandwidth_bytes_per_sec = 1e12;
  InProcTransport fabric(2, config);
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  Stopwatch w;
  fabric.endpoint(0)->send(1, 1, "x");
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_GE(w.elapsed_seconds(), 0.045);
}

TEST(InProc, BandwidthModelSerializesBytes) {
  NetConfig config;
  config.latency = Duration::zero();
  config.bandwidth_bytes_per_sec = 10e6;  // 10 MB/s
  InProcTransport fabric(2, config);
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  Stopwatch w;
  // 1 MB pays tx serialization + rx serialization at 10 MB/s => >= ~200 ms.
  fabric.endpoint(0)->send(1, 1, std::string(1 << 20, 'x'));
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_GE(w.elapsed_seconds(), 0.18);
}

TEST(InProc, SelfSendSkipsCostModel) {
  NetConfig config;
  config.latency = millis(200);
  InProcTransport fabric(1, config);
  Sink sink;
  fabric.endpoint(0)->set_handler(sink.handler());
  fabric.start();
  Stopwatch w;
  fabric.endpoint(0)->send(0, 1, "fast");
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_LT(w.elapsed_seconds(), 0.1);
}

TEST(InProc, IngressBackpressureBlocksSender) {
  NetConfig config;
  config.enabled = false;
  config.ingress_capacity_bytes = 1024;  // room for exactly two 512 B messages
  InProcTransport fabric(2, config);
  // Receiver parks the delivery thread in the handler until released.
  std::mutex handler_mu;
  std::condition_variable handler_cv;
  bool release = false;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler([&](Message&&) {
    std::unique_lock<std::mutex> lock(handler_mu);
    handler_cv.wait(lock, [&] { return release; });
  });
  fabric.start();

  std::mutex sent_mu;
  std::condition_variable sent_cv;
  int sent = 0;
  std::thread sender([&] {
    for (int i = 0; i < 50; ++i) {
      fabric.endpoint(0)->send(1, 1, std::string(512, 'x'));
      {
        std::lock_guard<std::mutex> lock(sent_mu);
        ++sent;
      }
      sent_cv.notify_all();
    }
  });

  // A message's ingress bytes are released when it is DEQUEUED, so with the
  // first message parked in the handler the queue admits exactly two more:
  // the sender must reach 3 sends and then stall on the fourth. Waiting on
  // the condition variable (not sleeping) makes the positive half exact; the
  // bounded negative wait can only fail if a fourth send actually happens.
  {
    std::unique_lock<std::mutex> lock(sent_mu);
    ASSERT_TRUE(sent_cv.wait_for(lock, std::chrono::seconds(10),
                                 [&] { return sent >= 3; }));
    EXPECT_FALSE(
        sent_cv.wait_for(lock, millis(100), [&] { return sent > 3; }))
        << "sender advanced past the ingress bound while the receiver was held";
  }

  {
    std::lock_guard<std::mutex> lock(handler_mu);
    release = true;
  }
  handler_cv.notify_all();
  sender.join();
  std::lock_guard<std::mutex> lock(sent_mu);
  EXPECT_EQ(sent, 50);
}

TEST(InProc, CountsMetrics) {
  Metrics m0, m1;
  NetConfig config;
  config.enabled = false;
  InProcTransport fabric(2, config, {&m0, &m1});
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  fabric.endpoint(0)->send(1, 1, "12345");
  sink.wait_for(1);
  EXPECT_EQ(m0.value("net.tx_bytes"), 5u);
  EXPECT_EQ(m1.value("net.rx_bytes"), 5u);
  EXPECT_EQ(m0.value("net.tx_msgs"), 1u);
}

// --- Router --------------------------------------------------------------------

TEST(Router, DispatchesByTypeAndDropsUnknown) {
  InProcTransport fabric(2, fast_net());
  fabric.endpoint(0)->set_handler([](Message&&) {});
  Router router(fabric.endpoint(1));
  Sink a, b;
  router.register_type(10, a.handler());
  router.register_type(20, b.handler());
  fabric.start();
  fabric.endpoint(0)->send(1, 10, "to-a");
  fabric.endpoint(0)->send(1, 20, "to-b");
  fabric.endpoint(0)->send(1, 99, "dropped");
  fabric.endpoint(0)->send(1, 10, "to-a-2");
  ASSERT_EQ(a.wait_for(2), 2u);
  ASSERT_EQ(b.wait_for(1), 1u);
  EXPECT_EQ(a.messages[1].payload, "to-a-2");
}

TEST(Router, DuplicateRegistrationThrows) {
  InProcTransport fabric(1, fast_net());
  Router router(fabric.endpoint(0));
  router.register_type(5, [](Message&&) {});
  EXPECT_THROW(router.register_type(5, [](Message&&) {}), std::logic_error);
}

// --- Rpc ----------------------------------------------------------------------

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : fabric_(2, fast_net()) {
    for (int i = 0; i < 2; ++i) {
      routers_.push_back(std::make_unique<Router>(fabric_.endpoint(i)));
      rpcs_.push_back(std::make_unique<Rpc>(routers_.back().get()));
    }
    fabric_.start();
  }

  // Stop delivery before routers/rpcs are destroyed (members die in reverse
  // order, so fabric_ — and its delivery threads — would otherwise outlive
  // the handlers they dispatch into).
  ~RpcTest() override { fabric_.stop(); }

  InProcTransport fabric_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Rpc>> rpcs_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  rpcs_[1]->register_method(1, [](NodeId caller, std::string_view arg) {
    return "echo:" + std::to_string(caller) + ":" + std::string(arg);
  });
  auto result = rpcs_[0]->call_sync(1, 1, "hello");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "echo:0:hello");
}

TEST_F(RpcTest, SelfCallWorks) {
  rpcs_[0]->register_method(1, [](NodeId, std::string_view arg) {
    return std::string(arg) + "!";
  });
  EXPECT_EQ(rpcs_[0]->call_sync(0, 1, "self").value(), "self!");
}

TEST_F(RpcTest, UnknownMethodReturnsError) {
  auto result = rpcs_[0]->call_sync(1, 99, "x");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(RpcTest, HandlerExceptionPropagatesAsError) {
  rpcs_[1]->register_method(1, [](NodeId, std::string_view) -> std::string {
    throw std::runtime_error("kaboom");
  });
  auto result = rpcs_[0]->call_sync(1, 1, "");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("kaboom"), std::string::npos);
}

TEST_F(RpcTest, ManyConcurrentCallsResolveToMatchingResponses) {
  rpcs_[1]->register_method(1, [](NodeId, std::string_view arg) {
    return std::string(arg) + std::string(arg);
  });
  std::vector<std::future<Result<std::string>>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(rpcs_[0]->call(1, 1, std::to_string(i)));
  }
  for (int i = 0; i < 64; ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), std::to_string(i) + std::to_string(i));
  }
}

TEST_F(RpcTest, LargePayloadRoundTrip) {
  rpcs_[1]->register_method(1, [](NodeId, std::string_view arg) {
    return std::string(arg);
  });
  const std::string big(3 << 20, 'z');
  auto result = rpcs_[0]->call_sync(1, 1, big, std::chrono::seconds(30));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), big);
}

// --- TcpTransport ----------------------------------------------------------------

TEST(Tcp, EchoAcrossRealSockets) {
  TcpTransport fabric(2);
  Sink sink0, sink1;
  fabric.endpoint(0)->set_handler(sink0.handler());
  fabric.endpoint(1)->set_handler(sink1.handler());
  fabric.start();

  fabric.endpoint(0)->send(1, 42, "over tcp");
  ASSERT_EQ(sink1.wait_for(1), 1u);
  EXPECT_EQ(sink1.messages[0].type, 42u);
  EXPECT_EQ(sink1.messages[0].src, 0u);
  EXPECT_EQ(sink1.messages[0].payload, "over tcp");

  fabric.endpoint(1)->send(0, 43, "reply");
  ASSERT_EQ(sink0.wait_for(1), 1u);
  EXPECT_EQ(sink0.messages[0].payload, "reply");
  fabric.stop();
}

TEST(Tcp, LargeFrameAndOrdering) {
  TcpTransport fabric(2);
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  const std::string big(2 << 20, 'b');
  fabric.endpoint(0)->send(1, 1, big);
  for (int i = 0; i < 20; ++i) fabric.endpoint(0)->send(1, 2, std::to_string(i));
  ASSERT_EQ(sink.wait_for(21), 21u);
  EXPECT_EQ(sink.messages[0].payload.size(), big.size());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sink.messages[i + 1].payload, std::to_string(i));
  fabric.stop();
}

TEST(Tcp, MultiMegabyteFrameSurvivesShortReadsIntact) {
  // An 8MB patterned frame is far beyond what one send()/recv() moves on
  // loopback, so this only passes if both sides loop over partial transfers
  // without shearing the byte stream. A trailing small frame proves the
  // stream stayed framed.
  TcpTransport fabric(2);
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  std::string big(8 << 20, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>((i * 31 + 7) & 0xff);
  }
  fabric.endpoint(0)->send(1, 9, big);
  fabric.endpoint(0)->send(1, 10, "tail");
  ASSERT_EQ(sink.wait_for(2, std::chrono::seconds(30)), 2u);
  EXPECT_EQ(sink.messages[0].type, 9u);
  ASSERT_EQ(sink.messages[0].payload.size(), big.size());
  EXPECT_EQ(sink.messages[0].payload, big);  // every byte, in order
  EXPECT_EQ(sink.messages[1].payload, "tail");
  fabric.stop();
}

TEST(Tcp, RpcOverRealSockets) {
  TcpTransport fabric(2);
  Router r0(fabric.endpoint(0)), r1(fabric.endpoint(1));
  Rpc rpc0(&r0), rpc1(&r1);
  rpc1.register_method(1, [](NodeId, std::string_view arg) {
    return "tcp:" + std::string(arg);
  });
  fabric.start();
  auto result = rpc0.call_sync(1, 1, "ping");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "tcp:ping");
  fabric.stop();
}

TEST(Tcp, EmptyPayloadFrame) {
  TcpTransport fabric(2);
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  fabric.endpoint(0)->send(1, 5, "");
  ASSERT_EQ(sink.wait_for(1), 1u);
  EXPECT_EQ(sink.messages[0].payload, "");
  fabric.stop();
}

// --- Fault injection at the transport layer ---------------------------------

TEST(InProcFaults, DroppedRpcRequestTimesOutInsteadOfHanging) {
  fault::FaultPlan plan;
  plan.faultable_types = {msg_type::kRpcRequest};
  plan.default_link.drop = 1.0;
  fault::FaultInjector injector(plan);

  InProcTransport fabric(2, fast_net());
  Router r0(fabric.endpoint(0)), r1(fabric.endpoint(1));
  Rpc rpc0(&r0), rpc1(&r1);
  rpc1.register_method(1, [](NodeId, std::string_view arg) {
    return std::string(arg);
  });
  fabric.set_fault_injector(&injector);
  fabric.start();

  auto result = rpc0.call_sync(1, 1, "lost", millis(200));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(injector.stats().messages_dropped, 1u);
  fabric.stop();
}

TEST(InProcFaults, DuplicatedMessageIsDeliveredTwice) {
  fault::FaultPlan plan;
  plan.faultable_types = {7};
  plan.default_link.duplicate = 1.0;
  fault::FaultInjector injector(plan);

  InProcTransport fabric(2, fast_net());
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.set_fault_injector(&injector);
  fabric.start();

  fabric.endpoint(0)->send(1, 7, "twin");
  ASSERT_EQ(sink.wait_for(2), 2u);
  EXPECT_EQ(sink.messages[0].payload, "twin");
  EXPECT_EQ(sink.messages[1].payload, "twin");
  EXPECT_EQ(injector.stats().messages_duplicated, 1u);
  fabric.stop();
}

TEST(InProcFaults, DelayedMessageArrivesOutOfOrder) {
  // Message "slow" is delayed in-network; "fast", sent immediately after on
  // the same link, overtakes it. (The engine's reliable channel reorders by
  // sequence number above this layer.)
  fault::FaultPlan plan;
  plan.faultable_types = {7};
  fault::LinkFaults lf;
  lf.delay = 1.0;
  lf.delay_by = millis(100);
  plan.links[{0, 1}] = lf;
  fault::FaultInjector injector(plan);

  InProcTransport fabric(2, fast_net());
  Sink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.set_fault_injector(&injector);
  fabric.start();

  fabric.endpoint(0)->send(1, 7, "slow");
  fabric.endpoint(0)->send(1, 8, "fast");  // type 8 is not faultable
  ASSERT_EQ(sink.wait_for(2), 2u);
  EXPECT_EQ(sink.messages[0].payload, "fast");
  EXPECT_EQ(sink.messages[1].payload, "slow");
  EXPECT_EQ(injector.stats().messages_delayed, 1u);
  fabric.stop();
}

TEST(InProcFaults, RpcToleratesDuplicatedResponse) {
  fault::FaultPlan plan;
  plan.faultable_types = {msg_type::kRpcResponse};
  plan.default_link.duplicate = 1.0;
  fault::FaultInjector injector(plan);

  InProcTransport fabric(2, fast_net());
  Router r0(fabric.endpoint(0)), r1(fabric.endpoint(1));
  Rpc rpc0(&r0), rpc1(&r1);
  rpc1.register_method(1, [](NodeId, std::string_view arg) {
    return "echo:" + std::string(arg);
  });
  fabric.set_fault_injector(&injector);
  fabric.start();

  auto result = rpc0.call_sync(1, 1, "x", std::chrono::seconds(5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), "echo:x");
  fabric.stop();
}
