// Unit + property tests for the HAMR engine itself: graph validation, bins,
// scheduling semantics (partial vs full reduce, completion, spill, flow
// control, routing modes, streaming), and multi-job reuse.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "cluster/cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "engine/engine.h"
#include "engine/loaders.h"
#include "engine/rate_gate.h"
#include "obs/event_log.h"

using namespace hamr;
using namespace hamr::engine;

namespace {

struct Env {
  explicit Env(uint32_t nodes, EngineConfig config = EngineConfig::fast())
      : cluster(cluster::ClusterConfig::fast(nodes)),
        engine(cluster, config) {}

  cluster::Cluster cluster;
  Engine engine;
};

// Loader that synthesizes `user_tag` records per split: key "k<i>", value "v<i>".
class SyntheticLoader : public LoaderFlowlet {
 public:
  explicit SyntheticLoader(uint64_t per_chunk = 64) : per_chunk_(per_chunk) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
    const uint64_t end = std::min(split.user_tag, *cursor + per_chunk_);
    for (uint64_t i = *cursor; i < end; ++i) {
      const uint64_t id = split.offset + i;
      ctx.emit(0, "k" + std::to_string(id), "v" + std::to_string(id));
    }
    *cursor = end;
    return end < split.user_tag;
  }

 private:
  uint64_t per_chunk_;
};

// Sink that records everything it receives (as a map flowlet).
class CollectorMap : public MapFlowlet {
 public:
  // Node-shared collection across instances via a static registry keyed by a
  // test-provided tag would be overkill; instead write to the local store.
  void process(const KvPair& record, Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    lines_ += std::string(record.key) + "\t" + std::string(record.value) + "\n";
    (void)ctx;
  }
  void finish(Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    ctx.local_store().write_file("test/collected_node" + std::to_string(ctx.node()),
                                 lines_);
  }

 private:
  std::mutex mu_;
  std::string lines_;
};

class CollectorReduce : public ReduceFlowlet {
 public:
  void reduce(std::string_view, const std::vector<std::string_view>&,
              Context&) override {}
};

std::multiset<std::string> collected(cluster::Cluster& cluster) {
  std::multiset<std::string> out;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (const auto& path : cluster.node(n).store().list("test/collected_node")) {
      auto data = cluster.node(n).store().read_file(path);
      const std::string& text = data.value();
      size_t pos = 0;
      while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        if (eol > pos) out.insert(text.substr(pos, eol - pos));
        pos = eol + 1;
      }
    }
  }
  return out;
}

JobInputs synthetic_inputs(uint32_t loader, uint32_t nodes, uint64_t per_node) {
  JobInputs inputs;
  for (uint32_t n = 0; n < nodes; ++n) {
    InputSplit split;
    split.offset = n * per_node;  // id base
    split.user_tag = per_node;    // record count
    split.preferred_node = n;
    inputs.add(loader, split);
  }
  return inputs;
}

}  // namespace

// --- graph validation -----------------------------------------------------------

TEST(FlowletGraph, ValidatesAcyclic) {
  FlowletGraph g;
  auto a = g.add_map("a", [] { return std::make_unique<CollectorMap>(); });
  auto b = g.add_map("b", [] { return std::make_unique<CollectorMap>(); });
  g.connect(a, b);
  g.connect(b, a);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(FlowletGraph, LoaderWithInputsRejected) {
  FlowletGraph g;
  auto m = g.add_map("m", [] { return std::make_unique<CollectorMap>(); });
  auto l = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  g.connect(m, l);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(FlowletGraph, CombineIntoNonPartialReduceRejected) {
  FlowletGraph g;
  auto a = g.add_map("a", [] { return std::make_unique<CollectorMap>(); });
  auto b = g.add_map("b", [] { return std::make_unique<CollectorMap>(); });
  EdgeOptions options;
  options.combine = true;
  g.connect(a, b, options);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(FlowletGraph, TopologicalOrderRespectsEdges) {
  FlowletGraph g;
  auto a = g.add_loader("a", [] { return std::make_unique<SyntheticLoader>(); });
  auto b = g.add_map("b", [] { return std::make_unique<CollectorMap>(); });
  auto c = g.add_map("c", [] { return std::make_unique<CollectorMap>(); });
  g.connect(a, b);
  g.connect(a, c);
  g.connect(b, c);
  const auto order = g.topological_order();
  auto pos = [&](FlowletId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(FlowletGraph, PortsNumberedInConnectOrder) {
  FlowletGraph g;
  auto a = g.add_map("a", [] { return std::make_unique<CollectorMap>(); });
  auto b = g.add_map("b", [] { return std::make_unique<CollectorMap>(); });
  auto c = g.add_map("c", [] { return std::make_unique<CollectorMap>(); });
  const auto e0 = g.connect(a, b);
  const auto e1 = g.connect(a, c);
  EXPECT_EQ(g.edge(e0).src_port, 0u);
  EXPECT_EQ(g.edge(e1).src_port, 1u);
  EXPECT_EQ(g.flowlet(a).out_edges[1], e1);
}

// --- bins -------------------------------------------------------------------------

TEST(Bin, BuilderViewRoundTrip) {
  BinBuilder builder(7, 3);
  builder.add("k1", "v1");
  builder.add("", "");
  builder.add("k3", std::string(1000, 'x'));
  EXPECT_EQ(builder.records(), 3u);
  const std::string bin = builder.take();
  EXPECT_TRUE(builder.empty());  // reset for reuse

  BinView view(bin);
  EXPECT_EQ(view.job_epoch(), 7u);
  EXPECT_EQ(view.edge(), 3u);
  EXPECT_EQ(view.records(), 3u);
  KvPair record;
  ASSERT_TRUE(view.next(&record));
  EXPECT_EQ(record.key, "k1");
  ASSERT_TRUE(view.next(&record));
  EXPECT_EQ(record.key, "");
  ASSERT_TRUE(view.next(&record));
  EXPECT_EQ(record.value.size(), 1000u);
  EXPECT_FALSE(view.next(&record));
  view.rewind();
  ASSERT_TRUE(view.next(&record));
  EXPECT_EQ(record.key, "k1");
}

TEST(Bin, MalformedBinThrows) {
  EXPECT_THROW(BinView(std::string_view("\xff")), serde::DecodeError);
}

// --- RateGate --------------------------------------------------------------------

TEST(RateGate, DisabledIsFree) {
  RateGate gate(0);
  Stopwatch w;
  gate.charge(1000000);
  EXPECT_LT(w.elapsed_seconds(), 0.01);
  EXPECT_FALSE(gate.enabled());
}

TEST(RateGate, ChargesAtConfiguredRate) {
  RateGate gate(10000);  // 10k ops/s
  Stopwatch w;
  gate.charge(500);  // 50 ms
  EXPECT_GE(w.elapsed_seconds(), 0.045);
}

TEST(RateGate, SerializesConcurrentCallers) {
  RateGate gate(10000);
  Stopwatch w;
  std::thread t1([&] { gate.charge(250); });
  std::thread t2([&] { gate.charge(250); });
  t1.join();
  t2.join();
  EXPECT_GE(w.elapsed_seconds(), 0.045);  // 500 ops serialized
}

// --- end-to-end engine semantics ---------------------------------------------------

TEST(Engine, LoaderToMapDeliversAllRecords) {
  Env env(4);
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  const auto result = env.engine.run(g, synthetic_inputs(loader, 4, 100));
  EXPECT_EQ(result.records_emitted, 400u);

  const auto got = collected(env.cluster);
  EXPECT_EQ(got.size(), 400u);
  EXPECT_EQ(got.count("k0\tv0"), 1u);
  EXPECT_EQ(got.count("k399\tv399"), 1u);
}

TEST(Engine, KeyRoutingSendsEachKeyToOneNode) {
  Env env(4);
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);  // default: key-hash routing
  env.engine.run(g, synthetic_inputs(loader, 4, 50));

  // Every record with the same key landed on exactly the partition node.
  for (uint32_t n = 0; n < 4; ++n) {
    auto data = env.cluster.node(n).store().read_file("test/collected_node" +
                                                      std::to_string(n));
    if (!data.ok()) continue;
    size_t pos = 0;
    const std::string& text = data.value();
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line = std::string_view(text).substr(pos, eol - pos);
      const auto key = line.substr(0, line.find('\t'));
      EXPECT_EQ(partition_of(key, 4), n) << line;
      pos = eol + 1;
    }
  }
}

TEST(Engine, ReduceGroupsAllValuesOfKey) {
  Env env(3);
  // Loader emits k<i mod 10> so each key has many values.
  class ModLoader : public LoaderFlowlet {
   public:
    bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
      for (uint64_t i = 0; i < split.user_tag; ++i) {
        ctx.emit(0, "k" + std::to_string(i % 10), "x");
      }
      (void)cursor;
      return false;
    }
  };
  class CountingReduce : public ReduceFlowlet {
   public:
    void reduce(std::string_view key, const std::vector<std::string_view>& values,
                Context& ctx) override {
      std::lock_guard<std::mutex> lock(mu_);
      lines_ += std::string(key) + "\t" + std::to_string(values.size()) + "\n";
      (void)ctx;
    }
    void finish(Context& ctx) override {
      ctx.local_store().write_file("test/collected_node" + std::to_string(ctx.node()),
                                   lines_);
    }

   private:
    std::mutex mu_;
    std::string lines_;
  };

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<ModLoader>(); });
  auto red = g.add_reduce("r", [] { return std::make_unique<CountingReduce>(); });
  g.connect(loader, red);
  JobInputs inputs;
  for (uint32_t n = 0; n < 3; ++n) {
    InputSplit split;
    split.user_tag = 100;
    split.preferred_node = n;
    inputs.add(loader, split);
  }
  env.engine.run(g, inputs);

  const auto got = collected(env.cluster);
  ASSERT_EQ(got.size(), 10u);  // one line per key: grouping collected all
  for (const std::string& line : got) {
    EXPECT_NE(line.find("\t30"), std::string::npos) << line;  // 3 nodes x 10 each
  }
}

TEST(Engine, ReduceSpillsUnderMemoryPressureAndStaysCorrect) {
  EngineConfig config = EngineConfig::fast();
  config.memory_budget_bytes = 8 * 1024;  // force spills
  Env env(2, config);

  class BigValueLoader : public LoaderFlowlet {
   public:
    bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
      const uint64_t end = std::min(split.user_tag, *cursor + 16);
      for (uint64_t i = *cursor; i < end; ++i) {
        ctx.emit(0, "key" + std::to_string(i % 7), std::string(512, 'v'));
      }
      *cursor = end;
      return end < split.user_tag;
    }
  };
  class SizeReduce : public ReduceFlowlet {
   public:
    void reduce(std::string_view key, const std::vector<std::string_view>& values,
                Context& ctx) override {
      for (const auto& v : values) EXPECT_EQ(v.size(), 512u);
      std::lock_guard<std::mutex> lock(mu_);
      lines_ += std::string(key) + "\t" + std::to_string(values.size()) + "\n";
      (void)ctx;
    }
    void finish(Context& ctx) override {
      ctx.local_store().write_file("test/collected_node" + std::to_string(ctx.node()),
                                   lines_);
    }

   private:
    std::mutex mu_;
    std::string lines_;
  };

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<BigValueLoader>(); });
  auto red = g.add_reduce("r", [] { return std::make_unique<SizeReduce>(); });
  g.connect(loader, red);
  const auto result = env.engine.run(g, synthetic_inputs(loader, 2, 200));
  EXPECT_GT(result.spill_bytes, 0u) << "expected the memory budget to force spills";

  uint64_t total = 0;
  for (const std::string& line : collected(env.cluster)) {
    total += std::stoull(line.substr(line.find('\t') + 1));
  }
  EXPECT_EQ(total, 400u);
}

TEST(Engine, PartialReduceEmitsOnceOnCompletion) {
  Env env(2);
  class SumPartial : public PartialReduceFlowlet {
   public:
    void fold(std::string_view, std::string_view value, std::string& acc) override {
      const uint64_t prev = acc.empty() ? 0 : std::stoull(acc);
      acc = std::to_string(prev + std::stoull(std::string(value)));
    }
  };

  FlowletGraph g;
  class OneKeyLoader : public LoaderFlowlet {
   public:
    bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
      for (uint64_t i = 0; i < split.user_tag; ++i) ctx.emit(0, "total", "1");
      (void)cursor;
      return false;
    }
  };
  auto loader = g.add_loader("l", [] { return std::make_unique<OneKeyLoader>(); });
  auto partial = g.add_partial_reduce("p", [] { return std::make_unique<SumPartial>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, partial);
  g.connect(partial, sink);
  env.engine.run(g, synthetic_inputs(loader, 2, 500));

  const auto got = collected(env.cluster);
  ASSERT_EQ(got.size(), 1u);  // exactly one emission for the single key
  EXPECT_EQ(*got.begin(), "total\t1000");
}

TEST(Engine, EmitToNodeAndBroadcast) {
  Env env(4);
  class DirectedLoader : public LoaderFlowlet {
   public:
    bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
      (void)cursor;
      if (split.preferred_node == 0) {
        ctx.emit_to_node(0, 2, "direct", "to-node-2");
        ctx.emit_broadcast(0, "bcast", "everywhere");
      }
      return false;
    }
  };
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<DirectedLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  env.engine.run(g, synthetic_inputs(loader, 4, 1));

  // direct record only on node 2; broadcast on all 4 nodes.
  for (uint32_t n = 0; n < 4; ++n) {
    auto data = env.cluster.node(n).store().read_file("test/collected_node" +
                                                      std::to_string(n));
    const std::string text = data.ok() ? data.value() : "";
    EXPECT_EQ(text.find("direct") != std::string::npos, n == 2) << "node " << n;
    EXPECT_NE(text.find("bcast"), std::string::npos) << "node " << n;
  }
}

TEST(Engine, FlowControlStallsLoadersButCompletes) {
  EngineConfig config = EngineConfig::fast();
  config.flow_control_high_bytes = 2 * 1024;  // tiny watermark
  config.bin_size_bytes = 512;
  Env env(2, config);

  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(16); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  const auto result = env.engine.run(g, synthetic_inputs(loader, 2, 3000));
  EXPECT_EQ(collected(env.cluster).size(), 6000u);
  EXPECT_GT(result.flow_control_stalls, 0u);
}

TEST(Engine, FlowControlDisabledNeverStalls) {
  EngineConfig config = EngineConfig::fast();
  config.flow_control_high_bytes = 1;  // would trip constantly...
  config.flow_control_enabled = false;  // ...but it is off
  Env env(2, config);
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  const auto result = env.engine.run(g, synthetic_inputs(loader, 2, 500));
  EXPECT_EQ(result.flow_control_stalls, 0u);
  EXPECT_EQ(collected(env.cluster).size(), 1000u);
}

TEST(Engine, MultipleJobsReuseEngine) {
  Env env(2);
  for (int round = 0; round < 3; ++round) {
    FlowletGraph g;
    auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
    auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
    g.connect(loader, sink);
    env.engine.run(g, synthetic_inputs(loader, 2, 100 * (round + 1)));
    EXPECT_EQ(collected(env.cluster).size(), 200u * (round + 1)) << round;
  }
}

TEST(Engine, FanInAndFanOutGraph) {
  Env env(3);
  FlowletGraph g;
  auto l1 = g.add_loader("l1", [] { return std::make_unique<SyntheticLoader>(); });
  auto l2 = g.add_loader("l2", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(l1, sink);
  g.connect(l2, sink);

  JobInputs inputs;
  InputSplit s1;
  s1.offset = 0;
  s1.user_tag = 50;
  s1.preferred_node = 0;
  inputs.add(l1, s1);
  InputSplit s2;
  s2.offset = 1000;
  s2.user_tag = 70;
  s2.preferred_node = 1;
  inputs.add(l2, s2);
  env.engine.run(g, inputs);
  EXPECT_EQ(collected(env.cluster).size(), 120u);
}

TEST(Engine, EmptyInputCompletes) {
  Env env(2);
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto red = g.add_reduce("r", [] { return std::make_unique<CollectorReduce>(); });
  g.connect(loader, red);
  JobInputs inputs;  // no splits at all
  const auto result = env.engine.run(g, inputs);
  EXPECT_EQ(result.records_emitted, 0u);
}

TEST(Engine, EmitDuringStartThrows) {
  Env env(1);
  class BadStart : public MapFlowlet {
   public:
    void start(Context& ctx) override { ctx.emit(0, "k", "v"); }
    void process(const KvPair&, Context&) override {}
  };
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto bad = g.add_map("bad", [] { return std::make_unique<BadStart>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, bad);
  g.connect(bad, sink);
  EXPECT_THROW(env.engine.run(g, synthetic_inputs(loader, 1, 1)), std::logic_error);
}

TEST(Engine, StreamingWindowsFlushPeriodically) {
  Env env(2);
  class TickSource : public RateLimitedSource {
   public:
    TickSource() : RateLimitedSource(2000, 32) {}
    void make_record(const InputSplit& split, uint64_t index, std::string* key,
                     std::string* value) override {
      *key = "tick" + std::to_string(index % 4);
      *value = "1";
      (void)split;
    }
  };
  class SumPartial : public PartialReduceFlowlet {
   public:
    void fold(std::string_view, std::string_view value, std::string& acc) override {
      const uint64_t prev = acc.empty() ? 0 : std::stoull(acc);
      acc = std::to_string(prev + std::stoull(std::string(value)));
    }
  };

  FlowletGraph g;
  auto source = g.add_loader("src", [] { return std::make_unique<TickSource>(); });
  auto window = g.add_partial_reduce("win", [] { return std::make_unique<SumPartial>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(source, window);
  g.connect(window, sink);

  JobInputs inputs;
  for (uint32_t n = 0; n < 2; ++n) {
    InputSplit split;
    split.preferred_node = n;
    inputs.add(source, split);
  }
  env.engine.run_streaming(g, inputs, millis(400), millis(100));

  // Multiple window flushes => more than one emission per key.
  const auto got = collected(env.cluster);
  EXPECT_GT(got.size(), 4u);
  uint64_t total = 0;
  for (const std::string& line : got) {
    total += std::stoull(line.substr(line.find('\t') + 1));
  }
  EXPECT_GT(total, 0u);
}

TEST(Engine, RunningTwoJobsConcurrentlyRejected) {
  Env env(1);
  // The public contract is one job at a time; verified via the guard flag.
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("s", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  env.engine.run(g, synthetic_inputs(loader, 1, 10));  // completes fine
  // (Concurrent-run rejection is covered by the logic_error guard; invoking
  // it concurrently here would race the test itself, so we assert the flag
  // resets by simply running again.)
  env.engine.run(g, synthetic_inputs(loader, 1, 10));
}

namespace {

// Loader that parks inside its first chunk until released (or the engine
// raises the stream-stop flag, which request_cancel does), so tests can hold
// a run in-flight deterministically.
class ParkedLoader : public LoaderFlowlet {
 public:
  ParkedLoader(std::shared_ptr<std::atomic<int>> parked,
               std::shared_ptr<std::atomic<bool>> release)
      : parked_(std::move(parked)), release_(std::move(release)) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor,
                  Context& ctx) override {
    parked_->fetch_add(1);
    while (!release_->load() && !ctx.stream_stopping()) {
      std::this_thread::sleep_for(millis(1));
    }
    for (uint64_t i = 0; i < split.user_tag; ++i) {
      ctx.emit(0, "k" + std::to_string(split.offset + i), "v");
    }
    (void)cursor;
    return false;
  }

 private:
  std::shared_ptr<std::atomic<int>> parked_;
  std::shared_ptr<std::atomic<bool>> release_;
};

struct ParkedRun {
  std::shared_ptr<std::atomic<int>> parked = std::make_shared<std::atomic<int>>(0);
  std::shared_ptr<std::atomic<bool>> release = std::make_shared<std::atomic<bool>>(false);
  FlowletGraph graph;
  FlowletId loader = 0;

  ParkedRun() {
    auto p = parked;
    auto r = release;
    loader = graph.add_loader(
        "parked", [p, r] { return std::make_unique<ParkedLoader>(p, r); });
    auto sink = graph.add_map("s", [] { return std::make_unique<CollectorMap>(); });
    graph.connect(loader, sink);
  }

  void wait_parked() {
    while (parked->load() == 0) std::this_thread::sleep_for(millis(1));
  }
};

}  // namespace

TEST(Engine, SecondRunWhileFirstInFlightThrowsLogicError) {
  Env env(1);
  ParkedRun pr;
  std::thread first([&] {
    env.engine.run(pr.graph, synthetic_inputs(pr.loader, 1, 4));
  });
  pr.wait_parked();
  // The slot is genuinely occupied: a concurrent entry fails loudly instead
  // of corrupting the in-flight job.
  EXPECT_THROW(env.engine.run(pr.graph, synthetic_inputs(pr.loader, 1, 4)),
               std::logic_error);
  pr.release->store(true);
  first.join();
  // ...and the rejection left the running job and the slot intact.
  env.engine.run(pr.graph, synthetic_inputs(pr.loader, 1, 4));
}

TEST(Engine, FailedRunReleasesSlotForNextJob) {
  Env env(1);
  FlowletGraph bad;
  bad.add_loader("broken", nullptr);
  EXPECT_THROW(env.engine.run(bad, JobInputs{}), std::invalid_argument);

  // The guard must release the run slot on the throwing path, or this second
  // run would be rejected as concurrent.
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("s", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  const JobResult result = env.engine.run(g, synthetic_inputs(loader, 1, 10));
  EXPECT_FALSE(result.cancelled);
}

TEST(Engine, RequestCancelAbortsRunAndClearsForNextJob) {
  Env env(2);
  env.engine.request_cancel();  // idle engine: safe no-op

  ParkedRun pr;
  JobResult result;
  std::thread run([&] {
    result = env.engine.run(pr.graph, synthetic_inputs(pr.loader, 2, 64));
  });
  pr.wait_parked();
  env.engine.request_cancel();  // never released: only cancel can end it
  run.join();
  EXPECT_TRUE(result.cancelled);

  // The cancel flag does not leak into the next job.
  ParkedRun next;
  next.release->store(true);
  const JobResult clean = env.engine.run(next.graph,
                                         synthetic_inputs(next.loader, 2, 8));
  EXPECT_FALSE(clean.cancelled);
}

// --- event-log ordering invariants ----------------------------------------------
//
// These tests plant an obs::EventLog in the engine config and assert ordering
// properties that hold in EVERY legal schedule (the runtime records each event
// before the atomic transition that makes it causally visible). They contain
// no sleeps and no timing assumptions, so they are deterministic under
// repetition and under sanitizers.

namespace {

EngineConfig logged_config(obs::EventLog* log) {
  EngineConfig config = EngineConfig::fast();
  config.event_log = log;
  return config;
}

}  // namespace

TEST(EngineEventLog, BinsProcessedBeforeFlowletCompletes) {
  obs::EventLog log;
  Env env(4, logged_config(&log));
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  env.engine.run(g, synthetic_inputs(loader, 4, 200));

  // Every enqueued bin was processed, per (node, flowlet) stream.
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(log.count(n, sink, obs::EventKind::kBinEnqueued),
              log.count(n, sink, obs::EventKind::kBinProcessed))
        << "node " << n;
    // State machine is monotonic: every kBinProcessed precedes the node's
    // kFlowletReady, which precedes its kFlowletComplete.
    uint64_t ready_seq = 0, complete_seq = 0;
    uint64_t ready_count = 0, complete_count = 0;
    for (const obs::Event& ev : log.stream(n, sink)) {
      if (ev.kind == obs::EventKind::kFlowletReady) {
        ready_seq = ev.seq;
        ++ready_count;
      }
      if (ev.kind == obs::EventKind::kFlowletComplete) {
        complete_seq = ev.seq;
        ++complete_count;
      }
    }
    ASSERT_EQ(ready_count, 1u) << "node " << n;
    ASSERT_EQ(complete_count, 1u) << "node " << n;
    EXPECT_LT(ready_seq, complete_seq) << "node " << n;
    for (const obs::Event& ev : log.stream(n, sink)) {
      if (ev.kind == obs::EventKind::kBinProcessed) {
        EXPECT_LT(ev.seq, ready_seq) << "node " << n;
      }
    }
  }
}

TEST(EngineEventLog, CompletionPropagatesExactlyOnce) {
  obs::EventLog log;
  Env env(3, logged_config(&log));
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  env.engine.run(g, synthetic_inputs(loader, 3, 50));

  // Each (node, flowlet) goes Ready -> Complete -> Broadcast exactly once:
  // the finish_scheduled exchange is the only gate into that chain.
  for (uint32_t n = 0; n < 3; ++n) {
    for (FlowletId f : {loader, sink}) {
      EXPECT_EQ(log.count(n, f, obs::EventKind::kFlowletReady), 1u)
          << "node " << n << " flowlet " << f;
      EXPECT_EQ(log.count(n, f, obs::EventKind::kFlowletComplete), 1u)
          << "node " << n << " flowlet " << f;
      EXPECT_EQ(log.count(n, f, obs::EventKind::kCompleteBroadcast), 1u)
          << "node " << n << " flowlet " << f;
    }
  }
}

TEST(EngineEventLog, ReduceFiresAfterAllUpstreamChannelsComplete) {
  obs::EventLog log;
  Env env(3, logged_config(&log));
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
  auto red = g.add_reduce("r", [] { return std::make_unique<CollectorReduce>(); });
  g.connect(loader, red);
  env.engine.run(g, synthetic_inputs(loader, 3, 100));

  for (uint32_t n = 0; n < 3; ++n) {
    const auto stream = log.stream(n, red);
    // One COMPLETE channel per upstream node, from distinct sources.
    std::set<int64_t> sources;
    uint64_t last_channel_seq = 0;
    uint64_t ready_seq = 0;
    for (const obs::Event& ev : stream) {
      if (ev.kind == obs::EventKind::kChannelComplete) {
        sources.insert(ev.aux);
        last_channel_seq = std::max(last_channel_seq, ev.seq);
      }
      if (ev.kind == obs::EventKind::kFlowletReady) ready_seq = ev.seq;
    }
    EXPECT_EQ(sources.size(), 3u) << "node " << n;
    // The reduce only becomes Ready after the LAST channel completes, and
    // its stage tasks run only after Ready.
    EXPECT_GT(ready_seq, last_channel_seq) << "node " << n;
    for (const obs::Event& ev : stream) {
      if (ev.kind == obs::EventKind::kReduceStageRun) {
        EXPECT_GT(ev.seq, ready_seq) << "node " << n;
      }
    }
  }
}

TEST(EngineEventLog, FlowControlStallsPauseAndResumeSameTask) {
  obs::EventLog log;
  EngineConfig config = logged_config(&log);
  config.flow_control_high_bytes = 2 * 1024;  // tiny watermark: force stalls
  config.bin_size_bytes = 512;
  Env env(2, config);
  FlowletGraph g;
  auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(16); });
  auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
  g.connect(loader, sink);
  const auto result = env.engine.run(g, synthetic_inputs(loader, 2, 3000));

  const uint64_t begins = log.count(obs::EventKind::kStallBegin);
  ASSERT_GT(begins, 0u) << "watermark too high to trip flow control";
  EXPECT_EQ(begins, log.count(obs::EventKind::kStallEnd));
  EXPECT_EQ(begins, result.flow_control_stalls);

  // Within each (node, loader) stream, stalls pause and resume the SAME
  // task: every StallBegin(tag) is closed by a later StallEnd(tag) before
  // that tag can stall again (defer logs End before re-queuing the task).
  for (uint32_t n = 0; n < 2; ++n) {
    std::multiset<int64_t> open;
    for (const obs::Event& ev : log.stream(n, loader)) {
      if (ev.kind == obs::EventKind::kStallBegin) {
        EXPECT_EQ(open.count(ev.aux), 0u)
            << "task tag " << ev.aux << " stalled twice without resuming";
        open.insert(ev.aux);
      } else if (ev.kind == obs::EventKind::kStallEnd) {
        ASSERT_EQ(open.count(ev.aux), 1u)
            << "StallEnd for tag " << ev.aux << " without open StallBegin";
        open.erase(ev.aux);
      }
    }
    EXPECT_TRUE(open.empty()) << "node " << n << " has unclosed stalls";
  }
}

// --- stealing scheduler ----------------------------------------------------------
//
// The same four ordering invariants, rerun with 8 workers per node (the
// default test envs use 2): per-worker sharded deques with stealing must not
// reorder any (node, flowlet) event stream the completion protocol depends
// on. Each scenario repeats to give interleavings a chance to vary; the
// invariants are schedule-free, so every repetition must hold exactly.

namespace {

constexpr uint32_t kWideWorkers = 8;
constexpr int kWideRepeats = 3;

struct WideEnv {
  explicit WideEnv(uint32_t nodes, EngineConfig config = EngineConfig::fast())
      : cluster(cluster::ClusterConfig::fast(nodes, kWideWorkers)),
        engine(cluster, config) {}

  cluster::Cluster cluster;
  Engine engine;
};

uint64_t total_counter(cluster::Cluster& cluster, const std::string& name) {
  uint64_t total = 0;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    total += cluster.node(n).metrics().counter(name)->get();
  }
  return total;
}

}  // namespace

TEST(EngineStealing, BinsProcessedBeforeFlowletCompletesAtEightWorkers) {
  uint64_t steals = 0;
  for (int rep = 0; rep < kWideRepeats; ++rep) {
    obs::EventLog log;
    WideEnv env(4, logged_config(&log));
    FlowletGraph g;
    auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
    auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
    g.connect(loader, sink);
    env.engine.run(g, synthetic_inputs(loader, 4, 200));

    for (uint32_t n = 0; n < 4; ++n) {
      EXPECT_EQ(log.count(n, sink, obs::EventKind::kBinEnqueued),
                log.count(n, sink, obs::EventKind::kBinProcessed))
          << "rep " << rep << " node " << n;
      uint64_t ready_seq = 0, complete_seq = 0;
      uint64_t ready_count = 0, complete_count = 0;
      for (const obs::Event& ev : log.stream(n, sink)) {
        if (ev.kind == obs::EventKind::kFlowletReady) {
          ready_seq = ev.seq;
          ++ready_count;
        }
        if (ev.kind == obs::EventKind::kFlowletComplete) {
          complete_seq = ev.seq;
          ++complete_count;
        }
      }
      ASSERT_EQ(ready_count, 1u) << "rep " << rep << " node " << n;
      ASSERT_EQ(complete_count, 1u) << "rep " << rep << " node " << n;
      EXPECT_LT(ready_seq, complete_seq) << "rep " << rep << " node " << n;
      for (const obs::Event& ev : log.stream(n, sink)) {
        if (ev.kind == obs::EventKind::kBinProcessed) {
          EXPECT_LT(ev.seq, ready_seq) << "rep " << rep << " node " << n;
        }
      }
    }
    steals += total_counter(env.cluster, "engine.sched_steal");
  }
  // With 8 workers and only 4 sender shards populated, idle workers must
  // have stolen at least once across the repetitions.
  EXPECT_GT(steals, 0u) << "stealing never engaged at 8 workers";
}

TEST(EngineStealing, CompletionPropagatesExactlyOnceAtEightWorkers) {
  for (int rep = 0; rep < kWideRepeats; ++rep) {
    obs::EventLog log;
    WideEnv env(3, logged_config(&log));
    FlowletGraph g;
    auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
    auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
    g.connect(loader, sink);
    env.engine.run(g, synthetic_inputs(loader, 3, 50));

    for (uint32_t n = 0; n < 3; ++n) {
      for (FlowletId f : {loader, sink}) {
        EXPECT_EQ(log.count(n, f, obs::EventKind::kFlowletReady), 1u)
            << "rep " << rep << " node " << n << " flowlet " << f;
        EXPECT_EQ(log.count(n, f, obs::EventKind::kFlowletComplete), 1u)
            << "rep " << rep << " node " << n << " flowlet " << f;
        EXPECT_EQ(log.count(n, f, obs::EventKind::kCompleteBroadcast), 1u)
            << "rep " << rep << " node " << n << " flowlet " << f;
      }
    }
  }
}

TEST(EngineStealing, ReduceFiresAfterAllUpstreamChannelsCompleteAtEightWorkers) {
  for (int rep = 0; rep < kWideRepeats; ++rep) {
    obs::EventLog log;
    WideEnv env(3, logged_config(&log));
    FlowletGraph g;
    auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(); });
    auto red = g.add_reduce("r", [] { return std::make_unique<CollectorReduce>(); });
    g.connect(loader, red);
    env.engine.run(g, synthetic_inputs(loader, 3, 100));

    for (uint32_t n = 0; n < 3; ++n) {
      const auto stream = log.stream(n, red);
      std::set<int64_t> sources;
      uint64_t last_channel_seq = 0;
      uint64_t ready_seq = 0;
      for (const obs::Event& ev : stream) {
        if (ev.kind == obs::EventKind::kChannelComplete) {
          sources.insert(ev.aux);
          last_channel_seq = std::max(last_channel_seq, ev.seq);
        }
        if (ev.kind == obs::EventKind::kFlowletReady) ready_seq = ev.seq;
      }
      EXPECT_EQ(sources.size(), 3u) << "rep " << rep << " node " << n;
      EXPECT_GT(ready_seq, last_channel_seq) << "rep " << rep << " node " << n;
      for (const obs::Event& ev : stream) {
        if (ev.kind == obs::EventKind::kReduceStageRun) {
          EXPECT_GT(ev.seq, ready_seq) << "rep " << rep << " node " << n;
        }
      }
    }
  }
}

TEST(EngineStealing, FlowControlStallsPauseAndResumeSameTaskAtEightWorkers) {
  for (int rep = 0; rep < kWideRepeats; ++rep) {
    obs::EventLog log;
    EngineConfig config = logged_config(&log);
    config.flow_control_high_bytes = 2 * 1024;
    config.bin_size_bytes = 512;
    WideEnv env(2, config);
    FlowletGraph g;
    auto loader = g.add_loader("l", [] { return std::make_unique<SyntheticLoader>(16); });
    auto sink = g.add_map("sink", [] { return std::make_unique<CollectorMap>(); });
    g.connect(loader, sink);
    const auto result = env.engine.run(g, synthetic_inputs(loader, 2, 3000));

    const uint64_t begins = log.count(obs::EventKind::kStallBegin);
    ASSERT_GT(begins, 0u) << "rep " << rep << ": watermark too high";
    EXPECT_EQ(begins, log.count(obs::EventKind::kStallEnd)) << "rep " << rep;
    EXPECT_EQ(begins, result.flow_control_stalls) << "rep " << rep;

    for (uint32_t n = 0; n < 2; ++n) {
      std::multiset<int64_t> open;
      for (const obs::Event& ev : log.stream(n, loader)) {
        if (ev.kind == obs::EventKind::kStallBegin) {
          EXPECT_EQ(open.count(ev.aux), 0u)
              << "rep " << rep << " tag " << ev.aux << " stalled twice";
          open.insert(ev.aux);
        } else if (ev.kind == obs::EventKind::kStallEnd) {
          ASSERT_EQ(open.count(ev.aux), 1u)
              << "rep " << rep << " StallEnd for tag " << ev.aux
              << " without open StallBegin";
          open.erase(ev.aux);
        }
      }
      EXPECT_TRUE(open.empty()) << "rep " << rep << " node " << n;
    }
  }
}
