// End-to-end correctness: every benchmark runs on BOTH engines over the same
// generated dataset and must match a sequential reference implementation.
// Cost models are disabled (fast cluster) - these tests check data paths.
#include <gtest/gtest.h>

#include "apps/classification.h"
#include "apps/histograms.h"
#include "apps/kcliques.h"
#include "apps/kmeans.h"
#include "apps/naive_bayes.h"
#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "gen/generators.h"

using namespace hamr;

namespace {


}  // namespace

TEST(AppsIntegration, WordCount) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::TextSpec spec;
  spec.total_bytes = 128 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "wc", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  apps::wordcount::run_hamr(env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);
  apps::wordcount::run_baseline(env, staged);
  EXPECT_EQ(apps::wordcount::baseline_output(env), expected);
}

TEST(AppsIntegration, WordCountWithCombinerAndFullReduce) {
  apps::BenchEnv env = apps::BenchEnv::fast(3);
  gen::TextSpec spec;
  spec.total_bytes = 96 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::text_shard(spec, i, 3); });
  auto staged = apps::stage_input(env, "wc", shards, 16 * 1024);
  const auto expected = apps::wordcount::reference(shards);

  apps::wordcount::run_hamr(env, staged, /*combine=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);

  apps::wordcount::run_hamr(env, staged, /*combine=*/false, /*use_full_reduce=*/true);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);

  apps::wordcount::run_baseline(env, staged, /*use_combiner=*/false);
  EXPECT_EQ(apps::wordcount::baseline_output(env), expected);
}

TEST(AppsIntegration, HistogramMovies) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::MoviesSpec spec;
  spec.total_bytes = 128 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::movies_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "hm", shards, 16 * 1024);
  const auto expected =
      apps::histograms::reference(shards, apps::histograms::Kind::kMovies);

  apps::histograms::run_hamr(env, staged, apps::histograms::Kind::kMovies);
  EXPECT_EQ(apps::histograms::hamr_output(env, apps::histograms::Kind::kMovies),
            expected);
  apps::histograms::run_baseline(env, staged, apps::histograms::Kind::kMovies);
  EXPECT_EQ(apps::histograms::baseline_output(env, apps::histograms::Kind::kMovies),
            expected);
}

TEST(AppsIntegration, HistogramRatings) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::MoviesSpec spec;
  spec.total_bytes = 128 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::movies_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "hr", shards, 16 * 1024);
  const auto expected =
      apps::histograms::reference(shards, apps::histograms::Kind::kRatings);
  ASSERT_EQ(expected.size(), 5u);  // exactly the 5 rating keys

  apps::histograms::run_hamr(env, staged, apps::histograms::Kind::kRatings,
                             /*combine=*/false);
  EXPECT_EQ(apps::histograms::hamr_output(env, apps::histograms::Kind::kRatings),
            expected);
  // Combiner variant (Table 3) must agree too.
  apps::histograms::run_hamr(env, staged, apps::histograms::Kind::kRatings,
                             /*combine=*/true);
  EXPECT_EQ(apps::histograms::hamr_output(env, apps::histograms::Kind::kRatings),
            expected);
  apps::histograms::run_baseline(env, staged, apps::histograms::Kind::kRatings);
  EXPECT_EQ(apps::histograms::baseline_output(env, apps::histograms::Kind::kRatings),
            expected);
}

TEST(AppsIntegration, NaiveBayes) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::DocsSpec spec;
  spec.total_bytes = 128 * 1024;
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::docs_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "nb", shards, 16 * 1024);
  const auto expected = apps::naive_bayes::reference(shards);

  apps::naive_bayes::run_hamr(env, staged);
  EXPECT_EQ(apps::naive_bayes::hamr_output(env), expected);
  apps::naive_bayes::run_baseline(env, staged);
  EXPECT_EQ(apps::naive_bayes::baseline_output(env), expected);
}

TEST(AppsIntegration, KMeans) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::MoviesSpec spec;
  spec.total_bytes = 192 * 1024;
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::movie_vectors_shard(spec, i, 4);
  });
  auto staged = apps::stage_input(env, "km", shards, 16 * 1024);
  const auto params = apps::kmeans::make_params(shards, 6);
  const auto expected = apps::kmeans::reference(shards, params);
  ASSERT_FALSE(expected.new_centroids.empty());

  apps::kmeans::run_hamr(env, staged, params);
  EXPECT_EQ(apps::kmeans::hamr_new_centroids(env), expected.new_centroids);
  EXPECT_EQ(apps::kmeans::hamr_cluster_sizes(env), expected.cluster_sizes);

  apps::kmeans::run_baseline(env, staged, params);
  EXPECT_EQ(apps::kmeans::baseline_new_centroids(env), expected.new_centroids);

  // Ablation variant (ship full vectors) must agree with the locality path.
  apps::kmeans::run_hamr(env, staged, params, /*ship_full_vectors=*/true);
  EXPECT_EQ(apps::kmeans::hamr_new_centroids(env), expected.new_centroids);
}

TEST(AppsIntegration, Classification) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::MoviesSpec spec;
  spec.total_bytes = 128 * 1024;
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::movie_vectors_shard(spec, i, 4);
  });
  auto staged = apps::stage_input(env, "cl", shards, 16 * 1024);
  const auto params = apps::kmeans::make_params(shards, 5);
  const auto expected = apps::classification::reference(shards, params);

  apps::classification::run_hamr(env, staged, params);
  EXPECT_EQ(apps::classification::hamr_cluster_sizes(env), expected);
  apps::classification::run_baseline(env, staged, params);
  EXPECT_EQ(apps::classification::baseline_cluster_sizes(env), expected);
}

TEST(AppsIntegration, PageRank) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::WebGraphSpec spec;
  spec.num_pages = 512;
  spec.num_edges = 4096;
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, 4);
  });
  auto staged = apps::stage_input(env, "pr", shards, 16 * 1024);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;
  const auto expected = apps::pagerank::reference(shards, params);

  apps::pagerank::run_hamr(env, staged, params);
  const auto hamr = apps::pagerank::hamr_ranks(env, params);
  ASSERT_EQ(hamr.size(), expected.size());
  for (const auto& [page, rank] : expected) {
    EXPECT_NEAR(hamr.at(page), rank, 1e-12) << "page " << page;
  }

  apps::pagerank::run_baseline(env, staged, params);
  const auto base = apps::pagerank::baseline_ranks(env, params, params.iterations);
  ASSERT_EQ(base.size(), expected.size());
  for (const auto& [page, rank] : expected) {
    EXPECT_NEAR(base.at(page), rank, 1e-12) << "page " << page;
  }

  // Ablation variant (reload edges each iteration) computes the same ranks.
  apps::pagerank::run_hamr(env, staged, params, /*reload_each_iteration=*/true);
  const auto reloaded = apps::pagerank::hamr_ranks(env, params);
  for (const auto& [page, rank] : expected) {
    EXPECT_NEAR(reloaded.at(page), rank, 1e-12) << "page " << page;
  }
}

TEST(AppsIntegration, KCliques) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::RmatSpec spec;
  spec.scale = 7;       // 128 vertices
  spec.num_edges = 1500;  // dense enough for 4-cliques
  auto shards = apps::make_shards(env.nodes(),
                            [&](uint32_t i) { return gen::rmat_shard(spec, i, 4); });
  auto staged = apps::stage_input(env, "kc", shards, 8 * 1024);
  apps::kcliques::Params params;
  params.k = 4;
  const auto expected = apps::kcliques::reference(shards, params);
  ASSERT_FALSE(expected.empty()) << "generator produced no 4-cliques; retune";

  apps::kcliques::run_hamr(env, staged, params);
  EXPECT_EQ(apps::kcliques::hamr_cliques(env), expected);
  apps::kcliques::run_baseline(env, staged, params);
  EXPECT_EQ(apps::kcliques::baseline_cliques(env), expected);
}
