// JobService tests: admission control (bounded queue, explicit shedding),
// per-tenant priority + weighted fair share, concurrent execution on
// executor lanes, cancel / deadline lifecycle, the RPC front-end over both
// transports, and two concurrent word counts staying byte-identical under
// message chaos.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "fault/fault.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/tcp_transport.h"
#include "obs/event_log.h"
#include "service/job_rpc.h"
#include "service/job_service.h"

using namespace hamr;
using namespace hamr::engine;
using namespace hamr::service;

namespace {

// Rendezvous/latch shared by every instance of a job's loader: opens once
// `arrived >= release_at` (or when open() drops the bar). Loaders also bail
// on stream_stopping(), which Engine::request_cancel flips, so gated jobs
// stay cancellable.
struct Gate {
  std::atomic<int> arrived{0};
  std::atomic<int> release_at{std::numeric_limits<int>::max()};

  void open() { release_at.store(0); }
  bool is_open() const { return arrived.load() >= release_at.load(); }
};

class GateLoader : public LoaderFlowlet {
 public:
  explicit GateLoader(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor,
                  Context& ctx) override {
    if (*cursor == 0) {
      *cursor = 1;
      gate_->arrived.fetch_add(1);
    }
    while (!gate_->is_open() && !ctx.stream_stopping()) {
      std::this_thread::sleep_for(millis(1));
    }
    for (uint64_t i = 0; i < split.user_tag; ++i) {
      const uint64_t id = split.offset + i;
      ctx.emit(0, "k" + std::to_string(id), "v" + std::to_string(id));
    }
    return false;
  }

 private:
  std::shared_ptr<Gate> gate_;
};

class CountSink : public MapFlowlet {
 public:
  explicit CountSink(std::shared_ptr<std::atomic<uint64_t>> seen)
      : seen_(std::move(seen)) {}
  void process(const KvPair&, Context&) override { seen_->fetch_add(1); }

 private:
  std::shared_ptr<std::atomic<uint64_t>> seen_;
};

// One gated loader -> count job. `gate` starts closed; records land in
// `seen` once it opens.
struct TestJob {
  std::shared_ptr<Gate> gate = std::make_shared<Gate>();
  std::shared_ptr<std::atomic<uint64_t>> seen =
      std::make_shared<std::atomic<uint64_t>>(0);

  JobWork work(uint64_t records = 8) const {
    JobWork w;
    auto g = gate;
    auto s = seen;
    const auto loader = w.graph.add_loader(
        "load", [g] { return std::make_unique<GateLoader>(g); });
    const auto sink = w.graph.add_map(
        "sink", [s] { return std::make_unique<CountSink>(s); });
    w.graph.connect(loader, sink);
    InputSplit split;
    split.user_tag = records;
    split.preferred_node = 0;
    w.inputs.add(loader, split);
    return w;
  }
};

// Polls until the ticket reaches `want` (e.g. kRunning, which wait() cannot
// observe because it only unblocks on terminal states).
bool wait_status(const std::shared_ptr<JobTicket>& ticket, JobStatus want,
                 Duration timeout = std::chrono::seconds(10)) {
  const TimePoint deadline = now() + timeout;
  while (now() < deadline) {
    if (ticket->status() == want) return true;
    std::this_thread::sleep_for(millis(1));
  }
  return ticket->status() == want;
}

// Appends `tag` to `order` when the job completes on the lane thread; with
// one lane the completion order is the dispatch order.
std::function<std::string(Engine&)> order_recorder(
    std::shared_ptr<std::vector<std::string>> order,
    std::shared_ptr<std::mutex> mu, std::string tag) {
  return [order, mu, tag](Engine&) {
    std::lock_guard<std::mutex> lock(*mu);
    order->push_back(tag);
    return tag;
  };
}

ServiceConfig single_lane(size_t max_queued = 16) {
  ServiceConfig cfg;
  cfg.lanes = 1;
  cfg.max_queued = max_queued;
  cfg.engine = EngineConfig::fast();
  return cfg;
}

}  // namespace

// --- basic lifecycle --------------------------------------------------------

TEST(JobService, RunsJobAndMergesServiceMetrics) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  ServiceConfig cfg;
  cfg.engine = EngineConfig::fast();
  JobService svc(cluster, cfg);

  TestJob tj;
  tj.gate->open();
  JobWork work = tj.work(/*records=*/24);
  auto seen = tj.seen;
  work.collect = [seen](Engine&) { return std::to_string(seen->load()); };

  auto ticket = svc.submit(JobSpec{}, std::move(work));
  ASSERT_EQ(ticket->wait(), JobStatus::kDone);
  EXPECT_EQ(ticket->payload(), "24");
  EXPECT_EQ(ticket->error(), "");
  EXPECT_EQ(tj.seen->load(), 24u);

  // Service observability rides along in the job's metric snapshot.
  const JobResult result = ticket->result();
  EXPECT_GT(result.records_emitted, 0u);
  EXPECT_FALSE(result.cancelled);
  EXPECT_GE(result.metrics.counter("service.jobs_submitted"), 1u);
  EXPECT_GE(result.metrics.counter("service.jobs_done"), 1u);
  EXPECT_EQ(result.metrics.gauge("service.jobs_queued"), 0);
  EXPECT_EQ(result.metrics.gauge("service.jobs_running"), 0);
  const auto* wait_h = result.metrics.histogram("service.queue_wait_us");
  ASSERT_NE(wait_h, nullptr);
  EXPECT_GE(wait_h->count, 1u);
}

TEST(JobService, FailedJobSurfacesErrorAndLeavesLaneUsable) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  // Loader with no downstream edge and a null factory: Engine::run throws.
  JobWork bad;
  bad.graph.add_loader("broken", nullptr);
  auto t1 = svc.submit(JobSpec{}, std::move(bad));
  ASSERT_EQ(t1->wait(), JobStatus::kFailed);
  EXPECT_NE(t1->error(), "");
  EXPECT_GE(t1->result().metrics.counter("service.jobs_failed"), 1u);

  // The lane survives a failed run and takes the next job.
  TestJob tj;
  tj.gate->open();
  auto t2 = svc.submit(JobSpec{}, tj.work());
  EXPECT_EQ(t2->wait(), JobStatus::kDone);
  EXPECT_EQ(tj.seen->load(), 8u);
}

// --- admission control ------------------------------------------------------

TEST(JobService, FullQueueShedsWithExplicitReject) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane(/*max_queued=*/2));

  // Occupy the only lane, then fill the queue to its bound.
  TestJob blocker;
  auto running = svc.submit(JobSpec{}, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  TestJob f1, f2;
  f1.gate->open();
  f2.gate->open();
  auto q1 = svc.submit(JobSpec{}, f1.work());
  auto q2 = svc.submit(JobSpec{}, f2.work());
  EXPECT_EQ(q1->status(), JobStatus::kQueued);
  EXPECT_EQ(q2->status(), JobStatus::kQueued);

  // The next submit is shed immediately: the ticket comes back already
  // terminal (the admission decision never blocks the submitting thread).
  TestJob shed;
  const TimePoint before = now();
  auto rejected = svc.submit(JobSpec{}, shed.work());
  EXPECT_LT(now() - before, std::chrono::seconds(1));
  EXPECT_EQ(rejected->status(), JobStatus::kRejected);
  EXPECT_EQ(rejected->error(), "admission queue full");
  EXPECT_GE(rejected->result().metrics.counter("service.jobs_rejected"), 1u);

  blocker.gate->open();
  EXPECT_EQ(running->wait(), JobStatus::kDone);
  EXPECT_EQ(q1->wait(), JobStatus::kDone);
  EXPECT_EQ(q2->wait(), JobStatus::kDone);
  EXPECT_EQ(shed.seen->load(), 0u);
}

// --- scheduling -------------------------------------------------------------

TEST(JobService, PriorityOrdersDispatchWithinTenant) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob blocker;
  auto running = svc.submit(JobSpec{}, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  auto order = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (const int priority : {0, 5, 1}) {
    TestJob tj;
    tj.gate->open();
    JobWork work = tj.work();
    work.collect = order_recorder(order, mu, "p" + std::to_string(priority));
    JobSpec spec;
    spec.priority = priority;
    tickets.push_back(svc.submit(spec, std::move(work)));
  }

  blocker.gate->open();
  for (auto& t : tickets) ASSERT_EQ(t->wait(), JobStatus::kDone);
  // One lane: completion order == dispatch order == descending priority.
  EXPECT_EQ(*order, (std::vector<std::string>{"p5", "p1", "p0"}));
}

TEST(JobService, EqualWeightTenantsShareWithinTwofold) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob blocker;
  JobSpec blocker_spec;
  blocker_spec.tenant = "zz-blocker";
  auto running = svc.submit(blocker_spec, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  // Tenant "a" floods first; tenant "b" arrives after. Stride scheduling
  // must still interleave them instead of draining "a" to completion.
  auto order = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (const char* tenant : {"a", "a", "a", "a", "b", "b", "b", "b"}) {
    TestJob tj;
    tj.gate->open();
    JobWork work = tj.work();
    work.collect = order_recorder(order, mu, tenant);
    JobSpec spec;
    spec.tenant = tenant;
    tickets.push_back(svc.submit(spec, std::move(work)));
  }

  blocker.gate->open();
  for (auto& t : tickets) ASSERT_EQ(t->wait(), JobStatus::kDone);

  // Every dispatch prefix stays within 2x between the equal-weight tenants
  // (stride with weight 1:1 alternates, so the counts differ by at most 1).
  ASSERT_EQ(order->size(), 8u);
  int a = 0, b = 0;
  for (const std::string& tenant : *order) {
    (tenant == "a" ? a : b)++;
    EXPECT_LE(std::abs(a - b), 1) << "unfair prefix: a=" << a << " b=" << b;
  }
  EXPECT_EQ(a, 4);
  EXPECT_EQ(b, 4);
}

TEST(JobService, WeightedTenantReceivesProportionalShare) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  ServiceConfig cfg = single_lane();
  cfg.tenant_weights["heavy"] = 2.0;
  JobService svc(cluster, cfg);

  TestJob blocker;
  JobSpec blocker_spec;
  blocker_spec.tenant = "zz-blocker";
  auto running = svc.submit(blocker_spec, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  auto order = std::make_shared<std::vector<std::string>>();
  auto mu = std::make_shared<std::mutex>();
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int i = 0; i < 6; ++i) {
    for (const char* tenant : {"heavy", "light"}) {
      TestJob tj;
      tj.gate->open();
      JobWork work = tj.work();
      work.collect = order_recorder(order, mu, tenant);
      JobSpec spec;
      spec.tenant = tenant;
      tickets.push_back(svc.submit(spec, std::move(work)));
    }
  }

  blocker.gate->open();
  for (auto& t : tickets) ASSERT_EQ(t->wait(), JobStatus::kDone);

  // While both tenants have queued work (the first 9 dispatches: 6 heavy +
  // 3 light at a 2:1 stride), heavy gets about twice light's share.
  ASSERT_EQ(order->size(), 12u);
  int heavy = 0;
  for (size_t i = 0; i < 9; ++i) heavy += (*order)[i] == "heavy";
  EXPECT_GE(heavy, 5);
  EXPECT_LE(heavy, 7);
}

// --- cancel / deadline ------------------------------------------------------

TEST(JobService, CancelQueuedJobNeverRuns) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob blocker;
  auto running = svc.submit(JobSpec{}, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  TestJob queued;
  queued.gate->open();
  auto ticket = svc.submit(JobSpec{}, queued.work());
  EXPECT_TRUE(svc.cancel(ticket->id()));
  EXPECT_EQ(ticket->status(), JobStatus::kCancelled);
  EXPECT_EQ(ticket->error(), "cancelled while queued");
  EXPECT_FALSE(svc.cancel(ticket->id()));  // already terminal
  EXPECT_FALSE(svc.cancel(999999));        // unknown id

  blocker.gate->open();
  EXPECT_EQ(running->wait(), JobStatus::kDone);
  EXPECT_EQ(queued.seen->load(), 0u);
  EXPECT_GE(ticket->result().metrics.counter("service.jobs_cancelled"), 1u);
}

TEST(JobService, CancelRunningJobAbortsCleanly) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  // The gate never opens: the loader can only exit through the stream-stop
  // flag Engine::request_cancel raises.
  TestJob tj;
  auto ticket = svc.submit(JobSpec{}, tj.work());
  ASSERT_TRUE(wait_status(ticket, JobStatus::kRunning));
  EXPECT_TRUE(svc.cancel(ticket->id()));
  ASSERT_EQ(ticket->wait(), JobStatus::kCancelled);
  EXPECT_TRUE(ticket->result().cancelled);
  EXPECT_GE(ticket->result().metrics.counter("service.jobs_cancelled"), 1u);

  // The lane is immediately reusable after an aborted job.
  TestJob next;
  next.gate->open();
  auto t2 = svc.submit(JobSpec{}, next.work());
  EXPECT_EQ(t2->wait(), JobStatus::kDone);
}

TEST(JobService, DeadlineAbortsRunningJob) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob tj;
  JobSpec spec;
  spec.deadline = millis(150);
  auto ticket = svc.submit(spec, tj.work());
  ASSERT_EQ(ticket->wait(std::chrono::seconds(30)),
            JobStatus::kDeadlineExceeded);
  EXPECT_EQ(ticket->error(), "deadline exceeded");
  EXPECT_GE(ticket->result().metrics.counter("service.jobs_deadline_exceeded"),
            1u);
}

TEST(JobService, DeadlineReapsQueuedJobBeforeDispatch) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob blocker;
  auto running = svc.submit(JobSpec{}, blocker.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));

  TestJob queued;
  queued.gate->open();
  JobSpec spec;
  spec.deadline = millis(100);
  auto ticket = svc.submit(spec, queued.work());
  ASSERT_EQ(ticket->wait(std::chrono::seconds(30)),
            JobStatus::kDeadlineExceeded);
  EXPECT_EQ(queued.seen->load(), 0u);

  blocker.gate->open();
  EXPECT_EQ(running->wait(), JobStatus::kDone);
}

// --- concurrent execution ---------------------------------------------------

TEST(JobService, TwoLanesMakeConcurrentProgress) {
  obs::EventLog log;
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  ServiceConfig cfg;
  cfg.lanes = 2;
  cfg.engine = EngineConfig::fast();
  cfg.event_log = &log;
  JobService svc(cluster, cfg);

  // Rendezvous: each job's loader parks until BOTH jobs have started, so
  // neither can finish unless they genuinely overlap in wall-clock time.
  auto rendezvous = std::make_shared<Gate>();
  rendezvous->release_at.store(2);
  TestJob a, b;
  a.gate = rendezvous;
  b.gate = rendezvous;

  auto ta = svc.submit(JobSpec{.tenant = "a"}, a.work(/*records=*/16));
  auto tb = svc.submit(JobSpec{.tenant = "b"}, b.work(/*records=*/16));
  ASSERT_EQ(ta->wait(std::chrono::seconds(30)), JobStatus::kDone);
  ASSERT_EQ(tb->wait(std::chrono::seconds(30)), JobStatus::kDone);
  EXPECT_EQ(a.seen->load() + b.seen->load(), 32u);

  // The event log proves the overlap: each job dispatched before the other
  // finished.
  auto seq_of = [&](uint64_t job_id, obs::EventKind kind) -> int64_t {
    for (const auto& e : log.events()) {
      if (e.flowlet == static_cast<int64_t>(job_id) && e.kind == kind) {
        return static_cast<int64_t>(e.seq);
      }
    }
    return -1;
  };
  const int64_t disp_a = seq_of(ta->id(), obs::EventKind::kJobDispatched);
  const int64_t disp_b = seq_of(tb->id(), obs::EventKind::kJobDispatched);
  const int64_t done_a = seq_of(ta->id(), obs::EventKind::kJobDone);
  const int64_t done_b = seq_of(tb->id(), obs::EventKind::kJobDone);
  ASSERT_GE(disp_a, 0);
  ASSERT_GE(disp_b, 0);
  ASSERT_GE(done_a, 0);
  ASSERT_GE(done_b, 0);
  EXPECT_LT(disp_a, done_b);
  EXPECT_LT(disp_b, done_a);
}

// --- chaos ------------------------------------------------------------------

namespace {

// Word-count flowlets for the chaos case: a rendezvous-gated loader emitting
// a deterministic word stream, and a reduce sink counting occurrences into a
// test-owned map.
class WordLoader : public LoaderFlowlet {
 public:
  explicit WordLoader(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor,
                  Context& ctx) override {
    if (*cursor == 0) {
      *cursor = 1;
      gate_->arrived.fetch_add(1);
      while (!gate_->is_open() && !ctx.stream_stopping()) {
        std::this_thread::sleep_for(millis(1));
      }
    }
    for (uint64_t i = 0; i < split.user_tag; ++i) {
      const uint64_t id = split.offset + i;
      ctx.emit(0, "w" + std::to_string(id % 23), "1");
    }
    return false;
  }

 private:
  std::shared_ptr<Gate> gate_;
};

struct CountMap {
  std::mutex mu;
  std::map<std::string, uint64_t> counts;

  std::string serialized() {
    std::lock_guard<std::mutex> lock(mu);
    std::string out;
    for (const auto& [word, n] : counts) {
      out += word + "\t" + std::to_string(n) + "\n";
    }
    return out;
  }
};

class WordCountReduce : public ReduceFlowlet {
 public:
  explicit WordCountReduce(std::shared_ptr<CountMap> out)
      : out_(std::move(out)) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              Context&) override {
    std::lock_guard<std::mutex> lock(out_->mu);
    out_->counts[std::string(key)] += values.size();
  }

 private:
  std::shared_ptr<CountMap> out_;
};

JobWork wordcount_work(std::shared_ptr<Gate> gate,
                       std::shared_ptr<CountMap> out, uint32_t nodes,
                       uint64_t per_node) {
  JobWork w;
  const auto loader = w.graph.add_loader(
      "words", [gate] { return std::make_unique<WordLoader>(gate); });
  const auto counts = w.graph.add_reduce(
      "count", [out] { return std::make_unique<WordCountReduce>(out); });
  w.graph.connect(loader, counts);
  for (uint32_t n = 0; n < nodes; ++n) {
    InputSplit split;
    split.offset = n * per_node;
    split.user_tag = per_node;
    split.preferred_node = n;
    w.inputs.add(loader, split);
  }
  return w;
}

}  // namespace

TEST(JobServiceChaos, ConcurrentWordCountsStayByteIdenticalUnderDrops) {
  // 5% of each lane's shuffle frames are dropped / duplicated / delayed while
  // two word counts run concurrently on lanes 0 and 1; both outputs must
  // equal the fault-free reference byte for byte.
  fault::FaultInjector injector(fault::FaultPlan::chaos(/*seed=*/21,
                                                        /*msg_rate=*/0.05));
  cluster::Cluster cluster(cluster::ClusterConfig::fast(4));
  cluster.set_fault_injector(&injector);

  ServiceConfig cfg;
  cfg.lanes = 2;
  cfg.engine = EngineConfig::fast();
  cfg.engine.fault_injector = &injector;
  JobService svc(cluster, cfg);

  constexpr uint32_t kNodes = 4;
  constexpr uint64_t kPerNode = 3000;
  auto rendezvous = std::make_shared<Gate>();
  rendezvous->release_at.store(2 * static_cast<int>(kNodes));

  auto out_a = std::make_shared<CountMap>();
  auto out_b = std::make_shared<CountMap>();
  auto ta = svc.submit(JobSpec{.tenant = "a"},
                       wordcount_work(rendezvous, out_a, kNodes, kPerNode));
  auto tb = svc.submit(JobSpec{.tenant = "b"},
                       wordcount_work(rendezvous, out_b, kNodes, kPerNode));
  ASSERT_EQ(ta->wait(std::chrono::seconds(120)), JobStatus::kDone);
  ASSERT_EQ(tb->wait(std::chrono::seconds(120)), JobStatus::kDone);

  CountMap reference;
  for (uint64_t id = 0; id < kNodes * kPerNode; ++id) {
    reference.counts["w" + std::to_string(id % 23)]++;
  }
  const std::string expected = reference.serialized();
  EXPECT_EQ(out_a->serialized(), expected);
  EXPECT_EQ(out_b->serialized(), expected);
  EXPECT_GT(injector.stats().total(), 0u);
}

// --- RPC front-end ----------------------------------------------------------

namespace {

// Builder for the RPC tests: args = decimal record count; the payload is the
// count of records the sink saw.
JobBuilder count_builder() {
  return [](const JobSpec& spec) {
    TestJob tj;
    tj.gate->open();
    JobWork w = tj.work(std::stoull(spec.args));
    auto seen = tj.seen;
    w.collect = [seen](Engine&) { return std::to_string(seen->load()); };
    return w;
  };
}

}  // namespace

TEST(JobRpc, SubmitPollResultOverInProcCluster) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, ServiceConfig{.engine = EngineConfig::fast()});
  svc.register_builder("count", count_builder());

  // Server on node 0's rpc; client calls from node 1 over the fabric.
  JobRpcServer server(&svc, &cluster.node(0).rpc());
  JobClient client(cluster.node(1).rpc(), /*server=*/0);

  JobSpec spec;
  spec.job_type = "count";
  spec.args = "64";
  JobStatus at_submit = JobStatus::kRejected;
  const uint64_t id = client.submit(spec, &at_submit);
  EXPECT_EQ(at_submit, JobStatus::kQueued);
  EXPECT_EQ(client.wait(id), JobStatus::kDone);

  const JobClient::RemoteResult result = client.result(id);
  EXPECT_EQ(result.status, JobStatus::kDone);
  EXPECT_EQ(result.payload, "64");
  EXPECT_EQ(result.error, "");
  EXPECT_GT(result.records_emitted, 0u);

  EXPECT_FALSE(client.cancel(999999));       // unknown id: clean false
  EXPECT_THROW(client.poll(999999), std::runtime_error);
  JobSpec bad;
  bad.job_type = "no-such-type";
  EXPECT_THROW(client.submit(bad), std::runtime_error);
}

TEST(JobRpc, ServesOverTcpSockets) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, ServiceConfig{.engine = EngineConfig::fast()});
  svc.register_builder("count", count_builder());
  // A megabyte of padding in the payload exercises the multi-frame TCP path.
  svc.register_builder("padded", [](const JobSpec& spec) {
    TestJob tj;
    tj.gate->open();
    JobWork w = tj.work(std::stoull(spec.args));
    auto seen = tj.seen;
    w.collect = [seen](Engine&) {
      return std::string(1 << 20, 'x') + std::to_string(seen->load());
    };
    return w;
  });

  // Control plane over real sockets: server endpoint 0, client endpoint 1.
  net::TcpTransport fabric(2);
  net::Router server_router(fabric.endpoint(0));
  net::Router client_router(fabric.endpoint(1));
  net::Rpc server_rpc(&server_router);
  net::Rpc client_rpc(&client_router);
  JobRpcServer server(&svc, &server_rpc);
  fabric.start();

  JobClient client(client_rpc, /*server=*/0);
  JobSpec spec;
  spec.job_type = "padded";
  spec.args = "32";
  const uint64_t id = client.submit(spec);
  EXPECT_EQ(client.wait(id), JobStatus::kDone);
  const JobClient::RemoteResult result = client.result(id);
  EXPECT_EQ(result.status, JobStatus::kDone);
  EXPECT_EQ(result.payload, std::string(1 << 20, 'x') + "32");
  fabric.stop();
}

// --- shutdown ---------------------------------------------------------------

TEST(JobService, ShutdownCancelsQueuedAndRunningJobs) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, single_lane());

  TestJob running_job;  // gate never opens; only shutdown can end it
  auto running = svc.submit(JobSpec{}, running_job.work());
  ASSERT_TRUE(wait_status(running, JobStatus::kRunning));
  TestJob queued_job;
  queued_job.gate->open();
  auto queued = svc.submit(JobSpec{}, queued_job.work());

  svc.shutdown();
  EXPECT_EQ(queued->status(), JobStatus::kCancelled);
  EXPECT_EQ(queued->error(), "service shutdown");
  EXPECT_TRUE(is_terminal(running->status()));
  EXPECT_EQ(queued_job.seen->load(), 0u);

  // Submits after shutdown shed immediately.
  TestJob late;
  auto rejected = svc.submit(JobSpec{}, late.work());
  EXPECT_EQ(rejected->status(), JobStatus::kRejected);
  EXPECT_EQ(rejected->error(), "service shutting down");
}
