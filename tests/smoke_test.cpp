#include <gtest/gtest.h>

#include "apps/wordcount.h"
#include "gen/generators.h"

using namespace hamr;

TEST(Smoke, WordCountBothEngines) {
  apps::BenchEnv env = apps::BenchEnv::fast(4);
  gen::TextSpec spec;
  spec.total_bytes = 64 * 1024;
  std::vector<std::string> shards;
  for (uint32_t i = 0; i < env.nodes(); ++i)
    shards.push_back(gen::text_shard(spec, i, env.nodes()));
  auto staged = apps::stage_input(env, "wc", shards, 8 * 1024);

  auto expected = apps::wordcount::reference(shards);
  ASSERT_FALSE(expected.empty());

  apps::wordcount::run_hamr(env, staged);
  EXPECT_EQ(apps::wordcount::hamr_output(env), expected);

  apps::wordcount::run_baseline(env, staged);
  EXPECT_EQ(apps::wordcount::baseline_output(env), expected);
}
