#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "common/clock.h"
#include "common/flags.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

using namespace hamr;

// --- BoundedQueue -----------------------------------------------------------

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_TRUE(q.full());
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  const auto t0 = now();
  EXPECT_EQ(q.pop_for(millis(30)), std::nullopt);
  EXPECT_GE(now() - t0, millis(25));
}

TEST(BoundedQueue, BlockedPushWakesOnPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(millis(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long expected = static_cast<long>(kProducers) * kPerProducer *
                        (kProducers * kPerProducer - 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

// --- ThreadPool / WaitGroup ---------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWaitsForRunningTask) {
  ThreadPool pool(1);
  std::atomic<bool> done{false};
  pool.submit([&] {
    std::this_thread::sleep_for(millis(50));
    done = true;
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPool, ShutdownRunsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
    pool.shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(WaitGroup, FanOutFanIn) {
  WaitGroup wg;
  std::atomic<int> count{0};
  ThreadPool pool(4);
  wg.add(20);
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] {
      ++count;
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(count.load(), 20);
}

// --- Rng / Zipf --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, SkewIncreasesHeadMass) {
  const double theta = GetParam();
  Zipf zipf(1000, theta);
  Rng rng(42);
  uint64_t head = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = zipf.sample(rng);
    ASSERT_LT(v, 1000u);
    if (v < 10) ++head;
  }
  // With any positive skew the top-10 of 1000 items exceed the uniform share.
  EXPECT_GT(static_cast<double>(head) / kSamples, 10.0 / 1000.0);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSweep, ::testing::Values(0.5, 0.8, 0.99, 1.2));

TEST(Zipf, RankZeroIsMostFrequent) {
  Zipf zipf(100, 0.99);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
}

// --- hashing -------------------------------------------------------------------

TEST(Hash, StableGoldenValues) {
  // Partitioning must never change across versions: tests pin goldens.
  EXPECT_EQ(fnv1a64("hello", 5), 0xa430d84680aabd0bULL);
  EXPECT_EQ(hash_bytes("hello"), mix64(0xa430d84680aabd0bULL));
}

TEST(Hash, PartitionUniformity) {
  constexpr uint32_t kParts = 8;
  std::vector<int> counts(kParts, 0);
  for (int i = 0; i < 80000; ++i) {
    ++counts[partition_of("key" + std::to_string(i), kParts)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 80000 / kParts / 2);
    EXPECT_LT(c, 80000 / kParts * 2);
  }
}

TEST(Hash, PartitionOfZeroPartitions) {
  EXPECT_EQ(partition_of("x", 0), 0u);
}

// --- Status / Result -----------------------------------------------------------

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: thing");
  EXPECT_THROW(s.ExpectOk(), std::runtime_error);
  EXPECT_NO_THROW(Status::Ok().ExpectOk());
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::Internal("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(-1), -1);
  EXPECT_THROW(err.value(), std::runtime_error);
}

// --- Flags ----------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3",  "--beta", "4.5",
                        "--verbose", "--name=x"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0), 4.5);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("name", ""), "x");
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_FALSE(flags.has("missing"));
}

// --- Metrics ---------------------------------------------------------------------

TEST(Metrics, CountersAccumulateAndMerge) {
  Metrics a, b;
  a.counter("x")->add(3);
  a.counter("y")->inc();
  b.counter("x")->add(4);
  a.merge_from(b);
  EXPECT_EQ(a.value("x"), 7u);
  EXPECT_EQ(a.value("y"), 1u);
  EXPECT_EQ(a.value("zzz"), 0u);
  const auto snap = a.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "x");
}

TEST(Metrics, CounterPointerStable) {
  Metrics m;
  Counter* c = m.counter("hot");
  m.counter("other")->inc();
  c->add(5);
  EXPECT_EQ(m.value("hot"), 5u);
}

TEST(Metrics, GaugeMovesBothWays) {
  Metrics m;
  Gauge* g = m.gauge("depth");
  g->add(10);
  g->sub(3);
  g->inc();
  g->dec();
  EXPECT_EQ(m.gauge_value("depth"), 7);
  g->set(-2);
  EXPECT_EQ(m.gauge_value("depth"), -2);
  EXPECT_EQ(m.gauge_value("missing"), 0);
}

TEST(Metrics, GaugesMergeBySum) {
  Metrics a, b;
  a.gauge("g")->set(5);
  b.gauge("g")->set(-2);
  b.gauge("only_b")->set(9);
  a.merge_from(b);
  EXPECT_EQ(a.gauge_value("g"), 3);
  EXPECT_EQ(a.gauge_value("only_b"), 9);
}

TEST(Histogram, ObservationsLandInBuckets) {
  Histogram h({10, 100, 1000});
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (bounds are inclusive)
  h.observe(70);    // <= 100
  h.observe(5000);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5085u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 0u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow bucket
  EXPECT_DOUBLE_EQ(h.mean(), 5085.0 / 4.0);
}

TEST(Histogram, QuantileReportsBucketUpperBound) {
  Histogram h({1, 2, 4, 8});
  for (uint64_t v : {1, 1, 1, 2, 2, 3, 5, 100}) h.observe(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(0.5), 2u);
  EXPECT_EQ(h.quantile(1.0), 8u);  // overflow reports last finite bound
  EXPECT_EQ(Histogram({1, 2}).quantile(0.5), 0u);  // empty
}

TEST(Histogram, MergeRequiresIdenticalBounds) {
  Histogram a({10, 100});
  Histogram b({10, 100});
  Histogram other({5, 50});
  a.observe(7);
  b.observe(70);
  other.observe(3);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  a.merge_from(other);  // incompatible: silently skipped
  EXPECT_EQ(a.count(), 2u);
}

TEST(Metrics, HistogramsMergeThroughRegistry) {
  Metrics a, b;
  a.histogram("lat")->observe(3);
  b.histogram("lat")->observe(900);
  b.histogram("only_b", {1, 2})->observe(1);
  a.merge_from(b);
  EXPECT_EQ(a.histogram("lat")->count(), 2u);
  EXPECT_EQ(a.histogram("lat")->sum(), 903u);
  EXPECT_EQ(a.histogram("only_b", {1, 2})->count(), 1u);
}

// --- clock -------------------------------------------------------------------------

TEST(Clock, FormatDuration) {
  EXPECT_EQ(format_duration(from_seconds(1.234)), "1.234s");
  EXPECT_EQ(format_duration(millis(56)), "56.0ms");
  EXPECT_EQ(format_duration(micros(890)), "890us");
}

TEST(Clock, StopwatchMeasures) {
  Stopwatch w;
  std::this_thread::sleep_for(millis(20));
  EXPECT_GE(w.elapsed_seconds(), 0.015);
}
