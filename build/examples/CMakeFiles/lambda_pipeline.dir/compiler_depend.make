# Empty compiler generated dependencies file for lambda_pipeline.
# This may be replaced when dependencies are built.
