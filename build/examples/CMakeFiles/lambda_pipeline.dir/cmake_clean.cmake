file(REMOVE_RECURSE
  "CMakeFiles/lambda_pipeline.dir/lambda_pipeline.cpp.o"
  "CMakeFiles/lambda_pipeline.dir/lambda_pipeline.cpp.o.d"
  "lambda_pipeline"
  "lambda_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
