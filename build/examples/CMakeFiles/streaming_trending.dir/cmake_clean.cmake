file(REMOVE_RECURSE
  "CMakeFiles/streaming_trending.dir/streaming_trending.cpp.o"
  "CMakeFiles/streaming_trending.dir/streaming_trending.cpp.o.d"
  "streaming_trending"
  "streaming_trending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_trending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
