# Empty compiler generated dependencies file for streaming_trending.
# This may be replaced when dependencies are built.
