file(REMOVE_RECURSE
  "../lib/libhamr_bench_harness.a"
)
