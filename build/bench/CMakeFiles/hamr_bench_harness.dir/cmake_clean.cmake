file(REMOVE_RECURSE
  "../lib/libhamr_bench_harness.a"
  "../lib/libhamr_bench_harness.pdb"
  "CMakeFiles/hamr_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/hamr_bench_harness.dir/harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
