# Empty compiler generated dependencies file for hamr_bench_harness.
# This may be replaced when dependencies are built.
