file(REMOVE_RECURSE
  "CMakeFiles/ablation_partialreduce.dir/ablation_partialreduce.cpp.o"
  "CMakeFiles/ablation_partialreduce.dir/ablation_partialreduce.cpp.o.d"
  "ablation_partialreduce"
  "ablation_partialreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partialreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
