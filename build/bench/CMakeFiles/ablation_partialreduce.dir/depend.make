# Empty dependencies file for ablation_partialreduce.
# This may be replaced when dependencies are built.
