# Empty dependencies file for ablation_iteration.
# This may be replaced when dependencies are built.
