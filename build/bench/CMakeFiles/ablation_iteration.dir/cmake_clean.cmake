file(REMOVE_RECURSE
  "CMakeFiles/ablation_iteration.dir/ablation_iteration.cpp.o"
  "CMakeFiles/ablation_iteration.dir/ablation_iteration.cpp.o.d"
  "ablation_iteration"
  "ablation_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
