file(REMOVE_RECURSE
  "CMakeFiles/table3_combiner.dir/table3_combiner.cpp.o"
  "CMakeFiles/table3_combiner.dir/table3_combiner.cpp.o.d"
  "table3_combiner"
  "table3_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
