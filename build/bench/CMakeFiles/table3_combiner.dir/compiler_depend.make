# Empty compiler generated dependencies file for table3_combiner.
# This may be replaced when dependencies are built.
