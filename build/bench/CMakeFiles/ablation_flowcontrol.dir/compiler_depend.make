# Empty compiler generated dependencies file for ablation_flowcontrol.
# This may be replaced when dependencies are built.
