file(REMOVE_RECURSE
  "CMakeFiles/fig3b_speedup.dir/fig3b_speedup.cpp.o"
  "CMakeFiles/fig3b_speedup.dir/fig3b_speedup.cpp.o.d"
  "fig3b_speedup"
  "fig3b_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
