file(REMOVE_RECURSE
  "CMakeFiles/fig3a_speedup.dir/fig3a_speedup.cpp.o"
  "CMakeFiles/fig3a_speedup.dir/fig3a_speedup.cpp.o.d"
  "fig3a_speedup"
  "fig3a_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
