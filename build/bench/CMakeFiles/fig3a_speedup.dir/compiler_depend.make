# Empty compiler generated dependencies file for fig3a_speedup.
# This may be replaced when dependencies are built.
