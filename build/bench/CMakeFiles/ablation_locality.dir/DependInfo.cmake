
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_locality.cpp" "bench/CMakeFiles/ablation_locality.dir/ablation_locality.cpp.o" "gcc" "bench/CMakeFiles/ablation_locality.dir/ablation_locality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hamr_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hamr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hamr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/hamr_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/hamr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/hamr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/hamr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hamr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hamr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hamr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
