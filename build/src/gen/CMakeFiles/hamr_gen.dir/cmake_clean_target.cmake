file(REMOVE_RECURSE
  "libhamr_gen.a"
)
