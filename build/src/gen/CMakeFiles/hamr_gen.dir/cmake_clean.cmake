file(REMOVE_RECURSE
  "CMakeFiles/hamr_gen.dir/generators.cpp.o"
  "CMakeFiles/hamr_gen.dir/generators.cpp.o.d"
  "libhamr_gen.a"
  "libhamr_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
