# Empty compiler generated dependencies file for hamr_gen.
# This may be replaced when dependencies are built.
