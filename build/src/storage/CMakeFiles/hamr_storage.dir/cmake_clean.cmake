file(REMOVE_RECURSE
  "CMakeFiles/hamr_storage.dir/device.cpp.o"
  "CMakeFiles/hamr_storage.dir/device.cpp.o.d"
  "CMakeFiles/hamr_storage.dir/file_store.cpp.o"
  "CMakeFiles/hamr_storage.dir/file_store.cpp.o.d"
  "CMakeFiles/hamr_storage.dir/run_file.cpp.o"
  "CMakeFiles/hamr_storage.dir/run_file.cpp.o.d"
  "libhamr_storage.a"
  "libhamr_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
