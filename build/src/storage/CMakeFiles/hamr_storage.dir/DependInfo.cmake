
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/device.cpp" "src/storage/CMakeFiles/hamr_storage.dir/device.cpp.o" "gcc" "src/storage/CMakeFiles/hamr_storage.dir/device.cpp.o.d"
  "/root/repo/src/storage/file_store.cpp" "src/storage/CMakeFiles/hamr_storage.dir/file_store.cpp.o" "gcc" "src/storage/CMakeFiles/hamr_storage.dir/file_store.cpp.o.d"
  "/root/repo/src/storage/run_file.cpp" "src/storage/CMakeFiles/hamr_storage.dir/run_file.cpp.o" "gcc" "src/storage/CMakeFiles/hamr_storage.dir/run_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
