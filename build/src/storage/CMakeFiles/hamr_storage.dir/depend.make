# Empty dependencies file for hamr_storage.
# This may be replaced when dependencies are built.
