file(REMOVE_RECURSE
  "libhamr_storage.a"
)
