# Empty compiler generated dependencies file for hamr_apps.
# This may be replaced when dependencies are built.
