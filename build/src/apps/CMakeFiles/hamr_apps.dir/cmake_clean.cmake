file(REMOVE_RECURSE
  "CMakeFiles/hamr_apps.dir/classification.cpp.o"
  "CMakeFiles/hamr_apps.dir/classification.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/common.cpp.o"
  "CMakeFiles/hamr_apps.dir/common.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/histograms.cpp.o"
  "CMakeFiles/hamr_apps.dir/histograms.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/kcliques.cpp.o"
  "CMakeFiles/hamr_apps.dir/kcliques.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/kmeans.cpp.o"
  "CMakeFiles/hamr_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/movie_vectors.cpp.o"
  "CMakeFiles/hamr_apps.dir/movie_vectors.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/naive_bayes.cpp.o"
  "CMakeFiles/hamr_apps.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/pagerank.cpp.o"
  "CMakeFiles/hamr_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/hamr_apps.dir/wordcount.cpp.o"
  "CMakeFiles/hamr_apps.dir/wordcount.cpp.o.d"
  "libhamr_apps.a"
  "libhamr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
