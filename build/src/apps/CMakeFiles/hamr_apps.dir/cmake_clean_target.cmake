file(REMOVE_RECURSE
  "libhamr_apps.a"
)
