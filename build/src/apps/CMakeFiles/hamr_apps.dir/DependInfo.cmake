
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/classification.cpp" "src/apps/CMakeFiles/hamr_apps.dir/classification.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/classification.cpp.o.d"
  "/root/repo/src/apps/common.cpp" "src/apps/CMakeFiles/hamr_apps.dir/common.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/common.cpp.o.d"
  "/root/repo/src/apps/histograms.cpp" "src/apps/CMakeFiles/hamr_apps.dir/histograms.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/histograms.cpp.o.d"
  "/root/repo/src/apps/kcliques.cpp" "src/apps/CMakeFiles/hamr_apps.dir/kcliques.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/kcliques.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/hamr_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/movie_vectors.cpp" "src/apps/CMakeFiles/hamr_apps.dir/movie_vectors.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/movie_vectors.cpp.o.d"
  "/root/repo/src/apps/naive_bayes.cpp" "src/apps/CMakeFiles/hamr_apps.dir/naive_bayes.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/hamr_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/pagerank.cpp.o.d"
  "/root/repo/src/apps/wordcount.cpp" "src/apps/CMakeFiles/hamr_apps.dir/wordcount.cpp.o" "gcc" "src/apps/CMakeFiles/hamr_apps.dir/wordcount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/hamr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/hamr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/hamr_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/hamr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/hamr_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hamr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hamr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hamr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
