file(REMOVE_RECURSE
  "CMakeFiles/hamr_kvstore.dir/kv_store.cpp.o"
  "CMakeFiles/hamr_kvstore.dir/kv_store.cpp.o.d"
  "libhamr_kvstore.a"
  "libhamr_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
