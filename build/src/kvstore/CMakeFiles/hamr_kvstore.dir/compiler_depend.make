# Empty compiler generated dependencies file for hamr_kvstore.
# This may be replaced when dependencies are built.
