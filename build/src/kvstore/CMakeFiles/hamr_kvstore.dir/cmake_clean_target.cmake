file(REMOVE_RECURSE
  "libhamr_kvstore.a"
)
