file(REMOVE_RECURSE
  "libhamr_common.a"
)
