# Empty compiler generated dependencies file for hamr_common.
# This may be replaced when dependencies are built.
