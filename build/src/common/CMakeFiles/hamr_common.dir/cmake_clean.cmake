file(REMOVE_RECURSE
  "CMakeFiles/hamr_common.dir/clock.cpp.o"
  "CMakeFiles/hamr_common.dir/clock.cpp.o.d"
  "CMakeFiles/hamr_common.dir/flags.cpp.o"
  "CMakeFiles/hamr_common.dir/flags.cpp.o.d"
  "CMakeFiles/hamr_common.dir/logging.cpp.o"
  "CMakeFiles/hamr_common.dir/logging.cpp.o.d"
  "CMakeFiles/hamr_common.dir/random.cpp.o"
  "CMakeFiles/hamr_common.dir/random.cpp.o.d"
  "CMakeFiles/hamr_common.dir/status.cpp.o"
  "CMakeFiles/hamr_common.dir/status.cpp.o.d"
  "CMakeFiles/hamr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/hamr_common.dir/thread_pool.cpp.o.d"
  "libhamr_common.a"
  "libhamr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
