file(REMOVE_RECURSE
  "libhamr_engine.a"
)
