# Empty dependencies file for hamr_engine.
# This may be replaced when dependencies are built.
