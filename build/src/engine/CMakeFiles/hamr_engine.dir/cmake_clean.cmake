file(REMOVE_RECURSE
  "CMakeFiles/hamr_engine.dir/bin.cpp.o"
  "CMakeFiles/hamr_engine.dir/bin.cpp.o.d"
  "CMakeFiles/hamr_engine.dir/engine.cpp.o"
  "CMakeFiles/hamr_engine.dir/engine.cpp.o.d"
  "CMakeFiles/hamr_engine.dir/graph.cpp.o"
  "CMakeFiles/hamr_engine.dir/graph.cpp.o.d"
  "CMakeFiles/hamr_engine.dir/loaders.cpp.o"
  "CMakeFiles/hamr_engine.dir/loaders.cpp.o.d"
  "CMakeFiles/hamr_engine.dir/runtime.cpp.o"
  "CMakeFiles/hamr_engine.dir/runtime.cpp.o.d"
  "libhamr_engine.a"
  "libhamr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
