
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bin.cpp" "src/engine/CMakeFiles/hamr_engine.dir/bin.cpp.o" "gcc" "src/engine/CMakeFiles/hamr_engine.dir/bin.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/hamr_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/hamr_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/graph.cpp" "src/engine/CMakeFiles/hamr_engine.dir/graph.cpp.o" "gcc" "src/engine/CMakeFiles/hamr_engine.dir/graph.cpp.o.d"
  "/root/repo/src/engine/loaders.cpp" "src/engine/CMakeFiles/hamr_engine.dir/loaders.cpp.o" "gcc" "src/engine/CMakeFiles/hamr_engine.dir/loaders.cpp.o.d"
  "/root/repo/src/engine/runtime.cpp" "src/engine/CMakeFiles/hamr_engine.dir/runtime.cpp.o" "gcc" "src/engine/CMakeFiles/hamr_engine.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hamr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/hamr_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hamr_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hamr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
