file(REMOVE_RECURSE
  "libhamr_mapreduce.a"
)
