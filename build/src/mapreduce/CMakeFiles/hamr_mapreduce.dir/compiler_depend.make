# Empty compiler generated dependencies file for hamr_mapreduce.
# This may be replaced when dependencies are built.
