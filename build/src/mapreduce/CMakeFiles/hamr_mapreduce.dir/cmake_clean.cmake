file(REMOVE_RECURSE
  "CMakeFiles/hamr_mapreduce.dir/job_runner.cpp.o"
  "CMakeFiles/hamr_mapreduce.dir/job_runner.cpp.o.d"
  "libhamr_mapreduce.a"
  "libhamr_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
