file(REMOVE_RECURSE
  "libhamr_dfs.a"
)
