file(REMOVE_RECURSE
  "CMakeFiles/hamr_dfs.dir/mini_dfs.cpp.o"
  "CMakeFiles/hamr_dfs.dir/mini_dfs.cpp.o.d"
  "libhamr_dfs.a"
  "libhamr_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
