# Empty compiler generated dependencies file for hamr_dfs.
# This may be replaced when dependencies are built.
