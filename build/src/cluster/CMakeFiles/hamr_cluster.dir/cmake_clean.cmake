file(REMOVE_RECURSE
  "CMakeFiles/hamr_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hamr_cluster.dir/cluster.cpp.o.d"
  "libhamr_cluster.a"
  "libhamr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
