# Empty compiler generated dependencies file for hamr_cluster.
# This may be replaced when dependencies are built.
