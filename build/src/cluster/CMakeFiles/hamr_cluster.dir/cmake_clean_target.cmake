file(REMOVE_RECURSE
  "libhamr_cluster.a"
)
