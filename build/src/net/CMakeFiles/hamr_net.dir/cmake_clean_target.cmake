file(REMOVE_RECURSE
  "libhamr_net.a"
)
