file(REMOVE_RECURSE
  "CMakeFiles/hamr_net.dir/inproc_transport.cpp.o"
  "CMakeFiles/hamr_net.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/hamr_net.dir/rpc.cpp.o"
  "CMakeFiles/hamr_net.dir/rpc.cpp.o.d"
  "CMakeFiles/hamr_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/hamr_net.dir/tcp_transport.cpp.o.d"
  "libhamr_net.a"
  "libhamr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
