# Empty compiler generated dependencies file for hamr_net.
# This may be replaced when dependencies are built.
