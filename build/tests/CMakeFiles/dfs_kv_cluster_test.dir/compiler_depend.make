# Empty compiler generated dependencies file for dfs_kv_cluster_test.
# This may be replaced when dependencies are built.
