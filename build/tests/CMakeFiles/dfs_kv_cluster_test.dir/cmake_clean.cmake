file(REMOVE_RECURSE
  "CMakeFiles/dfs_kv_cluster_test.dir/dfs_kv_cluster_test.cpp.o"
  "CMakeFiles/dfs_kv_cluster_test.dir/dfs_kv_cluster_test.cpp.o.d"
  "dfs_kv_cluster_test"
  "dfs_kv_cluster_test.pdb"
  "dfs_kv_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfs_kv_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
