# Empty compiler generated dependencies file for apps_integration_test.
# This may be replaced when dependencies are built.
