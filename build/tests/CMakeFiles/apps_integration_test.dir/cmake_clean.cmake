file(REMOVE_RECURSE
  "CMakeFiles/apps_integration_test.dir/apps_integration_test.cpp.o"
  "CMakeFiles/apps_integration_test.dir/apps_integration_test.cpp.o.d"
  "apps_integration_test"
  "apps_integration_test.pdb"
  "apps_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
