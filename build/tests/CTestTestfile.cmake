# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_kv_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/apps_integration_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/apps_unit_test[1]_include.cmake")
include("/root/repo/build/tests/loaders_test[1]_include.cmake")
