// Deterministic workload generators for the eight benchmarks (paper §4).
//
// Every generator produces text shards (one per cluster node) from an
// explicit seed, so the HAMR input (node-local files) and the baseline input
// (one DFS file = concatenated shards) are byte-identical datasets and every
// run is reproducible.
//
// Formats:
//   movies    : "m<id>:<r1>,<r2>,..."           (PUMA movie rating lines)
//   text      : "w<zipf> w<zipf> ..."            (Zipfian words, WordCount)
//   docs      : "label<k>\tw<zipf> w<zipf> ..."  (NaiveBayes training docs)
//   web graph : "<src> <dst>"                    (Zipfian in-degree edges)
//   rmat      : "<a> <b>"  a < b                 (undirected R-MAT edges)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hamr::gen {

struct MoviesSpec {
  uint64_t total_bytes = 1 << 20;  // approximate across all shards
  uint32_t ratings_per_movie = 64;
  uint64_t seed = 42;
  // Rating distribution P(1..5); HistogramRatings' skew comes from here.
  double rating_prob[5] = {0.10, 0.15, 0.25, 0.35, 0.15};
  // User-id space for the vector variant (K-Means / Classification lines
  // "m<id>:u<user>_<rating>,..."; users strictly increasing per line).
  uint32_t num_users = 2000;
};

struct TextSpec {
  uint64_t total_bytes = 1 << 20;
  uint32_t vocab = 50000;
  double theta = 0.99;  // Zipf exponent
  uint32_t words_per_line = 10;
  uint64_t seed = 43;
};

struct DocsSpec {
  uint64_t total_bytes = 1 << 20;
  uint32_t num_labels = 20;
  uint32_t vocab = 20000;
  double theta = 0.99;
  uint32_t words_per_doc = 50;
  uint64_t seed = 44;
};

struct WebGraphSpec {
  uint64_t num_pages = 4096;
  uint64_t num_edges = 32768;
  double theta = 0.8;  // Zipfian in-degree skew
  uint64_t seed = 45;
};

struct RmatSpec {
  uint32_t scale = 9;  // 2^scale vertices
  uint64_t num_edges = 16384;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1-a-b-c
  uint64_t seed = 46;
};

// Each function renders shard `shard` of `num_shards` as newline-terminated
// text. Shards partition the dataset; the same (spec, shard count) always
// yields the same bytes.
std::string movies_shard(const MoviesSpec& spec, uint32_t shard, uint32_t num_shards);
// Vector variant for K-Means / Classification: "m<id>:u<u1>_<r1>,u<u2>_<r2>,..."
// with user ids strictly increasing within a line (a sparse vector in user
// space, as in the PUMA movie dataset).
std::string movie_vectors_shard(const MoviesSpec& spec, uint32_t shard,
                                uint32_t num_shards);
std::string text_shard(const TextSpec& spec, uint32_t shard, uint32_t num_shards);
std::string docs_shard(const DocsSpec& spec, uint32_t shard, uint32_t num_shards);
std::string web_graph_shard(const WebGraphSpec& spec, uint32_t shard,
                            uint32_t num_shards);
std::string rmat_shard(const RmatSpec& spec, uint32_t shard, uint32_t num_shards);

}  // namespace hamr::gen
