#include "gen/generators.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"

namespace hamr::gen {

namespace {

uint64_t shard_seed(uint64_t base, uint32_t shard) {
  uint64_t s = base + 0x9e3779b97f4a7c15ULL * (shard + 1);
  return splitmix64(s);
}

uint32_t sample_rating(Rng& rng, const double probs[5]) {
  const double u = rng.next_double();
  double cum = 0;
  for (uint32_t r = 0; r < 5; ++r) {
    cum += probs[r];
    if (u < cum) return r + 1;
  }
  return 5;
}

}  // namespace

std::string movies_shard(const MoviesSpec& spec, uint32_t shard,
                         uint32_t num_shards) {
  const uint64_t target = spec.total_bytes / std::max(1u, num_shards);
  Rng rng(shard_seed(spec.seed, shard));
  std::string out;
  out.reserve(target + 4096);
  // Movie ids are globally unique across shards (strided).
  uint64_t movie = shard;
  char buf[32];
  while (out.size() < target) {
    std::snprintf(buf, sizeof(buf), "m%llu:", static_cast<unsigned long long>(movie));
    out += buf;
    const uint32_t n = std::max<uint32_t>(
        1, spec.ratings_per_movie / 2 +
               static_cast<uint32_t>(rng.next_below(spec.ratings_per_movie)));
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0) out.push_back(',');
      out.push_back(static_cast<char>('0' + sample_rating(rng, spec.rating_prob)));
    }
    out.push_back('\n');
    movie += num_shards;
  }
  return out;
}

std::string movie_vectors_shard(const MoviesSpec& spec, uint32_t shard,
                                uint32_t num_shards) {
  const uint64_t target = spec.total_bytes / std::max(1u, num_shards);
  Rng rng(shard_seed(spec.seed ^ 0x6d766563, shard));
  std::string out;
  out.reserve(target + 4096);
  uint64_t movie = shard;
  char buf[48];
  while (out.size() < target) {
    std::snprintf(buf, sizeof(buf), "m%llu:", static_cast<unsigned long long>(movie));
    out += buf;
    const uint32_t n = std::max<uint32_t>(
        1, spec.ratings_per_movie / 2 +
               static_cast<uint32_t>(rng.next_below(spec.ratings_per_movie)));
    // Strictly increasing user ids: sample gaps.
    uint64_t user = rng.next_below(std::max<uint32_t>(1, spec.num_users / (n + 1)) + 1);
    for (uint32_t i = 0; i < n; ++i) {
      if (i > 0) out.push_back(',');
      std::snprintf(buf, sizeof(buf), "u%llu_%u",
                    static_cast<unsigned long long>(user % spec.num_users),
                    sample_rating(rng, spec.rating_prob));
      out += buf;
      user += 1 + rng.next_below(std::max<uint32_t>(1, spec.num_users / (n + 1)));
    }
    out.push_back('\n');
    movie += num_shards;
  }
  return out;
}

std::string text_shard(const TextSpec& spec, uint32_t shard, uint32_t num_shards) {
  const uint64_t target = spec.total_bytes / std::max(1u, num_shards);
  Rng rng(shard_seed(spec.seed, shard));
  Zipf zipf(spec.vocab, spec.theta);
  std::string out;
  out.reserve(target + 4096);
  char buf[24];
  while (out.size() < target) {
    for (uint32_t i = 0; i < spec.words_per_line; ++i) {
      std::snprintf(buf, sizeof(buf), "w%llu",
                    static_cast<unsigned long long>(zipf.sample(rng)));
      if (i > 0) out.push_back(' ');
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

std::string docs_shard(const DocsSpec& spec, uint32_t shard, uint32_t num_shards) {
  const uint64_t target = spec.total_bytes / std::max(1u, num_shards);
  Rng rng(shard_seed(spec.seed, shard));
  Zipf zipf(spec.vocab, spec.theta);
  std::string out;
  out.reserve(target + 4096);
  char buf[32];
  while (out.size() < target) {
    std::snprintf(buf, sizeof(buf), "label%llu\t",
                  static_cast<unsigned long long>(rng.next_below(spec.num_labels)));
    out += buf;
    for (uint32_t i = 0; i < spec.words_per_doc; ++i) {
      std::snprintf(buf, sizeof(buf), "w%llu",
                    static_cast<unsigned long long>(zipf.sample(rng)));
      if (i > 0) out.push_back(' ');
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

std::string web_graph_shard(const WebGraphSpec& spec, uint32_t shard,
                            uint32_t num_shards) {
  Rng rng(shard_seed(spec.seed, shard));
  Zipf zipf(spec.num_pages, spec.theta);
  const uint64_t shards = std::max(1u, num_shards);
  const uint64_t edges =
      spec.num_edges / shards + (shard < spec.num_edges % shards ? 1 : 0);
  std::string out;
  out.reserve(edges * 12);
  char buf[48];
  for (uint64_t i = 0; i < edges; ++i) {
    const uint64_t src = rng.next_below(spec.num_pages);
    uint64_t dst = zipf.sample(rng);  // popular pages attract links
    if (dst == src) dst = (dst + 1) % spec.num_pages;
    std::snprintf(buf, sizeof(buf), "%llu %llu\n",
                  static_cast<unsigned long long>(src),
                  static_cast<unsigned long long>(dst));
    out += buf;
  }
  return out;
}

std::string rmat_shard(const RmatSpec& spec, uint32_t shard, uint32_t num_shards) {
  Rng rng(shard_seed(spec.seed, shard));
  const uint64_t n = 1ull << spec.scale;
  const uint64_t shards = std::max(1u, num_shards);
  const uint64_t edges =
      spec.num_edges / shards + (shard < spec.num_edges % shards ? 1 : 0);
  std::string out;
  out.reserve(edges * 12);
  char buf[48];
  for (uint64_t i = 0; i < edges; ++i) {
    // Recursive-matrix descent.
    uint64_t row = 0, col = 0;
    for (uint32_t level = 0; level < spec.scale; ++level) {
      const double u = rng.next_double();
      const bool right = u >= spec.a && u < spec.a + spec.b;
      const bool down = u >= spec.a + spec.b && u < spec.a + spec.b + spec.c;
      const bool diag = u >= spec.a + spec.b + spec.c;
      row = (row << 1) | static_cast<uint64_t>(down || diag);
      col = (col << 1) | static_cast<uint64_t>(right || diag);
    }
    if (row == col) col = (col + 1) % n;
    const uint64_t lo = std::min(row, col);
    const uint64_t hi = std::max(row, col);
    std::snprintf(buf, sizeof(buf), "%llu %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi));
    out += buf;
  }
  return out;
}

}  // namespace hamr::gen
