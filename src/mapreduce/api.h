// The baseline's user API: classic Hadoop-style MapReduce.
//
// This is the comparison system of the paper's evaluation (IDH 3.0 == Apache
// Hadoop with YARN). The JobRunner reproduces Hadoop's execution shape:
// per-job startup cost, map tasks with data-local DFS splits, map-side
// sort/spill/merge through the local disk, an optional combiner at spill
// time, a hard barrier before reduce, shuffle fetches landing on the reduce
// side's local disk, a disk-based merge, and job output written to the DFS.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace hamr::mapreduce {

class MrContext {
 public:
  virtual ~MrContext() = default;
  virtual void emit(std::string_view key, std::string_view value) = 0;
  virtual uint32_t node() const = 0;
  virtual uint32_t num_nodes() const = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  // `key` is the line's byte offset rendered in decimal; `value` the line.
  virtual void map(std::string_view key, std::string_view value, MrContext& ctx) = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void reduce(std::string_view key,
                      const std::vector<std::string_view>& values,
                      MrContext& ctx) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

struct MrJobConfig {
  std::string name = "job";
  // 0 => one reduce task per node.
  uint32_t num_reduce_tasks = 0;
  // Map-side sort buffer; exceeding it triggers a sorted spill to local disk
  // (Hadoop's io.sort.mb).
  uint64_t map_sort_buffer_bytes = 1ull * 1024 * 1024;
  // Per-job overhead: job setup, scheduling, JVM distribution (Hadoop's
  // dominant cost for short/chained jobs; K-Cliques chains K-1 of these).
  Duration job_startup_cost = millis(250);
  // Per-task JVM launch cost (one JVM per task in the baseline, vs one
  // engine instance per node in HAMR - paper §5.2).
  Duration task_startup_cost = millis(15);
  // Apply `combiner` at spill and merge time (Table 3).
  ReducerFactory combiner;
  // Hadoop's io.sort.factor: max runs merged at once on the map and reduce
  // sides; beyond it, intermediate merge files hit the disk again.
  uint32_t merge_fan_in = 10;
};

struct MrResult {
  double wall_seconds = 0;
  uint32_t map_tasks = 0;
  uint32_t reduce_tasks = 0;
  uint64_t map_input_bytes = 0;
  uint64_t map_output_records = 0;
  uint64_t spill_bytes = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t output_bytes = 0;
};

}  // namespace hamr::mapreduce
