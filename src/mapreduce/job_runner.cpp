#include "mapreduce/job_runner.h"

#include <algorithm>
#include <thread>
#include <tuple>

#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "storage/run_file.h"

namespace hamr::mapreduce {

namespace {

// Extra bytes read past a split's end so the line straddling the boundary
// can be completed (Hadoop's LineRecordReader behavior).
constexpr uint64_t kBoundarySlack = 64 * 1024;

}  // namespace

struct JobRunner::JobScratch {
  uint64_t id = 0;
  uint32_t num_partitions = 0;
  std::string prefix;  // "mr/<id>/"
  std::mutex mu;
  // Per partition: (node, path, bytes) of every map-output segment.
  std::vector<std::vector<std::tuple<uint32_t, std::string, uint64_t>>> segments;
  std::atomic<uint64_t> map_input_bytes{0};
  std::atomic<uint64_t> map_output_records{0};
  std::atomic<uint64_t> spill_bytes{0};
  std::atomic<uint64_t> shuffle_bytes{0};
  std::atomic<uint64_t> output_bytes{0};
};

namespace {

// Groups consecutive equal keys of a sorted record range and feeds them to a
// reducer-style callback.
template <typename It, typename Fn>
void for_each_group(It begin, It end, Fn&& fn) {
  while (begin != end) {
    It run_end = begin;
    std::vector<std::string_view> values;
    while (run_end != end && std::get<1>(*run_end) == std::get<1>(*begin)) {
      values.emplace_back(std::get<2>(*run_end));
      ++run_end;
    }
    fn(std::string_view(std::get<1>(*begin)), values);
    begin = run_end;
  }
}

// Collects combiner output in sorted-key order (combiners emit the group key
// they were invoked with, so appending preserves order).
class CombineContext : public MrContext {
 public:
  CombineContext(uint32_t node, uint32_t num_nodes) : node_(node), nodes_(num_nodes) {}
  void emit(std::string_view key, std::string_view value) override {
    out.emplace_back(std::string(key), std::string(value));
  }
  uint32_t node() const override { return node_; }
  uint32_t num_nodes() const override { return nodes_; }

  std::vector<std::pair<std::string, std::string>> out;

 private:
  uint32_t node_, nodes_;
};

// Map-side collector: partitions, buffers, sorts, optionally combines, and
// spills through the node's throttled disk - Hadoop's MapOutputBuffer.
class MapCollector : public MrContext {
 public:
  MapCollector(cluster::Node* node, uint32_t num_nodes, uint32_t num_partitions,
               uint64_t buffer_limit, const ReducerFactory& combiner_factory,
               std::string path_prefix, std::atomic<uint64_t>* spill_bytes,
               uint32_t merge_fan_in)
      : node_(node),
        num_nodes_(num_nodes),
        num_partitions_(num_partitions),
        buffer_limit_(buffer_limit),
        path_prefix_(std::move(path_prefix)),
        spill_bytes_(spill_bytes),
        merge_fan_in_(merge_fan_in) {
    if (combiner_factory) combiner_ = combiner_factory();
    runs_.resize(num_partitions_);
  }

  void emit(std::string_view key, std::string_view value) override {
    const uint32_t part = partition_of(key, num_partitions_);
    buffered_bytes_ += key.size() + value.size() + 16;
    buffer_.emplace_back(part, std::string(key), std::string(value));
    if (buffered_bytes_ >= buffer_limit_) spill();
  }

  uint32_t node() const override { return node_->id(); }
  uint32_t num_nodes() const override { return num_nodes_; }

  uint64_t records() const { return records_; }

  // Final spill + per-partition merge. Returns (path, bytes) per partition
  // that has data.
  std::vector<std::tuple<uint32_t, std::string, uint64_t>> close(uint32_t task_id) {
    spill();
    std::vector<std::tuple<uint32_t, std::string, uint64_t>> outputs;
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      if (runs_[p].empty()) continue;
      std::string final_path =
          path_prefix_ + "map_" + std::to_string(task_id) + "_p" + std::to_string(p);
      if (runs_[p].size() == 1) {
        final_path = runs_[p][0];  // single run: no extra merge pass
      } else {
        storage::merge_runs(&node_->store(), runs_[p], final_path, merge_fan_in_);
        for (const std::string& run : runs_[p]) (void)node_->store().remove(run);
      }
      const uint64_t bytes = node_->store().file_size(final_path).value_or(0);
      outputs.emplace_back(p, final_path, bytes);
    }
    return outputs;
  }

 private:
  void spill() {
    if (buffer_.empty()) return;
    std::stable_sort(buffer_.begin(), buffer_.end(), [](const auto& a, const auto& b) {
      if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
      return std::get<1>(a) < std::get<1>(b);
    });
    records_ += buffer_.size();

    auto part_begin = buffer_.begin();
    while (part_begin != buffer_.end()) {
      const uint32_t part = std::get<0>(*part_begin);
      auto part_end = part_begin;
      while (part_end != buffer_.end() && std::get<0>(*part_end) == part) ++part_end;

      const std::string path = path_prefix_ + "spill_" +
                               std::to_string(spill_seq_++) + "_p" +
                               std::to_string(part);
      storage::RunWriter writer(&node_->store(), path);
      if (combiner_) {
        CombineContext cctx(node_->id(), num_nodes_);
        for_each_group(part_begin, part_end,
                       [&](std::string_view key, const std::vector<std::string_view>& vals) {
                         combiner_->reduce(key, vals, cctx);
                       });
        for (const auto& [k, v] : cctx.out) writer.add(k, v);
      } else {
        for (auto it = part_begin; it != part_end; ++it) {
          writer.add(std::get<1>(*it), std::get<2>(*it));
        }
      }
      const uint64_t written = writer.close();
      spill_bytes_->fetch_add(written);
      runs_[part].push_back(path);
      part_begin = part_end;
    }
    buffer_.clear();
    buffered_bytes_ = 0;
  }

  cluster::Node* node_;
  uint32_t num_nodes_;
  uint32_t num_partitions_;
  uint64_t buffer_limit_;
  std::string path_prefix_;
  std::atomic<uint64_t>* spill_bytes_;
  uint32_t merge_fan_in_;
  std::unique_ptr<Reducer> combiner_;
  std::vector<std::tuple<uint32_t, std::string, std::string>> buffer_;
  uint64_t buffered_bytes_ = 0;
  uint64_t spill_seq_ = 0;
  uint64_t records_ = 0;
  std::vector<std::vector<std::string>> runs_;
};

// Reduce-side collector: buffers "key\tvalue" text lines for the DFS output.
class OutputCollector : public MrContext {
 public:
  OutputCollector(uint32_t node, uint32_t num_nodes) : node_(node), nodes_(num_nodes) {}
  void emit(std::string_view key, std::string_view value) override {
    text_.append(key);
    text_.push_back('\t');
    text_.append(value);
    text_.push_back('\n');
  }
  uint32_t node() const override { return node_; }
  uint32_t num_nodes() const override { return nodes_; }

  const std::string& text() const { return text_; }

 private:
  uint32_t node_, nodes_;
  std::string text_;
};

}  // namespace

JobRunner::JobRunner(cluster::Cluster& cluster, dfs::MiniDfs& dfs)
    : cluster_(cluster), dfs_(dfs) {
  for (uint32_t i = 0; i < cluster_.size(); ++i) {
    cluster::Node& node = cluster_.node(i);
    node.rpc().register_method(
        rpc_id::kFetchSegment, [&node](uint32_t /*caller*/, std::string_view arg) {
          auto data = node.store().read_file(std::string(arg));
          data.status().ExpectOk();
          return std::move(data).value();
        });
  }
}

MrResult JobRunner::run(const MrJobConfig& config,
                        const std::vector<std::string>& input_paths,
                        const std::string& output_path,
                        const MapperFactory& mapper_factory,
                        const ReducerFactory& reducer_factory) {
  Stopwatch watch;

  JobScratch job;
  job.id = job_seq_.fetch_add(1);
  job.num_partitions =
      config.num_reduce_tasks == 0 ? cluster_.size() : config.num_reduce_tasks;
  job.prefix = "mr/" + std::to_string(job.id) + "/";
  job.segments.resize(job.num_partitions);

  // Job setup / submission overhead (client, scheduler, container launch).
  std::this_thread::sleep_for(config.job_startup_cost);

  // Build data-local map tasks: one per DFS block, placed on the replica
  // with the fewest tasks so far (Hadoop's locality-first scheduling).
  std::vector<MapTask> tasks;
  std::vector<uint32_t> load(cluster_.size(), 0);
  for (const std::string& path : input_paths) {
    auto info = dfs_.stat(path);
    info.status().ExpectOk();
    for (const auto& block : info.value().blocks) {
      MapTask task;
      task.task_id = static_cast<uint32_t>(tasks.size());
      task.path = path;
      task.offset = block.offset;
      task.length = block.length;
      uint32_t best = block.replicas.front();
      for (uint32_t replica : block.replicas) {
        if (load[replica] < load[best]) best = replica;
      }
      task.node = best;
      ++load[best];
      tasks.push_back(task);
    }
  }

  // Map phase.
  WaitGroup maps;
  maps.add(tasks.size());
  for (const MapTask& task : tasks) {
    cluster_.node(task.node).pool().submit([&, task] {
      run_map_task(config, job, task, mapper_factory);
      maps.done();
    });
  }
  maps.wait();  // <- the barrier HAMR removes (paper §3.2)

  // Reduce phase.
  WaitGroup reduces;
  reduces.add(job.num_partitions);
  for (uint32_t r = 0; r < job.num_partitions; ++r) {
    const uint32_t node = r % cluster_.size();
    cluster_.node(node).pool().submit([&, r] {
      run_reduce_task(config, job, r, output_path, reducer_factory);
      reduces.done();
    });
  }
  reduces.wait();

  // Intermediate cleanup (metadata-only).
  for (uint32_t n = 0; n < cluster_.size(); ++n) {
    for (const std::string& path : cluster_.node(n).store().list(job.prefix)) {
      (void)cluster_.node(n).store().remove(path);
    }
  }

  MrResult result;
  result.wall_seconds = watch.elapsed_seconds();
  result.map_tasks = static_cast<uint32_t>(tasks.size());
  result.reduce_tasks = job.num_partitions;
  result.map_input_bytes = job.map_input_bytes.load();
  result.map_output_records = job.map_output_records.load();
  result.spill_bytes = job.spill_bytes.load();
  result.shuffle_bytes = job.shuffle_bytes.load();
  result.output_bytes = job.output_bytes.load();
  return result;
}

void JobRunner::run_map_task(const MrJobConfig& config, JobScratch& job,
                             const MapTask& task, const MapperFactory& mapper_factory) {
  std::this_thread::sleep_for(config.task_startup_cost);  // JVM per task

  // Hadoop's LineRecordReader rule: a split owns every line that STARTS in
  // [offset, offset+length). Non-initial splits begin scanning one byte
  // early - if that byte is '\n' the split's first full line is kept, else
  // the partial line is skipped (it belongs upstream). Slack past the end
  // completes the final straddling line.
  const uint64_t base = task.offset > 0 ? task.offset - 1 : 0;
  auto data = dfs_.read_range(task.node, task.path, base,
                              (task.offset - base) + task.length + kBoundarySlack);
  data.status().ExpectOk();
  const std::string& raw = data.value();
  job.map_input_bytes.fetch_add(std::min<uint64_t>(task.length, raw.size()));

  MapCollector collector(&cluster_.node(task.node), cluster_.size(),
                         job.num_partitions, config.map_sort_buffer_bytes,
                         config.combiner,
                         job.prefix + "n" + std::to_string(task.node) + "_t" +
                             std::to_string(task.task_id) + "_",
                         &job.spill_bytes, config.merge_fan_in);
  std::unique_ptr<Mapper> mapper = mapper_factory();

  size_t pos = 0;
  if (task.offset > 0) {
    const size_t first_eol = raw.find('\n');
    if (first_eol == std::string::npos) return;
    pos = first_eol + 1;
  }
  const uint64_t end_abs = task.offset + task.length;  // first byte NOT owned
  while (pos < raw.size() && base + pos < end_abs) {
    size_t eol = raw.find('\n', pos);
    if (eol == std::string::npos) eol = raw.size();
    if (eol > pos) {
      const std::string key = std::to_string(base + pos);
      mapper->map(key, std::string_view(raw).substr(pos, eol - pos), collector);
    }
    pos = eol + 1;
  }

  auto outputs = collector.close(task.task_id);
  job.map_output_records.fetch_add(collector.records());
  std::lock_guard<std::mutex> lock(job.mu);
  for (auto& [part, path, bytes] : outputs) {
    job.segments[part].emplace_back(task.node, path, bytes);
  }
}

void JobRunner::run_reduce_task(const MrJobConfig& config, JobScratch& job,
                                uint32_t reduce_id, const std::string& output_path,
                                const ReducerFactory& reducer_factory) {
  std::this_thread::sleep_for(config.task_startup_cost);
  const uint32_t my_node = reduce_id % cluster_.size();
  cluster::Node& node = cluster_.node(my_node);

  // Shuffle: copy every remote segment of this partition to the local disk
  // (Hadoop's on-disk shuffle for data that exceeds the in-memory merge).
  std::vector<std::string> local_runs;
  std::vector<std::tuple<uint32_t, std::string, uint64_t>> segments;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    segments = job.segments[reduce_id];
  }
  uint32_t fetched = 0;
  for (const auto& [src_node, path, bytes] : segments) {
    if (src_node == my_node) {
      local_runs.push_back(path);
      continue;
    }
    auto data = node.rpc().call_sync(src_node, rpc_id::kFetchSegment, path,
                                     std::chrono::minutes(10));
    data.status().ExpectOk();
    job.shuffle_bytes.fetch_add(data.value().size());
    const std::string local_path = job.prefix + "shuffle_r" +
                                   std::to_string(reduce_id) + "_" +
                                   std::to_string(fetched++);
    node.store().write_file(local_path, data.value());
    local_runs.push_back(local_path);
  }

  // Reduce-side pre-merge: with more segments than the fan-in, Hadoop merges
  // them through the disk before the final streaming merge.
  if (config.merge_fan_in >= 2 && local_runs.size() > config.merge_fan_in) {
    const std::string merged =
        job.prefix + "rmerge_r" + std::to_string(reduce_id);
    storage::merge_runs(&node.store(), local_runs, merged, config.merge_fan_in);
    local_runs.assign(1, merged);
  }

  // Merge + group + reduce.
  OutputCollector out(my_node, cluster_.size());
  std::unique_ptr<Reducer> reducer = reducer_factory();
  if (!local_runs.empty()) {
    std::vector<storage::RunReader> readers;
    readers.reserve(local_runs.size());
    for (const std::string& path : local_runs) readers.emplace_back(&node.store(), path);

    struct Head {
      std::string_view key, value;
      size_t idx;
      bool done = true;
    };
    std::vector<Head> heads(readers.size());
    for (size_t i = 0; i < readers.size(); ++i) {
      heads[i].idx = i;
      heads[i].done = !readers[i].next(&heads[i].key, &heads[i].value);
    }
    std::string current_key;
    std::vector<std::string_view> values;
    bool have_group = false;
    auto flush = [&] {
      if (have_group) {
        reducer->reduce(current_key, values, out);
        values.clear();
        have_group = false;
      }
    };
    for (;;) {
      Head* best = nullptr;
      for (auto& h : heads) {
        if (h.done) continue;
        if (best == nullptr || h.key < best->key) best = &h;
      }
      if (best == nullptr) break;
      if (!have_group || best->key != current_key) {
        flush();
        current_key.assign(best->key);
        have_group = true;
      }
      values.push_back(best->value);
      best->done = !readers[best->idx].next(&best->key, &best->value);
    }
    flush();
  }

  // Output to DFS (text part file), even when empty - Hadoop writes empty
  // part files too, and chained jobs stat them.
  const std::string part_path =
      output_path + "/part-r-" + std::to_string(reduce_id);
  dfs_.write(my_node, part_path, out.text()).ExpectOk();
  job.output_bytes.fetch_add(out.text().size());
}

}  // namespace hamr::mapreduce
