// Disk-based MapReduce execution over the simulated cluster (the baseline).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/mini_dfs.h"
#include "mapreduce/api.h"

namespace hamr::mapreduce {

// RPC method ids (mapreduce range: 60-69).
namespace rpc_id {
inline constexpr uint32_t kFetchSegment = 60;
}

class JobRunner {
 public:
  JobRunner(cluster::Cluster& cluster, dfs::MiniDfs& dfs);

  // Runs one job: map over every block of `input_paths` (data-local when
  // possible), shuffle, reduce, and write text output files
  // `<output_path>/part-r-<i>` ("key\tvalue" lines) to the DFS. Blocks until
  // completion. Chained jobs are sequential run() calls.
  MrResult run(const MrJobConfig& config, const std::vector<std::string>& input_paths,
               const std::string& output_path, const MapperFactory& mapper_factory,
               const ReducerFactory& reducer_factory);

  cluster::Cluster& cluster() { return cluster_; }
  dfs::MiniDfs& dfs() { return dfs_; }

 private:
  struct MapTask {
    uint32_t task_id = 0;
    uint32_t node = 0;  // where it runs
    std::string path;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  struct JobScratch;  // per-run shared state (defined in .cpp)

  void run_map_task(const MrJobConfig& config, JobScratch& job, const MapTask& task,
                    const MapperFactory& mapper_factory);
  void run_reduce_task(const MrJobConfig& config, JobScratch& job, uint32_t reduce_id,
                       const std::string& output_path,
                       const ReducerFactory& reducer_factory);

  cluster::Cluster& cluster_;
  dfs::MiniDfs& dfs_;
  std::atomic<uint64_t> job_seq_{0};
};

}  // namespace hamr::mapreduce
