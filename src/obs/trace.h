// Lock-cheap tracing: per-thread ring buffers of Chrome trace_event spans.
//
// A TraceRecorder owns one fixed-capacity ring per recording thread. Threads
// register their ring lazily on first use (one mutex acquisition per thread
// per recorder, ever); after that, recording an event is a handful of plain
// stores plus one release store of the ring head - no locks, no allocation.
// When the ring wraps, the oldest events are overwritten and counted as
// dropped; tracing never blocks or slows the traced code beyond that.
//
// The off path is a single relaxed atomic load: TraceSpan checks
// `enabled()` once at construction and is a no-op afterwards, so leaving
// instrumentation compiled in costs nothing measurable when tracing is off.
//
// drain() is meant to run at a quiescent point (job end, bench teardown,
// after joining worker threads): it walks every ring and empties it. Events
// recorded concurrently with a drain on a *full* ring may race with the
// overwrite of the oldest slot; the engine only drains between jobs, so in
// practice drains see quiesced rings.
//
// Output is the Chrome trace_event JSON array format understood by
// chrome://tracing and Perfetto: complete events (ph "X") for spans and
// instant events (ph "i") for point occurrences, with pid = node id and
// tid = per-thread ring index, so the trace viewer groups lanes by node.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hamr::obs {

// One recorded event. `name` and `cat` must be string literals (or otherwise
// outlive the recorder); events store the pointers, never copies.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  char phase = 'X';      // 'X' complete (span), 'i' instant
  uint32_t node = 0;     // rendered as pid
  uint32_t tid = 0;      // per-recorder thread ring index
  int64_t flowlet = -1;  // -1 = not flowlet-scoped
  int64_t aux = -1;      // event-specific id (seq, bytes, cursor, ...)
  uint64_t ts_us = 0;    // microseconds since recorder epoch
  uint64_t dur_us = 0;   // span duration; 0 for instants
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 14;  // per thread

  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records a completed span [start, end). No-op when disabled.
  void record_span(const char* name, const char* cat, uint32_t node,
                   int64_t flowlet, int64_t aux, TimePoint start,
                   TimePoint end);

  // Records an instant event at now(). No-op when disabled.
  void record_instant(const char* name, const char* cat, uint32_t node,
                      int64_t flowlet = -1, int64_t aux = -1);

  // Empties every thread ring, returning surviving events (per-thread order
  // preserved; threads concatenated in registration order). Call at a
  // quiescent point.
  std::vector<TraceEvent> drain();

  // Events overwritten by ring wraparound before they could be drained.
  // Updated by drain().
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Number of thread rings registered so far.
  size_t ring_count() const;

  // Serializes events as {"traceEvents":[...]} - the Chrome trace format.
  static std::string to_json(const std::vector<TraceEvent>& events);

  // drain() + to_json() in one step.
  std::string drain_to_json() { return to_json(drain()); }

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    // Total events ever written by the owning thread. The owner stores with
    // release order after filling a slot; drain() acquires before reading.
    std::atomic<uint64_t> head{0};
    uint64_t consumed = 0;  // drained so far (drain-side only)
    uint32_t tid = 0;
    std::vector<TraceEvent> slots;
  };

  Ring* this_thread_ring();
  void push(Ring* ring, const TraceEvent& ev);

  // Distinguishes recorders in the thread-local ring map so a thread that
  // outlives one recorder never resolves a stale ring of a dead one.
  const uint64_t id_;
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  const TimePoint epoch_;

  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<uint64_t> dropped_{0};
};

// Process-global recorder: lets deep layers (net, storage, kvstore) emit
// events without threading a pointer through every constructor. Disabled by
// default; the bench harness enables it under --trace.
TraceRecorder& trace();

// RAII span writing to the global recorder. Captures `enabled()` once at
// construction; when tracing is off the whole object is one relaxed load.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, uint32_t node,
            int64_t flowlet = -1, int64_t aux = -1)
      : active_(trace().enabled()) {
    if (active_) {
      name_ = name;
      cat_ = cat;
      node_ = node;
      flowlet_ = flowlet;
      aux_ = aux;
      start_ = now();
    }
  }

  ~TraceSpan() {
    if (active_) {
      trace().record_span(name_, cat_, node_, flowlet_, aux_, start_, now());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Fills in an id learned mid-span (e.g. bytes written, frame seq).
  void set_aux(int64_t aux) { aux_ = aux; }

 private:
  bool active_;
  const char* name_ = "";
  const char* cat_ = "";
  uint32_t node_ = 0;
  int64_t flowlet_ = -1;
  int64_t aux_ = -1;
  TimePoint start_{};
};

}  // namespace hamr::obs
