// Point-in-time snapshot of a Metrics registry, with delta / merge / JSON.
//
// The engine captures a cluster-wide snapshot before and after each job and
// stores the delta in JobResult::metrics, so a single run surfaces exactly
// the counters, gauge levels, and latency histograms that job produced -
// including the per-flowlet task-latency histograms
// (engine.flowlet.<id>.task_us) registered at job build time. The bench
// harness merges snapshots across benchmarks and dumps them as JSON under
// --metrics_json.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace hamr::obs {

// Plain-data copy of one Histogram (bounds + bucket counts + count + sum).
struct HistogramSnapshot {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1, last = overflow
  uint64_t count = 0;
  uint64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Upper bound of the bucket holding the q-quantile observation; 0 when
  // empty. Mirrors Histogram::quantile.
  uint64_t quantile(double q) const;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  static MetricsSnapshot capture(const Metrics& metrics);

  // Counter value by name; 0 when absent.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }

  const HistogramSnapshot* histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }

  // Sums `other` into this snapshot (cluster-wide aggregation). Gauges sum
  // too: for level-style gauges across nodes the sum is the cluster level.
  void merge_from(const MetricsSnapshot& other);

  // What happened between `before` and now: counters and histogram buckets
  // subtract (both are monotone); gauges keep their current (after) level.
  MetricsSnapshot delta_since(const MetricsSnapshot& before) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Pretty JSON: {"counters":{...},"gauges":{...},"histograms":{name:
  // {"count":..,"sum":..,"mean":..,"p50":..,"p99":..,"buckets":[..]}}}.
  std::string to_json() const;
};

}  // namespace hamr::obs
