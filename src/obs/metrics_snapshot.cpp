#include "obs/metrics_snapshot.h"

#include <algorithm>
#include <cstdio>

namespace hamr::obs {
namespace {

// Metric names are code-chosen identifiers, but escape defensively so the
// output is always valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0;
  const uint64_t rank = static_cast<uint64_t>(
      std::clamp(q, 0.0, 1.0) * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) return bounds[std::min(i, bounds.size() - 1)];
  }
  return bounds.back();
}

MetricsSnapshot MetricsSnapshot::capture(const Metrics& metrics) {
  MetricsSnapshot snap;
  for (const auto& [name, value] : metrics.snapshot()) {
    snap.counters[name] = value;
  }
  for (const auto& [name, value] : metrics.gauges_snapshot()) {
    snap.gauges[name] = value;
  }
  for (const auto& [name, h] : metrics.histograms_snapshot()) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets.resize(h->num_buckets());
    for (size_t i = 0; i < hs.buckets.size(); ++i) {
      hs.buckets[i] = h->bucket_count(i);
    }
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hs] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = hs;
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds != hs.bounds) continue;  // incompatible; skip silently
    for (size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += hs.buckets[i];
    }
    mine.count += hs.count;
    mine.sum += hs.sum;
  }
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    const uint64_t prev = it == before.counters.end() ? 0 : it->second;
    out.counters[name] = value >= prev ? value - prev : value;
  }
  out.gauges = gauges;  // levels: report the current value
  for (const auto& [name, hs] : histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end() || it->second.bounds != hs.bounds) {
      out.histograms[name] = hs;
      continue;
    }
    const HistogramSnapshot& prev = it->second;
    HistogramSnapshot d;
    d.bounds = hs.bounds;
    d.buckets.resize(hs.buckets.size());
    for (size_t i = 0; i < hs.buckets.size(); ++i) {
      const uint64_t p = i < prev.buckets.size() ? prev.buckets[i] : 0;
      d.buckets[i] = hs.buckets[i] >= p ? hs.buckets[i] - p : hs.buckets[i];
    }
    d.count = hs.count >= prev.count ? hs.count - prev.count : hs.count;
    d.sum = hs.sum >= prev.sum ? hs.sum - prev.sum : hs.sum;
    out.histograms[name] = std::move(d);
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hs] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(name) + "\": {";
    out += "\"count\": " + std::to_string(hs.count);
    out += ", \"sum\": " + std::to_string(hs.sum);
    out += ", \"mean\": " + format_double(hs.mean());
    out += ", \"p50\": " + std::to_string(hs.quantile(0.5));
    out += ", \"p99\": " + std::to_string(hs.quantile(0.99));
    out += ", \"buckets\": [";
    for (size_t i = 0; i < hs.buckets.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(hs.buckets[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace hamr::obs
