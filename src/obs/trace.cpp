#include "obs/trace.h"

#include <algorithm>
#include <unordered_map>

namespace hamr::obs {
namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

uint64_t to_micros_since(TimePoint epoch, TimePoint t) {
  if (t <= epoch) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - epoch)
          .count());
}

}  // namespace

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(now()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::Ring* TraceRecorder::this_thread_ring() {
  // Keyed by recorder id, not pointer: a thread outliving a destroyed
  // recorder must not hand a new recorder (reusing the same address) the
  // dead recorder's ring.
  thread_local std::unordered_map<uint64_t, Ring*> tls_rings;
  auto it = tls_rings.find(id_);
  if (it != tls_rings.end()) return it->second;

  auto ring = std::make_unique<Ring>(capacity_);
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    raw->tid = static_cast<uint32_t>(rings_.size());
    rings_.push_back(std::move(ring));
  }
  tls_rings.emplace(id_, raw);
  return raw;
}

void TraceRecorder::push(Ring* ring, const TraceEvent& ev) {
  uint64_t head = ring->head.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->slots[head % capacity_];
  slot = ev;
  slot.tid = ring->tid;
  ring->head.store(head + 1, std::memory_order_release);
}

void TraceRecorder::record_span(const char* name, const char* cat,
                                uint32_t node, int64_t flowlet, int64_t aux,
                                TimePoint start, TimePoint end) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'X';
  ev.node = node;
  ev.flowlet = flowlet;
  ev.aux = aux;
  ev.ts_us = to_micros_since(epoch_, start);
  uint64_t end_us = to_micros_since(epoch_, end);
  ev.dur_us = end_us > ev.ts_us ? end_us - ev.ts_us : 0;
  push(this_thread_ring(), ev);
}

void TraceRecorder::record_instant(const char* name, const char* cat,
                                   uint32_t node, int64_t flowlet,
                                   int64_t aux) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = 'i';
  ev.node = node;
  ev.flowlet = flowlet;
  ev.aux = aux;
  ev.ts_us = to_micros_since(epoch_, now());
  push(this_thread_ring(), ev);
}

std::vector<TraceEvent> TraceRecorder::drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (auto& ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t oldest = head > capacity_ ? head - capacity_ : 0;
    uint64_t begin = std::max(ring->consumed, oldest);
    if (begin > ring->consumed) {
      dropped_.fetch_add(begin - ring->consumed, std::memory_order_relaxed);
    }
    for (uint64_t i = begin; i < head; ++i) {
      out.push_back(ring->slots[i % capacity_]);
    }
    ring->consumed = head;
  }
  return out;
}

size_t TraceRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

std::string TraceRecorder::to_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 120 + 32);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += ev.name;  // names/cats are literals; no escaping needed
    out += "\",\"cat\":\"";
    out += ev.cat;
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":";
    out += std::to_string(ev.node);
    out += ",\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    out += std::to_string(ev.ts_us);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(ev.dur_us);
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    out += ",\"args\":{\"flowlet\":";
    out += std::to_string(ev.flowlet);
    out += ",\"aux\":";
    out += std::to_string(ev.aux);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

TraceRecorder& trace() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

}  // namespace hamr::obs
