// Deterministic event log: scheduling-relevant engine events, ordered.
//
// The runtime appends an Event at each scheduling-relevant point (bin
// enqueued / processed, flowlet ready / complete, completion broadcast,
// channel complete, flow-control stall begin / end, spill, task retry).
// Every event carries two sequence numbers:
//
//   * seq        - global append order across the whole log, and
//   * stream_seq - the event's index within its (node, flowlet) stream,
//                  mirroring the PR-1 FaultInjector's counter-indexed
//                  per-stream decision scheme.
//
// Determinism guarantee: the log is a linearization consistent with the
// engine's happens-before order. Events of one (node, flowlet) stream that
// are causally ordered by the engine (a flowlet cannot complete before its
// last bin is processed; a stall cannot end before it began) appear in that
// order with monotonically increasing stream_seq on every run. Concurrent
// events (two workers processing different bins of the same flowlet) may
// interleave differently across runs, but every ordering *invariant* the
// engine promises holds in every legal log - which is exactly what tests
// assert, with no sleeps.
//
// The log is mutex-protected and unbounded; it is a test/debug facility
// (enabled by planting a pointer in EngineConfig::event_log), not a hot-path
// one. When the pointer is null the runtime pays one branch per site.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace hamr::obs {

enum class EventKind : uint8_t {
  kBinEnqueued = 0,     // data bin arrived for flowlet; aux = record count
  kBinProcessed,        // worker finished a bin task; aux = record count
  kChannelComplete,     // upstream channel into flowlet done; aux = src node
  kFlowletReady,        // all inputs drained; finish pass scheduled
  kReduceStageRun,      // reduce stage executed; aux = subpartition index
  kFlowletComplete,     // flowlet locally complete on this node
  kCompleteBroadcast,   // node broadcast COMPLETE for flowlet
  kStallBegin,          // flow control paused a task; aux = task tag
  kStallEnd,            // the same task resumed; aux = task tag
  kSpill,               // partial-reduce spill written; aux = bytes
  kTaskRetry,           // crashed task re-enqueued; aux = attempt number
  // Job-service lifecycle (node = 0, flowlet = job id):
  kJobSubmitted,        // ticket created; aux = priority
  kJobDispatched,       // job began running; aux = executor lane
  kJobDone,             // job finished; aux = 1 on success, 0 on failure
  kJobCancelled,        // job cancelled (queued or running)
  kJobRejected,         // admission queue full; job shed
  kJobDeadline,         // deadline elapsed; job aborted
  // Event-time streaming (src/stream/):
  kWindowOpen,          // first record folded for a window; aux = window end (us)
  kWatermarkAdvance,    // operator watermark advanced; aux = new watermark (us)
  kWindowEmit,          // closed window emitted downstream; aux = window end (us)
  // Cross-job dataset cache (src/cache/, node = 0, flowlet = -1):
  kDatasetPin,          // pin() hit a resident dataset; aux = generation
  kDatasetEvict,        // resident dataset dropped (LRU or invalidate); aux = bytes
};

const char* to_string(EventKind kind);

struct Event {
  uint64_t seq = 0;         // global append order
  uint64_t stream_seq = 0;  // index within the (node, flowlet) stream
  uint32_t node = 0;
  int64_t flowlet = -1;
  EventKind kind = EventKind::kBinEnqueued;
  int64_t aux = -1;
};

class EventLog {
 public:
  void record(uint32_t node, EventKind kind, int64_t flowlet,
              int64_t aux = -1);

  // Snapshot of all events in global order.
  std::vector<Event> events() const;

  // Events of one (node, flowlet) stream, in stream order.
  std::vector<Event> stream(uint32_t node, int64_t flowlet) const;

  uint64_t count(EventKind kind) const;
  uint64_t count(uint32_t node, int64_t flowlet, EventKind kind) const;

  size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::pair<uint32_t, int64_t>, uint64_t> stream_counts_;
};

}  // namespace hamr::obs
