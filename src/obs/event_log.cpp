#include "obs/event_log.h"

namespace hamr::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kBinEnqueued:
      return "bin_enqueued";
    case EventKind::kBinProcessed:
      return "bin_processed";
    case EventKind::kChannelComplete:
      return "channel_complete";
    case EventKind::kFlowletReady:
      return "flowlet_ready";
    case EventKind::kReduceStageRun:
      return "reduce_stage_run";
    case EventKind::kFlowletComplete:
      return "flowlet_complete";
    case EventKind::kCompleteBroadcast:
      return "complete_broadcast";
    case EventKind::kStallBegin:
      return "stall_begin";
    case EventKind::kStallEnd:
      return "stall_end";
    case EventKind::kSpill:
      return "spill";
    case EventKind::kTaskRetry:
      return "task_retry";
    case EventKind::kJobSubmitted:
      return "job_submitted";
    case EventKind::kJobDispatched:
      return "job_dispatched";
    case EventKind::kJobDone:
      return "job_done";
    case EventKind::kJobCancelled:
      return "job_cancelled";
    case EventKind::kJobRejected:
      return "job_rejected";
    case EventKind::kJobDeadline:
      return "job_deadline";
    case EventKind::kWindowOpen:
      return "window_open";
    case EventKind::kWatermarkAdvance:
      return "watermark_advance";
    case EventKind::kWindowEmit:
      return "window_emit";
    case EventKind::kDatasetPin:
      return "dataset_pin";
    case EventKind::kDatasetEvict:
      return "dataset_evict";
  }
  return "unknown";
}

void EventLog::record(uint32_t node, EventKind kind, int64_t flowlet,
                      int64_t aux) {
  std::lock_guard<std::mutex> lock(mu_);
  Event ev;
  ev.seq = events_.size();
  ev.stream_seq = stream_counts_[{node, flowlet}]++;
  ev.node = node;
  ev.flowlet = flowlet;
  ev.kind = kind;
  ev.aux = aux;
  events_.push_back(ev);
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<Event> EventLog::stream(uint32_t node, int64_t flowlet) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const Event& ev : events_) {
    if (ev.node == node && ev.flowlet == flowlet) out.push_back(ev);
  }
  return out;
}

uint64_t EventLog::count(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Event& ev : events_) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

uint64_t EventLog::count(uint32_t node, int64_t flowlet,
                         EventKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const Event& ev : events_) {
    if (ev.node == node && ev.flowlet == flowlet && ev.kind == kind) ++n;
  }
  return n;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  stream_counts_.clear();
}

}  // namespace hamr::obs
