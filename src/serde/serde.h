// From-scratch binary serialization: bounds-checked little-endian readers and
// writers with varint/zigzag integer encodings.
//
// This is the wire format for everything that crosses a (simulated or TCP)
// node boundary: shuffle bins, RPC envelopes, DFS blocks, and spill files.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace hamr::serde {

// Thrown on malformed input (truncated buffer, varint overflow). Reaching
// this indicates either corruption or a protocol bug, so we fail fast.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

// Appends encoded values to a ByteBuffer it does not own.
class Writer {
 public:
  explicit Writer(ByteBuffer& out) : out_(out) {}

  void put_u8(uint8_t v) { out_.push_back(v); }

  void put_fixed32(uint32_t v) {
    uint8_t b[4];
    std::memcpy(b, &v, 4);  // little-endian hosts only; asserted in tests
    out_.append(b, 4);
  }

  void put_fixed64(uint64_t v) {
    uint8_t b[8];
    std::memcpy(b, &v, 8);
    out_.append(b, 8);
  }

  void put_varint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<uint8_t>(v));
  }

  void put_zigzag(int64_t v) {
    put_varint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void put_double(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put_fixed64(bits);
  }

  // Length-prefixed byte string.
  void put_bytes(std::string_view sv) {
    put_varint(sv.size());
    out_.append(sv);
  }

  // Unprefixed raw bytes: one append, no per-element framing. The batch
  // codecs (batch.h) use this to move whole fixed-width runs in one shot.
  void put_raw(const void* data, size_t len) {
    out_.append(static_cast<const uint8_t*>(data), len);
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  ByteBuffer& buffer() { return out_; }

 private:
  ByteBuffer& out_;
};

// Reads encoded values from a non-owned byte range with strict bounds checks.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  Reader(const uint8_t* data, size_t len)
      : data_(reinterpret_cast<const char*>(data), len) {}

  uint8_t get_u8() {
    require(1);
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t get_fixed32() {
    require(4);
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  uint64_t get_fixed64() {
    require(8);
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  uint64_t get_varint() {
    uint64_t result = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw DecodeError("varint overflow");
      const uint8_t byte = get_u8();
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return result;
      shift += 7;
    }
  }

  int64_t get_zigzag() {
    const uint64_t raw = get_varint();
    return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  double get_double() {
    const uint64_t bits = get_fixed64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  std::string_view get_bytes() {
    const uint64_t len = get_varint();
    require(len);
    std::string_view sv = data_.substr(pos_, len);
    pos_ += len;
    return sv;
  }

  // Unprefixed raw view of the next `len` bytes: one bounds check for the
  // whole run (batch codec counterpart of put_raw).
  std::string_view get_raw(size_t len) {
    require(len);
    std::string_view sv = data_.substr(pos_, len);
    pos_ += len;
    return sv;
  }

  bool get_bool() { return get_u8() != 0; }

  bool at_end() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  void require(uint64_t n) const {
    if (n > data_.size() - pos_) {
      throw DecodeError("truncated buffer: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hamr::serde
