// Typed codecs over serde::Writer/Reader.
//
// The engine's public API lets applications emit typed keys/values; these
// traits define how each supported type maps onto the wire. Encodings are
// chosen so that lexicographic byte order of encoded keys is NOT relied upon
// anywhere - grouping always decodes first (unlike Hadoop's raw comparators).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serde/serde.h"

namespace hamr::serde {

template <typename T>
struct Codec;  // undefined primary: every supported type specializes

template <>
struct Codec<uint64_t> {
  static void encode(Writer& w, uint64_t v) { w.put_varint(v); }
  static uint64_t decode(Reader& r) { return r.get_varint(); }
};

template <>
struct Codec<uint32_t> {
  static void encode(Writer& w, uint32_t v) { w.put_varint(v); }
  static uint32_t decode(Reader& r) { return static_cast<uint32_t>(r.get_varint()); }
};

template <>
struct Codec<int64_t> {
  static void encode(Writer& w, int64_t v) { w.put_zigzag(v); }
  static int64_t decode(Reader& r) { return r.get_zigzag(); }
};

template <>
struct Codec<int32_t> {
  static void encode(Writer& w, int32_t v) { w.put_zigzag(v); }
  static int32_t decode(Reader& r) { return static_cast<int32_t>(r.get_zigzag()); }
};

template <>
struct Codec<double> {
  static void encode(Writer& w, double v) { w.put_double(v); }
  static double decode(Reader& r) { return r.get_double(); }
};

template <>
struct Codec<bool> {
  static void encode(Writer& w, bool v) { w.put_bool(v); }
  static bool decode(Reader& r) { return r.get_bool(); }
};

template <>
struct Codec<std::string> {
  static void encode(Writer& w, const std::string& v) { w.put_bytes(v); }
  static std::string decode(Reader& r) { return std::string(r.get_bytes()); }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void encode(Writer& w, const std::vector<T>& v) {
    w.put_varint(v.size());
    for (const auto& item : v) Codec<T>::encode(w, item);
  }
  static std::vector<T> decode(Reader& r) {
    const uint64_t n = r.get_varint();
    // Guard against hostile lengths: a vector can't have more elements than
    // remaining bytes (every element encodes to >= 1 byte).
    if (n > r.remaining()) throw DecodeError("vector length exceeds buffer");
    std::vector<T> out;
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) out.push_back(Codec<T>::decode(r));
    return out;
  }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void encode(Writer& w, const std::pair<A, B>& v) {
    Codec<A>::encode(w, v.first);
    Codec<B>::encode(w, v.second);
  }
  static std::pair<A, B> decode(Reader& r) {
    A a = Codec<A>::decode(r);
    B b = Codec<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename K, typename V>
struct Codec<std::map<K, V>> {
  static void encode(Writer& w, const std::map<K, V>& m) {
    w.put_varint(m.size());
    for (const auto& [k, v] : m) {
      Codec<K>::encode(w, k);
      Codec<V>::encode(w, v);
    }
  }
  static std::map<K, V> decode(Reader& r) {
    const uint64_t n = r.get_varint();
    if (n > r.remaining()) throw DecodeError("map length exceeds buffer");
    std::map<K, V> out;
    for (uint64_t i = 0; i < n; ++i) {
      K k = Codec<K>::decode(r);
      V v = Codec<V>::decode(r);
      out.emplace(std::move(k), std::move(v));
    }
    return out;
  }
};

// Convenience: encode a value to a fresh byte string / decode a whole buffer.
template <typename T>
std::string encode_to_string(const T& value) {
  ByteBuffer buf;
  Writer w(buf);
  Codec<T>::encode(w, value);
  return std::string(buf.view());
}

template <typename T>
T decode_from(std::string_view bytes) {
  Reader r(bytes);
  T value = Codec<T>::decode(r);
  if (!r.at_end()) throw DecodeError("trailing bytes after decode");
  return value;
}

}  // namespace hamr::serde
