// Batch (vectorized) codecs: encode/decode whole runs of values with one
// bounds check and one memcpy per run instead of one per element.
//
// The scalar serde path pays, per value, a length/bounds check and a few
// branch-y varint byte loops. For columnar row blocks and sort records the
// values are homogeneous, so the codec can amortize:
//
//   * fixed-width runs (u64 / f64): varint count, then count*8 raw bytes
//     moved with a single memcpy each way (little-endian hosts only, same
//     assumption as Writer::put_fixed64);
//   * string runs: varint count, then the count varint lengths, then all
//     payload bytes concatenated - the decoder bounds-checks the payload
//     block once and slices views out of it.
//
// bench/micro_serde.cpp carries scalar-vs-batch head-to-heads for both
// shapes; the batch side is the contract the row codec (query/row.cpp) and
// the sort record path build on.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "serde/serde.h"

namespace hamr::serde {

// --- fixed-width runs ------------------------------------------------------

inline void put_u64_run(Writer& w, const uint64_t* values, size_t count) {
  w.put_varint(count);
  w.put_raw(values, count * sizeof(uint64_t));
}

inline void put_u64_run(Writer& w, const std::vector<uint64_t>& values) {
  put_u64_run(w, values.data(), values.size());
}

inline void get_u64_run(Reader& r, std::vector<uint64_t>* out) {
  const uint64_t count = r.get_varint();
  const std::string_view raw = r.get_raw(count * sizeof(uint64_t));
  const size_t base = out->size();
  out->resize(base + count);
  if (count != 0) std::memcpy(out->data() + base, raw.data(), raw.size());
}

inline void put_f64_run(Writer& w, const double* values, size_t count) {
  w.put_varint(count);
  w.put_raw(values, count * sizeof(double));
}

inline void put_f64_run(Writer& w, const std::vector<double>& values) {
  put_f64_run(w, values.data(), values.size());
}

inline void get_f64_run(Reader& r, std::vector<double>* out) {
  const uint64_t count = r.get_varint();
  const std::string_view raw = r.get_raw(count * sizeof(double));
  const size_t base = out->size();
  out->resize(base + count);
  if (count != 0) std::memcpy(out->data() + base, raw.data(), raw.size());
}

// --- string runs -----------------------------------------------------------

inline void put_string_run(Writer& w, const std::string_view* values,
                           size_t count) {
  w.put_varint(count);
  for (size_t i = 0; i < count; ++i) w.put_varint(values[i].size());
  for (size_t i = 0; i < count; ++i) {
    w.put_raw(values[i].data(), values[i].size());
  }
}

inline void put_string_run(Writer& w, const std::vector<std::string_view>& values) {
  put_string_run(w, values.data(), values.size());
}

// Decoded views point into the Reader's underlying buffer (same lifetime
// rule as Reader::get_bytes). The payload block is bounds-checked once for
// the whole run.
inline void get_string_run(Reader& r, std::vector<std::string_view>* out) {
  const uint64_t count = r.get_varint();
  std::vector<uint64_t> lens(count);
  uint64_t total = 0;
  for (uint64_t i = 0; i < count; ++i) {
    lens[i] = r.get_varint();
    total += lens[i];
  }
  std::string_view payload = r.get_raw(total);
  out->reserve(out->size() + count);
  size_t off = 0;
  for (uint64_t i = 0; i < count; ++i) {
    out->push_back(payload.substr(off, lens[i]));
    off += lens[i];
  }
}

// --- framed record runs ----------------------------------------------------
//
// A framed stream is a plain concatenation of length-prefixed records
// (varint len | bytes)*, the layout shared by staged table shards and sort
// run files. These helpers are the one chunked encode/decode loop both
// readers use instead of each hand-rolling its own cursor arithmetic.

inline void put_framed(Writer& w, std::string_view record) {
  w.put_bytes(record);
}

// Decodes up to `max_records` records from `data` starting at *pos,
// appending views (into `data`) to `out` and advancing *pos past what was
// consumed. Returns the number decoded; fewer than `max_records` means the
// end of the stream was reached. Throws DecodeError on a truncated record.
inline size_t get_framed_run(std::string_view data, size_t* pos,
                             size_t max_records,
                             std::vector<std::string_view>* out) {
  Reader r(data.substr(*pos));
  size_t decoded = 0;
  while (decoded < max_records && r.remaining() > 0) {
    out->push_back(r.get_bytes());
    ++decoded;
  }
  *pos += r.position();
  return decoded;
}

}  // namespace hamr::serde
