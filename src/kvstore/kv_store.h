// Distributed in-memory key-value store.
//
// The paper (§5.2, §7) describes this component: one engine instance per node
// (unlike Hadoop's one JVM per task) means all tasks on a node share memory,
// and cross-phase state - K-Cliques' relationship graph, PageRank's adjacency
// lists and ranks - lives in a node-shared store partitioned by key hash.
//
// Ownership: key -> partition_of(key, num_nodes). Local accesses (the common
// case: flowlet tasks process exactly the keys their node owns) hit the
// in-memory shards directly; remote accesses go through RPC so their bytes
// traverse the modeled network.
//
// Values are byte strings; append() builds multi-value entries retrievable
// with get_list() (each element length-prefixed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"

namespace hamr::kv {

using cluster::NodeId;

// RPC method ids. The default store uses 100-109; an engine executor lane L
// shifts its store's methods to lane_base(L) = 100 + 10*L, so several lane
// engines can register their stores on the same per-node Rpc (reserved
// range: [100, 100 + 10 * net::msg_type::kMaxEngineLanes) = [100, 260)).
namespace rpc_id {
inline constexpr uint32_t kPut = 100;
inline constexpr uint32_t kGet = 101;
inline constexpr uint32_t kAppend = 102;
inline constexpr uint32_t kGetList = 103;
inline constexpr uint32_t kClearNamespace = 104;
inline constexpr uint32_t lane_base(uint32_t lane) { return kPut + 10 * lane; }
}  // namespace rpc_id

// One node's shard set. Sharded internally so concurrent tasks on the node
// don't serialize on a single lock.
class LocalStore {
 public:
  explicit LocalStore(size_t num_shards = 16);

  void put(std::string_view key, std::string_view value);
  Result<std::string> get(std::string_view key) const;
  void append(std::string_view key, std::string_view value);
  std::vector<std::string> get_list(std::string_view key) const;
  bool contains(std::string_view key) const;
  void clear_namespace(std::string_view prefix);

  // Iterates all (key, value) pairs with the given prefix. The callback runs
  // under the shard lock; keep it cheap.
  void for_each_prefix(std::string_view prefix,
                       const std::function<void(const std::string&, const std::string&)>& fn) const;

  uint64_t size() const;
  uint64_t bytes() const;

 private:
  // Transparent hash/equal: gets and contains-checks look keys up with the
  // caller's string_view directly - no temporary std::string per probe
  // (these run on flowlet hot paths, e.g. one get per PageRank record).
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string, StringHash, std::equal_to<>> map;
  };
  Shard& shard_for(std::string_view key);
  const Shard& shard_for(std::string_view key) const;

  std::vector<Shard> shards_;
};

// Cluster-wide store: owns one LocalStore per node and registers the RPC
// methods that serve remote requests.
class KvStore {
 public:
  // `rpc_base` shifts the registered method ids (see rpc_id::lane_base); all
  // clients of this store instance call through the same base.
  explicit KvStore(cluster::Cluster& cluster, uint32_t rpc_base = rpc_id::kPut);

  NodeId owner_of(std::string_view key) const;

  // Client-side operations issued from `from` node. Local when owner == from.
  void put(NodeId from, std::string_view key, std::string_view value);
  Result<std::string> get(NodeId from, std::string_view key);
  void append(NodeId from, std::string_view key, std::string_view value);
  std::vector<std::string> get_list(NodeId from, std::string_view key);

  // Drops every key with the prefix on every node (driver-side housekeeping
  // between jobs; does not traverse the network model).
  void clear_namespace(std::string_view prefix);

  LocalStore& local(NodeId node) { return *stores_.at(node); }

 private:
  // Counts one client op on the issuing node's metrics (cached pointers:
  // kv ops run on flowlet hot paths).
  void count_op(NodeId from, bool local) {
    (local ? local_ops_ : remote_ops_)[from]->add(1);
  }

  cluster::Cluster& cluster_;
  uint32_t rpc_base_ = rpc_id::kPut;
  std::vector<std::unique_ptr<LocalStore>> stores_;
  std::vector<Counter*> local_ops_;   // kv.local_ops per node
  std::vector<Counter*> remote_ops_;  // kv.remote_ops per node
  std::vector<Histogram*> remote_us_;  // kv.remote_us per node
};

// Encoding helpers for list values (shared with tests).
std::string encode_list_element(std::string_view value);
std::vector<std::string> decode_list(std::string_view packed);

}  // namespace hamr::kv
