#include "kvstore/kv_store.h"

#include "common/clock.h"
#include "common/hash.h"
#include "serde/serde.h"

namespace hamr::kv {

LocalStore::LocalStore(size_t num_shards) : shards_(num_shards == 0 ? 1 : num_shards) {}

LocalStore::Shard& LocalStore::shard_for(std::string_view key) {
  return shards_[hash_bytes(key) % shards_.size()];
}

const LocalStore::Shard& LocalStore::shard_for(std::string_view key) const {
  return shards_[hash_bytes(key) % shards_.size()];
}

void LocalStore::put(std::string_view key, std::string_view value) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  // Overwrites (e.g. per-iteration rank updates) reuse the existing key
  // string and value capacity instead of allocating both afresh.
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    s.map.emplace(std::string(key), std::string(value));
  } else {
    it->second.assign(value.data(), value.size());
  }
}

Result<std::string> LocalStore::get(std::string_view key) const {
  const Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return Status::NotFound("kv key");
  return it->second;
}

void LocalStore::append(std::string_view key, std::string_view value) {
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) {
    it = s.map.emplace(std::string(key), std::string()).first;
  }
  it->second += encode_list_element(value);
}

std::vector<std::string> LocalStore::get_list(std::string_view key) const {
  const Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return {};
  return decode_list(it->second);
}

bool LocalStore::contains(std::string_view key) const {
  const Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.map.find(key) != s.map.end();
}

void LocalStore::clear_namespace(std::string_view prefix) {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.map.begin(); it != s.map.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        it = s.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void LocalStore::for_each_prefix(
    std::string_view prefix,
    const std::function<void(const std::string&, const std::string&)>& fn) const {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, value] : s.map) {
      if (key.compare(0, prefix.size(), prefix) == 0) fn(key, value);
    }
  }
}

uint64_t LocalStore::size() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

uint64_t LocalStore::bytes() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, value] : s.map) n += key.size() + value.size();
  }
  return n;
}

std::string encode_list_element(std::string_view value) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_bytes(value);
  return std::string(buf.view());
}

std::vector<std::string> decode_list(std::string_view packed) {
  std::vector<std::string> out;
  serde::Reader r(packed);
  while (!r.at_end()) out.emplace_back(r.get_bytes());
  return out;
}

namespace {

// request := varint key_len | key | value
std::string pack_kv(std::string_view key, std::string_view value) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_bytes(key);
  buf.append(value);
  return std::string(buf.view());
}

}  // namespace

KvStore::KvStore(cluster::Cluster& cluster, uint32_t rpc_base)
    : cluster_(cluster), rpc_base_(rpc_base) {
  stores_.reserve(cluster_.size());
  local_ops_.reserve(cluster_.size());
  remote_ops_.reserve(cluster_.size());
  remote_us_.reserve(cluster_.size());
  for (uint32_t i = 0; i < cluster_.size(); ++i) {
    Metrics& m = cluster_.node(i).metrics();
    local_ops_.push_back(m.counter("kv.local_ops"));
    remote_ops_.push_back(m.counter("kv.remote_ops"));
    remote_us_.push_back(m.histogram("kv.remote_us"));
    stores_.push_back(std::make_unique<LocalStore>());
    LocalStore* store = stores_.back().get();
    net::Rpc& rpc = cluster_.node(i).rpc();
    rpc.register_method(rpc_base_ + 0, [store](NodeId, std::string_view arg) {
      serde::Reader r(arg);
      const std::string_view key = r.get_bytes();
      store->put(key, arg.substr(r.position()));
      return std::string();
    });
    rpc.register_method(rpc_base_ + 1, [store](NodeId, std::string_view arg) {
      auto result = store->get(arg);
      result.status().ExpectOk();
      return std::move(result).value();
    });
    rpc.register_method(rpc_base_ + 2, [store](NodeId, std::string_view arg) {
      serde::Reader r(arg);
      const std::string_view key = r.get_bytes();
      store->append(key, arg.substr(r.position()));
      return std::string();
    });
    rpc.register_method(rpc_base_ + 3, [store](NodeId, std::string_view arg) {
      // Response is the raw packed list; the client decodes.
      auto result = store->get(arg);
      return result.ok() ? std::move(result).value() : std::string();
    });
    rpc.register_method(rpc_base_ + 4, [store](NodeId, std::string_view arg) {
      store->clear_namespace(arg);
      return std::string();
    });
  }
}

NodeId KvStore::owner_of(std::string_view key) const {
  return partition_of(key, cluster_.size());
}

void KvStore::put(NodeId from, std::string_view key, std::string_view value) {
  const NodeId owner = owner_of(key);
  count_op(from, owner == from);
  if (owner == from) {
    stores_[owner]->put(key, value);
    return;
  }
  const TimePoint t0 = now();
  cluster_.node(from).rpc().call_sync(owner, rpc_base_ + 0, pack_kv(key, value))
      .status().ExpectOk();
  remote_us_[from]->observe(static_cast<uint64_t>((now() - t0).count() / 1000));
}

Result<std::string> KvStore::get(NodeId from, std::string_view key) {
  const NodeId owner = owner_of(key);
  count_op(from, owner == from);
  if (owner == from) return stores_[owner]->get(key);
  const TimePoint t0 = now();
  auto result =
      cluster_.node(from).rpc().call_sync(owner, rpc_base_ + 1, std::string(key));
  remote_us_[from]->observe(static_cast<uint64_t>((now() - t0).count() / 1000));
  return result;
}

void KvStore::append(NodeId from, std::string_view key, std::string_view value) {
  const NodeId owner = owner_of(key);
  count_op(from, owner == from);
  if (owner == from) {
    stores_[owner]->append(key, value);
    return;
  }
  const TimePoint t0 = now();
  cluster_.node(from).rpc().call_sync(owner, rpc_base_ + 2, pack_kv(key, value))
      .status().ExpectOk();
  remote_us_[from]->observe(static_cast<uint64_t>((now() - t0).count() / 1000));
}

std::vector<std::string> KvStore::get_list(NodeId from, std::string_view key) {
  const NodeId owner = owner_of(key);
  count_op(from, owner == from);
  if (owner == from) return stores_[owner]->get_list(key);
  const TimePoint t0 = now();
  auto result = cluster_.node(from).rpc().call_sync(owner, rpc_base_ + 3,
                                                    std::string(key));
  remote_us_[from]->observe(static_cast<uint64_t>((now() - t0).count() / 1000));
  result.status().ExpectOk();
  return decode_list(result.value());
}

void KvStore::clear_namespace(std::string_view prefix) {
  for (auto& store : stores_) store->clear_namespace(prefix);
}

}  // namespace hamr::kv
