#include "stream/stream_service.h"

#include <stdexcept>
#include <utility>

namespace hamr::stream {

StreamTicket::Progress StreamTicket::poll() const {
  Progress p;
  p.status = job_->status();
  const StreamStats& s = *stats_;
  p.events_ingested = s.events_ingested.load(std::memory_order_relaxed);
  p.windows_emitted = s.windows_emitted.load(std::memory_order_relaxed);
  p.results_emitted = s.results_emitted.load(std::memory_order_relaxed);
  p.backpressure_stalls =
      s.backpressure_stalls.load(std::memory_order_relaxed);
  p.watermark_us = s.watermark.load(std::memory_order_relaxed);
  p.window_bytes = s.window_bytes.load(std::memory_order_relaxed);
  return p;
}

service::JobWork StreamService::make_work(StreamPipeline pipeline,
                                          uint32_t nodes,
                                          std::shared_ptr<StreamStats> stats) {
  if (!pipeline.source) {
    throw std::invalid_argument("StreamPipeline needs a source factory");
  }
  if (!pipeline.fold) {
    throw std::invalid_argument("StreamPipeline needs a window fold");
  }

  SourceOptions src_opts = pipeline.source_options;
  src_opts.stats = stats;
  WindowOptions win_opts = pipeline.window_options;
  win_opts.stats = stats;
  // Watermarks align across one punctuation origin per source split, and
  // start() lays out one split per node.
  win_opts.expected_origins = nodes;

  service::JobWork work;
  auto source = std::move(pipeline.source);
  const engine::FlowletId src_id = work.graph.add_loader(
      "stream.source", [source, src_opts]() -> std::unique_ptr<engine::Flowlet> {
        return std::make_unique<SourceFlowlet>(source(), src_opts);
      });
  auto fold = std::move(pipeline.fold);
  const engine::FlowletId win_id = work.graph.add_partial_reduce(
      "stream.window", [fold, win_opts]() -> std::unique_ptr<engine::Flowlet> {
        return std::make_unique<EventWindowFlowlet>(fold, win_opts);
      });
  engine::FlowletFactory sink = std::move(pipeline.sink);
  if (!sink) {
    const std::string dir = pipeline.output_dir;
    sink = [dir]() -> std::unique_ptr<engine::Flowlet> {
      return std::make_unique<WindowFileSink>(dir);
    };
  }
  const engine::FlowletId sink_id =
      work.graph.add_map("stream.sink", std::move(sink));

  // Hash-partitioned data edge: (window, key) records and punctuation share
  // per-(src,dst) FIFO channels. Never a combine edge - sender-side combining
  // would fold punctuation into combine tables.
  work.graph.connect(src_id, win_id);
  // Closed windows ride the reliable shuffle downstream like any records.
  work.graph.connect(win_id, sink_id);

  for (uint32_t n = 0; n < nodes; ++n) {
    engine::InputSplit split;
    split.preferred_node = n;
    split.user_tag = n;
    work.inputs.add(src_id, split);
  }

  const std::string dir = pipeline.output_dir;
  work.collect = [dir](engine::Engine& eng) {
    return WindowFileSink::read_all(eng.cluster(), dir);
  };
  return work;
}

std::shared_ptr<StreamTicket> StreamService::start(StreamPipeline pipeline,
                                                   StreamSpec spec) {
  auto stats = std::make_shared<StreamStats>();
  const uint32_t nodes = jobs_.lane_engine(0).cluster().size();
  service::JobWork work = make_work(std::move(pipeline), nodes, stats);
  work.stream_duration = spec.duration;  // zero = bounded batch replay
  work.window_every = Duration::zero();  // event-time close, no wall flush

  std::shared_ptr<service::JobTicket> job =
      jobs_.submit(spec.job, std::move(work));
  return std::shared_ptr<StreamTicket>(
      new StreamTicket(&jobs_, std::move(job), std::move(stats)));
}

}  // namespace hamr::stream
