// Pull-based stream sources and the loader adapter that runs them.
//
// A StreamSource produces timestamped events from a replayable cursor plus a
// per-source low watermark. SourceFlowlet adapts one source to the engine's
// LoaderFlowlet chunk protocol: it assigns each event to its event-time
// windows (sender-side, so hash partitioning spreads (window, key) pairs),
// broadcasts in-band watermark punctuation, and pauses when downstream
// window state exceeds its backpressure budget.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "engine/flowlet.h"
#include "engine/rate_gate.h"
#include "engine/split.h"
#include "stream/stream.h"

namespace hamr::stream {

// One timestamped event.
struct StreamEvent {
  int64_t ts_us = 0;
  std::string key;
  std::string value;
};

// Replayable event source. One instance serves one split's chunk chain, so
// poll()/watermark() are called sequentially (no internal locking needed);
// replay determinism requires that the events be a pure function of the
// cursor.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  // Appends up to `max_events` events starting at *cursor and advances it.
  // Returns false when the source is exhausted (bounded sources); true means
  // "poll again" - possibly having appended nothing yet (a file tail at
  // end-of-file).
  virtual bool poll(const engine::InputSplit& split, uint64_t* cursor,
                    size_t max_events, engine::Context& ctx,
                    std::vector<StreamEvent>* out) = 0;

  // Low watermark at `cursor`: every event the source will produce from here
  // on has ts_us >= this value.
  virtual int64_t watermark(const engine::InputSplit& split,
                            uint64_t cursor) = 0;
};

// Deterministic generator: event i has
//   ts(i) = base_ts_us + i * period_us + jitter(seed, i)    (jitter >= 0)
// so events are emitted in index order but out of order in event time by up
// to jitter_us, and the watermark after cursor c is exactly
// base_ts_us + c * period_us. Replay-safe: everything is a pure function of
// (seed, index).
struct GeneratorConfig {
  uint64_t total_events = 0;  // per split; 0 = unbounded (runs until stop)
  int64_t base_ts_us = 0;
  int64_t period_us = 100;  // event-time spacing between indices
  int64_t jitter_us = 0;    // max forward event-time jitter (disorder bound)
  uint64_t seed = 1;
  double events_per_sec = 0;  // wall-clock pacing per split; 0 = unpaced
  // Produces the (key, value) of one event index. Default: key "k<i % 64>",
  // value "1" (a WordCount-shaped stream).
  std::function<void(uint64_t index, std::string* key, std::string* value)> make;
};

class GeneratorSource : public StreamSource {
 public:
  explicit GeneratorSource(GeneratorConfig config);

  bool poll(const engine::InputSplit& split, uint64_t* cursor,
            size_t max_events, engine::Context& ctx,
            std::vector<StreamEvent>* out) override;
  int64_t watermark(const engine::InputSplit& split, uint64_t cursor) override;

  int64_t event_ts(uint64_t index) const;

 private:
  GeneratorConfig config_;
  std::unique_ptr<engine::RateGate> gate_;  // null when unpaced
};

// Tails a newline-delimited file in the node's local store. Lines are
//   <ts_us>\t<key>\t<value>
// (malformed lines are skipped); the cursor is the byte offset of the next
// unread complete line. The watermark trails the max timestamp seen by
// allowed_lateness_us, the source's disorder bound.
struct FileTailConfig {
  std::string path;  // node-local store path (split.path wins when set)
  int64_t allowed_lateness_us = 0;
  size_t max_read_bytes = 64 * 1024;
  bool stop_at_eof = false;  // bounded replay of a closed file
};

class FileTailSource : public StreamSource {
 public:
  explicit FileTailSource(FileTailConfig config) : config_(std::move(config)) {}

  bool poll(const engine::InputSplit& split, uint64_t* cursor,
            size_t max_events, engine::Context& ctx,
            std::vector<StreamEvent>* out) override;
  int64_t watermark(const engine::InputSplit& split, uint64_t cursor) override;

 private:
  FileTailConfig config_;
  int64_t max_ts_ = INT64_MIN;
};

// Adapter: StreamSource -> LoaderFlowlet emitting window-keyed records plus
// punctuation on port 0.
struct SourceOptions {
  WindowSpec window;
  size_t events_per_chunk = 1024;
  // Events between watermark punctuations (each chunk boundary at most).
  uint64_t punctuate_every = 4096;
  std::shared_ptr<StreamStats> stats;
  // Backpressure: when the stream's open-window bytes (StreamStats::
  // window_bytes, maintained by the window operator) exceed this budget, the
  // source pauses briefly instead of emitting - the upper half of the
  // end-to-end chain whose lower half is the engine's outbox / bin-queue
  // credits. 0 disables.
  int64_t window_buffer_budget = 0;
  Duration backpressure_pause = millis(1);
};

class SourceFlowlet : public engine::LoaderFlowlet {
 public:
  SourceFlowlet(std::unique_ptr<StreamSource> source, SourceOptions options);

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override;

 private:
  void punctuate(const engine::InputSplit& split, uint64_t cursor,
                 engine::Context& ctx, bool final_punct);

  std::unique_ptr<StreamSource> source_;
  SourceOptions options_;
  std::vector<StreamEvent> batch_;
  std::string key_buf_;
  uint64_t events_since_punct_ = 0;
  int64_t last_watermark_ = INT64_MIN;
  Counter* ingested_c_ = nullptr;
  Counter* stalls_c_ = nullptr;
};

}  // namespace hamr::stream
