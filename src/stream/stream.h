// Streaming core types (paper §1.7: stream sources + windowed partial reduce
// on the same dataflow runtime).
//
// Event-time model:
//   * Every event carries a timestamp in event-time microseconds.
//   * Window state lives in the ordinary partial-reduce accumulator table
//     under composite keys  'w' + 16-hex(window end) + '|' + user key, so
//     window assignment happens sender-side and hash partitioning spreads
//     (window, key) pairs like any other key.
//   * Watermarks travel IN BAND as punctuation records (key prefix 0x00)
//     broadcast on the same edge as data. The transport's per-(src,dst)
//     channel FIFO - restored by the reliable shuffle under faults - makes a
//     punctuation's arrival prove that every event it covers arrived first.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "serde/serde.h"

namespace hamr::stream {

// Event-time window specification (microseconds). slide_us == 0 (or equal to
// size_us) means tumbling; a smaller slide makes overlapping sliding windows.
struct WindowSpec {
  int64_t size_us = 1'000'000;
  int64_t slide_us = 0;

  int64_t slide() const { return slide_us > 0 ? slide_us : size_us; }

  // Invokes fn(window_end_us) for every window containing ts, newest first.
  template <typename Fn>
  void each_window(int64_t ts, Fn&& fn) const {
    const int64_t s = slide();
    // Floor division so negative timestamps window correctly too.
    int64_t q = ts / s;
    if (ts % s < 0) --q;
    for (int64_t start = q * s; start > ts - size_us; start -= s) {
      fn(start + size_us);
    }
  }
};

// --- composite window keys -------------------------------------------------

inline constexpr size_t kWindowKeyPrefix = 18;  // 'w' + 16 hex + '|'

// Writes the 18-byte composite prefix for `end_us` into buf (size >= 18).
inline void write_window_prefix(int64_t end_us, char* buf) {
  static constexpr char kHex[] = "0123456789abcdef";
  buf[0] = 'w';
  const uint64_t v = static_cast<uint64_t>(end_us);
  for (int i = 0; i < 16; ++i) {
    buf[1 + i] = kHex[(v >> (60 - 4 * i)) & 0xF];
  }
  buf[17] = '|';
}

inline std::string window_key(int64_t end_us, std::string_view user_key) {
  std::string key(kWindowKeyPrefix + user_key.size(), '\0');
  write_window_prefix(end_us, key.data());
  std::copy(user_key.begin(), user_key.end(), key.begin() + kWindowKeyPrefix);
  return key;
}

// Window end of a composite key, or INT64_MIN when the key carries none.
inline int64_t window_key_end(std::string_view key) {
  if (key.size() < kWindowKeyPrefix || key[0] != 'w' || key[17] != '|') {
    return INT64_MIN;
  }
  uint64_t v = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = key[1 + i];
    uint64_t d;
    if (c >= '0' && c <= '9') {
      d = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return INT64_MIN;
    }
    v = (v << 4) | d;
  }
  return static_cast<int64_t>(v);
}

inline std::string_view window_key_user(std::string_view key) {
  return key.size() >= kWindowKeyPrefix ? key.substr(kWindowKeyPrefix)
                                        : std::string_view{};
}

// --- watermark punctuation -------------------------------------------------
// key = {0x00, 'w', 'm'}; value = varint origin | zigzag watermark_us. The
// 0x00 prefix cannot collide with 'w'-prefixed window keys or ordinary text
// keys.

inline std::string_view punctuation_key() {
  static constexpr char kKey[] = {'\0', 'w', 'm'};
  return {kKey, sizeof(kKey)};
}

inline bool is_punctuation_key(std::string_view key) {
  return key.size() == 3 && key[0] == '\0' && key[1] == 'w' && key[2] == 'm';
}

inline std::string encode_punctuation(uint32_t origin, int64_t watermark_us) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(origin);
  w.put_zigzag(watermark_us);
  return std::string(buf.view());
}

inline bool decode_punctuation(std::string_view value, uint32_t* origin,
                               int64_t* watermark_us) {
  try {
    serde::Reader r(value);
    *origin = static_cast<uint32_t>(r.get_varint());
    *watermark_us = r.get_zigzag();
    return true;
  } catch (const serde::DecodeError&) {
    return false;
  }
}

// --- live stream counters --------------------------------------------------
// Shared between the flowlet instances of a running stream (captured into
// the factories) and the StreamTicket's poll path. Lane-safe, unlike node
// metrics, which are shared by every lane on a node.
struct StreamStats {
  std::atomic<uint64_t> events_ingested{0};
  std::atomic<uint64_t> windows_emitted{0};   // distinct closed window ends
  std::atomic<uint64_t> results_emitted{0};   // (window, key) pairs emitted
  std::atomic<uint64_t> backpressure_stalls{0};
  std::atomic<int64_t> watermark{INT64_MIN};  // newest source watermark
  std::atomic<int64_t> window_bytes{0};       // open-window accumulator bytes
};

}  // namespace hamr::stream
