#include "stream/source.h"

#include <thread>

#include "common/hash.h"

namespace hamr::stream {

// --- GeneratorSource -------------------------------------------------------

GeneratorSource::GeneratorSource(GeneratorConfig config)
    : config_(std::move(config)) {
  if (config_.events_per_sec > 0) {
    gate_ = std::make_unique<engine::RateGate>(config_.events_per_sec);
  }
}

int64_t GeneratorSource::event_ts(uint64_t index) const {
  int64_t ts = config_.base_ts_us +
               static_cast<int64_t>(index) * config_.period_us;
  if (config_.jitter_us > 0) {
    // Forward-only jitter keeps the cursor watermark exact: every event at
    // index >= c has ts >= base + c * period.
    ts += static_cast<int64_t>(
        hash_combine(config_.seed, index) %
        static_cast<uint64_t>(config_.jitter_us + 1));
  }
  return ts;
}

bool GeneratorSource::poll(const engine::InputSplit& split, uint64_t* cursor,
                           size_t max_events, engine::Context& ctx,
                           std::vector<StreamEvent>* out) {
  (void)split;
  (void)ctx;
  uint64_t i = *cursor;
  uint64_t end = i + max_events;
  if (config_.total_events > 0 && end > config_.total_events) {
    end = config_.total_events;
  }
  if (i >= end) return config_.total_events == 0;
  if (gate_) gate_->charge(end - i);
  for (; i < end; ++i) {
    StreamEvent ev;
    ev.ts_us = event_ts(i);
    if (config_.make) {
      config_.make(i, &ev.key, &ev.value);
    } else {
      ev.key = "k" + std::to_string(i % 64);
      ev.value = "1";
    }
    out->push_back(std::move(ev));
  }
  *cursor = i;
  return config_.total_events == 0 || i < config_.total_events;
}

int64_t GeneratorSource::watermark(const engine::InputSplit& split,
                                   uint64_t cursor) {
  (void)split;
  if (config_.total_events > 0 && cursor >= config_.total_events) {
    return INT64_MAX;
  }
  return config_.base_ts_us + static_cast<int64_t>(cursor) * config_.period_us;
}

// --- FileTailSource --------------------------------------------------------

bool FileTailSource::poll(const engine::InputSplit& split, uint64_t* cursor,
                          size_t max_events, engine::Context& ctx,
                          std::vector<StreamEvent>* out) {
  const std::string& path = split.path.empty() ? config_.path : split.path;
  auto data = ctx.local_store().read_range(path, *cursor, config_.max_read_bytes);
  if (!data.ok()) {
    // Not created yet: keep tailing (bounded replays stop instead).
    return !config_.stop_at_eof;
  }
  const std::string& chunk = data.value();
  size_t pos = 0;
  size_t produced = 0;
  while (produced < max_events) {
    const size_t nl = chunk.find('\n', pos);
    if (nl == std::string::npos) break;  // incomplete trailing line stays
    const std::string_view line(chunk.data() + pos, nl - pos);
    pos = nl + 1;
    const size_t t1 = line.find('\t');
    if (t1 == std::string_view::npos) continue;  // malformed: skip
    const size_t t2 = line.find('\t', t1 + 1);
    if (t2 == std::string_view::npos) continue;
    int64_t ts = 0;
    bool neg = false;
    size_t d = 0;
    if (d < t1 && line[d] == '-') {
      neg = true;
      ++d;
    }
    bool ok = d < t1;
    for (; d < t1; ++d) {
      if (line[d] < '0' || line[d] > '9') {
        ok = false;
        break;
      }
      ts = ts * 10 + (line[d] - '0');
    }
    if (!ok) continue;
    if (neg) ts = -ts;
    StreamEvent ev;
    ev.ts_us = ts;
    ev.key.assign(line.substr(t1 + 1, t2 - t1 - 1));
    ev.value.assign(line.substr(t2 + 1));
    if (ev.ts_us > max_ts_) max_ts_ = ev.ts_us;
    out->push_back(std::move(ev));
    ++produced;
  }
  *cursor += pos;
  if (config_.stop_at_eof && produced == 0 && pos == 0) {
    auto size = ctx.local_store().file_size(path);
    if (size.ok() && *cursor >= size.value()) return false;
  }
  return true;
}

int64_t FileTailSource::watermark(const engine::InputSplit& split,
                                  uint64_t cursor) {
  (void)split;
  (void)cursor;
  if (max_ts_ == INT64_MIN) return INT64_MIN;
  return max_ts_ - config_.allowed_lateness_us;
}

// --- SourceFlowlet ---------------------------------------------------------

SourceFlowlet::SourceFlowlet(std::unique_ptr<StreamSource> source,
                             SourceOptions options)
    : source_(std::move(source)), options_(std::move(options)) {
  if (options_.events_per_chunk == 0) options_.events_per_chunk = 1;
  if (options_.punctuate_every == 0) options_.punctuate_every = 1;
}

bool SourceFlowlet::load_chunk(const engine::InputSplit& split,
                               uint64_t* cursor, engine::Context& ctx) {
  if (ingested_c_ == nullptr) {
    ingested_c_ = ctx.metrics().counter("stream.events_ingested");
    stalls_c_ = ctx.metrics().counter("stream.backpressure_stalls");
  }
  StreamStats* stats = options_.stats.get();

  // Backpressure from open-window state: over budget, nap briefly (like
  // RateGate's pacing nap) and retry the same cursor. The engine's own
  // outbox / bin-queue credits throttle the path below this one.
  if (!ctx.stream_stopping() && options_.window_buffer_budget > 0 &&
      stats != nullptr &&
      stats->window_bytes.load(std::memory_order_relaxed) >
          options_.window_buffer_budget) {
    stalls_c_->inc();
    stats->backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(options_.backpressure_pause);
    return true;
  }

  if (ctx.stream_stopping()) {
    // Drain: everything emitted so far is final; a +inf watermark lets every
    // buffered window close through the watermark path before completion.
    punctuate(split, *cursor, ctx, /*final_punct=*/true);
    return false;
  }

  batch_.clear();
  const bool more = source_->poll(split, cursor, options_.events_per_chunk,
                                  ctx, &batch_);
  for (const StreamEvent& ev : batch_) {
    // Composite (window, key) records, built in a reused buffer: only the
    // 16-hex window end changes between the covering windows of one event.
    key_buf_.resize(kWindowKeyPrefix + ev.key.size());
    std::copy(ev.key.begin(), ev.key.end(),
              key_buf_.begin() + kWindowKeyPrefix);
    options_.window.each_window(ev.ts_us, [&](int64_t end) {
      write_window_prefix(end, key_buf_.data());
      ctx.emit(0, key_buf_, ev.value);
    });
  }
  if (!batch_.empty()) {
    ingested_c_->add(batch_.size());
    if (stats != nullptr) {
      stats->events_ingested.fetch_add(batch_.size(),
                                       std::memory_order_relaxed);
    }
    events_since_punct_ += batch_.size();
  }
  if (!more) {
    punctuate(split, *cursor, ctx, /*final_punct=*/true);
    return false;
  }
  if (events_since_punct_ >= options_.punctuate_every) {
    punctuate(split, *cursor, ctx, /*final_punct=*/false);
  }
  return true;
}

void SourceFlowlet::punctuate(const engine::InputSplit& split, uint64_t cursor,
                              engine::Context& ctx, bool final_punct) {
  events_since_punct_ = 0;
  const int64_t wm =
      final_punct ? INT64_MAX : source_->watermark(split, cursor);
  if (wm == INT64_MIN || wm <= last_watermark_) return;
  last_watermark_ = wm;
  // One split per node (origin = the split's node): broadcast rides the same
  // out-edge as data, behind every event it covers on each channel.
  ctx.emit_broadcast(0, punctuation_key(),
                     encode_punctuation(split.preferred_node, wm));
  StreamStats* stats = options_.stats.get();
  if (stats != nullptr && !final_punct) {
    int64_t prev = stats->watermark.load(std::memory_order_relaxed);
    while (wm > prev &&
           !stats->watermark.compare_exchange_weak(prev, wm)) {
    }
  }
}

}  // namespace hamr::stream
