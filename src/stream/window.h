// Event-time windowing operator and the default output sink.
//
// EventWindowFlowlet is a PartialReduceFlowlet whose accumulators are keyed
// by composite (window end, user key) records from SourceFlowlet. It
// implements the engine's windowed-streaming hooks: punctuation records feed
// a per-origin watermark map, and when every expected origin has reported,
// the aligned minimum arms the runtime's close barrier. Closed windows leave
// the FlatAccTable exactly once - the mid-stream close drains them out of
// the table, the finish path emits only what remains - and travel downstream
// through the sequence-numbered reliable shuffle like any other records.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "engine/flowlet.h"
#include "stream/stream.h"

namespace hamr::stream {

// Folds one event's value into the accumulator of its (window, user key).
using WindowFold = std::function<void(
    std::string_view user_key, std::string_view value, std::string& acc)>;

struct WindowOptions {
  // Distinct punctuation origins the operator must hear from before the
  // watermark advances - one per source split (the stream service sets this
  // to the cluster size: one split per node).
  uint32_t expected_origins = 1;
  std::shared_ptr<StreamStats> stats;
};

class EventWindowFlowlet : public engine::PartialReduceFlowlet {
 public:
  EventWindowFlowlet(WindowFold fold, WindowOptions options)
      : fold_(std::move(fold)), options_(std::move(options)) {}

  void fold(std::string_view key, std::string_view value,
            std::string& acc) override;
  void emit_result(std::string_view key, std::string_view acc,
                   engine::Context& ctx) override;

  bool stream_windowed() const override { return true; }
  bool is_punctuation(std::string_view key) const override {
    return is_punctuation_key(key);
  }
  int64_t on_punctuation(std::string_view key, std::string_view value) override;
  int64_t window_end_of(std::string_view key) const override {
    return window_key_end(key);
  }
  void take_opened_windows(std::vector<int64_t>* out) override;

 private:
  WindowFold fold_;
  WindowOptions options_;
  std::mutex mu_;
  std::map<uint32_t, int64_t> origin_watermarks_;
  int64_t aligned_ = INT64_MIN;
  std::set<int64_t> open_ends_;
  std::vector<int64_t> opened_;  // drained by take_opened_windows
};

// Default sink: buffers final (window, key) -> value records per node and
// writes them sorted to `<dir>/node<id>` in the node's local store on
// finish. A key emitted more than once concatenates its values with ';', so
// any duplicate emission is visible in the output bytes (the chaos tests'
// exactly-once probe).
class WindowFileSink : public engine::MapFlowlet {
 public:
  explicit WindowFileSink(std::string dir = "stream/out")
      : dir_(std::move(dir)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override;
  void finish(engine::Context& ctx) override;

  static std::string node_path(const std::string& dir, uint32_t node) {
    return dir + "/node" + std::to_string(node);
  }
  // Concatenates every node's sink file in node order (deterministic).
  static std::string read_all(cluster::Cluster& cluster, const std::string& dir);

 private:
  std::string dir_;
  std::mutex mu_;
  std::map<std::string, std::string> out_;
};

}  // namespace hamr::stream
