// StreamService: first-class streaming jobs on the shared JobService.
//
// A stream is an ordinary job to the service - admitted through the same
// bounded queue, dispatched to an executor lane, visible to tenant fair
// share and deadlines - but long-lived: its loader is a SourceFlowlet that
// keeps polling a StreamSource, its partial reduce is an EventWindowFlowlet
// closing event-time windows on watermark alignment, and its lifecycle adds
// a graceful *drain* (stop sources, flush buffered windows, complete kDone
// with the collected output) next to the existing cancel.
//
//   StreamService streams(jobs);
//   auto t = streams.start(pipeline, spec);   // admitted like any job
//   t->poll();                                // live StreamStats snapshot
//   t->drain();                               // wind down, keep results
//   t->wait(); t->payload();                  // sink output, exactly once
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.h"
#include "service/job_service.h"
#include "stream/source.h"
#include "stream/window.h"

namespace hamr::stream {

// What runs on every node: source -> event-time windows -> sink.
struct StreamPipeline {
  // Creates one node's StreamSource (invoked once per node; per-node
  // behavior keys off the split the engine hands the instance).
  std::function<std::unique_ptr<StreamSource>()> source;
  SourceOptions source_options;

  // Per-(window, user key) accumulator fold.
  WindowFold fold;
  // expected_origins and stats are overwritten by start(); the rest is kept.
  WindowOptions window_options;

  // Closed windows land in a WindowFileSink writing `<output_dir>/node<id>`
  // per node, unless `sink` overrides the sink flowlet (then collect returns
  // an empty payload unless output_dir files exist).
  std::string output_dir = "stream/out";
  engine::FlowletFactory sink;
};

struct StreamSpec {
  service::JobSpec job;
  // Wall-clock lifetime; a drain/stop ends it earlier. Duration::zero() runs
  // the pipeline as a *bounded replay*: a plain batch job over the sources'
  // finite event sets (chaos tests and backfills) - drain is then a no-op.
  Duration duration = Duration::zero();
};

// Live view of one stream, shared between the caller and the service.
class StreamTicket {
 public:
  struct Progress {
    service::JobStatus status = service::JobStatus::kQueued;
    uint64_t events_ingested = 0;
    uint64_t windows_emitted = 0;
    uint64_t results_emitted = 0;
    uint64_t backpressure_stalls = 0;
    int64_t watermark_us = INT64_MIN;
    int64_t window_bytes = 0;
  };

  uint64_t id() const { return job_->id(); }
  service::JobStatus status() const { return job_->status(); }
  const std::shared_ptr<service::JobTicket>& job() const { return job_; }

  // Snapshot of the stream's own counters (lane-safe: the stats block is
  // private to this job, unlike the node-wide metrics registry).
  Progress poll() const;

  // Graceful wind-down: sources stop, buffered windows flush through the
  // final watermark, the job completes kDone with its payload.
  bool drain() { return service_->drain(job_->id()); }
  // Hard stop: the job aborts at the next task boundary as kCancelled.
  bool stop() { return service_->cancel(job_->id()); }

  service::JobStatus wait(Duration timeout = std::chrono::seconds(60)) const {
    return job_->wait(timeout);
  }
  std::string payload() const { return job_->payload(); }
  engine::JobResult result() const { return job_->result(); }

 private:
  friend class StreamService;
  StreamTicket(service::JobService* service,
               std::shared_ptr<service::JobTicket> job,
               std::shared_ptr<StreamStats> stats)
      : service_(service), job_(std::move(job)), stats_(std::move(stats)) {}

  service::JobService* service_;
  std::shared_ptr<service::JobTicket> job_;
  std::shared_ptr<StreamStats> stats_;
};

class StreamService {
 public:
  explicit StreamService(service::JobService& jobs) : jobs_(jobs) {}

  // Builds the 3-stage graph, wires a fresh StreamStats block through both
  // ends, and submits. The returned ticket may already be kRejected (full
  // queue) - same non-blocking admission as any job.
  std::shared_ptr<StreamTicket> start(StreamPipeline pipeline,
                                      StreamSpec spec = {});

  // Builds the JobWork for a pipeline without submitting (bench/tests that
  // drive an Engine directly). One source split per node; `stats` may be
  // null.
  static service::JobWork make_work(StreamPipeline pipeline, uint32_t nodes,
                                    std::shared_ptr<StreamStats> stats);

 private:
  service::JobService& jobs_;
};

}  // namespace hamr::stream
