#include "stream/window.h"

namespace hamr::stream {

void EventWindowFlowlet::fold(std::string_view key, std::string_view value,
                              std::string& acc) {
  const bool fresh = acc.empty();
  const size_t before = acc.size();
  fold_(window_key_user(key), value, acc);
  StreamStats* stats = options_.stats.get();
  if (stats != nullptr) {
    const int64_t delta =
        static_cast<int64_t>(acc.size()) - static_cast<int64_t>(before) +
        (fresh ? static_cast<int64_t>(key.size()) : 0);
    stats->window_bytes.fetch_add(delta, std::memory_order_relaxed);
  }
  if (fresh) {
    const int64_t end = window_key_end(key);
    if (end != INT64_MIN) {
      std::lock_guard<std::mutex> lock(mu_);
      if (open_ends_.insert(end).second) opened_.push_back(end);
    }
  }
}

void EventWindowFlowlet::emit_result(std::string_view key,
                                     std::string_view acc,
                                     engine::Context& ctx) {
  StreamStats* stats = options_.stats.get();
  if (stats != nullptr) {
    stats->results_emitted.fetch_add(1, std::memory_order_relaxed);
    stats->window_bytes.fetch_sub(
        static_cast<int64_t>(acc.size() + key.size()),
        std::memory_order_relaxed);
  }
  const int64_t end = window_key_end(key);
  if (end != INT64_MIN) {
    std::lock_guard<std::mutex> lock(mu_);
    if (open_ends_.erase(end) != 0 && stats != nullptr) {
      stats->windows_emitted.fetch_add(1, std::memory_order_relaxed);
    }
  }
  engine::PartialReduceFlowlet::emit_result(key, acc, ctx);
}

int64_t EventWindowFlowlet::on_punctuation(std::string_view key,
                                           std::string_view value) {
  (void)key;
  uint32_t origin = 0;
  int64_t wm = INT64_MIN;
  if (!decode_punctuation(value, &origin, &wm)) return INT64_MIN;
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& have = origin_watermarks_[origin];
  if (wm > have) have = wm;
  if (origin_watermarks_.size() <
      static_cast<size_t>(options_.expected_origins)) {
    return INT64_MIN;  // some origin has not reported yet
  }
  int64_t aligned = INT64_MAX;
  for (const auto& [o, w] : origin_watermarks_) {
    (void)o;
    if (w < aligned) aligned = w;
  }
  if (aligned <= aligned_) return INT64_MIN;
  aligned_ = aligned;
  return aligned;
}

void EventWindowFlowlet::take_opened_windows(std::vector<int64_t>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  out->insert(out->end(), opened_.begin(), opened_.end());
  opened_.clear();
}

void WindowFileSink::process(const engine::KvPair& record,
                             engine::Context& ctx) {
  (void)ctx;
  std::lock_guard<std::mutex> lock(mu_);
  std::string& slot = out_[std::string(record.key)];
  if (!slot.empty()) slot += ';';  // duplicate emission: visible in output
  slot.append(record.value);
}

void WindowFileSink::finish(engine::Context& ctx) {
  std::string data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, value] : out_) {
      data.append(key);
      data.push_back('\t');
      data.append(value);
      data.push_back('\n');
    }
  }
  ctx.local_store().write_file(node_path(dir_, ctx.node()), data);
}

std::string WindowFileSink::read_all(cluster::Cluster& cluster,
                                     const std::string& dir) {
  std::string all;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    auto data = cluster.node(n).store().read_file(node_path(dir, n));
    if (data.ok()) all.append(data.value());
  }
  return all;
}

}  // namespace hamr::stream
