#include "apps/movie_vectors.h"

#include <charconv>
#include <cmath>

namespace hamr::apps::movies {

bool parse_movie_vector(std::string_view line, MovieVector* out) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  out->id = line.substr(0, colon);
  out->coords.clear();
  size_t pos = colon + 1;
  while (pos < line.size()) {
    size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) comma = line.size();
    const std::string_view token = line.substr(pos, comma - pos);
    // token := "u<user>_<rating>"
    const size_t underscore = token.find('_');
    if (underscore != std::string_view::npos && !token.empty() && token[0] == 'u') {
      uint32_t user = 0;
      std::from_chars(token.data() + 1, token.data() + underscore, user);
      uint32_t rating = 0;
      std::from_chars(token.data() + underscore + 1, token.data() + token.size(),
                      rating);
      out->coords.emplace_back(user, static_cast<double>(rating));
    }
    pos = comma + 1;
  }
  return !out->coords.empty();
}

double cosine_similarity(const MovieVector& a, const MovieVector& b) {
  double dot = 0, na = 0, nb = 0;
  size_t i = 0, j = 0;
  while (i < a.coords.size() && j < b.coords.size()) {
    if (a.coords[i].first == b.coords[j].first) {
      dot += a.coords[i].second * b.coords[j].second;
      ++i;
      ++j;
    } else if (a.coords[i].first < b.coords[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  for (const auto& [user, r] : a.coords) na += r * r;
  for (const auto& [user, r] : b.coords) nb += r * r;
  if (na == 0 || nb == 0) return 0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

uint32_t assign_cluster(const MovieVector& movie,
                        const std::vector<MovieVector>& centroids,
                        double* similarity) {
  uint32_t best = 0;
  double best_sim = -1;
  for (uint32_t c = 0; c < centroids.size(); ++c) {
    const double sim = cosine_similarity(movie, centroids[c]);
    if (sim > best_sim) {
      best_sim = sim;
      best = c;
    }
  }
  if (similarity != nullptr) *similarity = best_sim;
  return best;
}

std::vector<std::string> initial_centroid_lines(const std::string& shard0,
                                                uint32_t k) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (lines.size() < k && pos < shard0.size()) {
    size_t eol = shard0.find('\n', pos);
    if (eol == std::string::npos) eol = shard0.size();
    if (eol > pos) lines.emplace_back(shard0.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

std::vector<MovieVector> parse_centroids(const std::vector<std::string>& lines) {
  std::vector<MovieVector> out;
  out.reserve(lines.size());
  for (const std::string& line : lines) {
    MovieVector v;
    if (parse_movie_vector(line, &v)) out.push_back(std::move(v));
  }
  return out;
}

}  // namespace hamr::apps::movies
