// K-Means, single iteration (paper §4, Alg. 1) - the flagship
// locality-awareness benchmark (§3.3).
//
// HAMR DAG: TextLoader -> ClusterGen (map) -> NewCentroidGen (reduce) ->
// NewCentroidInfoGet (map) -> CentroidUpdate (map).
// ClusterGen writes each movie to a LOCAL per-cluster file and ships only a
// tiny (similarity, node, offset) record downstream; the chosen new centroid
// is fetched back from the node holding the line (emit_to_node) and then
// broadcast - the full vectors never cross the network.
//
// Baseline: one Hadoop job that shuffles the ENTIRE movie line through
// sort/spill/merge to pick the new centroid per cluster.
//
// New-centroid rule (both systems + reference): the movie with the highest
// similarity to its old centroid; ties broken by smaller movie line text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::kmeans {

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;
  mapreduce::MrResult baseline_result;
};

struct Params {
  uint32_t k = 8;
  std::vector<std::string> centroid_lines;  // initial centroids (movie lines)
};

// Derives deterministic initial centroids from shard 0.
Params make_params(const std::vector<std::string>& shards, uint32_t k = 8);

// `ship_full_vectors` disables the locality optimization (ablation A4): the
// whole movie line travels to NewCentroidGen instead of a (sim, node,
// offset) index record, exactly as the baseline does.
RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params,
                 bool ship_full_vectors = false);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params);

// Multi-round driver over the dataset cache (DESIGN.md §15): round 0 reads
// the staged text input and publishes the (offset, movie line) records as
// cache dataset "kmeans/vectors" via the loader edge's tap - shard n mirrors
// node n's local input shard, so rounds >= 1 scan the resident blocks over a
// shuffle-free local edge and skip the disk read + line split entirely.
// Offsets stay valid because the scan split for shard n runs on node n, where
// the backing file lives. Each round recenters on the previous round's new
// centroids. A pin miss (eviction/invalidation) falls back to the text file
// transparently and republishes. `use_cache = false` re-reads the file every
// round (the ablation baseline).
struct IterativeRunInfo {
  double seconds = 0;
  std::vector<double> round_seconds;               // one per round
  std::vector<engine::JobResult> engine_results;   // one per round
  std::map<uint32_t, std::string> final_centroids; // after the last round
};
IterativeRunInfo run_hamr_iterative(BenchEnv& env, const StagedInput& input,
                                    const Params& params, uint32_t rounds,
                                    bool use_cache = true);

// cluster id -> new centroid movie line.
std::map<uint32_t, std::string> hamr_new_centroids(BenchEnv& env);
std::map<uint32_t, std::string> baseline_new_centroids(BenchEnv& env);
// cluster id -> member count (from the locally-written cluster files).
std::map<uint32_t, uint64_t> hamr_cluster_sizes(BenchEnv& env);

struct ReferenceResult {
  std::map<uint32_t, std::string> new_centroids;
  std::map<uint32_t, uint64_t> cluster_sizes;
};
ReferenceResult reference(const std::vector<std::string>& shards,
                          const Params& params);

}  // namespace hamr::apps::kmeans
