// Reusable counting pieces shared by WordCount, HistogramMovies and
// HistogramRatings: a count-sink partial reduce for HAMR and a sum reducer
// (also used as combiner) for the baseline.
#pragma once

#include <charconv>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "engine/flowlet.h"
#include "mapreduce/api.h"

namespace hamr::apps {

inline uint64_t parse_count(std::string_view s) {
  uint64_t n = 0;
  std::from_chars(s.data(), s.data() + s.size(), n);
  return n;
}

// Partial reduce summing decimal counts; as a sink it writes its node's
// results to "<out_prefix>node<N>" as "key\tcount" lines.
class CountSink : public engine::PartialReduceFlowlet {
 public:
  explicit CountSink(std::string out_prefix) : out_prefix_(std::move(out_prefix)) {}

  void fold(std::string_view key, std::string_view value, std::string& acc) override {
    (void)key;
    acc = std::to_string(parse_count(acc) + parse_count(value));
  }

  void emit_result(std::string_view key, std::string_view acc,
                   engine::Context& ctx) override {
    (void)ctx;
    out_.append(key);
    out_.push_back('\t');
    out_.append(acc);
    out_.push_back('\n');
  }

  void finish(engine::Context& ctx) override {
    ctx.local_store().write_file(out_prefix_ + "node" + std::to_string(ctx.node()),
                                 out_);
  }

 private:
  std::string out_prefix_;
  std::string out_;
};

// Baseline reducer/combiner: sums decimal counts per key.
class SumReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    uint64_t total = 0;
    for (std::string_view v : values) total += parse_count(v);
    ctx.emit(key, std::to_string(total));
  }
};

}  // namespace hamr::apps
