#include "apps/wordcount.h"

#include <charconv>

#include "engine/loaders.h"
#include "ir/passes.h"

namespace hamr::apps::wordcount {

namespace {

uint64_t parse_count(std::string_view s) {
  uint64_t n = 0;
  std::from_chars(s.data(), s.data() + s.size(), n);
  return n;
}

// --- HAMR flowlets ---

class Splitter : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    for (std::string_view word : tokenize(record.value)) ctx.emit(0, word, "1");
  }
};

// Counts per word; the accumulator is a decimal string so output is directly
// human-readable. Being a *sink*, it writes its node's final counts to the
// local disk in finish().
class Counter : public engine::PartialReduceFlowlet {
 public:
  void fold(std::string_view key, std::string_view value, std::string& acc) override {
    (void)key;
    const uint64_t total = parse_count(acc) + parse_count(value);
    acc = std::to_string(total);
  }

  void emit_result(std::string_view key, std::string_view acc,
                   engine::Context& ctx) override {
    (void)ctx;
    out_.append(key);
    out_.push_back('\t');
    out_.append(acc);
    out_.push_back('\n');
  }

  void finish(engine::Context& ctx) override {
    ctx.local_store().write_file(
        "out/wordcount/node" + std::to_string(ctx.node()), out_);
  }

 private:
  std::string out_;
};

// Full-reduce variant for the partial-vs-full ablation (A2).
class CountReducer : public engine::ReduceFlowlet {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    (void)ctx;
    uint64_t total = 0;
    for (std::string_view v : values) total += parse_count(v);
    std::lock_guard<std::mutex> lock(mu_);
    out_.append(key);
    out_.push_back('\t');
    out_ += std::to_string(total);
    out_.push_back('\n');
  }

  void finish(engine::Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    ctx.local_store().write_file(
        "out/wordcount/node" + std::to_string(ctx.node()), out_);
  }

 private:
  std::mutex mu_;  // distinct sub-partitions reduce concurrently
  std::string out_;
};

// --- baseline mapper/reducer ---

class WcMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view key, std::string_view value,
           mapreduce::MrContext& ctx) override {
    (void)key;
    for (std::string_view word : tokenize(value)) ctx.emit(word, "1");
  }
};

class WcReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    uint64_t total = 0;
    for (std::string_view v : values) total += parse_count(v);
    ctx.emit(key, std::to_string(total));
  }
};

}  // namespace

ir::Graph build_ir(bool combine, bool use_full_reduce) {
  ir::Graph graph;
  const auto loader = graph.add_source(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); },
      {"", "line"});
  const auto split = graph.add_map(
      "Splitter", [] { return std::make_unique<Splitter>(); }, {"", "line"},
      {"word", "count"});
  graph.connect(loader, split, ir::local_attrs());
  if (use_full_reduce) {
    const auto count = graph.add_reduce(
        "CountReducer", [] { return std::make_unique<CountReducer>(); },
        {"word", "count"});
    graph.node(count).effect = true;  // writes out/wordcount/ in finish()
    graph.connect(split, count);
  } else {
    const auto count = graph.add_combine(
        "Counter", [] { return std::make_unique<Counter>(); },
        {"word", "count"});
    graph.node(count).effect = true;
    graph.node(count).combinable = combine;
    graph.connect(split, count);
  }
  return graph;
}

engine::FlowletGraph build_graph(uint32_t* loader_out, bool combine,
                                 bool use_full_reduce) {
  ir::Lowered lowered = ir::lower(
      ir::PassPipeline::no_fusion().run(build_ir(combine, use_full_reduce)));
  *loader_out = lowered.flowlet_of[0];
  return std::move(lowered.graph);
}

ir::Lowered build_fused(uint32_t* loader_out, bool combine,
                        bool use_full_reduce) {
  const ir::Graph optimized =
      ir::optimize(build_ir(combine, use_full_reduce));
  ir::Lowered lowered = ir::lower(optimized);
  *loader_out = 0;
  for (const ir::Node& node : optimized.nodes) {
    if (node.kind == ir::NodeKind::kSource) {
      *loader_out = lowered.flowlet_of[node.id];
    }
  }
  return lowered;
}

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, bool combine,
                 bool use_full_reduce, bool fused) {
  RunInfo info;
  uint32_t loader = 0;
  if (fused) {
    ir::Lowered lowered = build_fused(&loader, combine, use_full_reduce);
    info.engine_result =
        env.engine->run(lowered.graph, inputs_for(loader, input));
  } else {
    engine::FlowletGraph graph = build_graph(&loader, combine, use_full_reduce);
    info.engine_result = env.engine->run(graph, inputs_for(loader, input));
  }
  info.seconds = info.engine_result.wall_seconds;
  return info;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, bool use_combiner) {
  mapreduce::MrJobConfig config = env.mr_defaults;
  config.name = "wordcount";
  if (use_combiner) {
    config.combiner = [] { return std::make_unique<WcReducer>(); };
  }
  RunInfo info;
  info.baseline_result = env.mr->run(
      config, {input.dfs_path}, "/out/wordcount",
      [] { return std::make_unique<WcMapper>(); },
      [] { return std::make_unique<WcReducer>(); });
  info.seconds = info.baseline_result.wall_seconds;
  return info;
}

std::map<std::string, uint64_t> hamr_output(BenchEnv& env) {
  return to_counts(collect_local_kv(*env.cluster, "out/wordcount/"));
}

std::map<std::string, uint64_t> baseline_output(BenchEnv& env) {
  return to_counts(collect_dfs_kv(env, "/out/wordcount"));
}

std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards) {
  std::map<std::string, uint64_t> counts;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      for (std::string_view word :
           tokenize(std::string_view(shard).substr(pos, eol - pos))) {
        ++counts[std::string(word)];
      }
      pos = eol + 1;
    }
  }
  return counts;
}

}  // namespace hamr::apps::wordcount
