// WordCount (paper §4): loader -> splitter map -> partial reduce.
//
// The HAMR version uses a PARTIAL reduce - counts increase the moment a word
// arrives, with no aggregation barrier. The baseline is the classic Hadoop
// job with a sum combiner. Both write "word\tcount".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"
#include "ir/ir.h"
#include "ir/lower.h"

namespace hamr::apps::wordcount {

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;   // HAMR runs only
  mapreduce::MrResult baseline_result;  // baseline runs only
};

// The job as IR: source TextLoader -> map Splitter -> combine Counter (or
// reduce CountReducer under ablation A2). `combine` opts the Counter into
// sender-side combining (Table 3) - the place_combiner pass turns it into
// the combine edge.
ir::Graph build_ir(bool combine = false, bool use_full_reduce = false);

// Builds the HAMR flowlet graph through ir::lower with the shape-preserving
// pipeline (no fusion): flowlet ids stay loader=0, splitter=1, count=2,
// which the chaos suite's pinned crash points rely on. Exposed for
// tests/ablations that want to tweak it.
engine::FlowletGraph build_graph(uint32_t* loader_out, bool combine = false,
                                 bool use_full_reduce = false);

// Fused lowering: the standard pass pipeline collapses loader+splitter into
// one task body (two flowlets total), byte-identical output.
ir::Lowered build_fused(uint32_t* loader_out, bool combine = false,
                        bool use_full_reduce = false);

// Runs on HAMR; output in node-local "out/wordcount/" files. `fused` runs
// the fused lowering instead of the id-preserving one.
RunInfo run_hamr(BenchEnv& env, const StagedInput& input, bool combine = false,
                 bool use_full_reduce = false, bool fused = false);

// Runs on the baseline; output in DFS "/out/wordcount/".
RunInfo run_baseline(BenchEnv& env, const StagedInput& input,
                     bool use_combiner = true);

std::map<std::string, uint64_t> hamr_output(BenchEnv& env);
std::map<std::string, uint64_t> baseline_output(BenchEnv& env);

// Sequential reference for correctness checks.
std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards);

}  // namespace hamr::apps::wordcount
