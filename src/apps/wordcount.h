// WordCount (paper §4): loader -> splitter map -> partial reduce.
//
// The HAMR version uses a PARTIAL reduce - counts increase the moment a word
// arrives, with no aggregation barrier. The baseline is the classic Hadoop
// job with a sum combiner. Both write "word\tcount".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::wordcount {

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;   // HAMR runs only
  mapreduce::MrResult baseline_result;  // baseline runs only
};

// Builds the HAMR flowlet graph; exposed for tests/ablations that want to
// tweak it. `combine` enables the sender-side combiner on the map->count
// edge (Table 3); `use_full_reduce` swaps the partial reduce for a full
// reduce (ablation A2).
engine::FlowletGraph build_graph(uint32_t* loader_out, bool combine = false,
                                 bool use_full_reduce = false);

// Runs on HAMR; output in node-local "out/wordcount/" files.
RunInfo run_hamr(BenchEnv& env, const StagedInput& input, bool combine = false,
                 bool use_full_reduce = false);

// Runs on the baseline; output in DFS "/out/wordcount/".
RunInfo run_baseline(BenchEnv& env, const StagedInput& input,
                     bool use_combiner = true);

std::map<std::string, uint64_t> hamr_output(BenchEnv& env);
std::map<std::string, uint64_t> baseline_output(BenchEnv& env);

// Sequential reference for correctness checks.
std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards);

}  // namespace hamr::apps::wordcount
