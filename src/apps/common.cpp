#include "apps/common.h"

#include <algorithm>
#include <charconv>

namespace hamr::apps {

BenchEnv BenchEnv::make(cluster::ClusterConfig cluster_cfg,
                        engine::EngineConfig engine_cfg, dfs::DfsConfig dfs_cfg) {
  BenchEnv env;
  env.cluster_config = cluster_cfg;
  env.cluster = std::make_unique<cluster::Cluster>(cluster_cfg);
  env.dfs = std::make_unique<dfs::MiniDfs>(*env.cluster, dfs_cfg);
  env.engine = std::make_unique<engine::Engine>(*env.cluster, engine_cfg);
  env.mr = std::make_unique<mapreduce::JobRunner>(*env.cluster, *env.dfs);
  cache::DatasetCache::Config cache_cfg;
  cache_cfg.byte_budget =
      std::max<uint64_t>(engine_cfg.memory_budget_bytes / 4, 1 << 20);
  cache_cfg.event_log = engine_cfg.event_log;
  env.dataset_cache =
      std::make_shared<cache::DatasetCache>(*env.cluster, cache_cfg);
  return env;
}

BenchEnv BenchEnv::fast(uint32_t nodes, uint32_t threads) {
  BenchEnv env = make(cluster::ClusterConfig::fast(nodes, threads),
                      engine::EngineConfig::fast());
  env.mr_defaults.job_startup_cost = Duration::zero();
  env.mr_defaults.task_startup_cost = Duration::zero();
  return env;
}

std::vector<std::string> make_shards(
    uint32_t n, const std::function<std::string(uint32_t)>& fn) {
  std::vector<std::string> shards;
  shards.reserve(n);
  for (uint32_t i = 0; i < n; ++i) shards.push_back(fn(i));
  return shards;
}

StagedInput stage_input(BenchEnv& env, const std::string& name,
                        const std::vector<std::string>& shards,
                        uint64_t split_target_bytes) {
  StagedInput staged;
  staged.local_path = "input/" + name;
  staged.dfs_path = "/input/" + name;
  if (split_target_bytes == 0) split_target_bytes = 1 << 20;

  std::string whole;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    const std::string& shard = n < shards.size() ? shards[n] : std::string();
    env.cluster->node(n).store().write_file(staged.local_path, shard);
    whole += shard;
    staged.total_bytes += shard.size();

    // Cut line-aligned splits.
    uint64_t offset = 0;
    while (offset < shard.size()) {
      uint64_t end = std::min<uint64_t>(offset + split_target_bytes, shard.size());
      if (end < shard.size()) {
        const size_t eol = shard.find('\n', end);
        end = eol == std::string::npos ? shard.size() : eol + 1;
      }
      engine::InputSplit split;
      split.path = staged.local_path;
      split.offset = offset;
      split.length = end - offset;
      split.preferred_node = n;
      staged.splits.push_back(split);
      offset = end;
    }
  }
  env.dfs->write(/*writer_node=*/0, staged.dfs_path, whole).ExpectOk();
  return staged;
}

engine::JobInputs inputs_for(uint32_t loader, const StagedInput& staged) {
  engine::JobInputs inputs;
  for (const auto& split : staged.splits) inputs.add(loader, split);
  return inputs;
}

namespace {

void parse_kv_lines(std::string_view text, std::map<std::string, std::string>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const size_t tab = line.find('\t');
    if (tab != std::string_view::npos) {
      (*out)[std::string(line.substr(0, tab))] = std::string(line.substr(tab + 1));
    }
    pos = eol + 1;
  }
}

}  // namespace

std::map<std::string, std::string> collect_local_kv(cluster::Cluster& cluster,
                                                    const std::string& prefix) {
  std::map<std::string, std::string> out;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (const std::string& path : cluster.node(n).store().list(prefix)) {
      auto data = cluster.node(n).store().read_file(path);
      data.status().ExpectOk();
      parse_kv_lines(data.value(), &out);
    }
  }
  return out;
}

std::map<std::string, std::string> collect_dfs_kv(BenchEnv& env,
                                                  const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const std::string& path : env.dfs->list(dir)) {
    auto data = env.dfs->read(0, path);
    data.status().ExpectOk();
    parse_kv_lines(data.value(), &out);
  }
  return out;
}

std::map<std::string, uint64_t> to_counts(
    const std::map<std::string, std::string>& kv) {
  std::map<std::string, uint64_t> out;
  for (const auto& [key, value] : kv) {
    uint64_t n = 0;
    std::from_chars(value.data(), value.data() + value.size(), n);
    out[key] = n;
  }
  return out;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return out;
}

}  // namespace hamr::apps
