// Shared plumbing for the eight benchmark applications: environment bring-up,
// input staging (node-local files for HAMR + one DFS file for the baseline,
// byte-identical datasets), and output collection helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/dataset_cache.h"
#include "cluster/cluster.h"
#include "dfs/mini_dfs.h"
#include "engine/engine.h"
#include "mapreduce/job_runner.h"

namespace hamr::apps {

// Everything a benchmark run needs, brought up in dependency order.
struct BenchEnv {
  cluster::ClusterConfig cluster_config;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<mapreduce::JobRunner> mr;
  // Cross-job dataset cache for the iterative drivers (PageRank/KMeans
  // cached chains). Budget: a quarter of the engine's memory budget - the
  // lane-memory carve of DESIGN.md §15.
  std::shared_ptr<cache::DatasetCache> dataset_cache;
  // Baseline job knobs every app starts from (startup costs, sort buffer,
  // merge fan-in); the bench harness scales these with the cluster model.
  mapreduce::MrJobConfig mr_defaults;

  static BenchEnv make(cluster::ClusterConfig cluster_cfg,
                       engine::EngineConfig engine_cfg = {},
                       dfs::DfsConfig dfs_cfg = {});

  // Correctness-test environment: all cost models off.
  static BenchEnv fast(uint32_t nodes, uint32_t threads = 2);

  uint32_t nodes() const { return cluster->size(); }
};

// Builds n shard strings by calling fn(i) for each i in [0, n) — the
// "one generated shard per node" pattern shared by benches and tests.
std::vector<std::string> make_shards(
    uint32_t n, const std::function<std::string(uint32_t)>& fn);

struct StagedInput {
  // Engine side: line-aligned splits of the per-node local files.
  std::vector<engine::InputSplit> splits;
  std::string local_path;  // same path in every node's store
  // Baseline side: one DFS file (concatenated shards).
  std::string dfs_path;
  uint64_t total_bytes = 0;
};

// Writes shard i to node i's local store as "input/<name>" and the whole
// dataset to the DFS as "/input/<name>". Splits are cut at line boundaries
// near `split_target_bytes`.
StagedInput stage_input(BenchEnv& env, const std::string& name,
                        const std::vector<std::string>& shards,
                        uint64_t split_target_bytes = 1 << 20);

// Convenience JobInputs for a single-loader graph.
engine::JobInputs inputs_for(uint32_t loader, const StagedInput& staged);

// Merges "key\tvalue" lines of every node-local file with the given prefix.
// Duplicate keys keep the last value seen (apps with unique keys per node).
std::map<std::string, std::string> collect_local_kv(cluster::Cluster& cluster,
                                                    const std::string& prefix);

// Merges "key\tvalue" lines of every DFS part file under `dir`.
std::map<std::string, std::string> collect_dfs_kv(BenchEnv& env,
                                                  const std::string& dir);

// Parses a kv map whose values are decimal counters.
std::map<std::string, uint64_t> to_counts(const std::map<std::string, std::string>& kv);

// Splits a whitespace-separated token list.
std::vector<std::string_view> tokenize(std::string_view line);

}  // namespace hamr::apps
