#include "apps/classification.h"

#include <charconv>
#include <mutex>

#include "apps/counting.h"
#include "apps/movie_vectors.h"
#include "engine/loaders.h"

namespace hamr::apps::classification {

namespace {

class ClassifyMap : public engine::MapFlowlet {
 public:
  explicit ClassifyMap(std::vector<std::string> centroid_lines)
      : centroid_lines_(std::move(centroid_lines)),
        centroids_(movies::parse_centroids(centroid_lines_)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    movies::MovieVector movie;
    if (!movies::parse_movie_vector(record.value, &movie)) return;
    const uint32_t cluster = movies::assign_cluster(movie, centroids_, nullptr);
    // Classified output goes straight to this node's disk (§3.3).
    append_local(cluster, record.value, ctx);
    ctx.emit(0, std::to_string(cluster), "1");
  }

  void finish(engine::Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [cluster, buf] : buffers_) {
      if (!buf.empty()) ctx.local_store().append(path(cluster, ctx), buf);
      buf.clear();
    }
  }

 private:
  void append_local(uint32_t cluster, std::string_view line, engine::Context& ctx) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string& buf = buffers_[cluster];
    buf.append(line);
    buf.push_back('\n');
    if (buf.size() >= 256 * 1024) {
      ctx.local_store().append(path(cluster, ctx), buf);
      buf.clear();
    }
  }

  std::string path(uint32_t cluster, engine::Context& ctx) const {
    return "out/classification/cluster" + std::to_string(cluster) + "_node" +
           std::to_string(ctx.node());
  }

  std::vector<std::string> centroid_lines_;
  std::vector<movies::MovieVector> centroids_;
  std::mutex mu_;
  std::map<uint32_t, std::string> buffers_;
};

class ClassifyMapper : public mapreduce::Mapper {
 public:
  explicit ClassifyMapper(std::vector<std::string> centroid_lines)
      : centroid_lines_(std::move(centroid_lines)),
        centroids_(movies::parse_centroids(centroid_lines_)) {}

  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    movies::MovieVector movie;
    if (!movies::parse_movie_vector(value, &movie)) return;
    const uint32_t cluster = movies::assign_cluster(movie, centroids_, nullptr);
    ctx.emit(std::to_string(cluster), value);  // full line through the shuffle
  }

 private:
  std::vector<std::string> centroid_lines_;
  std::vector<movies::MovieVector> centroids_;
};

// Writes every classified line to the DFS output (PUMA behavior).
class ClassifyReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    for (std::string_view line : values) ctx.emit(key, line);
  }
};

}  // namespace

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params) {
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto classify = graph.add_map("ClassifyMap", [&params] {
    return std::make_unique<ClassifyMap>(params.centroid_lines);
  });
  const auto counts = graph.add_partial_reduce("CountSink", [] {
    return std::make_unique<CountSink>("out/classification/counts_");
  });
  graph.connect(loader, classify, engine::local_edge());
  graph.connect(classify, counts);

  RunInfo run;
  run.engine_result = env.engine->run(graph, inputs_for(loader, input));
  run.seconds = run.engine_result.wall_seconds;
  return run;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params) {
  mapreduce::MrJobConfig config = env.mr_defaults;
  config.name = "classification";
  RunInfo run;
  run.baseline_result = env.mr->run(
      config, {input.dfs_path}, "/out/classification",
      [&params] { return std::make_unique<ClassifyMapper>(params.centroid_lines); },
      [] { return std::make_unique<ClassifyReducer>(); });
  run.seconds = run.baseline_result.wall_seconds;
  return run;
}

std::map<uint32_t, uint64_t> hamr_cluster_sizes(BenchEnv& env) {
  std::map<uint32_t, uint64_t> out;
  for (const auto& [key, count] :
       to_counts(collect_local_kv(*env.cluster, "out/classification/counts_"))) {
    uint32_t cluster = 0;
    std::from_chars(key.data(), key.data() + key.size(), cluster);
    out[cluster] = count;
  }
  return out;
}

std::map<uint32_t, uint64_t> baseline_cluster_sizes(BenchEnv& env) {
  // Count lines per cluster key across part files.
  std::map<uint32_t, uint64_t> out;
  for (const std::string& path : env.dfs->list("/out/classification")) {
    auto data = env.dfs->read(0, path);
    data.status().ExpectOk();
    const std::string& text = data.value();
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      const std::string_view line = std::string_view(text).substr(pos, eol - pos);
      const size_t tab = line.find('\t');
      if (tab != std::string_view::npos) {
        uint32_t cluster = 0;
        std::from_chars(line.data(), line.data() + tab, cluster);
        ++out[cluster];
      }
      pos = eol + 1;
    }
  }
  return out;
}

std::map<uint32_t, uint64_t> reference(const std::vector<std::string>& shards,
                                       const Params& params) {
  return kmeans::reference(shards, params).cluster_sizes;
}

}  // namespace hamr::apps::classification
