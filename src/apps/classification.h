// Classification (paper §4): K-Means' assignment step with FIXED centroids.
//
// HAMR: TextLoader -> ClassifyMap (writes each movie to a local per-cluster
// file - output in the MAP, §3.3) -> CountSink (cluster sizes). Only tiny
// count records cross the network.
// Baseline: one Hadoop job that shuffles every full movie line to reducers
// which write the classified data back to the DFS.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"
#include "apps/kmeans.h"

namespace hamr::apps::classification {

using kmeans::Params;
using kmeans::RunInfo;

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params);

// cluster id -> assigned movie count.
std::map<uint32_t, uint64_t> hamr_cluster_sizes(BenchEnv& env);
std::map<uint32_t, uint64_t> baseline_cluster_sizes(BenchEnv& env);
std::map<uint32_t, uint64_t> reference(const std::vector<std::string>& shards,
                                       const Params& params);

}  // namespace hamr::apps::classification
