#include "apps/histograms.h"

#include <cmath>
#include <cstdio>

#include "apps/counting.h"
#include "engine/loaders.h"

namespace hamr::apps::histograms {

namespace {

const char* out_prefix(Kind kind) {
  return kind == Kind::kMovies ? "out/histogram_movies/" : "out/histogram_ratings/";
}
const char* dfs_out(Kind kind) {
  return kind == Kind::kMovies ? "/out/histogram_movies" : "/out/histogram_ratings";
}

// Emits one (bucket, "1") per movie or one (rating, "1") per rating.
template <typename Emit>
void histogram_records(std::string_view line, Kind kind, Emit&& emit) {
  MovieLine movie;
  if (!parse_movie_line(line, &movie)) return;
  if (kind == Kind::kMovies) {
    emit(movie_bucket(movie.ratings), std::string_view("1"));
  } else {
    char key[2] = {0, 0};
    for (uint32_t r : movie.ratings) {
      key[0] = static_cast<char>('0' + r);
      emit(std::string_view(key, 1), std::string_view("1"));
    }
  }
}

class HistogramMap : public engine::MapFlowlet {
 public:
  explicit HistogramMap(Kind kind) : kind_(kind) {}
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    histogram_records(record.value, kind_, [&](std::string_view k, std::string_view v) {
      ctx.emit(0, k, v);
    });
  }

 private:
  Kind kind_;
};

class HistogramMapper : public mapreduce::Mapper {
 public:
  explicit HistogramMapper(Kind kind) : kind_(kind) {}
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    histogram_records(value, kind_, [&](std::string_view k, std::string_view v) {
      ctx.emit(k, v);
    });
  }

 private:
  Kind kind_;
};

}  // namespace

bool parse_movie_line(std::string_view line, MovieLine* out) {
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  out->id = line.substr(0, colon);
  out->ratings.clear();
  size_t pos = colon + 1;
  while (pos < line.size()) {
    const char c = line[pos];
    if (c >= '1' && c <= '5') out->ratings.push_back(static_cast<uint32_t>(c - '0'));
    pos += 2;  // rating digit + comma
  }
  return !out->ratings.empty();
}

std::string movie_bucket(const std::vector<uint32_t>& ratings) {
  double sum = 0;
  for (uint32_t r : ratings) sum += r;
  const double avg = sum / static_cast<double>(ratings.size());
  const double bucket = std::round(avg * 2.0) / 2.0;
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%.1f", bucket);
  return buf;
}

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, Kind kind, bool combine) {
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto map = graph.add_map(
      "HistogramMap", [kind] { return std::make_unique<HistogramMap>(kind); });
  const auto count = graph.add_partial_reduce("CountSink", [kind] {
    return std::make_unique<CountSink>(out_prefix(kind));
  });
  graph.connect(loader, map, engine::local_edge());
  engine::EdgeOptions options;
  options.combine = combine;
  graph.connect(map, count, options);

  RunInfo info;
  info.engine_result = env.engine->run(graph, inputs_for(loader, input));
  info.seconds = info.engine_result.wall_seconds;
  return info;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, Kind kind,
                     bool use_combiner) {
  mapreduce::MrJobConfig config = env.mr_defaults;
  config.name = kind == Kind::kMovies ? "histogram_movies" : "histogram_ratings";
  if (use_combiner) {
    config.combiner = [] { return std::make_unique<SumReducer>(); };
  }
  RunInfo info;
  info.baseline_result = env.mr->run(
      config, {input.dfs_path}, dfs_out(kind),
      [kind] { return std::make_unique<HistogramMapper>(kind); },
      [] { return std::make_unique<SumReducer>(); });
  info.seconds = info.baseline_result.wall_seconds;
  return info;
}

std::map<std::string, uint64_t> hamr_output(BenchEnv& env, Kind kind) {
  return to_counts(collect_local_kv(*env.cluster, out_prefix(kind)));
}

std::map<std::string, uint64_t> baseline_output(BenchEnv& env, Kind kind) {
  return to_counts(collect_dfs_kv(env, dfs_out(kind)));
}

std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards,
                                          Kind kind) {
  std::map<std::string, uint64_t> counts;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      histogram_records(std::string_view(shard).substr(pos, eol - pos), kind,
                        [&](std::string_view k, std::string_view) {
                          ++counts[std::string(k)];
                        });
      pos = eol + 1;
    }
  }
  return counts;
}

}  // namespace hamr::apps::histograms
