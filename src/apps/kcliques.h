// K-Cliques (paper §4, Alg. 3): enumerate all fully-connected K-vertex
// subgraphs of an undirected R-MAT graph.
//
// Method (identical in all implementations): adjacency is stored "upward"
// (adj+(v) = neighbors of v greater than v); a candidate record
// (clique C, candidate set S) keyed by C's maximum vertex w is extended by
// every x in S ∩ adj+(w), producing (C+x, S ∩ adj+(w)) keyed by x, until the
// clique reaches size K.
//
// HAMR: ONE job - loader -> GraphBuilder (reduce, adjacency into the
// node-shared KV store) -> TwoCliquesGen (map, fires on completion) ->
// Verify3 -> ... -> VerifyK (maps, fine-grain, all in memory).
// Baseline: K-1 CHAINED Hadoop jobs, each re-reading the edge file from the
// DFS to rebuild adjacency at the reducers (the paper's motivating pain).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::kcliques {

struct Params {
  uint32_t k = 4;
};

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;
  std::vector<mapreduce::MrResult> baseline_results;
};

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params);

// Cliques as canonical "v1,v2,...,vk" strings (ascending vertices).
std::set<std::string> hamr_cliques(BenchEnv& env);
std::set<std::string> baseline_cliques(BenchEnv& env);
std::set<std::string> reference(const std::vector<std::string>& shards,
                                const Params& params);

}  // namespace hamr::apps::kcliques
