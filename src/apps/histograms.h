// HistogramMovies and HistogramRatings (paper §4).
//
// Both consume PUMA movie lines "m<id>:<r1>,<r2>,...".
//   * HistogramMovies buckets each movie's AVERAGE rating into 0.5-wide bins
//     ("1.0".."5.0") - a moderate key space.
//   * HistogramRatings counts INDIVIDUAL ratings - exactly 5 keys, the
//     pathologically skewed case behind the paper's only slowdown (§5.2).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::histograms {

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;
  mapreduce::MrResult baseline_result;
};

// Movie-line helpers shared with tests.
struct MovieLine {
  std::string_view id;
  std::vector<uint32_t> ratings;
};
bool parse_movie_line(std::string_view line, MovieLine* out);
std::string movie_bucket(const std::vector<uint32_t>& ratings);  // "1.0".."5.0"

// kind selects the benchmark.
enum class Kind { kMovies, kRatings };

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, Kind kind,
                 bool combine = false);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input, Kind kind,
                     bool use_combiner = true);

std::map<std::string, uint64_t> hamr_output(BenchEnv& env, Kind kind);
std::map<std::string, uint64_t> baseline_output(BenchEnv& env, Kind kind);
std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards,
                                          Kind kind);

}  // namespace hamr::apps::histograms
