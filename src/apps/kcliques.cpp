#include "apps/kcliques.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <functional>
#include <mutex>

#include "engine/loaders.h"

namespace hamr::apps::kcliques {

namespace {

// Candidate record value: "<clique csv>|<candidate csv>".
std::string encode_candidate(std::string_view clique, const std::vector<uint64_t>& set) {
  std::string out(clique);
  out.push_back('|');
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(set[i]);
  }
  return out;
}

std::vector<uint64_t> parse_csv(std::string_view csv) {
  std::vector<uint64_t> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    uint64_t v = 0;
    std::from_chars(csv.data() + pos, csv.data() + comma, v);
    out.push_back(v);
    pos = comma + 1;
  }
  return out;
}

// Sorted-vector intersection (both ascending).
std::vector<uint64_t> intersect(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::string adj_kv_key(std::string_view vertex) {
  return "kc/adj/" + std::string(vertex);
}

// Fetches the upward adjacency of `vertex` from this node's shard (records
// are routed by vertex key, so it is always local).
std::vector<uint64_t> local_adjacency(engine::Context& ctx, std::string_view vertex) {
  auto value = ctx.kv().local(ctx.node()).get(adj_kv_key(vertex));
  if (!value.ok()) return {};
  return parse_csv(value.value());
}

// --- HAMR flowlets (Alg. 3) ---

// (offset, "a b") -> (a, b), a < b by construction of the generator.
class EdgeKeyMap : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    const size_t space = record.value.find(' ');
    if (space == std::string_view::npos) return;
    ctx.emit(0, record.value.substr(0, space), record.value.substr(space + 1));
  }
};

// Stores deduplicated, sorted upward adjacency into node-shared memory.
class GraphBuilder : public engine::ReduceFlowlet {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    std::vector<uint64_t> nbrs;
    nbrs.reserve(values.size());
    for (std::string_view v : values) {
      uint64_t n = 0;
      std::from_chars(v.data(), v.data() + v.size(), n);
      nbrs.push_back(n);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    std::string csv;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) csv.push_back(',');
      csv += std::to_string(nbrs[i]);
    }
    ctx.kv().local(ctx.node()).put(adj_kv_key(key), csv);
  }
};

// Fires after GraphBuilder completes everywhere: streams 2-clique candidates
// (v,w) keyed by w with candidate set adj+(v).
class TwoCliquesGen : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair&, engine::Context&) override {}

  void finish(engine::Context& ctx) override {
    ctx.kv().local(ctx.node()).for_each_prefix(
        "kc/adj/", [&](const std::string& key, const std::string& value) {
          const std::string v = key.substr(strlen("kc/adj/"));
          const std::vector<uint64_t> adj = parse_csv(value);
          for (uint64_t w : adj) {
            ctx.emit(0, std::to_string(w),
                     encode_candidate(v + "," + std::to_string(w), adj));
          }
        });
  }
};

// Extends (I-1)-cliques to I-cliques; terminal instances write output lines.
class CliqueVerify : public engine::MapFlowlet {
 public:
  CliqueVerify(uint32_t level, uint32_t k) : level_(level), k_(k) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    const std::string_view value = record.value;
    const size_t bar = value.find('|');
    if (bar == std::string_view::npos) return;
    const std::string_view clique = value.substr(0, bar);
    const std::vector<uint64_t> set = parse_csv(value.substr(bar + 1));
    const std::vector<uint64_t> adj = local_adjacency(ctx, record.key);
    const std::vector<uint64_t> extended = intersect(set, adj);
    for (uint64_t x : extended) {
      const std::string new_clique = std::string(clique) + "," + std::to_string(x);
      if (level_ == k_) {
        std::lock_guard<std::mutex> lock(mu_);
        out_ += new_clique;
        out_.push_back('\n');
      } else {
        ctx.emit(0, std::to_string(x), encode_candidate(new_clique, extended));
      }
    }
  }

  void finish(engine::Context& ctx) override {
    if (level_ != k_) return;
    std::lock_guard<std::mutex> lock(mu_);
    ctx.local_store().write_file(
        "out/kcliques/node" + std::to_string(ctx.node()), out_);
  }

 private:
  uint32_t level_;
  uint32_t k_;
  std::mutex mu_;
  std::string out_;
};

// --- baseline jobs ---

// Job 0 reduce: adjacency + 2-clique candidates ("w\tv,w|set" lines).
class AdjReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    std::vector<uint64_t> nbrs;
    for (std::string_view v : values) {
      uint64_t n = 0;
      std::from_chars(v.data(), v.data() + v.size(), n);
      nbrs.push_back(n);
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    const std::string v(key);
    for (uint64_t w : nbrs) {
      ctx.emit(std::to_string(w),
               encode_candidate(v + "," + std::to_string(w), nbrs));
    }
  }
};

class EdgeSrcMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    const size_t space = value.find(' ');
    if (space == std::string_view::npos) return;
    ctx.emit(value.substr(0, space), value.substr(space + 1));
  }
};

// Extension job map: tag edges ("E<dst>") and candidates ("C<payload>").
class ExtendMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    const size_t tab = value.find('\t');
    if (tab != std::string_view::npos) {
      // Candidate line from the previous job: "w\tclique|set".
      ctx.emit(value.substr(0, tab), "C" + std::string(value.substr(tab + 1)));
      return;
    }
    const size_t space = value.find(' ');
    if (space == std::string_view::npos) return;
    // Upward adjacency: the edge belongs to its smaller endpoint.
    ctx.emit(value.substr(0, space), "E" + std::string(value.substr(space + 1)));
  }
};

// Extension job reduce: rebuild adj+(w) from E records, extend C records.
class ExtendReducer : public mapreduce::Reducer {
 public:
  ExtendReducer(uint32_t level, uint32_t k) : level_(level), k_(k) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    (void)key;
    std::vector<uint64_t> adj;
    std::vector<std::string_view> candidates;
    for (std::string_view v : values) {
      if (v.empty()) continue;
      if (v[0] == 'E') {
        uint64_t n = 0;
        std::from_chars(v.data() + 1, v.data() + v.size(), n);
        adj.push_back(n);
      } else {
        candidates.push_back(v.substr(1));
      }
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    for (std::string_view payload : candidates) {
      const size_t bar = payload.find('|');
      if (bar == std::string_view::npos) continue;
      const std::string_view clique = payload.substr(0, bar);
      const std::vector<uint64_t> set = parse_csv(payload.substr(bar + 1));
      const std::vector<uint64_t> extended = intersect(set, adj);
      for (uint64_t x : extended) {
        const std::string new_clique = std::string(clique) + "," + std::to_string(x);
        if (level_ == k_) {
          ctx.emit(new_clique, "1");
        } else {
          ctx.emit(std::to_string(x), encode_candidate(new_clique, extended));
        }
      }
    }
  }

 private:
  uint32_t level_;
  uint32_t k_;
};

}  // namespace

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params) {
  env.engine->kv().clear_namespace("kc/");
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "KCliquesLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto keymap =
      graph.add_map("EdgeKeyMap", [] { return std::make_unique<EdgeKeyMap>(); });
  const auto builder = graph.add_reduce(
      "GraphBuilder", [] { return std::make_unique<GraphBuilder>(); });
  const auto gen2 = graph.add_map(
      "TwoCliquesGen", [] { return std::make_unique<TwoCliquesGen>(); });
  graph.connect(loader, keymap, engine::local_edge());
  graph.connect(keymap, builder);
  graph.connect(builder, gen2);
  uint32_t prev = gen2;
  for (uint32_t level = 3; level <= params.k; ++level) {
    const auto verify = graph.add_map(
        "Verify" + std::to_string(level), [level, &params] {
          return std::make_unique<CliqueVerify>(level, params.k);
        });
    graph.connect(prev, verify);
    prev = verify;
  }

  RunInfo run;
  run.engine_result = env.engine->run(graph, inputs_for(loader, input));
  run.seconds = run.engine_result.wall_seconds;
  return run;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params) {
  RunInfo run;
  Stopwatch watch;

  mapreduce::MrJobConfig job0 = env.mr_defaults;
  job0.name = "kc_2cliques";
  run.baseline_results.push_back(env.mr->run(
      job0, {input.dfs_path}, "/kc/cliques2",
      [] { return std::make_unique<EdgeSrcMapper>(); },
      [] { return std::make_unique<AdjReducer>(); }));

  for (uint32_t level = 3; level <= params.k; ++level) {
    mapreduce::MrJobConfig job = env.mr_defaults;
    job.name = "kc_extend" + std::to_string(level);
    // Re-reads the full edge file every job (adjacency is rebuilt at the
    // reducers), plus the previous level's candidates.
    std::vector<std::string> inputs =
        env.dfs->list("/kc/cliques" + std::to_string(level - 1) + "/");
    inputs.push_back(input.dfs_path);
    const std::string out = level == params.k
                                ? "/out/kcliques"
                                : "/kc/cliques" + std::to_string(level);
    run.baseline_results.push_back(env.mr->run(
        job, inputs, out, [] { return std::make_unique<ExtendMapper>(); },
        [level, &params] {
          return std::make_unique<ExtendReducer>(level, params.k);
        }));
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

std::set<std::string> hamr_cliques(BenchEnv& env) {
  std::set<std::string> cliques;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    for (const std::string& path : env.cluster->node(n).store().list("out/kcliques/")) {
      auto data = env.cluster->node(n).store().read_file(path);
      data.status().ExpectOk();
      const std::string& text = data.value();
      size_t pos = 0;
      while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos) eol = text.size();
        if (eol > pos) cliques.insert(text.substr(pos, eol - pos));
        pos = eol + 1;
      }
    }
  }
  return cliques;
}

std::set<std::string> baseline_cliques(BenchEnv& env) {
  std::set<std::string> cliques;
  for (const auto& [key, value] : collect_dfs_kv(env, "/out/kcliques")) {
    (void)value;
    cliques.insert(key);
  }
  return cliques;
}

std::set<std::string> reference(const std::vector<std::string>& shards,
                                const Params& params) {
  // Upward adjacency.
  std::map<uint64_t, std::vector<uint64_t>> adj;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      const std::string_view line = std::string_view(shard).substr(pos, eol - pos);
      const size_t space = line.find(' ');
      if (space != std::string_view::npos) {
        uint64_t a = 0, b = 0;
        std::from_chars(line.data(), line.data() + space, a);
        std::from_chars(line.data() + space + 1, line.data() + line.size(), b);
        if (a != b) adj[std::min(a, b)].push_back(std::max(a, b));
      }
      pos = eol + 1;
    }
  }
  for (auto& [v, nbrs] : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  auto adj_of = [&](uint64_t v) -> const std::vector<uint64_t>& {
    static const std::vector<uint64_t> empty;
    auto it = adj.find(v);
    return it == adj.end() ? empty : it->second;
  };

  // Depth-first extension, same candidate-set method.
  std::set<std::string> cliques;
  std::function<void(std::string, uint64_t, const std::vector<uint64_t>&, uint32_t)>
      extend = [&](std::string clique, uint64_t last,
                   const std::vector<uint64_t>& set, uint32_t size) {
        if (size == params.k) {
          cliques.insert(clique);
          return;
        }
        const std::vector<uint64_t> ext = intersect(set, adj_of(last));
        for (uint64_t x : ext) {
          extend(clique + "," + std::to_string(x), x, ext, size + 1);
        }
      };
  for (const auto& [v, nbrs] : adj) {
    for (uint64_t w : nbrs) {
      extend(std::to_string(v) + "," + std::to_string(w), w, nbrs, 2);
    }
  }
  return cliques;
}

}  // namespace hamr::apps::kcliques
