#include "apps/naive_bayes.h"

#include <mutex>

#include "apps/counting.h"
#include "engine/loaders.h"

namespace hamr::apps::naive_bayes {

namespace {

// Parses "label<k>\tw1 w2 ..." into (label, per-doc term counts).
bool parse_doc(std::string_view line, std::string_view* label,
               std::map<std::string, uint64_t>* terms) {
  const size_t tab = line.find('\t');
  if (tab == std::string_view::npos) return false;
  *label = line.substr(0, tab);
  terms->clear();
  for (std::string_view word : tokenize(line.substr(tab + 1))) {
    ++(*terms)[std::string(word)];
  }
  return !terms->empty();
}

// --- HAMR flowlets ---

class IndexInstancesMapper : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    std::string_view label;
    std::map<std::string, uint64_t> terms;
    if (!parse_doc(record.value, &label, &terms)) return;
    ctx.emit(0, label, encode_vector(terms));
  }
};

// Sums per-label term vectors. Uses instance-managed state (the engine's
// string accumulator would force a full re-decode per document); fold() just
// registers the key, the real vectors live in `sums_`.
class VectorSumReducer : public engine::PartialReduceFlowlet {
 public:
  void fold(std::string_view key, std::string_view value, std::string& acc) override {
    (void)acc;  // presence in the engine table drives emit_result()
    auto doc = parse_vector(value);
    std::lock_guard<std::mutex> lock(mu_);
    auto& vec = sums_[std::string(key)];
    for (const auto& [feature, count] : doc) vec[feature] += count;
  }

  void emit_result(std::string_view key, std::string_view /*acc*/,
                   engine::Context& ctx) override {
    std::map<std::string, uint64_t> vec;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sums_.find(std::string(key));
      if (it == sums_.end()) return;
      vec.swap(it->second);
    }
    uint64_t label_total = 0;
    for (const auto& [feature, weight] : vec) {
      ctx.emit(0, feature, std::to_string(weight));
      label_total += weight;
    }
    ctx.emit(0, "L:" + std::string(key), std::to_string(label_total));
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::map<std::string, uint64_t>> sums_;
};

// --- baseline jobs ---

// Job 1 map: doc -> (label, doc term vector).
class VectorMapMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    std::string_view label;
    std::map<std::string, uint64_t> terms;
    if (!parse_doc(value, &label, &terms)) return;
    ctx.emit(label, encode_vector(terms));
  }
};

// Job 1 reduce/combine: merge term vectors per label.
class VectorSumMrReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    std::map<std::string, uint64_t> sum;
    for (std::string_view v : values) {
      for (const auto& [feature, count] : parse_vector(v)) sum[feature] += count;
    }
    ctx.emit(key, encode_vector(sum));
  }
};

// Job 2 map: (label, vector) line -> per-feature weights + label total.
class WeightMapMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    // Job-1 output line value is "<label>\t<vector>" re-split by the text
    // input format into key=offset value=whole line.
    const size_t tab = value.find('\t');
    if (tab == std::string_view::npos) return;
    const std::string_view label = value.substr(0, tab);
    uint64_t label_total = 0;
    for (const auto& [feature, weight] : parse_vector(value.substr(tab + 1))) {
      ctx.emit(feature, std::to_string(weight));
      label_total += weight;
    }
    ctx.emit("L:" + std::string(label), std::to_string(label_total));
  }
};

}  // namespace

std::map<std::string, uint64_t> parse_vector(std::string_view text) {
  std::map<std::string, uint64_t> out;
  for (std::string_view token : tokenize(text)) {
    const size_t colon = token.rfind(':');
    if (colon == std::string_view::npos) continue;
    out[std::string(token.substr(0, colon))] = parse_count(token.substr(colon + 1));
  }
  return out;
}

std::string encode_vector(const std::map<std::string, uint64_t>& vec) {
  std::string out;
  for (const auto& [feature, count] : vec) {
    if (!out.empty()) out.push_back(' ');
    out += feature;
    out.push_back(':');
    out += std::to_string(count);
  }
  return out;
}

RunInfo run_hamr(BenchEnv& env, const StagedInput& input) {
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto index = graph.add_map(
      "IndexInstances", [] { return std::make_unique<IndexInstancesMapper>(); });
  const auto vecsum = graph.add_partial_reduce(
      "VectorSum", [] { return std::make_unique<VectorSumReducer>(); });
  const auto weightsum = graph.add_partial_reduce("WeightSum", [] {
    return std::make_unique<CountSink>("out/naive_bayes/");
  });
  graph.connect(loader, index, engine::local_edge());
  graph.connect(index, vecsum);
  graph.connect(vecsum, weightsum);

  RunInfo info;
  info.engine_result = env.engine->run(graph, inputs_for(loader, input));
  info.seconds = info.engine_result.wall_seconds;
  return info;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input) {
  RunInfo info;

  mapreduce::MrJobConfig job1 = env.mr_defaults;
  job1.name = "nb_vectorsum";
  job1.combiner = [] { return std::make_unique<VectorSumMrReducer>(); };
  auto r1 = env.mr->run(
      job1, {input.dfs_path}, "/tmp/nb_vectors",
      [] { return std::make_unique<VectorMapMapper>(); },
      [] { return std::make_unique<VectorSumMrReducer>(); });

  std::vector<std::string> job2_inputs = env.dfs->list("/tmp/nb_vectors");
  mapreduce::MrJobConfig job2 = env.mr_defaults;
  job2.name = "nb_weightsum";
  job2.combiner = [] { return std::make_unique<SumReducer>(); };
  auto r2 = env.mr->run(
      job2, job2_inputs, "/out/naive_bayes",
      [] { return std::make_unique<WeightMapMapper>(); },
      [] { return std::make_unique<SumReducer>(); });

  info.baseline_result = r2;
  info.baseline_result.wall_seconds = r1.wall_seconds + r2.wall_seconds;
  info.seconds = info.baseline_result.wall_seconds;
  return info;
}

std::map<std::string, uint64_t> hamr_output(BenchEnv& env) {
  return to_counts(collect_local_kv(*env.cluster, "out/naive_bayes/"));
}

std::map<std::string, uint64_t> baseline_output(BenchEnv& env) {
  return to_counts(collect_dfs_kv(env, "/out/naive_bayes"));
}

std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards) {
  std::map<std::string, uint64_t> out;
  std::map<std::string, uint64_t> label_totals;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      std::string_view label;
      std::map<std::string, uint64_t> terms;
      if (parse_doc(std::string_view(shard).substr(pos, eol - pos), &label, &terms)) {
        for (const auto& [feature, count] : terms) {
          out[feature] += count;
          label_totals[std::string(label)] += count;
        }
      }
      pos = eol + 1;
    }
  }
  for (const auto& [label, total] : label_totals) out["L:" + label] = total;
  return out;
}

}  // namespace hamr::apps::naive_bayes
