// Sparse movie vectors and cosine similarity, shared by K-Means and
// Classification (paper §3.3/§4). Lines: "m<id>:u<user>_<rating>,..."
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hamr::apps::movies {

struct MovieVector {
  std::string_view id;                              // "m<id>"
  std::vector<std::pair<uint32_t, double>> coords;  // (user, rating), user asc
};

bool parse_movie_vector(std::string_view line, MovieVector* out);

// Cosine similarity of two sparse vectors with ascending coordinate ids.
double cosine_similarity(const MovieVector& a, const MovieVector& b);

// Picks the most similar centroid; ties go to the lower index. Returns the
// index and writes the similarity.
uint32_t assign_cluster(const MovieVector& movie,
                        const std::vector<MovieVector>& centroids,
                        double* similarity);

// Parses `k` centroid lines out of a shard's first lines (the deterministic
// initial centroids both engines and the reference use). The returned strings
// own the line text; parse each with parse_movie_vector.
std::vector<std::string> initial_centroid_lines(const std::string& shard0,
                                                uint32_t k);

// Parses owned centroid lines into vectors that reference them. `storage`
// must outlive the result.
std::vector<MovieVector> parse_centroids(const std::vector<std::string>& lines);

}  // namespace hamr::apps::movies
