// NaiveBayes training (paper §4, Alg. 4).
//
// Input: labeled documents "label<k>\tw1 w2 ...". Training accumulates, per
// label, the summed term-count vector, and per feature, the summed weight.
//
// HAMR: one job, three flowlets past the loader -
//   IndexInstancesMapper -> VectorSumReducer (partial) -> WeightSumReducer
//   (partial). The two partial reduces start aggregating as data arrives.
// Baseline: TWO chained Hadoop jobs (vector sum, then weight sum) with a DFS
// round-trip between them.
//
// Output keys: "w<f>" = summed weight of feature f; "L:<label>" = summed
// weight of all features under the label.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::naive_bayes {

struct RunInfo {
  double seconds = 0;
  engine::JobResult engine_result;
  mapreduce::MrResult baseline_result;
};

RunInfo run_hamr(BenchEnv& env, const StagedInput& input);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input);

std::map<std::string, uint64_t> hamr_output(BenchEnv& env);
std::map<std::string, uint64_t> baseline_output(BenchEnv& env);
std::map<std::string, uint64_t> reference(const std::vector<std::string>& shards);

// Sparse term-count vector text codec ("w3:2 w10:1", feature-sorted) shared
// with tests.
std::map<std::string, uint64_t> parse_vector(std::string_view text);
std::string encode_vector(const std::map<std::string, uint64_t>& vec);

}  // namespace hamr::apps::naive_bayes
