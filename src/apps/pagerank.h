// PageRank (paper §4, Alg. 2) - the multi-phase / in-memory-iteration
// benchmark.
//
// HAMR: one multi-phase job per iteration. Iteration 1 builds adjacency
// lists into the node-shared KV store (HashJoinRed); later iterations load
// them straight from memory (EdgeLoader) - no disk I/O between iterations.
// Baseline: TWO chained Hadoop jobs per iteration (join + aggregate), with
// the edge file re-read from the DFS and ranks round-tripped through the DFS
// every iteration.
//
// Update rule (all implementations + reference): pages with at least one
// in-link get r' = 0.15/P + 0.85 * sum(contribs); pages without in-links
// keep their rank (initially 1/P). Contribution of a page = rank/outdegree.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/common.h"

namespace hamr::apps::pagerank {

struct Params {
  uint64_t num_pages = 4096;
  uint32_t iterations = 3;
};

struct RunInfo {
  double seconds = 0;
  std::vector<double> iteration_seconds;              // one per iteration
  std::vector<engine::JobResult> engine_results;      // one per iteration
  std::vector<mapreduce::MrResult> baseline_results;  // two per iteration
  double max_delta = 0;                               // last iteration
};

// `reload_each_iteration` disables the in-memory iteration path (ablation
// A5): every iteration re-reads the edge file from disk and rebuilds the
// adjacency lists, like a chained-job system would.
RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params,
                 bool reload_each_iteration = false);

// Driver-level single-iteration API: iteration 0 loads the edge file and
// builds adjacency into the KV store; later iterations stream from memory.
// Callers own clearing "pr/" state before iteration 0 (clear_pagerank_state)
// and reading the per-iteration max delta for convergence loops.
void clear_pagerank_state(BenchEnv& env);
engine::JobResult run_hamr_iteration(BenchEnv& env, const StagedInput& input,
                                     const Params& params, uint32_t iteration,
                                     bool reload = false);
double max_delta(BenchEnv& env);

// Dataset-cache iterative chain (DESIGN.md §15): iteration 0 parses the edge
// file, builds adjacency, and publishes it as cache dataset "pagerank/adj"
// (key-partitioned: shard n holds the srcs whose reduce ran on node n).
// Iterations >= 1 pin the dataset and stream contributions straight from the
// resident blocks over a shuffle-free local edge. A pin miss - eviction or a
// mid-chain invalidation - falls back transparently to the cold build (which
// re-publishes). Ranks are byte-identical to the cold path: contribution
// sums are order-canonicalized, so the arrival order the cache changes
// cannot change a double.
RunInfo run_hamr_cached(BenchEnv& env, const StagedInput& input,
                        const Params& params);
engine::JobResult run_hamr_cached_iteration(BenchEnv& env,
                                            const StagedInput& input,
                                            const Params& params,
                                            uint32_t iteration);
RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params);

// page id -> final rank (pages absent from the result keep 1/P).
std::map<uint64_t, double> hamr_ranks(BenchEnv& env, const Params& params);
std::map<uint64_t, double> baseline_ranks(BenchEnv& env, const Params& params,
                                          uint32_t iterations);
std::map<uint64_t, double> reference(const std::vector<std::string>& shards,
                                     const Params& params);

}  // namespace hamr::apps::pagerank
