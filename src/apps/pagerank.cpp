#include "apps/pagerank.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "cache/scan_loader.h"
#include "engine/loaders.h"
#include "ir/lower.h"
#include "ir/passes.h"

namespace hamr::apps::pagerank {

namespace {

constexpr double kDamping = 0.85;

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double parse_double(std::string_view s) {
  double v = 0;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

std::string rank_key(std::string_view page) { return "pr/rank/" + std::string(page); }
std::string adj_key(std::string_view page) { return "pr/adj/" + std::string(page); }

// Contribution payloads cross the shuffle as raw 8-byte doubles: lossless
// (unlike any decimal round-trip risk), ~60% smaller than "%.17g" text, and
// MergeRed decodes with a memcpy instead of a from_chars per record. All
// iteration paths (cold build, kv EdgeLoader, cached ContribMap) share this
// encoding, so their bins are byte-identical too.
std::string_view encode_contrib(double v, char (&buf)[8]) {
  std::memcpy(buf, &v, sizeof(v));
  return {buf, sizeof(v)};
}

double decode_contrib(std::string_view s) {
  double v = 0;
  std::memcpy(&v, s.data(), std::min(sizeof(v), s.size()));
  return v;
}

double local_rank(engine::Context& ctx, std::string_view page, double initial) {
  auto value = ctx.kv().local(ctx.node()).get(rank_key(page));
  return value.ok() ? parse_double(value.value()) : initial;
}

// --- HAMR flowlets (Alg. 2) ---

// (offset, "src dst") -> (src, dst); re-keys edges for the hash join.
class EdgeMap : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    const size_t space = record.value.find(' ');
    if (space == std::string_view::npos) return;
    ctx.emit(0, record.value.substr(0, space), record.value.substr(space + 1));
  }
};

// Iteration 1: store each src's dst list into node-shared memory, then send
// rank/outdegree to every dst. With a DatasetWriter, additionally publishes
// (src, adj) to the cross-job cache at this node - the reduce ran here
// because src hash-partitions here, so the dataset comes out key-partitioned
// and later iterations can scan it shuffle-free (aligned_edge).
class HashJoinRed : public engine::ReduceFlowlet {
 public:
  explicit HashJoinRed(uint64_t num_pages,
                       std::shared_ptr<cache::DatasetWriter> writer = nullptr)
      : initial_(1.0 / num_pages), writer_(std::move(writer)) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    // Canonical dst order: shuffle arrival order varies run to run, and the
    // adjacency string doubles as the cached dataset's record payload.
    std::vector<std::string_view> dsts(values.begin(), values.end());
    std::sort(dsts.begin(), dsts.end());
    std::string adj;
    for (std::string_view dst : dsts) {
      if (!adj.empty()) adj.push_back(' ');
      adj.append(dst);
    }
    // The adjacency's home is either the node-shared KV store (in-memory
    // iteration path, re-read by EdgeLoader) or the cross-job dataset cache
    // (cached chain, re-scanned by CachedScanLoader) - never both.
    if (writer_) {
      writer_->append(ctx.node(), key, adj);
    } else {
      ctx.kv().local(ctx.node()).put(adj_key(key), adj);
    }
    // Current rank (initial on the first iteration; the stored value when the
    // reload-each-iteration ablation reruns this phase).
    const double rank = local_rank(ctx, key, initial_);
    char cbuf[8];
    const std::string_view contrib =
        encode_contrib(rank / static_cast<double>(dsts.size()), cbuf);
    for (std::string_view dst : dsts) ctx.emit(0, dst, contrib);
  }

 private:
  double initial_;
  std::shared_ptr<cache::DatasetWriter> writer_;
};

// Iterations >= 2: replay contributions straight from the in-memory
// adjacency lists (the paper's EdgeLoader - "load its dstPage list from
// memory"). One synthetic split per node.
class EdgeLoader : public engine::LoaderFlowlet {
 public:
  explicit EdgeLoader(uint64_t num_pages, uint64_t srcs_per_chunk = 256)
      : initial_(1.0 / num_pages), per_chunk_(srcs_per_chunk) {}

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override {
    (void)split;
    if (*cursor == 0) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!snapshotted_) {
        ctx.kv().local(ctx.node()).for_each_prefix(
            "pr/adj/", [this](const std::string& key, const std::string& value) {
              entries_.emplace_back(key.substr(strlen("pr/adj/")), value);
            });
        snapshotted_ = true;
      }
    }
    uint64_t i = *cursor;
    const uint64_t end = std::min<uint64_t>(i + per_chunk_, entries_.size());
    for (; i < end; ++i) {
      const auto& [src, adj] = entries_[i];
      const auto dsts = tokenize(adj);
      if (dsts.empty()) continue;
      const double rank = local_rank(ctx, src, initial_);
      char cbuf[8];
      const std::string_view contrib =
          encode_contrib(rank / static_cast<double>(dsts.size()), cbuf);
      for (std::string_view dst : dsts) ctx.emit(0, dst, contrib);
    }
    *cursor = i;
    return i < entries_.size();
  }

 private:
  double initial_;
  uint64_t per_chunk_;
  std::mutex mu_;
  bool snapshotted_ = false;
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Sums contributions, updates the in-memory rank, reports |delta|.
class MergeRed : public engine::ReduceFlowlet {
 public:
  explicit MergeRed(uint64_t num_pages)
      : initial_(1.0 / num_pages), base_(0.15 / num_pages) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    // Canonical summation order: floating-point addition is not associative,
    // and shuffle arrival order varies with scheduling (and with which
    // loader - file, kv, or dataset cache - produced the contributions).
    // Parsing first and sorting the doubles numerically fixes the order
    // (ties are bit-identical values, interchangeable under +), so every
    // path's ranks come out byte-identical - and double compares are far
    // cheaper than string compares.
    std::vector<double> sorted;
    sorted.reserve(values.size());
    for (std::string_view v : values) sorted.push_back(decode_contrib(v));
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (double v : sorted) sum += v;
    const double updated = base_ + kDamping * sum;
    const double old = local_rank(ctx, key, initial_);
    ctx.kv().local(ctx.node()).put(rank_key(key), fmt_double(updated));
    ctx.emit(0, key, fmt_double(std::fabs(updated - old)));
  }

 private:
  double initial_;
  double base_;
};

// Cached iterations: expands one resident (src, "dst dst ...") record into
// per-dst contributions. Fed by a CachedScanLoader over "pagerank/adj"
// through a local edge - the dataset is key-partitioned, so src's rank (and
// this map) are already on the right node and nothing crosses the network
// until the contributions shuffle to MergeRed.
class ContribMap : public engine::MapFlowlet {
 public:
  explicit ContribMap(uint64_t num_pages) : initial_(1.0 / num_pages) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    const auto dsts = tokenize(record.value);
    if (dsts.empty()) return;
    const double rank = local_rank(ctx, record.key, initial_);
    char cbuf[8];
    const std::string_view contrib =
        encode_contrib(rank / static_cast<double>(dsts.size()), cbuf);
    for (std::string_view dst : dsts) ctx.emit(0, dst, contrib);
  }

 private:
  double initial_;
};

// Tracks the node-local max delta for the driver's convergence check.
class ContMap : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    (void)ctx;
    const double delta = parse_double(record.value);
    std::lock_guard<std::mutex> lock(mu_);
    max_delta_ = std::max(max_delta_, delta);
  }

  void finish(engine::Context& ctx) override {
    ctx.local_store().write_file(
        "out/pagerank/delta_node" + std::to_string(ctx.node()),
        "max\t" + fmt_double(max_delta_) + "\n");
  }

 private:
  std::mutex mu_;
  double max_delta_ = 0;
};

// --- baseline jobs ---

// Job 1 map: tags edges and rank lines for the src-keyed join.
class JoinMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    const size_t tab = value.find('\t');
    if (tab != std::string_view::npos) {
      ctx.emit(value.substr(0, tab), "R" + std::string(value.substr(tab + 1)));
      return;
    }
    const size_t space = value.find(' ');
    if (space == std::string_view::npos) return;
    ctx.emit(value.substr(0, space), "D" + std::string(value.substr(space + 1)));
  }
};

// Job 1 reduce: contribution fan-out.
class JoinReducer : public mapreduce::Reducer {
 public:
  explicit JoinReducer(uint64_t num_pages) : initial_(1.0 / num_pages) {}

  void reduce(std::string_view /*key*/, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    double rank = initial_;
    std::vector<std::string_view> dsts;
    for (std::string_view v : values) {
      if (v.empty()) continue;
      if (v[0] == 'R') {
        rank = parse_double(v.substr(1));
      } else {
        dsts.push_back(v.substr(1));
      }
    }
    if (dsts.empty()) return;
    const std::string contrib = fmt_double(rank / static_cast<double>(dsts.size()));
    for (std::string_view dst : dsts) ctx.emit(dst, contrib);
  }

 private:
  double initial_;
};

// Job 2 map: parse "dst\tcontrib" output lines of job 1.
class AggMapper : public mapreduce::Mapper {
 public:
  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    const size_t tab = value.find('\t');
    if (tab == std::string_view::npos) return;
    ctx.emit(value.substr(0, tab), value.substr(tab + 1));
  }
};

// Job 2 reduce: new rank.
class AggReducer : public mapreduce::Reducer {
 public:
  explicit AggReducer(uint64_t num_pages) : base_(0.15 / num_pages) {}

  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    double sum = 0;
    for (std::string_view v : values) sum += parse_double(v);
    ctx.emit(key, fmt_double(base_ + kDamping * sum));
  }

 private:
  double base_;
};

// Appends the shared iteration tail to an IR chain: contributions shuffle
// into MergeRed, whose per-key |delta| records feed ContMap over a local
// edge (the driver maxes across all node files, so locality is free) - the
// fuse_maps pass collapses the pair into one reduce-side task body.
void append_merge_tail(ir::Graph& graph, ir::NodeId head, const Params& params) {
  const auto merge = graph.add_reduce(
      "MergeRed",
      [&params] { return std::make_unique<MergeRed>(params.num_pages); },
      {"page", "contrib8"}, {"page", "delta"});
  graph.node(merge).effect = true;  // stores updated ranks in the shared KV
  const auto cont = graph.add_map(
      "ContMap", [] { return std::make_unique<ContMap>(); }, {"page", "delta"});
  graph.node(cont).effect = true;  // writes out/pagerank/delta_node<id>
  graph.connect(head, merge);
  graph.connect(merge, cont, ir::local_attrs());
}

// Optimizes (operator fusion et al.) and lowers an iteration chain, folding
// any splits already attached to IR source nodes into the job inputs.
engine::JobResult run_chain(BenchEnv& env, ir::Graph graph) {
  const ir::Lowered lowered = ir::lower(ir::optimize(std::move(graph)));
  return env.engine->run(lowered.graph, lowered.inputs);
}

double collect_max_delta(BenchEnv& env) {
  double max_delta = 0;
  for (const auto& [key, value] :
       collect_local_kv(*env.cluster, "out/pagerank/delta_node")) {
    (void)key;
    max_delta = std::max(max_delta, parse_double(value));
  }
  return max_delta;
}

}  // namespace

void clear_pagerank_state(BenchEnv& env) {
  env.engine->kv().clear_namespace("pr/");
}

double max_delta(BenchEnv& env) { return collect_max_delta(env); }

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params,
                 bool reload_each_iteration) {
  clear_pagerank_state(env);
  RunInfo run;
  Stopwatch watch;
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    Stopwatch iter_watch;
    run.engine_results.push_back(
        run_hamr_iteration(env, input, params, iter, reload_each_iteration));
    run.iteration_seconds.push_back(iter_watch.elapsed_seconds());
    run.max_delta = collect_max_delta(env);
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

RunInfo run_hamr_cached(BenchEnv& env, const StagedInput& input,
                        const Params& params) {
  clear_pagerank_state(env);
  RunInfo run;
  Stopwatch watch;
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    Stopwatch iter_watch;
    run.engine_results.push_back(
        run_hamr_cached_iteration(env, input, params, iter));
    run.iteration_seconds.push_back(iter_watch.elapsed_seconds());
    run.max_delta = collect_max_delta(env);
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

engine::JobResult run_hamr_cached_iteration(BenchEnv& env,
                                            const StagedInput& input,
                                            const Params& params,
                                            uint32_t iteration) {
  static constexpr const char* kAdjDataset = "pagerank/adj";
  cache::DatasetCache& dcache = *env.dataset_cache;
  // Iteration 0 always rebuilds (fresh chain); later iterations pin the
  // published adjacency. A miss here - LRU eviction under budget pressure or
  // a mid-chain invalidation - falls through to the cold build transparently.
  std::shared_ptr<const cache::Dataset> adj =
      iteration == 0 ? nullptr : dcache.pin(kAdjDataset);

  ir::Graph graph;
  ir::NodeId head;
  std::shared_ptr<cache::DatasetWriter> writer;
  if (!adj) {
    // Cold path: parse the edge file, build adjacency, and republish it for
    // the rest of the chain. HashJoinRed reads the *current* stored rank, so
    // a mid-chain rebuild resumes the iteration sequence exactly.
    cache::PublishOptions options;
    options.key_partitioned = true;
    writer = dcache.begin(kAdjDataset, options);
    const auto loader = graph.add_source(
        "EdgeFileLoader", [] { return std::make_unique<engine::TextLoader>(); },
        {"", "edge-line"});
    graph.node(loader).splits = input.splits;
    const auto parse = graph.add_map(
        "EdgeMap", [] { return std::make_unique<EdgeMap>(); },
        {"", "edge-line"}, {"page", "page"});
    const auto join = graph.add_reduce(
        "HashJoinRed",
        [&params, writer] {
          return std::make_unique<HashJoinRed>(params.num_pages, writer);
        },
        {"page", "page"}, {"page", "contrib8"});
    graph.node(join).effect = true;  // publishes adjacency to the cache
    graph.connect(loader, parse, ir::local_attrs());
    graph.connect(parse, join);
    head = join;
  } else {
    const auto loader = graph.add_source(
        "AdjCacheScan",
        [adj] { return std::make_unique<cache::CachedScanLoader>(adj); },
        {"page", "adj"});
    {
      engine::JobInputs scan_inputs;
      cache::add_scan_splits(&scan_inputs, loader, *adj);
      graph.node(loader).splits = scan_inputs.splits.at(loader);
    }
    const auto contrib = graph.add_map(
        "ContribMap",
        [&params] { return std::make_unique<ContribMap>(params.num_pages); },
        {"page", "adj"}, {"page", "contrib8"});
    // Key-partitioned dataset + per-shard placement => shuffle-free edge,
    // which is exactly what lets fuse_maps collapse scan+contrib.
    const engine::EdgeOptions aligned = cache::aligned_edge(*adj);
    ir::EdgeAttrs attrs;
    attrs.local = aligned.local;
    attrs.partitioner = aligned.partitioner;
    graph.connect(loader, contrib, std::move(attrs));
    head = contrib;
  }
  append_merge_tail(graph, head, params);

  engine::JobResult result = run_chain(env, std::move(graph));
  // Publish only after the job ran to completion; a run that threw leaves
  // the writer uncommitted and the cache untouched.
  if (writer) writer->commit();
  return result;
}

engine::JobResult run_hamr_iteration(BenchEnv& env, const StagedInput& input,
                                     const Params& params, uint32_t iteration,
                                     bool reload) {
  const uint32_t iter = iteration;
  ir::Graph graph;
  ir::NodeId head;
  if (iter == 0 || reload) {
    const auto loader = graph.add_source(
        "EdgeFileLoader", [] { return std::make_unique<engine::TextLoader>(); },
        {"", "edge-line"});
    graph.node(loader).splits = input.splits;
    const auto parse = graph.add_map(
        "EdgeMap", [] { return std::make_unique<EdgeMap>(); },
        {"", "edge-line"}, {"page", "page"});
    const auto join = graph.add_reduce(
        "HashJoinRed",
        [&params] { return std::make_unique<HashJoinRed>(params.num_pages); },
        {"page", "page"}, {"page", "contrib8"});
    graph.node(join).effect = true;  // stores adjacency in the shared KV
    graph.connect(loader, parse, ir::local_attrs());
    graph.connect(parse, join);
    head = join;
  } else {
    const auto loader = graph.add_source(
        "EdgeLoader",
        [&params] { return std::make_unique<EdgeLoader>(params.num_pages); },
        {"page", "contrib8"});
    for (uint32_t n = 0; n < env.nodes(); ++n) {
      engine::InputSplit split;
      split.path = "pr/adj";
      split.preferred_node = n;
      graph.node(loader).splits.push_back(std::move(split));
    }
    head = loader;
  }
  append_merge_tail(graph, head, params);
  return run_chain(env, std::move(graph));
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params) {
  RunInfo run;
  Stopwatch watch;

  // Initial rank table (the evaluation's setup step; not counted in paper
  // time either, but cheap - one DFS file).
  {
    std::string ranks;
    const std::string initial = fmt_double(1.0 / params.num_pages);
    for (uint64_t p = 0; p < params.num_pages; ++p) {
      ranks += std::to_string(p);
      ranks.push_back('\t');
      ranks += initial;
      ranks.push_back('\n');
    }
    env.dfs->write(0, "/pr/ranks_it0/part-r-0", ranks).ExpectOk();
  }

  for (uint32_t iter = 1; iter <= params.iterations; ++iter) {
    mapreduce::MrJobConfig job1 = env.mr_defaults;
    job1.name = "pr_join_it" + std::to_string(iter);
    std::vector<std::string> job1_inputs =
        env.dfs->list("/pr/ranks_it" + std::to_string(iter - 1) + "/");
    job1_inputs.push_back(input.dfs_path);
    run.baseline_results.push_back(env.mr->run(
        job1, job1_inputs, "/pr/contrib_it" + std::to_string(iter),
        [] { return std::make_unique<JoinMapper>(); },
        [&params] { return std::make_unique<JoinReducer>(params.num_pages); }));

    mapreduce::MrJobConfig job2 = env.mr_defaults;
    job2.name = "pr_agg_it" + std::to_string(iter);
    run.baseline_results.push_back(env.mr->run(
        job2, env.dfs->list("/pr/contrib_it" + std::to_string(iter) + "/"),
        "/pr/ranks_it" + std::to_string(iter),
        [] { return std::make_unique<AggMapper>(); },
        [&params] { return std::make_unique<AggReducer>(params.num_pages); }));
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

std::map<uint64_t, double> hamr_ranks(BenchEnv& env, const Params& params) {
  std::map<uint64_t, double> ranks;
  for (uint64_t p = 0; p < params.num_pages; ++p) ranks[p] = 1.0 / params.num_pages;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    env.engine->kv().local(n).for_each_prefix(
        "pr/rank/", [&](const std::string& key, const std::string& value) {
          uint64_t page = 0;
          std::from_chars(key.data() + strlen("pr/rank/"),
                          key.data() + key.size(), page);
          ranks[page] = parse_double(value);
        });
  }
  return ranks;
}

std::map<uint64_t, double> baseline_ranks(BenchEnv& env, const Params& params,
                                          uint32_t iterations) {
  std::map<uint64_t, double> ranks;
  for (uint64_t p = 0; p < params.num_pages; ++p) ranks[p] = 1.0 / params.num_pages;
  for (const auto& [key, value] :
       collect_dfs_kv(env, "/pr/ranks_it" + std::to_string(iterations))) {
    uint64_t page = 0;
    std::from_chars(key.data(), key.data() + key.size(), page);
    ranks[page] = parse_double(value);
  }
  return ranks;
}

std::map<uint64_t, double> reference(const std::vector<std::string>& shards,
                                     const Params& params) {
  // Adjacency.
  std::map<uint64_t, std::vector<uint64_t>> adj;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      const std::string_view line = std::string_view(shard).substr(pos, eol - pos);
      const size_t space = line.find(' ');
      if (space != std::string_view::npos) {
        uint64_t src = 0, dst = 0;
        std::from_chars(line.data(), line.data() + space, src);
        std::from_chars(line.data() + space + 1, line.data() + line.size(), dst);
        adj[src].push_back(dst);
      }
      pos = eol + 1;
    }
  }

  std::map<uint64_t, double> ranks;
  for (uint64_t p = 0; p < params.num_pages; ++p) ranks[p] = 1.0 / params.num_pages;
  const double base = 0.15 / params.num_pages;
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    std::map<uint64_t, double> sums;
    for (const auto& [src, dsts] : adj) {
      const double contrib = ranks[src] / static_cast<double>(dsts.size());
      for (uint64_t dst : dsts) sums[dst] += contrib;
    }
    for (const auto& [dst, sum] : sums) ranks[dst] = base + kDamping * sum;
  }
  return ranks;
}

}  // namespace hamr::apps::pagerank
