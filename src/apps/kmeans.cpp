#include "apps/kmeans.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "apps/movie_vectors.h"
#include "cache/scan_loader.h"
#include "engine/loaders.h"

namespace hamr::apps::kmeans {

namespace {

// Candidate record shipped to NewCentroidGen: tiny, instead of the movie
// vector itself (locality awareness, §3.3).
struct Candidate {
  double sim = -1;
  uint32_t node = 0;
  uint64_t offset = 0;
  std::string id;  // movie id, tie-breaker
};

std::string encode_candidate(double sim, uint32_t node, uint64_t offset,
                             std::string_view id) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.17g|%u|%llu|", sim, node,
                static_cast<unsigned long long>(offset));
  return std::string(buf) + std::string(id);
}

bool decode_candidate(std::string_view text, Candidate* out) {
  const size_t p1 = text.find('|');
  const size_t p2 = text.find('|', p1 + 1);
  const size_t p3 = text.find('|', p2 + 1);
  if (p1 == std::string_view::npos || p2 == std::string_view::npos ||
      p3 == std::string_view::npos) {
    return false;
  }
  out->sim = std::strtod(std::string(text.substr(0, p1)).c_str(), nullptr);
  std::from_chars(text.data() + p1 + 1, text.data() + p2, out->node);
  std::from_chars(text.data() + p2 + 1, text.data() + p3, out->offset);
  out->id = std::string(text.substr(p3 + 1));
  return true;
}

// Higher similarity wins; ties go to the lexicographically smaller movie id.
bool better_candidate(const Candidate& a, const Candidate& b) {
  if (a.sim != b.sim) return a.sim > b.sim;
  return a.id < b.id;
}

// Buffered append writer for the local per-cluster output files: batches
// appends so the modeled disk sees realistic request sizes.
class ClusterFileWriter {
 public:
  explicit ClusterFileWriter(std::string prefix) : prefix_(std::move(prefix)) {}

  void add(uint32_t cluster, std::string_view line, engine::Context& ctx) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string& buf = buffers_[cluster];
    buf.append(line);
    buf.push_back('\n');
    if (buf.size() >= 256 * 1024) {
      ctx.local_store().append(path(cluster, ctx), buf);
      buf.clear();
    }
  }

  void flush(engine::Context& ctx) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [cluster, buf] : buffers_) {
      if (!buf.empty()) ctx.local_store().append(path(cluster, ctx), buf);
      buf.clear();
    }
  }

 private:
  std::string path(uint32_t cluster, engine::Context& ctx) const {
    return prefix_ + "cluster" + std::to_string(cluster) + "_node" +
           std::to_string(ctx.node());
  }

  std::string prefix_;
  std::mutex mu_;
  std::map<uint32_t, std::string> buffers_;
};

// --- HAMR flowlets (Alg. 1) ---

class ClusterGen : public engine::MapFlowlet {
 public:
  explicit ClusterGen(std::vector<std::string> centroid_lines)
      : centroid_lines_(std::move(centroid_lines)),
        centroids_(movies::parse_centroids(centroid_lines_)),
        files_("out/kmeans/") {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    movies::MovieVector movie;
    if (!movies::parse_movie_vector(record.value, &movie)) return;
    double sim = 0;
    const uint32_t cluster = movies::assign_cluster(movie, centroids_, &sim);
    files_.add(cluster, record.value, ctx);  // stays on this node's disk
    uint64_t offset = 0;
    std::from_chars(record.key.data(), record.key.data() + record.key.size(), offset);
    ctx.emit(0, std::to_string(cluster),
             encode_candidate(sim, ctx.node(), offset, movie.id));
  }

  void finish(engine::Context& ctx) override { files_.flush(ctx); }

 private:
  std::vector<std::string> centroid_lines_;
  std::vector<movies::MovieVector> centroids_;
  ClusterFileWriter files_;
};

class NewCentroidGen : public engine::ReduceFlowlet {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    Candidate best;
    bool have = false;
    for (std::string_view v : values) {
      Candidate c;
      if (decode_candidate(v, &c) && (!have || better_candidate(c, best))) {
        best = std::move(c);
        have = true;
      }
    }
    if (have) {
      // Route the line offset back to the node whose disk holds the movie.
      ctx.emit_to_node(0, best.node, key, std::to_string(best.offset));
    }
  }
};

class NewCentroidInfoGet : public engine::MapFlowlet {
 public:
  explicit NewCentroidInfoGet(std::string input_path)
      : input_path_(std::move(input_path)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    uint64_t offset = 0;
    std::from_chars(record.value.data(), record.value.data() + record.value.size(),
                    offset);
    auto data = ctx.local_store().read_range(input_path_, offset, 64 * 1024);
    data.status().ExpectOk();
    std::string_view line = data.value();
    const size_t eol = line.find('\n');
    if (eol != std::string_view::npos) line = line.substr(0, eol);
    ctx.emit_broadcast(0, record.key, line);
  }

 private:
  std::string input_path_;
};

class CentroidUpdate : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    (void)ctx;
    std::lock_guard<std::mutex> lock(mu_);
    centroids_[std::string(record.key)] = std::string(record.value);
  }

  void finish(engine::Context& ctx) override {
    std::string out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [cluster, line] : centroids_) {
        out += cluster;
        out.push_back('\t');
        out += line;
        out.push_back('\n');
      }
    }
    ctx.local_store().write_file(
        "out/kmeans/newcentroids_node" + std::to_string(ctx.node()), out);
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> centroids_;
};

// Ablation A4 variant: no locality awareness - ships the whole line.
class ClusterGenFull : public engine::MapFlowlet {
 public:
  explicit ClusterGenFull(std::vector<std::string> centroid_lines)
      : centroid_lines_(std::move(centroid_lines)),
        centroids_(movies::parse_centroids(centroid_lines_)),
        files_("out/kmeans/") {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    movies::MovieVector movie;
    if (!movies::parse_movie_vector(record.value, &movie)) return;
    double sim = 0;
    const uint32_t cluster = movies::assign_cluster(movie, centroids_, &sim);
    files_.add(cluster, record.value, ctx);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g|", sim);
    ctx.emit(0, std::to_string(cluster), std::string(buf) + std::string(record.value));
  }

  void finish(engine::Context& ctx) override { files_.flush(ctx); }

 private:
  std::vector<std::string> centroid_lines_;
  std::vector<movies::MovieVector> centroids_;
  ClusterFileWriter files_;
};

// Picks the best full line and broadcasts it (no locality round-trip).
class NewCentroidGenFull : public engine::ReduceFlowlet {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    double best_sim = -1;
    std::string_view best_line, best_id;
    for (std::string_view v : values) {
      const size_t bar = v.find('|');
      if (bar == std::string_view::npos) continue;
      const double sim = std::strtod(std::string(v.substr(0, bar)).c_str(), nullptr);
      const std::string_view line = v.substr(bar + 1);
      const size_t colon = line.find(':');
      const std::string_view id =
          colon == std::string_view::npos ? line : line.substr(0, colon);
      if (sim > best_sim || (sim == best_sim && id < best_id)) {
        best_sim = sim;
        best_line = line;
        best_id = id;
      }
    }
    if (best_sim >= 0) ctx.emit_broadcast(0, key, best_line);
  }
};

// --- baseline (PUMA-style single job shuffling full movie lines) ---

class KmMapper : public mapreduce::Mapper {
 public:
  explicit KmMapper(std::vector<std::string> centroid_lines)
      : centroid_lines_(std::move(centroid_lines)),
        centroids_(movies::parse_centroids(centroid_lines_)) {}

  void map(std::string_view /*key*/, std::string_view value,
           mapreduce::MrContext& ctx) override {
    movies::MovieVector movie;
    if (!movies::parse_movie_vector(value, &movie)) return;
    double sim = 0;
    const uint32_t cluster = movies::assign_cluster(movie, centroids_, &sim);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g|", sim);
    // Full movie line travels through sort/spill/shuffle.
    ctx.emit(std::to_string(cluster), std::string(buf) + std::string(value));
  }

 private:
  std::vector<std::string> centroid_lines_;
  std::vector<movies::MovieVector> centroids_;
};

class KmReducer : public mapreduce::Reducer {
 public:
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              mapreduce::MrContext& ctx) override {
    double best_sim = -1;
    std::string_view best_line;
    std::string_view best_id;
    for (std::string_view v : values) {
      const size_t bar = v.find('|');
      if (bar == std::string_view::npos) continue;
      const double sim = std::strtod(std::string(v.substr(0, bar)).c_str(), nullptr);
      const std::string_view line = v.substr(bar + 1);
      const size_t colon = line.find(':');
      const std::string_view id =
          colon == std::string_view::npos ? line : line.substr(0, colon);
      if (sim > best_sim || (sim == best_sim && id < best_id)) {
        best_sim = sim;
        best_line = line;
        best_id = id;
      }
    }
    if (best_sim >= 0) ctx.emit(key, best_line);
  }
};

}  // namespace

Params make_params(const std::vector<std::string>& shards, uint32_t k) {
  Params params;
  params.k = k;
  params.centroid_lines =
      movies::initial_centroid_lines(shards.empty() ? std::string() : shards[0], k);
  return params;
}

RunInfo run_hamr(BenchEnv& env, const StagedInput& input, const Params& params,
                 bool ship_full_vectors) {
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto update = graph.add_map(
      "CentroidUpdate", [] { return std::make_unique<CentroidUpdate>(); });
  if (ship_full_vectors) {
    const auto gen = graph.add_map("ClusterGenFull", [&params] {
      return std::make_unique<ClusterGenFull>(params.centroid_lines);
    });
    const auto newc = graph.add_reduce(
        "NewCentroidGenFull", [] { return std::make_unique<NewCentroidGenFull>(); });
    graph.connect(loader, gen, engine::local_edge());
    graph.connect(gen, newc);
    graph.connect(newc, update);
  } else {
    const auto gen = graph.add_map("ClusterGen", [&params] {
      return std::make_unique<ClusterGen>(params.centroid_lines);
    });
    const auto newc = graph.add_reduce(
        "NewCentroidGen", [] { return std::make_unique<NewCentroidGen>(); });
    const auto info_get = graph.add_map("NewCentroidInfoGet", [&input] {
      return std::make_unique<NewCentroidInfoGet>(input.local_path);
    });
    graph.connect(loader, gen, engine::local_edge());
    graph.connect(gen, newc);
    graph.connect(newc, info_get);
    graph.connect(info_get, update);
  }

  RunInfo run;
  run.engine_result = env.engine->run(graph, inputs_for(loader, input));
  run.seconds = run.engine_result.wall_seconds;
  return run;
}

IterativeRunInfo run_hamr_iterative(BenchEnv& env, const StagedInput& input,
                                    const Params& params, uint32_t rounds,
                                    bool use_cache) {
  static constexpr const char* kVectorsDataset = "kmeans/vectors";
  IterativeRunInfo run;
  Stopwatch watch;
  std::vector<std::string> centroid_lines = params.centroid_lines;
  for (uint32_t round = 0; round < rounds; ++round) {
    Stopwatch round_watch;
    // The input is immutable across rounds; stamp the dataset with its size
    // so a stale generation (different staged input) reads as a miss.
    std::shared_ptr<const cache::Dataset> vectors =
        use_cache && round > 0
            ? env.dataset_cache->pin(kVectorsDataset, input.total_bytes)
            : nullptr;

    engine::FlowletGraph graph;
    engine::JobInputs inputs;
    std::shared_ptr<cache::DatasetWriter> writer;
    const auto gen = graph.add_map("ClusterGen", [&centroid_lines] {
      return std::make_unique<ClusterGen>(centroid_lines);
    });
    if (vectors) {
      const auto loader = graph.add_loader("VectorCacheScan", [vectors] {
        return std::make_unique<cache::CachedScanLoader>(vectors);
      });
      cache::add_scan_splits(&inputs, loader, *vectors);
      // Shard n mirrors node n's file shard; the scan runs there, so the
      // edge stays local without any partitioner.
      graph.connect(loader, gen, engine::local_edge());
    } else {
      const auto loader = graph.add_loader(
          "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
      engine::EdgeOptions edge = engine::local_edge();
      if (use_cache) {
        cache::PublishOptions options;
        options.stamp = input.total_bytes;
        writer = env.dataset_cache->begin(kVectorsDataset, options);
        edge = cache::publish_tap(edge, writer);
      }
      graph.connect(loader, gen, edge);
      inputs = inputs_for(loader, input);
    }
    const auto newc = graph.add_reduce(
        "NewCentroidGen", [] { return std::make_unique<NewCentroidGen>(); });
    const auto info_get = graph.add_map("NewCentroidInfoGet", [&input] {
      return std::make_unique<NewCentroidInfoGet>(input.local_path);
    });
    const auto update = graph.add_map(
        "CentroidUpdate", [] { return std::make_unique<CentroidUpdate>(); });
    graph.connect(gen, newc);
    graph.connect(newc, info_get);
    graph.connect(info_get, update);

    run.engine_results.push_back(env.engine->run(graph, inputs));
    if (writer) writer->commit();
    run.final_centroids = hamr_new_centroids(env);
    centroid_lines.clear();
    for (const auto& [cluster, line] : run.final_centroids) {
      (void)cluster;
      centroid_lines.push_back(line);
    }
    run.round_seconds.push_back(round_watch.elapsed_seconds());
  }
  run.seconds = watch.elapsed_seconds();
  return run;
}

RunInfo run_baseline(BenchEnv& env, const StagedInput& input, const Params& params) {
  mapreduce::MrJobConfig config = env.mr_defaults;
  config.name = "kmeans";
  RunInfo run;
  run.baseline_result = env.mr->run(
      config, {input.dfs_path}, "/out/kmeans",
      [&params] { return std::make_unique<KmMapper>(params.centroid_lines); },
      [] { return std::make_unique<KmReducer>(); });
  run.seconds = run.baseline_result.wall_seconds;
  return run;
}

namespace {

std::map<uint32_t, std::string> parse_centroid_kv(
    const std::map<std::string, std::string>& kv) {
  std::map<uint32_t, std::string> out;
  for (const auto& [key, value] : kv) {
    uint32_t cluster = 0;
    std::from_chars(key.data(), key.data() + key.size(), cluster);
    out[cluster] = value;
  }
  return out;
}

}  // namespace

std::map<uint32_t, std::string> hamr_new_centroids(BenchEnv& env) {
  // Every node holds the broadcast centroids; node 0's copy is canonical.
  auto data = env.cluster->node(0).store().read_file("out/kmeans/newcentroids_node0");
  data.status().ExpectOk();
  std::map<std::string, std::string> kv;
  size_t pos = 0;
  const std::string& text = data.value();
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line = std::string_view(text).substr(pos, eol - pos);
    const size_t tab = line.find('\t');
    if (tab != std::string_view::npos) {
      kv[std::string(line.substr(0, tab))] = std::string(line.substr(tab + 1));
    }
    pos = eol + 1;
  }
  return parse_centroid_kv(kv);
}

std::map<uint32_t, std::string> baseline_new_centroids(BenchEnv& env) {
  return parse_centroid_kv(collect_dfs_kv(env, "/out/kmeans"));
}

std::map<uint32_t, uint64_t> hamr_cluster_sizes(BenchEnv& env) {
  std::map<uint32_t, uint64_t> sizes;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    for (const std::string& path :
         env.cluster->node(n).store().list("out/kmeans/cluster")) {
      uint32_t cluster = 0;
      std::from_chars(path.data() + strlen("out/kmeans/cluster"),
                      path.data() + path.size(), cluster);
      auto data = env.cluster->node(n).store().read_file(path);
      data.status().ExpectOk();
      uint64_t lines = 0;
      for (char c : data.value()) lines += c == '\n';
      sizes[cluster] += lines;
    }
  }
  return sizes;
}

ReferenceResult reference(const std::vector<std::string>& shards,
                          const Params& params) {
  const auto centroids = movies::parse_centroids(params.centroid_lines);
  ReferenceResult result;
  std::map<uint32_t, Candidate> best;
  for (const std::string& shard : shards) {
    size_t pos = 0;
    while (pos < shard.size()) {
      size_t eol = shard.find('\n', pos);
      if (eol == std::string::npos) eol = shard.size();
      movies::MovieVector movie;
      if (movies::parse_movie_vector(std::string_view(shard).substr(pos, eol - pos),
                                     &movie)) {
        double sim = 0;
        const uint32_t cluster = movies::assign_cluster(movie, centroids, &sim);
        ++result.cluster_sizes[cluster];
        Candidate c;
        c.sim = sim;
        c.id = std::string(movie.id);
        c.offset = pos;
        auto it = best.find(cluster);
        if (it == best.end() || better_candidate(c, it->second)) {
          best[cluster] = c;
          result.new_centroids[cluster] = shard.substr(pos, eol - pos);
        }
      }
      pos = eol + 1;
    }
  }
  return result;
}

}  // namespace hamr::apps::kmeans
