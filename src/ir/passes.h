// IR optimization passes (DESIGN.md §16). Each pass is a pure IR -> IR
// function; PassPipeline::run() verifies the graph before the first pass and
// after every pass, so an invariant-breaking pass fails loudly at compile
// time of the job, not inside the engine.
//
// Standard order:
//   1. place_combiner    - enable sender-side combining on every eligible
//                          shuffle edge into an opted-in (combinable)
//                          combine node: the combiner sinks below the
//                          shuffle, folding records on the sending node
//                          before bins are packed.
//   2. fuse_map_combine  - a map whose single out-edge is a combine edge is
//                          fused into its local upstream producer, so
//                          produce -> transform -> combine-fold all run in
//                          one task body with zero intermediate bins.
//   3. fuse_maps         - collapse remaining producer -> map chains across
//                          local, untapped, partitioner-free, non-combine
//                          edges (single-out producer, single-in fusible
//                          consumer; kSink consumers fuse too).
//   4. eliminate_dead    - drop nodes with no path to an effect node,
//                          keeping any whose removal would renumber a
//                          surviving producer's emit ports.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.h"

namespace hamr::ir {

Graph place_combiner(const Graph& graph);
Graph fuse_map_combine(const Graph& graph);
Graph fuse_maps(const Graph& graph);
Graph eliminate_dead(const Graph& graph);

using Pass = std::function<Graph(const Graph&)>;

struct PassPipeline {
  std::vector<std::pair<std::string, Pass>> passes;

  // All four passes in the order above.
  static PassPipeline standard();
  // Combiner placement + dead elimination only: graph shape (and therefore
  // engine flowlet ids) is preserved. Front-ends whose flowlet ids are
  // load-bearing (pinned crash points, per-flowlet event assertions) lower
  // through this one.
  static PassPipeline no_fusion();

  // verify(g); then for each pass: g = pass(g); verify(g, "after <name>").
  Graph run(Graph graph) const;
};

// Shorthand for PassPipeline::standard().run().
Graph optimize(Graph graph);

}  // namespace hamr::ir
