#include "ir/fused.h"

#include <stdexcept>

namespace hamr::ir {

void FusedEmit::emit(uint32_t port, std::string_view key,
                     std::string_view value) {
  if (port != 0) {
    throw std::logic_error(
        "ir: fused producer emitted on port " + std::to_string(port) +
        "; fusion requires a single-out producer");
  }
  const engine::KvPair record{key, value};
  consumer_.process(record, outer_);
}

void FusedEmit::emit_to_node(uint32_t port, engine::NodeId node,
                             std::string_view key, std::string_view value) {
  (void)port;
  (void)node;
  (void)key;
  (void)value;
  throw std::logic_error(
      "ir: fused producer called emit_to_node; fusion only crosses local "
      "key-routed edges");
}

void FusedEmit::emit_broadcast(uint32_t port, std::string_view key,
                               std::string_view value) {
  (void)port;
  (void)key;
  (void)value;
  throw std::logic_error(
      "ir: fused producer called emit_broadcast; fusion only crosses local "
      "key-routed edges");
}

// Lifecycle ordering, shared by every wrapper: the consumer starts first
// (with the real context - its emissions leave the fused flowlet), so it is
// ready before the producer's start() can emit into it; at finish the
// producer flushes first (its final records still flow through the
// consumer), then the consumer flushes.

void FusedLoader::start(engine::Context& ctx) {
  consumer_->start(ctx);
  FusedEmit fused(ctx, *consumer_);
  producer_->start(fused);
}

bool FusedLoader::load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                             engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  return producer_->load_chunk(split, cursor, fused);
}

void FusedLoader::finish(engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->finish(fused);
  consumer_->finish(ctx);
}

void FusedMap::start(engine::Context& ctx) {
  consumer_->start(ctx);
  FusedEmit fused(ctx, *consumer_);
  producer_->start(fused);
}

void FusedMap::process(const engine::KvPair& record, engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->process(record, fused);
}

void FusedMap::finish(engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->finish(fused);
  consumer_->finish(ctx);
}

void FusedReduce::start(engine::Context& ctx) {
  consumer_->start(ctx);
  FusedEmit fused(ctx, *consumer_);
  producer_->start(fused);
}

void FusedReduce::reduce(std::string_view key,
                         const std::vector<std::string_view>& values,
                         engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->reduce(key, values, fused);
}

void FusedReduce::finish(engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->finish(fused);
  consumer_->finish(ctx);
}

void FusedPartialReduce::start(engine::Context& ctx) {
  consumer_->start(ctx);
  FusedEmit fused(ctx, *consumer_);
  producer_->start(fused);
}

void FusedPartialReduce::emit_result(std::string_view key,
                                     std::string_view acc,
                                     engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->emit_result(key, acc, fused);
}

void FusedPartialReduce::finish(engine::Context& ctx) {
  FusedEmit fused(ctx, *consumer_);
  producer_->finish(fused);
  consumer_->finish(ctx);
}

engine::FlowletFactory fuse_factories(NodeKind producer_kind,
                                      engine::FlowletFactory producer,
                                      engine::FlowletFactory consumer) {
  return [producer_kind, producer = std::move(producer),
          consumer = std::move(consumer)]() -> std::unique_ptr<engine::Flowlet> {
    auto consumer_map = std::unique_ptr<engine::MapFlowlet>(
        static_cast<engine::MapFlowlet*>(consumer().release()));
    switch (producer_kind) {
      case NodeKind::kSource:
        return std::make_unique<FusedLoader>(
            std::unique_ptr<engine::LoaderFlowlet>(
                static_cast<engine::LoaderFlowlet*>(producer().release())),
            std::move(consumer_map));
      case NodeKind::kMap:
      case NodeKind::kSink:
        return std::make_unique<FusedMap>(
            std::unique_ptr<engine::MapFlowlet>(
                static_cast<engine::MapFlowlet*>(producer().release())),
            std::move(consumer_map));
      case NodeKind::kReduce:
        return std::make_unique<FusedReduce>(
            std::unique_ptr<engine::ReduceFlowlet>(
                static_cast<engine::ReduceFlowlet*>(producer().release())),
            std::move(consumer_map));
      case NodeKind::kCombine:
        return std::make_unique<FusedPartialReduce>(
            std::unique_ptr<engine::PartialReduceFlowlet>(
                static_cast<engine::PartialReduceFlowlet*>(
                    producer().release())),
            std::move(consumer_map));
    }
    throw std::logic_error("ir: fuse_factories on unknown node kind");
  };
}

}  // namespace hamr::ir
