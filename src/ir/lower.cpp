#include "ir/lower.h"

namespace hamr::ir {

Lowered lower(const Graph& graph) {
  verify(graph);
  Lowered lowered;
  lowered.flowlet_of.reserve(graph.nodes.size());
  for (const Node& node : graph.nodes) {
    engine::FlowletId id = 0;
    switch (node.kind) {
      case NodeKind::kSource:
        id = lowered.graph.add_loader(node.name, node.factory);
        break;
      case NodeKind::kMap:
      case NodeKind::kSink:
        id = lowered.graph.add_map(node.name, node.factory);
        break;
      case NodeKind::kCombine:
        id = lowered.graph.add_partial_reduce(node.name, node.factory);
        break;
      case NodeKind::kReduce:
        id = lowered.graph.add_reduce(node.name, node.factory);
        break;
    }
    lowered.flowlet_of.push_back(id);
    for (const engine::InputSplit& split : node.splits) {
      lowered.inputs.add(id, split);
    }
  }
  // Per-node out-edge order defines the emit ports; engine connect() numbers
  // ports in call order, so connect each node's out-edges consecutively.
  for (const Node& node : graph.nodes) {
    for (EdgeId e : node.out_edges) {
      const Edge& edge = graph.edge(e);
      engine::EdgeOptions options;
      options.combine = edge.attrs.combine;
      options.local = edge.attrs.local;
      options.partitioner = edge.attrs.partitioner;
      options.tap = edge.attrs.tap;
      lowered.graph.connect(lowered.flowlet_of[edge.src],
                            lowered.flowlet_of[edge.dst], std::move(options));
    }
  }
  lowered.graph.validate();
  return lowered;
}

}  // namespace hamr::ir
