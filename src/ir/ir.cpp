#include "ir/ir.h"

#include <deque>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace hamr::ir {

const char* node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource:
      return "source";
    case NodeKind::kMap:
      return "map";
    case NodeKind::kCombine:
      return "combine";
    case NodeKind::kReduce:
      return "reduce";
    case NodeKind::kSink:
      return "sink";
  }
  return "?";
}

bool tags_compatible(const TypeTag& out, const TypeTag& in) {
  const bool key_ok = out.key.empty() || in.key.empty() || out.key == in.key;
  const bool value_ok =
      out.value.empty() || in.value.empty() || out.value == in.value;
  return key_ok && value_ok;
}

NodeId Graph::add_node(NodeKind kind, std::string name,
                       engine::FlowletFactory factory, TypeTag in,
                       TypeTag out) {
  Node node;
  node.id = static_cast<NodeId>(nodes.size());
  node.kind = kind;
  node.name = std::move(name);
  node.factory = std::move(factory);
  node.in = std::move(in);
  node.out = std::move(out);
  nodes.push_back(std::move(node));
  return nodes.back().id;
}

NodeId Graph::add_source(std::string name, engine::FlowletFactory factory,
                         TypeTag out) {
  return add_node(NodeKind::kSource, std::move(name), std::move(factory), {},
                  std::move(out));
}

NodeId Graph::add_map(std::string name, engine::FlowletFactory factory,
                      TypeTag in, TypeTag out) {
  return add_node(NodeKind::kMap, std::move(name), std::move(factory),
                  std::move(in), std::move(out));
}

NodeId Graph::add_combine(std::string name, engine::FlowletFactory factory,
                          TypeTag in, TypeTag out) {
  return add_node(NodeKind::kCombine, std::move(name), std::move(factory),
                  std::move(in), std::move(out));
}

NodeId Graph::add_reduce(std::string name, engine::FlowletFactory factory,
                         TypeTag in, TypeTag out) {
  return add_node(NodeKind::kReduce, std::move(name), std::move(factory),
                  std::move(in), std::move(out));
}

NodeId Graph::add_sink(std::string name, engine::FlowletFactory factory,
                       TypeTag in) {
  const NodeId id = add_node(NodeKind::kSink, std::move(name),
                             std::move(factory), std::move(in), {});
  nodes[id].effect = true;
  return id;
}

EdgeId Graph::connect(NodeId src, NodeId dst, EdgeAttrs attrs) {
  if (src >= nodes.size() || dst >= nodes.size()) {
    throw std::invalid_argument("ir: connect with unknown node id");
  }
  Edge edge;
  edge.id = static_cast<EdgeId>(edges.size());
  edge.src = src;
  edge.dst = dst;
  edge.attrs = std::move(attrs);
  edges.push_back(std::move(edge));
  nodes[src].out_edges.push_back(edges.back().id);
  nodes[dst].in_edges.push_back(edges.back().id);
  return edges.back().id;
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<uint32_t> in_degree(nodes.size(), 0);
  for (const Edge& edge : edges) ++in_degree[edge.dst];
  std::deque<NodeId> ready;
  for (const Node& node : nodes) {
    if (in_degree[node.id] == 0) ready.push_back(node.id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (EdgeId e : nodes[id].out_edges) {
      if (--in_degree[edges[e].dst] == 0) ready.push_back(edges[e].dst);
    }
  }
  if (order.size() != nodes.size()) {
    throw std::invalid_argument("ir: graph has a cycle");
  }
  return order;
}

namespace {

std::string node_ref(const Node& node) {
  return "n" + std::to_string(node.id) + " '" + node.name + "'";
}

std::string edge_ref(const Graph& graph, const Edge& edge) {
  return "edge e" + std::to_string(edge.id) + " (" +
         node_ref(graph.node(edge.src)) + " -> " +
         node_ref(graph.node(edge.dst)) + ")";
}

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw std::invalid_argument(context.empty() ? "ir: " + what
                                              : "ir: " + context + ": " + what);
}

}  // namespace

void verify(const Graph& graph, const std::string& context) {
  // Dense, self-consistent ids and edge cross-references.
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    if (graph.nodes[i].id != i) {
      fail(context, "node at index " + std::to_string(i) + " has id " +
                        std::to_string(graph.nodes[i].id));
    }
  }
  std::vector<uint32_t> seen_out(graph.edges.size(), 0);
  std::vector<uint32_t> seen_in(graph.edges.size(), 0);
  for (const Node& node : graph.nodes) {
    for (EdgeId e : node.out_edges) {
      if (e >= graph.edges.size() || graph.edges[e].src != node.id) {
        fail(context, node_ref(node) + " lists a bad out-edge");
      }
      ++seen_out[e];
    }
    for (EdgeId e : node.in_edges) {
      if (e >= graph.edges.size() || graph.edges[e].dst != node.id) {
        fail(context, node_ref(node) + " lists a bad in-edge");
      }
      ++seen_in[e];
    }
  }
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    const Edge& edge = graph.edges[i];
    if (edge.id != i) {
      fail(context, "edge at index " + std::to_string(i) + " has id " +
                        std::to_string(edge.id));
    }
    if (edge.src >= graph.nodes.size() || edge.dst >= graph.nodes.size()) {
      fail(context, "edge e" + std::to_string(edge.id) + " references an unknown node");
    }
    if (edge.src == edge.dst) {
      fail(context, edge_ref(graph, edge) + " is a self-loop");
    }
    if (seen_out[i] != 1 || seen_in[i] != 1) {
      fail(context, "edge e" + std::to_string(i) +
                        " is not cross-referenced exactly once");
    }
  }

  graph.topo_order();  // throws on a cycle

  for (const Node& node : graph.nodes) {
    const bool is_source = node.kind == NodeKind::kSource;
    if (is_source && !node.in_edges.empty()) {
      fail(context, "source " + node_ref(node) + " has in-edges");
    }
    if (!is_source && node.in_edges.empty()) {
      fail(context, "dangling node " + node_ref(node) +
                        ": a non-source node with no inputs never runs");
    }
    if (!is_source && !node.splits.empty()) {
      fail(context, node_ref(node) + " carries input splits but is not a source");
    }
    if (!node.factory) {
      fail(context, node_ref(node) + " has no flowlet factory");
    }
  }

  for (const Edge& edge : graph.edges) {
    const Node& src = graph.node(edge.src);
    const Node& dst = graph.node(edge.dst);
    if (edge.attrs.combine) {
      if (dst.kind != NodeKind::kCombine) {
        fail(context, "combine " + edge_ref(graph, edge) +
                          " targets a non-combine node: sender-side combining "
                          "needs the destination's fold()");
      }
      if (edge.attrs.tap) {
        fail(context,
             "tap on combine " + edge_ref(graph, edge) +
                 ": combined records fold before routing, so a tap would "
                 "never observe per-record destinations; remove the tap or "
                 "disable combining on this edge");
      }
    }
    if (!tags_compatible(src.out, dst.in)) {
      fail(context, "type mismatch on " + edge_ref(graph, edge) + ": producer "
                        "emits (" + src.out.key + "," + src.out.value +
                        ") but consumer accepts (" + dst.in.key + "," +
                        dst.in.value + ")");
    }
  }
}

std::string dump(const Graph& graph) {
  std::ostringstream out;
  out << "ir::Graph {\n";
  for (const Node& node : graph.nodes) {
    out << "  n" << node.id << ": " << node_kind_name(node.kind) << " \""
        << node.name << "\"";
    if (node.kind != NodeKind::kSource &&
        (!node.in.key.empty() || !node.in.value.empty())) {
      out << " in=(" << node.in.key << "," << node.in.value << ")";
    }
    if (!node.out.key.empty() || !node.out.value.empty()) {
      out << " out=(" << node.out.key << "," << node.out.value << ")";
    }
    if (node.effect) out << " effect";
    if (node.combinable) out << " combinable";
    if (!node.fusible) out << " nofuse";
    if (!node.splits.empty()) out << " splits=" << node.splits.size();
    out << "\n";
  }
  for (const Edge& edge : graph.edges) {
    out << "  e" << edge.id << ": n" << edge.src << " -> n" << edge.dst;
    std::string flags;
    const auto flag = [&flags](const char* name) {
      flags += flags.empty() ? "" : ",";
      flags += name;
    };
    if (edge.attrs.local) flag("local");
    if (edge.attrs.combine) flag("combine");
    if (edge.attrs.partitioner) flag("partitioner");
    if (edge.attrs.tap) flag("tap");
    if (!flags.empty()) out << " [" << flags << "]";
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace hamr::ir
