#include "ir/passes.h"

#include <algorithm>
#include <deque>

#include "ir/fused.h"

namespace hamr::ir {

namespace {

// Mutable working copy of a graph: passes mark nodes/edges dead and rewire
// the survivors, then compact() renumbers everything densely (preserving
// node order and per-node out-edge/port order) into a fresh Graph.
struct Work {
  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::vector<bool> node_dead;
  std::vector<bool> edge_dead;

  explicit Work(const Graph& graph)
      : nodes(graph.nodes),
        edges(graph.edges),
        node_dead(graph.nodes.size(), false),
        edge_dead(graph.edges.size(), false) {}

  size_t live_out_edges(const Node& node) const {
    size_t count = 0;
    for (EdgeId e : node.out_edges) count += edge_dead[e] ? 0 : 1;
    return count;
  }

  Graph compact() {
    std::vector<NodeId> node_map(nodes.size(), 0);
    std::vector<EdgeId> edge_map(edges.size(), 0);
    NodeId next_node = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (!node_dead[i]) node_map[i] = next_node++;
    }
    EdgeId next_edge = 0;
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edge_dead[i]) edge_map[i] = next_edge++;
    }
    Graph out;
    out.nodes.reserve(next_node);
    out.edges.reserve(next_edge);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (node_dead[i]) continue;
      Node node = std::move(nodes[i]);
      node.id = node_map[i];
      auto remap = [&](std::vector<EdgeId>& list) {
        std::vector<EdgeId> mapped;
        mapped.reserve(list.size());
        for (EdgeId e : list) {
          if (!edge_dead[e]) mapped.push_back(edge_map[e]);
        }
        list = std::move(mapped);
      };
      remap(node.out_edges);
      remap(node.in_edges);
      out.nodes.push_back(std::move(node));
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edge_dead[i]) continue;
      Edge edge = std::move(edges[i]);
      edge.id = edge_map[i];
      edge.src = node_map[edge.src];
      edge.dst = node_map[edge.dst];
      out.edges.push_back(std::move(edge));
    }
    return out;
  }
};

// Is `edge` a fusion-crossable hop? Fusion runs the consumer inline in the
// producer's task, so the edge must move nothing and observe nothing: local
// (same-node) routing, no tap, no sender-side combining, no custom
// partitioner.
bool fusible_edge(const Edge& edge) {
  return edge.attrs.local && !edge.attrs.tap && !edge.attrs.combine &&
         !edge.attrs.partitioner;
}

// Fuses map `m` into its single producer across edge `pe`, in place: the
// producer takes over m's body, out-edges (ports preserved in order), type
// and effect; m and the hop edge die.
void fuse_into_producer(Work& work, NodeId producer_id, EdgeId pe, NodeId m_id) {
  Node& producer = work.nodes[producer_id];
  Node& m = work.nodes[m_id];
  producer.factory =
      fuse_factories(producer.kind, std::move(producer.factory), m.factory);
  producer.name += "+" + m.name;
  producer.out = m.out;
  producer.effect = producer.effect || m.effect;
  producer.out_edges = m.out_edges;
  for (EdgeId e : producer.out_edges) work.edges[e].src = producer_id;
  work.edge_dead[pe] = true;
  work.node_dead[m_id] = true;
}

// Shared driver for the two fusion passes: repeatedly fuse the first
// (lowest-edge-id) producer -> map pair accepted by `eligible(consumer)`
// until none remains. The consumer must be a fusible map-kind node with a
// single in-edge; the producer must have that edge as its only live out-edge
// (its emit(0) stream is exactly the consumer's input).
Graph fuse_pass(const Graph& graph,
                const std::function<bool(const Work&, const Node&)>& eligible) {
  Work work(graph);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t e = 0; e < work.edges.size() && !changed; ++e) {
      if (work.edge_dead[e]) continue;
      const Edge& edge = work.edges[e];
      if (!fusible_edge(edge)) continue;
      const Node& producer = work.nodes[edge.src];
      const Node& consumer = work.nodes[edge.dst];
      if (work.node_dead[producer.id] || work.node_dead[consumer.id]) continue;
      if (consumer.kind != NodeKind::kMap && consumer.kind != NodeKind::kSink) {
        continue;
      }
      if (!consumer.fusible || consumer.in_edges.size() != 1) continue;
      if (work.live_out_edges(producer) != 1) continue;
      if (!eligible(work, consumer)) continue;
      fuse_into_producer(work, edge.src, static_cast<EdgeId>(e), edge.dst);
      changed = true;
    }
  }
  return work.compact();
}

}  // namespace

Graph place_combiner(const Graph& graph) {
  Work work(graph);
  for (Edge& edge : work.edges) {
    const Node& dst = work.nodes[edge.dst];
    if (dst.kind != NodeKind::kCombine || !dst.combinable) continue;
    // Local edges skip the shuffle already; tapped edges need per-record
    // destinations, which combining erases (verify() enforces the same).
    if (edge.attrs.local || edge.attrs.tap) continue;
    edge.attrs.combine = true;
  }
  return work.compact();
}

Graph fuse_map_combine(const Graph& graph) {
  // A map whose single out-edge carries the combiner: fusing it upstream
  // puts produce -> transform -> combine-fold in one task body (the engine
  // folds combine edges sender-side, inside the emitting task).
  return fuse_pass(graph, [](const Work& work, const Node& consumer) {
    if (consumer.out_edges.size() != 1) return false;
    const Edge& out = work.edges[consumer.out_edges[0]];
    return !work.edge_dead[out.id] && out.attrs.combine;
  });
}

Graph fuse_maps(const Graph& graph) {
  return fuse_pass(graph,
                   [](const Work&, const Node&) { return true; });
}

Graph eliminate_dead(const Graph& graph) {
  Work work(graph);
  // Dead = no path to an effect node (its output is dropped on the floor).
  std::vector<bool> live(work.nodes.size(), false);
  std::deque<NodeId> frontier;
  for (const Node& node : work.nodes) {
    if (node.effect) {
      live[node.id] = true;
      frontier.push_back(node.id);
    }
  }
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (EdgeId e : work.nodes[id].in_edges) {
      const NodeId src = work.edges[e].src;
      if (!live[src]) {
        live[src] = true;
        frontier.push_back(src);
      }
    }
  }
  // Removing an edge renumbers every later out-port of its producer, which
  // would break the producer's emit(port, ...) indexing - so only trailing
  // runs of dead out-edges may go. A dead node forced to stay (a live or
  // kept producer still feeds it mid-port-list) keeps constraining its own
  // targets, hence the fixpoint.
  std::vector<bool> removable(work.nodes.size());
  for (const Node& node : work.nodes) removable[node.id] = !live[node.id];
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Node& node : work.nodes) {
      if (removable[node.id]) continue;
      bool trailing = true;
      for (auto it = node.out_edges.rbegin(); it != node.out_edges.rend();
           ++it) {
        const NodeId dst = work.edges[*it].dst;
        if (!removable[dst]) {
          trailing = false;
        } else if (!trailing) {
          removable[dst] = false;
          changed = true;
        }
      }
    }
  }
  for (const Node& node : work.nodes) {
    if (!removable[node.id]) continue;
    work.node_dead[node.id] = true;
    for (EdgeId e : node.out_edges) work.edge_dead[e] = true;
    for (EdgeId e : node.in_edges) work.edge_dead[e] = true;
  }
  return work.compact();
}

PassPipeline PassPipeline::standard() {
  PassPipeline pipeline;
  pipeline.passes = {
      {"place_combiner", place_combiner},
      {"fuse_map_combine", fuse_map_combine},
      {"fuse_maps", fuse_maps},
      {"eliminate_dead", eliminate_dead},
  };
  return pipeline;
}

PassPipeline PassPipeline::no_fusion() {
  PassPipeline pipeline;
  pipeline.passes = {
      {"place_combiner", place_combiner},
      {"eliminate_dead", eliminate_dead},
  };
  return pipeline;
}

Graph PassPipeline::run(Graph graph) const {
  verify(graph);
  for (const auto& [name, pass] : passes) {
    graph = pass(graph);
    verify(graph, "after pass " + name);
  }
  return graph;
}

Graph optimize(Graph graph) {
  return PassPipeline::standard().run(std::move(graph));
}

}  // namespace hamr::ir
