// Fused flowlet bodies: what the fusion passes lower a producer+map pair to.
//
// Fusing map M into its producer P replaces two flowlets (and the bin hop
// between them) with one: P's port-0 emissions are redirected straight into
// M::process() on the same task, and M's emissions leave through the real
// Context - so M's out-ports become the fused flowlet's out-ports. The
// passes only fuse across edges where this is semantics-preserving: local,
// untapped, non-combine, partitioner-free, single-out producer, single-in
// consumer (see passes.h).
//
// Wrappers exist for each producer kind (loader / map / reduce / partial
// reduce); chains of three or more collapse by wrapping wrappers.
#pragma once

#include <memory>

#include "engine/flowlet.h"
#include "ir/ir.h"

namespace hamr::ir {

// Context adapter handed to a fused producer: port-0 emissions run the
// fused-in consumer map inline; everything else forwards to the real
// context. Stack-allocated per task call, so concurrent bins each get their
// own (the consumer map must tolerate concurrent process() calls - already
// the MapFlowlet contract).
class FusedEmit : public engine::Context {
 public:
  FusedEmit(engine::Context& outer, engine::MapFlowlet& consumer)
      : outer_(outer), consumer_(consumer) {}

  void emit(uint32_t port, std::string_view key,
            std::string_view value) override;
  void emit_to_node(uint32_t port, engine::NodeId node, std::string_view key,
                    std::string_view value) override;
  void emit_broadcast(uint32_t port, std::string_view key,
                      std::string_view value) override;

  engine::NodeId node() const override { return outer_.node(); }
  uint32_t num_nodes() const override { return outer_.num_nodes(); }
  // The producer was fused because it had exactly one out-port.
  uint32_t num_out_ports() const override { return 1; }
  kv::KvStore& kv() override { return outer_.kv(); }
  storage::FileStore& local_store() override { return outer_.local_store(); }
  Metrics& metrics() override { return outer_.metrics(); }
  bool stream_stopping() const override { return outer_.stream_stopping(); }

 private:
  engine::Context& outer_;
  engine::MapFlowlet& consumer_;
};

class FusedLoader : public engine::LoaderFlowlet {
 public:
  FusedLoader(std::unique_ptr<engine::LoaderFlowlet> producer,
              std::unique_ptr<engine::MapFlowlet> consumer)
      : producer_(std::move(producer)), consumer_(std::move(consumer)) {}

  void start(engine::Context& ctx) override;
  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override;
  void finish(engine::Context& ctx) override;

 private:
  std::unique_ptr<engine::LoaderFlowlet> producer_;
  std::unique_ptr<engine::MapFlowlet> consumer_;
};

class FusedMap : public engine::MapFlowlet {
 public:
  FusedMap(std::unique_ptr<engine::MapFlowlet> producer,
           std::unique_ptr<engine::MapFlowlet> consumer)
      : producer_(std::move(producer)), consumer_(std::move(consumer)) {}

  void start(engine::Context& ctx) override;
  void process(const engine::KvPair& record, engine::Context& ctx) override;
  void finish(engine::Context& ctx) override;

 private:
  std::unique_ptr<engine::MapFlowlet> producer_;
  std::unique_ptr<engine::MapFlowlet> consumer_;
};

class FusedReduce : public engine::ReduceFlowlet {
 public:
  FusedReduce(std::unique_ptr<engine::ReduceFlowlet> producer,
              std::unique_ptr<engine::MapFlowlet> consumer)
      : producer_(std::move(producer)), consumer_(std::move(consumer)) {}

  void start(engine::Context& ctx) override;
  void reduce(std::string_view key, const std::vector<std::string_view>& values,
              engine::Context& ctx) override;
  void finish(engine::Context& ctx) override;

 private:
  std::unique_ptr<engine::ReduceFlowlet> producer_;
  std::unique_ptr<engine::MapFlowlet> consumer_;
};

class FusedPartialReduce : public engine::PartialReduceFlowlet {
 public:
  FusedPartialReduce(std::unique_ptr<engine::PartialReduceFlowlet> producer,
                     std::unique_ptr<engine::MapFlowlet> consumer)
      : producer_(std::move(producer)), consumer_(std::move(consumer)) {}

  void start(engine::Context& ctx) override;
  void fold(std::string_view key, std::string_view value,
            std::string& acc) override {
    producer_->fold(key, value, acc);
  }
  void emit_result(std::string_view key, std::string_view acc,
                   engine::Context& ctx) override;
  void finish(engine::Context& ctx) override;

  // Event-time windowing hooks forward to the producer so a windowed partial
  // reduce keeps its semantics if a map is ever fused below it.
  bool stream_windowed() const override { return producer_->stream_windowed(); }
  bool is_punctuation(std::string_view key) const override {
    return producer_->is_punctuation(key);
  }
  int64_t on_punctuation(std::string_view key,
                         std::string_view value) override {
    return producer_->on_punctuation(key, value);
  }
  int64_t window_end_of(std::string_view key) const override {
    return producer_->window_end_of(key);
  }
  void take_opened_windows(std::vector<int64_t>* out) override {
    producer_->take_opened_windows(out);
  }

 private:
  std::unique_ptr<engine::PartialReduceFlowlet> producer_;
  std::unique_ptr<engine::MapFlowlet> consumer_;
};

// Factory for the fused flowlet replacing producer (of IR kind
// `producer_kind`) + consumer map. The consumer factory must build a
// MapFlowlet (kMap/kSink lower to maps); the producer factory must build the
// engine kind matching `producer_kind`.
engine::FlowletFactory fuse_factories(NodeKind producer_kind,
                                      engine::FlowletFactory producer,
                                      engine::FlowletFactory consumer);

}  // namespace hamr::ir
