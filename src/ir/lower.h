// Backend: lowers a verified ir::Graph onto the engine's execution layer.
//
// Node kinds map onto engine flowlet kinds (source->loader, map/sink->map,
// combine->partial reduce, reduce->reduce); edges copy their attributes
// into engine::EdgeOptions field for field; per-source InputSplits populate
// the JobInputs. Engine flowlet ids are assigned in IR node-id order and
// out-ports in IR out-edge order, so an unfused lowering reproduces exactly
// the graph (and the flowlet ids) the front-end would have hand-built.
#pragma once

#include <vector>

#include "engine/graph.h"
#include "engine/split.h"
#include "ir/ir.h"

namespace hamr::ir {

struct Lowered {
  engine::FlowletGraph graph;
  engine::JobInputs inputs;
  // IR NodeId -> engine FlowletId (identity today, but callers index through
  // it so the assignment scheme stays an implementation detail).
  std::vector<engine::FlowletId> flowlet_of;
};

// Verifies, then lowers. Throws std::invalid_argument on a malformed graph.
Lowered lower(const Graph& graph);

}  // namespace hamr::ir
