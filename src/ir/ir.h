// Typed flowlet-graph IR (DESIGN.md §16).
//
// Every front-end in the repo - the query planner, the hand-built apps, the
// sort driver - ultimately runs a DAG of engine flowlets. This IR is the
// shared layer between "what the job computes" and the engine graph that
// computes it: front-ends build an ir::Graph, a pass pipeline optimizes it
// (operator fusion, combiner placement, dead-flowlet elimination), and
// ir::lower() emits the engine::FlowletGraph + JobInputs the runtime executes.
//
// Five node kinds, mapping onto the engine's four flowlet kinds:
//
//   kSource  -> LoaderFlowlet         (carries its InputSplits)
//   kMap     -> MapFlowlet
//   kCombine -> PartialReduceFlowlet  (commutative+associative fold)
//   kReduce  -> ReduceFlowlet         (grouped, barriered)
//   kSink    -> MapFlowlet            (terminal side effects; effect=true)
//
// Nodes carry key/value *type tags* - free-form strings like ("word",
// "count") - checked across every edge by verify(); an empty component is a
// wildcard. Edges mirror engine::EdgeOptions (combine / local / partitioner /
// tap) so anything expressible against the raw graph API stays expressible
// here. The IR is an open struct on purpose: passes are plain functions that
// read one Graph and build another, and verify() re-establishes every
// invariant between passes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/flowlet.h"
#include "engine/split.h"

namespace hamr::ir {

using NodeId = uint32_t;
using EdgeId = uint32_t;

enum class NodeKind : uint8_t { kSource, kMap, kCombine, kReduce, kSink };

const char* node_kind_name(NodeKind kind);

// Key/value type tag pair. Components are free-form ("word", "f64-contrib",
// "row:<schema>"); an empty component matches anything, so generic operators
// (a pass-through sink, a byte-level tap) stay typeable.
struct TypeTag {
  std::string key;
  std::string value;
};

// True when the producer tag `out` can feed the consumer tag `in`.
bool tags_compatible(const TypeTag& out, const TypeTag& in);

// Edge attributes, mirroring engine::EdgeOptions field for field. `combine`
// is normally left false at construction and placed by the place_combiner
// pass; setting it by hand is allowed and verified the same way.
struct EdgeAttrs {
  bool combine = false;
  bool local = false;
  std::function<uint32_t(std::string_view, uint32_t)> partitioner;
  std::function<void(uint32_t dst_node, std::string_view key,
                     std::string_view value)>
      tap;
};

inline EdgeAttrs local_attrs() {
  EdgeAttrs attrs;
  attrs.local = true;
  return attrs;
}

struct Node {
  NodeId id = 0;
  NodeKind kind = NodeKind::kMap;
  std::string name;
  engine::FlowletFactory factory;
  TypeTag in;   // record type accepted (sources: ignored)
  TypeTag out;  // record type emitted on every out-port
  // Externally observable side effects (writes files, publishes datasets,
  // mutates the KV store). Effect nodes are the roots dead-flowlet
  // elimination keeps alive; kSink nodes are effectful by construction.
  bool effect = false;
  // May this node be fused into its upstream producer? Front-ends clear it
  // for flowlets whose identity matters (pinned flowlet ids, per-flowlet
  // event streams asserted by tests).
  bool fusible = true;
  // kCombine only: opt-in for sender-side combining (the place_combiner
  // pass). Off by default so apps keep the combiner as an explicit knob.
  bool combinable = false;
  std::vector<engine::InputSplit> splits;  // kSource only
  std::vector<EdgeId> out_edges;           // ordered by emit port
  std::vector<EdgeId> in_edges;
};

struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  EdgeAttrs attrs;
};

struct Graph {
  std::vector<Node> nodes;
  std::vector<Edge> edges;

  NodeId add_source(std::string name, engine::FlowletFactory factory,
                    TypeTag out = {});
  NodeId add_map(std::string name, engine::FlowletFactory factory,
                 TypeTag in = {}, TypeTag out = {});
  NodeId add_combine(std::string name, engine::FlowletFactory factory,
                     TypeTag in = {}, TypeTag out = {});
  NodeId add_reduce(std::string name, engine::FlowletFactory factory,
                    TypeTag in = {}, TypeTag out = {});
  // Sinks are maps with effect=true; `out` is typically unused (no out-edge).
  NodeId add_sink(std::string name, engine::FlowletFactory factory,
                  TypeTag in = {});

  // Connects src -> dst; the edge becomes src's next out-port (the fused /
  // lowered flowlet's emit(port, ...) indexes out-edges in connect order).
  EdgeId connect(NodeId src, NodeId dst, EdgeAttrs attrs = {});

  const Node& node(NodeId id) const { return nodes.at(id); }
  Node& node(NodeId id) { return nodes.at(id); }
  const Edge& edge(EdgeId id) const { return edges.at(id); }
  Edge& edge(EdgeId id) { return edges.at(id); }

  // Node ids in a topological order. Throws std::invalid_argument on a cycle.
  std::vector<NodeId> topo_order() const;

 private:
  NodeId add_node(NodeKind kind, std::string name,
                  engine::FlowletFactory factory, TypeTag in, TypeTag out);
};

// Structural + typing checks, run between every pass (DESIGN.md §16):
//   * node/edge ids are dense and cross-referenced consistently
//   * the graph is acyclic
//   * sources have no in-edges; every non-source node has at least one
//     (no dangling nodes); splits appear only on sources
//   * type tags match across every edge (empty component = wildcard)
//   * combine edges target kCombine nodes, and never carry a tap (combined
//     records fold before routing, so a tap would never see a per-record
//     destination)
// Throws std::invalid_argument with the offending node/edge named.
// `context` prefixes the message (e.g. "after pass fuse_maps").
void verify(const Graph& graph, const std::string& context = {});

// Deterministic textual form (--dump_ir, tests, golden files).
std::string dump(const Graph& graph);

}  // namespace hamr::ir
