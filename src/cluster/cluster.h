// The simulated cluster: N nodes, each with its own metrics, throttled disk,
// local file store, thread pool, and network endpoint, joined by an
// InProcTransport fabric.
//
// This substitutes for the paper's 16-node Xeon cluster (Table 1): the parts
// of that testbed that the evaluation actually exercises - per-node disks,
// per-node memory, a shared interconnect, task slots - are modeled
// explicitly; see DESIGN.md for the substitution rationale and calibration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "fault/fault.h"
#include "net/inproc_transport.h"
#include "net/router.h"
#include "net/rpc.h"
#include "storage/device.h"
#include "storage/file_store.h"

namespace hamr::cluster {

using NodeId = net::NodeId;

struct ClusterConfig {
  uint32_t num_nodes = 8;
  // Task slots per node (the paper's nodes ran 2x6-core Xeons; scaled down).
  uint32_t threads_per_node = 4;
  storage::DeviceConfig disk;
  net::NetConfig net;

  // Convenience: a cost-free cluster for correctness tests.
  static ClusterConfig fast(uint32_t nodes, uint32_t threads = 2) {
    ClusterConfig c;
    c.num_nodes = nodes;
    c.threads_per_node = threads;
    c.disk.enabled = false;
    c.net.enabled = false;
    return c;
  }
};

// Everything owned by one simulated machine.
class Node {
 public:
  Node(NodeId id, const ClusterConfig& config, net::Endpoint* endpoint);

  NodeId id() const { return id_; }
  Metrics& metrics() { return metrics_; }
  storage::ThrottledDevice& disk() { return disk_; }
  storage::FileStore& store() { return store_; }
  ThreadPool& pool() { return pool_; }
  net::Router& router() { return router_; }
  net::Rpc& rpc() { return rpc_; }

 private:
  NodeId id_;
  Metrics metrics_;
  storage::ThrottledDevice disk_;
  storage::FileStore store_;
  ThreadPool pool_;
  net::Router router_;
  net::Rpc rpc_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const ClusterConfig& config() const { return config_; }

  // Sums every per-node counter into `out` (Metrics itself is pinned in
  // place by its internal locks, so aggregation fills a caller-owned one).
  void aggregate_metrics(Metrics* out) const;

  // Convenience: cluster-wide value of a single counter.
  uint64_t total_counter(const std::string& name) const;

  // Wires a fault injector (not owned; null detaches) into the transport
  // fabric and every node's disk device. The engine additionally consumes
  // the injector's task-crash stream via EngineConfig::fault_injector.
  void set_fault_injector(fault::FaultInjector* injector);

  // Stops the fabric. Called automatically by the destructor; callers that
  // need deterministic teardown order can invoke it earlier.
  void shutdown();

 private:
  ClusterConfig config_;
  std::unique_ptr<net::InProcTransport> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool down_ = false;
};

}  // namespace hamr::cluster
