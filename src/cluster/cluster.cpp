#include "cluster/cluster.h"

namespace hamr::cluster {

Node::Node(NodeId id, const ClusterConfig& config, net::Endpoint* endpoint)
    : id_(id),
      disk_(config.disk, &metrics_),
      store_(&disk_),
      pool_(config.threads_per_node, "node" + std::to_string(id)),
      router_(endpoint),
      // RPC handlers run inline on the delivery thread: every registered
      // method (kv, dfs blocks, shuffle fetch) is local-only work, and inline
      // execution makes handler starvation/deadlock behind a saturated task
      // pool impossible.
      rpc_(&router_, nullptr) {}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  std::vector<Metrics*> metrics;
  nodes_.reserve(config_.num_nodes);
  // Two-phase bring-up: the fabric needs to exist before nodes can wire
  // routers onto endpoints, and metrics pointers need the nodes - so the
  // fabric is created without metrics sinks first, then nodes, then start.
  fabric_ = std::make_unique<net::InProcTransport>(config_.num_nodes, config_.net);
  for (uint32_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, config_, fabric_->endpoint(i)));
    metrics.push_back(&nodes_.back()->metrics());
  }
  fabric_->set_metrics(std::move(metrics));
  fabric_->start();
}

Cluster::~Cluster() { shutdown(); }

void Cluster::shutdown() {
  if (down_) return;
  down_ = true;
  // Order matters: stop accepting work on node pools before tearing down the
  // fabric so in-flight handlers can finish sends.
  for (auto& node : nodes_) node->pool().wait_idle();
  fabric_->stop();
  for (auto& node : nodes_) node->pool().shutdown();
}

void Cluster::aggregate_metrics(Metrics* out) const {
  for (const auto& node : nodes_) out->merge_from(node->metrics());
}

uint64_t Cluster::total_counter(const std::string& name) const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->metrics().value(name);
  return total;
}

void Cluster::set_fault_injector(fault::FaultInjector* injector) {
  fabric_->set_fault_injector(injector);
  for (auto& node : nodes_) {
    node->disk().set_fault_injector(injector, node->id());
  }
}

}  // namespace hamr::cluster
