// Demultiplexes an Endpoint's single message stream by message type.
//
// Each node wires exactly one Router onto its Endpoint; the engine runtime,
// the RPC layer, and anything else sharing the fabric register their message
// types here. Registration may happen after the transport has started (the
// engine attaches to an already-running cluster), so the table is guarded by
// a shared mutex - reads on the hot dispatch path take the shared side.
#pragma once

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <stdexcept>

#include "common/logging.h"
#include "net/message.h"

namespace hamr::net {

class Router {
 public:
  explicit Router(Endpoint* ep) : ep_(ep) {
    ep_->set_handler([this](Message&& msg) { dispatch(std::move(msg)); });
  }

  // Registers `handler` for messages of `type`. Throws on collision.
  void register_type(uint32_t type, MessageHandler handler) {
    std::unique_lock lock(mu_);
    if (!handlers_.emplace(type, std::move(handler)).second) {
      throw std::logic_error("duplicate message type registration");
    }
  }

  // Removes the handler for `type`. Blocks until no dispatch is invoking any
  // handler, so after this returns the handler's captures may be destroyed.
  // A handler whose teardown path calls this must first unblock itself (see
  // NodeRuntime::~NodeRuntime), or the two will deadlock.
  void unregister_type(uint32_t type) {
    std::unique_lock lock(mu_);
    handlers_.erase(type);
  }

  Endpoint* endpoint() { return ep_; }

 private:
  void dispatch(Message&& msg) {
    // The shared lock is held across the handler call so unregister_type can
    // act as a barrier against in-flight dispatches. Handlers must not
    // (un)register types on their own router; sends from inside a handler are
    // fine (delivery happens on the destination's delivery thread).
    std::shared_lock lock(mu_);
    auto it = handlers_.find(msg.type);
    if (it == handlers_.end()) {
      HLOG_WARN << "node " << ep_->node_id() << " dropped unroutable message type "
                << msg.type;
      return;
    }
    (it->second)(std::move(msg));
  }

  Endpoint* ep_;
  std::shared_mutex mu_;
  std::map<uint32_t, MessageHandler> handlers_;
};

}  // namespace hamr::net
