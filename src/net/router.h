// Demultiplexes an Endpoint's single message stream by message type.
//
// Each node wires exactly one Router onto its Endpoint; the engine runtime,
// the RPC layer, and anything else sharing the fabric register their message
// types here. Registration may happen after the transport has started (the
// engine attaches to an already-running cluster), so the table is guarded by
// a shared mutex - reads on the hot dispatch path take the shared side.
#pragma once

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <stdexcept>

#include "common/logging.h"
#include "net/message.h"

namespace hamr::net {

class Router {
 public:
  explicit Router(Endpoint* ep) : ep_(ep) {
    ep_->set_handler([this](Message&& msg) { dispatch(std::move(msg)); });
  }

  // Registers `handler` for messages of `type`. Throws on collision.
  void register_type(uint32_t type, MessageHandler handler) {
    std::unique_lock lock(mu_);
    if (!handlers_.emplace(type, std::move(handler)).second) {
      throw std::logic_error("duplicate message type registration");
    }
  }

  Endpoint* endpoint() { return ep_; }

 private:
  void dispatch(Message&& msg) {
    const MessageHandler* handler = nullptr;
    {
      std::shared_lock lock(mu_);
      auto it = handlers_.find(msg.type);
      if (it != handlers_.end()) handler = &it->second;
    }
    if (handler == nullptr) {
      HLOG_WARN << "node " << ep_->node_id() << " dropped unroutable message type "
                << msg.type;
      return;
    }
    // Invoked outside the lock; handlers are never unregistered, so the
    // pointer stays valid (map nodes are stable).
    (*handler)(std::move(msg));
  }

  Endpoint* ep_;
  std::shared_mutex mu_;
  std::map<uint32_t, MessageHandler> handlers_;
};

}  // namespace hamr::net
