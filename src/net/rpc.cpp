#include "net/rpc.h"

#include "common/bytes.h"
#include "serde/serde.h"

namespace hamr::net {

Rpc::Rpc(Router* router, ThreadPool* pool) : router_(router), pool_(pool) {
  router_->register_type(msg_type::kRpcRequest,
                         [this](Message&& m) { on_request(std::move(m)); });
  router_->register_type(msg_type::kRpcResponse,
                         [this](Message&& m) { on_response(std::move(m)); });
}

void Rpc::register_method(uint32_t method_id, RpcMethod method) {
  if (!methods_.emplace(method_id, std::move(method)).second) {
    throw std::logic_error("duplicate rpc method registration");
  }
}

std::future<Result<std::string>> Rpc::call(NodeId dst, uint32_t method_id,
                                           std::string argument) {
  const uint64_t request_id = next_request_id_.fetch_add(1);
  auto promise = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> future = promise->get_future();
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(request_id, promise);
  }

  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(request_id);
  w.put_varint(method_id);
  w.put_bytes(argument);
  router_->endpoint()->send(dst, msg_type::kRpcRequest, std::string(buf.view()));
  return future;
}

Result<std::string> Rpc::call_sync(NodeId dst, uint32_t method_id,
                                   std::string argument, Duration timeout) {
  auto future = call(dst, method_id, std::move(argument));
  if (future.wait_for(timeout) != std::future_status::ready) {
    return Status::DeadlineExceeded("rpc to node " + std::to_string(dst) +
                                    " method " + std::to_string(method_id));
  }
  return future.get();
}

void Rpc::on_request(Message&& msg) {
  serde::Reader r(msg.payload);
  const uint64_t request_id = r.get_varint();
  const uint32_t method_id = static_cast<uint32_t>(r.get_varint());
  std::string argument(r.get_bytes());
  const NodeId caller = msg.src;

  if (pool_ != nullptr) {
    pool_->submit([this, caller, request_id, method_id,
                   argument = std::move(argument)]() mutable {
      serve(caller, request_id, method_id, std::move(argument));
    });
  } else {
    serve(caller, request_id, method_id, std::move(argument));
  }
}

void Rpc::serve(NodeId caller, uint64_t request_id, uint32_t method_id,
                std::string argument) {
  bool ok = true;
  std::string result;
  auto it = methods_.find(method_id);
  if (it == methods_.end()) {
    ok = false;
    result = "unknown method " + std::to_string(method_id);
  } else {
    try {
      result = it->second(caller, argument);
    } catch (const std::exception& e) {
      ok = false;
      result = e.what();
    }
  }

  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(request_id);
  w.put_bool(ok);
  w.put_bytes(result);
  router_->endpoint()->send(caller, msg_type::kRpcResponse, std::string(buf.view()));
}

void Rpc::on_response(Message&& msg) {
  serde::Reader r(msg.payload);
  const uint64_t request_id = r.get_varint();
  const bool ok = r.get_bool();
  std::string body(r.get_bytes());

  std::shared_ptr<std::promise<Result<std::string>>> promise;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // late response after timeout; drop
    promise = it->second;
    pending_.erase(it);
  }
  if (ok) {
    promise->set_value(std::move(body));
  } else {
    promise->set_value(Status::Internal("remote error: " + body));
  }
}

}  // namespace hamr::net
