// Wire-level message and the transport abstraction.
//
// All inter-node communication in the system - shuffle bins, completion
// control messages, RPC envelopes, DFS block transfers - travels as Messages
// through a Transport. Two implementations exist:
//   * InProcTransport - in-process fabric with a calibrated latency/bandwidth
//     cost model (the default for the simulated cluster), and
//   * TcpTransport    - real loopback TCP sockets with length-prefixed
//     framing (proves the stack end-to-end; used by tests).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/payload.h"

namespace hamr::net {

using NodeId = uint32_t;

struct Message {
  uint32_t type = 0;  // application-defined discriminator
  NodeId src = 0;
  std::string payload;
};

// Delivery callback. Invoked on a transport-owned delivery thread, one
// message at a time per destination node (per-destination serial order, and
// FIFO per (src,dst) channel - the engine's completion protocol relies on
// this, and so does event-time streaming: watermark punctuation rides the
// engine bin channel behind the events it covers, and the reliable shuffle
// restores this FIFO under drops/reorder, so punctuation arrival proves the
// covered data arrived). The handler may block; blocking applies
// backpressure to senders.
using MessageHandler = std::function<void(Message&&)>;

// One node's port into a transport fabric.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  // Sends to `dst`. May block when the destination's ingress buffer is full
  // (backpressure). Sending to self is allowed and free of network cost.
  // The payload may carry a shared body segment (see payload.h); transports
  // forward the view without copying the body bytes.
  virtual void send(NodeId dst, uint32_t type, Payload payload) = 0;

  // Must be called before the fabric starts delivering.
  virtual void set_handler(MessageHandler handler) = 0;

  virtual NodeId node_id() const = 0;
  virtual uint32_t cluster_size() const = 0;
};

// Message-type registry: every subsystem claims a distinct id so a single
// fabric can carry them all (collisions are caught by the Router).
//
// Engine executor lanes: the job service multiplexes several engine
// instances ("lanes") over one fabric by giving lane L the four consecutive
// type ids starting at kEngineLaneBase + kEngineLaneStride * L. Lane 0 is
// the classic single-engine layout (kEngineBin..kEngineAck); the reserved
// range is [16, 16 + 4 * kMaxEngineLanes) = [16, 80).
namespace msg_type {
inline constexpr uint32_t kRpcRequest = 1;
inline constexpr uint32_t kRpcResponse = 2;
inline constexpr uint32_t kEngineLaneBase = 16;
inline constexpr uint32_t kEngineLaneStride = 4;
inline constexpr uint32_t kMaxEngineLanes = 16;
inline constexpr uint32_t engine_bin(uint32_t lane) {
  return kEngineLaneBase + kEngineLaneStride * lane + 0;
}
inline constexpr uint32_t engine_control(uint32_t lane) {
  return kEngineLaneBase + kEngineLaneStride * lane + 1;
}
// Reliable engine channel (fault-tolerant shuffle): a frame wraps a bin or
// control payload with a per-(src,dst) sequence number; acks are cumulative.
inline constexpr uint32_t engine_frame(uint32_t lane) {
  return kEngineLaneBase + kEngineLaneStride * lane + 2;
}
inline constexpr uint32_t engine_ack(uint32_t lane) {
  return kEngineLaneBase + kEngineLaneStride * lane + 3;
}
inline constexpr uint32_t kEngineBin = engine_bin(0);
inline constexpr uint32_t kEngineControl = engine_control(0);
inline constexpr uint32_t kEngineFrame = engine_frame(0);
inline constexpr uint32_t kEngineAck = engine_ack(0);
}  // namespace msg_type

// RPC responses ride a priority lane: they are the back-edges that unblock
// waiting callers, so they must never block behind a full ingress buffer -
// otherwise inline handlers on two nodes can deadlock in a send cycle. Their
// volume is naturally bounded by the number of outstanding requests.
inline bool is_priority_type(uint32_t type) {
  return type == msg_type::kRpcResponse;
}

}  // namespace hamr::net
