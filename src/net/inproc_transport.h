// In-process transport fabric with a network cost model.
//
// Models, per message: per-link propagation latency, sender-NIC and
// receiver-NIC serialization at the configured bandwidth, and a bounded
// receiver ingress buffer. The delivery thread for a node waits until each
// message's modeled arrival time before invoking the handler, so modeled
// network time overlaps with real compute time across nodes just as it would
// on a physical cluster. FIFO order per (src,dst) channel is guaranteed for
// messages sent from a single thread (the engine sends through one sender
// thread per node, which is what the completion protocol relies on).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "net/message.h"

namespace hamr::fault {
class FaultInjector;
}  // namespace hamr::fault

namespace hamr::net {

struct NetConfig {
  // Per-NIC bandwidth, bytes/second. Default approximates a scaled-down
  // cluster interconnect (the paper used FDR InfiniBand; we scale everything
  // down together, see DESIGN.md).
  double bandwidth_bytes_per_sec = 256.0 * 1024 * 1024;
  Duration latency = micros(100);
  // Ingress buffer per node, in bytes. Senders block beyond this.
  uint64_t ingress_capacity_bytes = 8ull * 1024 * 1024;
  // Bytes below which a message is billed as this size (framing floor).
  uint64_t min_message_bytes = 256;
  bool enabled = true;  // when false: zero latency/bandwidth cost
};

class InProcTransport {
 public:
  InProcTransport(uint32_t num_nodes, NetConfig config,
                  std::vector<Metrics*> node_metrics = {});
  ~InProcTransport();

  InProcTransport(const InProcTransport&) = delete;
  InProcTransport& operator=(const InProcTransport&) = delete;

  Endpoint* endpoint(NodeId node);

  // Optional per-node metrics sinks for net.tx/rx counters. Must be called
  // before start() (two-phase bring-up: nodes are built after the fabric).
  void set_metrics(std::vector<Metrics*> node_metrics);

  // Attaches a fault injector (not owned; may be null to detach). Every
  // subsequent send of a faultable message type consults it for
  // drop/duplicate/delay. Safe to call while the fabric is running.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  // Begins delivery. Handlers for every endpoint must already be set.
  void start();

  // Stops delivery threads. Pending undelivered messages are dropped; call
  // only after the layers above have quiesced. Idempotent.
  void stop();

 private:
  // Queued messages keep the segmented Payload (shared bin bodies stay
  // shared while waiting in the ingress queue); contiguous bytes are
  // materialized only when the handler runs.
  struct Pending {
    TimePoint deliver_at;
    uint64_t seq;
    uint32_t type;
    NodeId src;
    Payload payload;
    uint64_t billed_bytes;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  struct NodeState {
    // Ingress side (receiver NIC + buffer).
    std::mutex mu;
    std::condition_variable ingress_ready;   // delivery thread waits
    std::condition_variable ingress_space;   // senders wait
    std::priority_queue<Pending, std::vector<Pending>, PendingLater> queue;
    uint64_t queued_bytes = 0;
    TimePoint rx_busy_until{};
    MessageHandler handler;
    std::thread delivery_thread;
    // Egress side (sender NIC), separate lock to avoid lock coupling.
    std::mutex tx_mu;
    TimePoint tx_busy_until{};
  };

  class EndpointImpl : public Endpoint {
   public:
    EndpointImpl(InProcTransport* fabric, NodeId id) : fabric_(fabric), id_(id) {}
    void send(NodeId dst, uint32_t type, Payload payload) override {
      fabric_->do_send(id_, dst, type, std::move(payload));
    }
    void set_handler(MessageHandler handler) override {
      fabric_->nodes_[id_]->handler = std::move(handler);
    }
    NodeId node_id() const override { return id_; }
    uint32_t cluster_size() const override {
      return static_cast<uint32_t>(fabric_->nodes_.size());
    }

   private:
    InProcTransport* fabric_;
    NodeId id_;
  };

  void do_send(NodeId src, NodeId dst, uint32_t type, Payload payload);
  void delivery_loop(NodeId node);

  NetConfig config_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<EndpointImpl>> endpoints_;
  std::vector<Metrics*> metrics_;
  std::atomic<fault::FaultInjector*> fault_injector_{nullptr};
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace hamr::net
