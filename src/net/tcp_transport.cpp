#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>

#include "common/logging.h"

namespace hamr::net {

namespace {

// Multi-MB service frames (job submissions, result payloads) routinely make
// send()/recv() return short on loopback, and either call can land EINTR;
// both loops below therefore retry until exactly `len` bytes moved and treat
// only real errors / EOF as fatal.

// Writes exactly `len` bytes; returns false on error/EOF.
bool write_all(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `len` bytes; returns false on error/EOF.
bool read_all(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

// Sanity cap on a frame's declared payload size: a corrupted or misframed
// header must not translate into a multi-GB allocation on the receiver.
constexpr uint32_t kMaxFramePayload = 256u * 1024 * 1024;

}  // namespace

struct TcpTransport::NodeState {
  // Atomic because stop() retires the fd concurrently with accept_loop
  // reading it; stop() claims ownership of the close via exchange(-1).
  std::atomic<int> listen_fd{-1};
  uint16_t port = 0;
  MessageHandler handler;
  std::thread accept_thread;
  std::vector<std::thread> reader_threads;
  std::mutex readers_mu;
  // Outgoing connections, keyed by destination; one connection per pair
  // direction, writes serialized by conn_mu.
  std::mutex conn_mu;
  std::map<NodeId, int> conns;
};

TcpTransport::TcpTransport(uint32_t num_nodes) {
  nodes_.reserve(num_nodes);
  endpoints_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    auto state = std::make_unique<NodeState>();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    int opt = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &opt, sizeof(opt));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // OS-assigned
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("bind() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    state->port = ntohs(addr.sin_port);
    if (::listen(fd, 64) != 0) throw std::runtime_error("listen() failed");
    state->listen_fd.store(fd);
    nodes_.push_back(std::move(state));
    endpoints_.push_back(std::make_unique<EndpointImpl>(this, i));
  }
}

TcpTransport::~TcpTransport() { stop(); }

Endpoint* TcpTransport::endpoint(NodeId node) { return endpoints_.at(node).get(); }

uint16_t TcpTransport::port_of(NodeId node) const { return nodes_.at(node)->port; }

void TcpTransport::start() {
  if (started_) return;
  started_ = true;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->accept_thread = std::thread([this, i] { accept_loop(i); });
  }
}

void TcpTransport::stop() {
  if (!started_) return;
  if (stopping_.exchange(true)) return;
  for (auto& node : nodes_) {
    // Closing the listen fd unblocks accept(); closing connections unblocks
    // the reader threads.
    const int listen_fd = node->listen_fd.exchange(-1);
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);
      ::close(listen_fd);
    }
    {
      std::lock_guard<std::mutex> lock(node->conn_mu);
      for (auto& [dst, fd] : node->conns) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
      }
      node->conns.clear();
    }
  }
  for (auto& node : nodes_) {
    if (node->accept_thread.joinable()) node->accept_thread.join();
    std::lock_guard<std::mutex> lock(node->readers_mu);
    for (auto& t : node->reader_threads) {
      if (t.joinable()) t.join();
    }
    node->reader_threads.clear();
  }
}

void TcpTransport::accept_loop(NodeId node) {
  NodeState& s = *nodes_[node];
  const int listen_fd = s.listen_fd.load();
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: shutting down
    int opt = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
    std::lock_guard<std::mutex> lock(s.readers_mu);
    s.reader_threads.emplace_back([this, node, fd] { reader_loop(node, fd); });
  }
}

void TcpTransport::reader_loop(NodeId node, int fd) {
  NodeState& s = *nodes_[node];
  for (;;) {
    uint32_t header[3];  // payload_len, type, src
    if (!read_all(fd, header, sizeof(header))) break;
    if (header[0] > kMaxFramePayload) {
      // Desynchronized or corrupt stream: drop the connection (the peer
      // reconnects) rather than trust the length.
      HLOG_ERROR << "tcp node " << node << " dropping connection: frame of "
                 << header[0] << " bytes exceeds cap " << kMaxFramePayload;
      break;
    }
    Message msg;
    msg.type = header[1];
    msg.src = header[2];
    msg.payload.resize(header[0]);
    if (header[0] > 0 && !read_all(fd, msg.payload.data(), header[0])) break;
    if (s.handler) s.handler(std::move(msg));
  }
  ::close(fd);
}

int TcpTransport::connect_to(NodeId dst) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int opt = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &opt, sizeof(opt));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(nodes_[dst]->port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

Status TcpTransport::send_frame(int fd, uint32_t type, NodeId src,
                                const Payload& payload) {
  // The payload's segments (head, shared body view) go to the socket in
  // sequence - no contiguous copy is ever materialized on the send side.
  uint32_t header[3] = {static_cast<uint32_t>(payload.size()), type, src};
  if (!write_all(fd, header, sizeof(header))) return Status::Unavailable("write header");
  const std::string& head = payload.head();
  if (!head.empty() && !write_all(fd, head.data(), head.size())) {
    return Status::Unavailable("write payload");
  }
  const std::string_view body = payload.body_view();
  if (!body.empty() && !write_all(fd, body.data(), body.size())) {
    return Status::Unavailable("write payload");
  }
  return Status::Ok();
}

void TcpTransport::EndpointImpl::send(NodeId dst, uint32_t type, Payload payload) {
  if (fabric_->stopping_.load()) return;
  NodeState& s = *fabric_->nodes_[id_];
  std::lock_guard<std::mutex> lock(s.conn_mu);
  auto it = s.conns.find(dst);
  if (it == s.conns.end()) {
    const int fd = fabric_->connect_to(dst);
    if (fd < 0) {
      HLOG_WARN << "tcp connect " << id_ << "->" << dst << " failed";
      return;
    }
    it = s.conns.emplace(dst, fd).first;
  }
  const Status status = fabric_->send_frame(it->second, type, id_, payload);
  if (!status.ok()) {
    ::close(it->second);
    s.conns.erase(it);
    HLOG_WARN << "tcp send " << id_ << "->" << dst << ": " << status.ToString();
  }
}

void TcpTransport::EndpointImpl::set_handler(MessageHandler handler) {
  fabric_->nodes_[id_]->handler = std::move(handler);
}

uint32_t TcpTransport::EndpointImpl::cluster_size() const {
  return static_cast<uint32_t>(fabric_->nodes_.size());
}

}  // namespace hamr::net
