// Request/response RPC over any Endpoint (in-proc or TCP), from scratch.
//
// Wire format (inside Message payloads):
//   request  := varint request_id | varint method_id | bytes argument
//   response := varint request_id | bool ok          | bytes result_or_error
//
// Server handlers run synchronously on the caller node's delivery thread by
// default, or on a ThreadPool when one is supplied (required when a handler
// may block, e.g. on the throttled disk). A handler must never itself issue
// a blocking RPC back to its caller's delivery thread - standard
// don't-call-unknown-code-holding-the-channel rule (CP.22 analog).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "net/router.h"

namespace hamr::net {

// Synchronous server-side method: argument bytes in, result bytes out.
// Throwing reports an error string to the caller.
using RpcMethod = std::function<std::string(NodeId caller, std::string_view arg)>;

class Rpc {
 public:
  // `pool` (optional, not owned) offloads server-side handler execution.
  explicit Rpc(Router* router, ThreadPool* pool = nullptr);

  // Registers a method id (>= 1). Must happen before the fabric starts.
  void register_method(uint32_t method_id, RpcMethod method);

  // Fire-and-collect asynchronous call.
  std::future<Result<std::string>> call(NodeId dst, uint32_t method_id,
                                        std::string argument);

  // Convenience blocking call with timeout.
  Result<std::string> call_sync(NodeId dst, uint32_t method_id,
                                std::string argument,
                                Duration timeout = std::chrono::seconds(30));

  NodeId node_id() const { return router_->endpoint()->node_id(); }

 private:
  void on_request(Message&& msg);
  void on_response(Message&& msg);
  void serve(NodeId caller, uint64_t request_id, uint32_t method_id,
             std::string argument);

  Router* router_;
  ThreadPool* pool_;
  std::map<uint32_t, RpcMethod> methods_;
  std::atomic<uint64_t> next_request_id_{1};
  std::mutex pending_mu_;
  std::map<uint64_t, std::shared_ptr<std::promise<Result<std::string>>>> pending_;
};

}  // namespace hamr::net
