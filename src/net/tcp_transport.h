// Real TCP loopback transport.
//
// Implements the same Endpoint interface as InProcTransport over actual
// sockets with length-prefixed framing:
//
//   frame := u32 payload_len | u32 type | u32 src | payload bytes
//
// (all little-endian). Connections between node pairs are established lazily
// and kept open; each accepted connection gets a reader thread that decodes
// frames and invokes the endpoint handler. This transport exists to prove the
// serialization/RPC stack against a real kernel socket path; the simulated
// cluster uses InProcTransport for its calibrated cost model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/message.h"

namespace hamr::net {

class TcpTransport {
 public:
  // Creates `num_nodes` endpoints listening on consecutive OS-assigned ports
  // on 127.0.0.1.
  explicit TcpTransport(uint32_t num_nodes);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Endpoint* endpoint(NodeId node);

  // Starts accept/reader threads. Handlers must be set first.
  void start();
  void stop();

  uint16_t port_of(NodeId node) const;

 private:
  struct NodeState;

  class EndpointImpl : public Endpoint {
   public:
    EndpointImpl(TcpTransport* fabric, NodeId id) : fabric_(fabric), id_(id) {}
    void send(NodeId dst, uint32_t type, Payload payload) override;
    void set_handler(MessageHandler handler) override;
    NodeId node_id() const override { return id_; }
    uint32_t cluster_size() const override;

   private:
    TcpTransport* fabric_;
    NodeId id_;
  };

  void accept_loop(NodeId node);
  void reader_loop(NodeId node, int fd);
  int connect_to(NodeId dst);
  Status send_frame(int fd, uint32_t type, NodeId src, const Payload& payload);

  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<EndpointImpl>> endpoints_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace hamr::net
