// Segmented message payload with shared ownership: the zero-copy currency of
// the transport layer.
//
// A Payload is a small owned `head` (frame/sequence headers, built per send)
// plus an optional shared `body` (the bulk bytes - a shuffle bin built once
// in a pooled buffer) addressed by offset/length view. Senders that need the
// same bulk bytes in several places (outbox, retransmission queue, several
// broadcast destinations) copy the Payload, which copies the tiny head and
// bumps the body refcount - the body bytes themselves are written exactly
// once and never duplicated on the send path.
//
// A plain std::string converts implicitly (head-only payload), so callers
// without a shared body (RPC envelopes, acks, tests) are unaffected.
//
// Ownership rule: whoever holds a Payload keeps the body alive. Bodies
// acquired from a BufferPool return to it automatically when the last
// holder drops (see pool.h to_shared()), wherever in the stack that happens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hamr::net {

class Payload {
 public:
  Payload() = default;
  // Implicit: a head-only payload owning its bytes.
  Payload(std::string bytes) : head_(std::move(bytes)) {}  // NOLINT
  Payload(std::string_view bytes) : head_(bytes) {}        // NOLINT
  Payload(const char* bytes) : head_(bytes) {}             // NOLINT

  // head + shared body[offset, offset+length). The body segment follows the
  // head on the wire.
  static Payload with_body(std::string head, std::shared_ptr<std::string> body,
                           size_t offset, size_t length) {
    Payload p;
    p.head_ = std::move(head);
    p.body_ = std::move(body);
    p.body_off_ = offset;
    p.body_len_ = length;
    return p;
  }
  static Payload with_body(std::string head, std::shared_ptr<std::string> body) {
    const size_t n = body ? body->size() : 0;
    return with_body(std::move(head), std::move(body), 0, n);
  }

  size_t size() const { return head_.size() + body_len_; }
  bool empty() const { return size() == 0; }
  bool has_body() const { return body_ != nullptr; }

  const std::string& head() const { return head_; }
  std::string_view body_view() const {
    return body_ ? std::string_view(*body_).substr(body_off_, body_len_)
                 : std::string_view();
  }
  const std::shared_ptr<std::string>& body() const { return body_; }
  size_t body_offset() const { return body_off_; }
  size_t body_length() const { return body_len_; }

  void append_to(std::string* out) const {
    out->append(head_);
    out->append(body_view());
  }

  // Materializes contiguous bytes (receiver side / delivery). This is the
  // one copy a shared body ever pays, and it is on the receive path, never
  // on serialize/enqueue/resend. A sole-owner move fast path
  // (use_count() == 1) is deliberately NOT taken: the relaxed count load
  // does not synchronize with another holder's release-decrement, so
  // "observed 1" gives no happens-before with that holder's last read of
  // the bytes - a broadcast body delivered by two transport threads would
  // race (caught by TSan on the sort suite).
  std::string into_string() && {
    if (!body_) return std::move(head_);
    std::string out;
    out.reserve(size());
    append_to(&out);
    return out;
  }

 private:
  std::string head_;
  std::shared_ptr<std::string> body_;
  size_t body_off_ = 0;
  size_t body_len_ = 0;
};

}  // namespace hamr::net
