#include "net/inproc_transport.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault.h"
#include "obs/trace.h"

namespace hamr::net {

InProcTransport::InProcTransport(uint32_t num_nodes, NetConfig config,
                                 std::vector<Metrics*> node_metrics)
    : config_(config), metrics_(std::move(node_metrics)) {
  nodes_.reserve(num_nodes);
  endpoints_.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeState>());
    endpoints_.push_back(std::make_unique<EndpointImpl>(this, i));
  }
  if (metrics_.empty()) metrics_.assign(num_nodes, nullptr);
}

InProcTransport::~InProcTransport() { stop(); }

Endpoint* InProcTransport::endpoint(NodeId node) { return endpoints_.at(node).get(); }

void InProcTransport::set_metrics(std::vector<Metrics*> node_metrics) {
  if (node_metrics.size() == nodes_.size()) metrics_ = std::move(node_metrics);
}

void InProcTransport::start() {
  if (started_) return;
  started_ = true;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->delivery_thread = std::thread([this, i] { delivery_loop(i); });
  }
}

void InProcTransport::stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Either never started or another stop() already ran; still join below
    // from the first caller only (threads reset once).
  }
  stopping_.store(true);
  for (auto& node : nodes_) {
    {
      std::lock_guard<std::mutex> lock(node->mu);
      node->ingress_ready.notify_all();
      node->ingress_space.notify_all();
    }
    if (node->delivery_thread.joinable()) node->delivery_thread.join();
  }
}

void InProcTransport::do_send(NodeId src, NodeId dst, uint32_t type,
                              Payload payload) {
  const uint64_t size = payload.size();
  const bool local = src == dst;

  // Fault injection (chaos testing): the injector may drop the message on
  // the modeled wire, deliver it twice, or add in-network delay. Local
  // traffic never crosses the fabric and is never faulted.
  uint32_t copies = 1;
  Duration fault_delay = Duration::zero();
  if (fault::FaultInjector* fi = fault_injector_.load(std::memory_order_acquire);
      fi != nullptr && !local) {
    const fault::MessageFaultResult f = fi->on_message(src, dst, type);
    switch (f.action) {
      case fault::MessageFault::kDrop:
        if (Metrics* m = metrics_[src]; m != nullptr) {
          m->counter("net.fault_dropped")->inc();
        }
        obs::trace().record_instant("net.fault_drop", "net", src, -1,
                                    static_cast<int64_t>(type));
        return;
      case fault::MessageFault::kDuplicate:
        copies = 2;
        break;
      case fault::MessageFault::kDelay:
        fault_delay = f.delay;
        break;
      case fault::MessageFault::kNone:
        break;
    }
  }

  const bool model = config_.enabled && !local;
  const uint64_t billed = std::max<uint64_t>(size, config_.min_message_bytes);
  const Duration wire_time =
      model ? from_seconds(static_cast<double>(billed) / config_.bandwidth_bytes_per_sec)
            : Duration::zero();

  TimePoint tx_end = now();
  if (model) {
    NodeState& s = *nodes_[src];
    std::lock_guard<std::mutex> lock(s.tx_mu);
    const TimePoint tx_start = std::max(now(), s.tx_busy_until);
    tx_end = tx_start + wire_time;
    s.tx_busy_until = tx_end;
  }

  NodeState& d = *nodes_[dst];
  for (uint32_t copy = 0; copy < copies; ++copy) {
    // A duplicate copies the tiny head and bumps the shared-body refcount;
    // the body bytes are not re-copied.
    Payload enqueue_payload =
        copy + 1 < copies ? payload : std::move(payload);
    const TimePoint wait_t0 = now();
    std::unique_lock<std::mutex> lock(d.mu);
    // Local sends and priority (RPC-response) traffic bypass the ingress
    // bound; see is_priority_type() for the deadlock-freedom argument.
    d.ingress_space.wait(lock, [&] {
      return stopping_.load() || local || is_priority_type(type) ||
             d.queued_bytes + size <= config_.ingress_capacity_bytes ||
             d.queue.empty();  // never refuse when empty (oversized message)
    });
    if (stopping_.load()) return;
    // Sender-side stall on the receiver's bounded ingress: the far end of the
    // engine's backpressure chain, surfaced per sending node.
    const Duration ingress_wait = now() - wait_t0;
    if (!local && ingress_wait >= micros(100)) {
      if (Metrics* m = metrics_[src]; m != nullptr) {
        m->counter("net.ingress_wait_ns")
            ->add(static_cast<uint64_t>(ingress_wait.count()));
        m->histogram("net.ingress_wait_us")
            ->observe(static_cast<uint64_t>(ingress_wait.count() / 1000));
      }
    }

    TimePoint deliver_at;
    if (model) {
      const TimePoint arrival = tx_end + config_.latency;
      const TimePoint rx_start = std::max(arrival, d.rx_busy_until);
      deliver_at = rx_start + wire_time;
      d.rx_busy_until = deliver_at;
      deliver_at += fault_delay;  // in-network delay: holds rx slot time only
    } else {
      deliver_at = now() + fault_delay;
    }
    d.queue.push(Pending{deliver_at, seq_.fetch_add(1), type, src,
                         std::move(enqueue_payload), billed});
    d.queued_bytes += size;
    if (Metrics* m = metrics_[dst]; m != nullptr) {
      m->gauge("net.ingress_queued_bytes")
          ->set(static_cast<int64_t>(d.queued_bytes));
    }
    d.ingress_ready.notify_one();
  }

  if (Metrics* m = metrics_[src]; m != nullptr && !local) {
    m->counter("net.tx_bytes")->add(size);
    m->counter("net.tx_msgs")->inc();
  }
  if (Metrics* m = metrics_[dst]; m != nullptr && !local) {
    m->counter("net.rx_bytes")->add(size * copies);
    m->counter("net.rx_msgs")->add(copies);
  }
}

void InProcTransport::delivery_loop(NodeId node) {
  NodeState& s = *nodes_[node];
  for (;;) {
    Pending item;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.ingress_ready.wait(lock, [&] { return stopping_.load() || !s.queue.empty(); });
      if (stopping_.load()) return;
      const TimePoint at = s.queue.top().deliver_at;
      if (at > now()) {
        // Wait until the modeled arrival time, shutdown, or the arrival of a
        // message due earlier (possible when fault injection delays some
        // messages: deliver_at is no longer monotone per queue pop).
        s.ingress_ready.wait_until(lock, at, [&] {
          return stopping_.load() ||
                 (!s.queue.empty() && s.queue.top().deliver_at < at);
        });
        if (stopping_.load()) return;
        if (s.queue.empty()) continue;
        if (s.queue.top().deliver_at > now()) continue;  // spurious wake; re-wait
      }
      // const_cast: priority_queue exposes only const top(); the element is
      // removed immediately after the move so the heap order is unaffected.
      item = std::move(const_cast<Pending&>(s.queue.top()));
      s.queue.pop();
      s.queued_bytes -= item.payload.size();
      if (Metrics* m = metrics_[node]; m != nullptr) {
        m->gauge("net.ingress_queued_bytes")
            ->set(static_cast<int64_t>(s.queued_bytes));
      }
      s.ingress_space.notify_all();
    }
    if (s.handler) {
      obs::TraceSpan span("net.rx", "net", node, -1,
                          static_cast<int64_t>(item.type));
      // The one materialization a shared body pays: contiguous bytes for the
      // handler. Sole-owner payloads move instead of copying.
      Message msg{item.type, item.src, std::move(item.payload).into_string()};
      s.handler(std::move(msg));
    } else {
      HLOG_WARN << "node " << node << " dropped message type " << item.type
                << " (no handler)";
    }
  }
}

}  // namespace hamr::net
