// Fault injection: a seeded, deterministic fault source for chaos testing.
//
// A FaultPlan declares, per (src, dst) node pair, the probabilities of a
// message being dropped, duplicated, or delayed in flight; a disk-write
// error rate; and task-crash behavior (a probabilistic rate plus explicit
// crash points by (node, flowlet)). A FaultInjector evaluates the plan with
// counter-indexed hashing: the decision for the Nth event of a given stream
// (e.g. the Nth message on link 2->5) is a pure function of (plan, seed, N),
// so the same plan + seed always yields the same injected-fault sequence for
// each stream regardless of thread interleaving across streams.
//
// Injection hooks live in three layers (each takes an optional injector):
//   * net/InProcTransport::do_send   - message drop / duplicate / delay
//   * storage/ThrottledDevice        - fallible charge_write for spill paths
//   * engine/NodeRuntime             - task-crash points at task start
//
// The recovery side (seq/ack resend, duplicate suppression, task and spill
// retry with bounded exponential backoff) lives in the engine runtime; see
// DESIGN.md "Fault model & recovery".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace hamr::fault {

// Per-link message fault probabilities. Probabilities are evaluated per
// message, mutually exclusively (a message suffers at most one fault), so
// drop + duplicate + delay must be <= 1.
struct LinkFaults {
  double drop = 0;
  double duplicate = 0;
  double delay = 0;
  Duration delay_by = millis(5);

  bool any() const { return drop > 0 || duplicate > 0 || delay > 0; }
};

// Deterministic crash point: the first `times` task executions of `flowlet`
// on `node` crash at task start (before any side effects).
struct CrashPoint {
  uint32_t node = 0;
  uint32_t flowlet = 0;
  uint32_t times = 1;
};

struct FaultPlan {
  uint64_t seed = 1;

  // Message faults: default applied to every src != dst pair, overridable
  // per directed pair. Only message types in `faultable_types` are subject
  // to link faults; empty means the engine's reliable-channel frames and
  // acks (the shuffle path, which has recovery machinery above it).
  LinkFaults default_link;
  std::map<std::pair<uint32_t, uint32_t>, LinkFaults> links;
  std::set<uint32_t> faultable_types;

  // Storage faults: probability that a checked disk write fails (the write
  // is not performed; the caller retries with backoff).
  double disk_write_error_rate = 0;

  // Task faults: probability that any task execution crashes at start, plus
  // explicit deterministic crash points.
  double task_crash_rate = 0;
  std::vector<CrashPoint> crash_points;

  // Recovery policy consumed by the engine runtime.
  uint32_t max_task_retries = 16;    // per bin/split/stage
  uint32_t max_write_retries = 10;   // per spill file
  uint32_t max_resend_attempts = 30; // per shuffle frame
  Duration retry_backoff = millis(1);      // base; doubles per attempt
  Duration retry_backoff_cap = millis(64);
  // Retransmit timeout (doubles per attempt, capped). The default leaves
  // headroom over the worst ack round-trip seen under a loaded scheduler;
  // chaos tests that want fast retransmission lower it explicitly.
  Duration resend_after = millis(150);

  // Convenience chaos plan: `msg_rate` spread over drop/duplicate/delay on
  // every link, `crash_rate` per task execution.
  static FaultPlan chaos(uint64_t seed, double msg_rate, double crash_rate = 0);

  const LinkFaults& link(uint32_t src, uint32_t dst) const {
    auto it = links.find({src, dst});
    return it == links.end() ? default_link : it->second;
  }
};

enum class MessageFault { kNone, kDrop, kDuplicate, kDelay };

struct MessageFaultResult {
  MessageFault action = MessageFault::kNone;
  Duration delay = Duration::zero();
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  // Transport hook: fate of the next message src -> dst of `type`. Local
  // (src == dst) traffic is never faulted. Thread-safe; the decision stream
  // is independent per (src, dst) link.
  MessageFaultResult on_message(uint32_t src, uint32_t dst, uint32_t type);

  // Storage hook: true if the next checked write on `node` must fail.
  bool on_disk_write(uint32_t node);

  // Runtime hook: true if the task execution starting now for `flowlet` on
  // `node` must crash. Each call consumes one execution slot of the
  // (node, flowlet) stream, so retries can crash again.
  bool on_task_start(uint32_t node, uint32_t flowlet);

  struct Stats {
    uint64_t messages_dropped = 0;
    uint64_t messages_duplicated = 0;
    uint64_t messages_delayed = 0;
    uint64_t disk_write_errors = 0;
    uint64_t task_crashes = 0;

    uint64_t total() const {
      return messages_dropped + messages_duplicated + messages_delayed +
             disk_write_errors + task_crashes;
    }
  };
  Stats stats() const;

 private:
  // Uniform [0, 1) for event `n` of the stream tagged `tag`; pure.
  double uniform(uint64_t tag, uint64_t n) const;
  // Next event index of the stream `tag` (per-stream monotone counter).
  uint64_t next_event(uint64_t tag);

  FaultPlan plan_;
  std::mutex mu_;
  std::map<uint64_t, uint64_t> event_counts_;  // stream tag -> events so far

  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> delayed_{0};
  std::atomic<uint64_t> disk_errors_{0};
  std::atomic<uint64_t> crashes_{0};
};

}  // namespace hamr::fault
