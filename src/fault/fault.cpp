#include "fault/fault.h"

#include "common/random.h"
#include "net/message.h"  // header-only message-type ids; no link dependency

namespace hamr::fault {

namespace {

// Distinct stream classes so the Nth message on a link, the Nth write on a
// node, and the Nth task of a flowlet draw from independent hash streams.
constexpr uint64_t kClassMessage = 0x6d65;
constexpr uint64_t kClassDiskWrite = 0x6477;
constexpr uint64_t kClassTask = 0x7461;

uint64_t stream_tag(uint64_t klass, uint64_t a, uint64_t b) {
  uint64_t s = klass * 0x9e3779b97f4a7c15ULL;
  s ^= a + 0xbf58476d1ce4e5b9ULL + (s << 6) + (s >> 2);
  s ^= b + 0x94d049bb133111ebULL + (s << 6) + (s >> 2);
  return s;
}

}  // namespace

FaultPlan FaultPlan::chaos(uint64_t seed, double msg_rate, double crash_rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_link.drop = msg_rate / 2;
  plan.default_link.duplicate = msg_rate / 4;
  plan.default_link.delay = msg_rate / 4;
  plan.default_link.delay_by = millis(2);
  plan.task_crash_rate = crash_rate;
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.faultable_types.empty()) {
    // Frames and acks of every executor lane: an injector shared by several
    // lane engines (the job service's chaos mode) faults them all alike.
    for (uint32_t lane = 0; lane < net::msg_type::kMaxEngineLanes; ++lane) {
      plan_.faultable_types.insert(net::msg_type::engine_frame(lane));
      plan_.faultable_types.insert(net::msg_type::engine_ack(lane));
    }
  }
}

double FaultInjector::uniform(uint64_t tag, uint64_t n) const {
  // splitmix64 over (seed, tag, n): a stateless counter-indexed stream, so
  // per-stream sequences are reproducible under any thread interleaving.
  uint64_t s = plan_.seed ^ stream_tag(tag, n, 0x5fa7);
  const uint64_t z = splitmix64(s);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

uint64_t FaultInjector::next_event(uint64_t tag) {
  std::lock_guard<std::mutex> lock(mu_);
  return event_counts_[tag]++;
}

MessageFaultResult FaultInjector::on_message(uint32_t src, uint32_t dst,
                                             uint32_t type) {
  if (src == dst) return {};
  if (plan_.faultable_types.count(type) == 0) return {};
  const LinkFaults& link = plan_.link(src, dst);
  if (!link.any()) return {};

  const uint64_t tag = stream_tag(kClassMessage, src, dst);
  const double u = uniform(tag, next_event(tag));
  if (u < link.drop) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return {MessageFault::kDrop, Duration::zero()};
  }
  if (u < link.drop + link.duplicate) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    return {MessageFault::kDuplicate, Duration::zero()};
  }
  if (u < link.drop + link.duplicate + link.delay) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    return {MessageFault::kDelay, link.delay_by};
  }
  return {};
}

bool FaultInjector::on_disk_write(uint32_t node) {
  if (plan_.disk_write_error_rate <= 0) return false;
  const uint64_t tag = stream_tag(kClassDiskWrite, node, 0);
  if (uniform(tag, next_event(tag)) < plan_.disk_write_error_rate) {
    disk_errors_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool FaultInjector::on_task_start(uint32_t node, uint32_t flowlet) {
  const uint64_t tag = stream_tag(kClassTask, node, flowlet);
  bool crash_point_applies = false;
  for (const CrashPoint& cp : plan_.crash_points) {
    if (cp.node == node && cp.flowlet == flowlet) {
      crash_point_applies = true;
      break;
    }
  }
  if (plan_.task_crash_rate <= 0 && !crash_point_applies) return false;

  const uint64_t n = next_event(tag);
  for (const CrashPoint& cp : plan_.crash_points) {
    if (cp.node == node && cp.flowlet == flowlet && n < cp.times) {
      crashes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (plan_.task_crash_rate > 0 &&
      uniform(tag, n) < plan_.task_crash_rate) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

FaultInjector::Stats FaultInjector::stats() const {
  Stats s;
  s.messages_dropped = dropped_.load(std::memory_order_relaxed);
  s.messages_duplicated = duplicated_.load(std::memory_order_relaxed);
  s.messages_delayed = delayed_.load(std::memory_order_relaxed);
  s.disk_write_errors = disk_errors_.load(std::memory_order_relaxed);
  s.task_crashes = crashes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hamr::fault
