// RateGate: a serial-resource cost model for contended shared variables.
//
// HAMR runs one engine instance per node; every worker thread on the node
// folds into the same partial-reduce accumulator table. Updates to one
// accumulator (one stripe) serialize on real hardware through the cache
// line; the paper measures this as "severe memory contention" on
// HistogramRatings (§5.2). Wall-clock contention does not reproduce on this
// build machine (single core), so the serialization is modeled the same way
// as the disk and the NIC: a rate-limited serial resource whose callers wait
// until their modeled completion time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/clock.h"

namespace hamr::engine {

class RateGate {
 public:
  // `ops_per_sec` <= 0 disables the gate entirely.
  explicit RateGate(double ops_per_sec) : ops_per_sec_(ops_per_sec) {}

  // Charges `ops` operations and blocks the caller until the modeled finish
  // time. Concurrent callers serialize in arrival order.
  void charge(uint64_t ops) {
    if (ops_per_sec_ <= 0 || ops == 0) return;
    const Duration cost = from_seconds(static_cast<double>(ops) / ops_per_sec_);
    TimePoint finish;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const TimePoint start = std::max(now(), busy_until_);
      finish = start + cost;
      busy_until_ = finish;
    }
    std::this_thread::sleep_until(finish);
  }

  bool enabled() const { return ops_per_sec_ > 0; }

 private:
  const double ops_per_sec_;
  std::mutex mu_;
  TimePoint busy_until_{};
};

}  // namespace hamr::engine
