// Built-in loader flowlets.
//
//  * TextLoader        - reads newline-delimited files from the node's local
//                        store, emitting (byte offset, line) records in
//                        fine-grain chunks (paper's TextLoader, Alg. 1/4).
//  * RateLimitedSource - base class for streaming sources: synthesizes
//                        records at a configured rate until the driver asks
//                        streaming to stop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "engine/flowlet.h"
#include "engine/rate_gate.h"

namespace hamr::engine {

// Emits (key = decimal byte offset within the file, value = line without the
// trailing newline) on port 0. Each split covers [offset, offset+length) of a
// file in the preferred node's local store; a line belongs to the split where
// it starts (lines never straddle splits in the HAMR input layout - input
// distribution writes whole lines per node file).
class TextLoader : public LoaderFlowlet {
 public:
  explicit TextLoader(uint64_t lines_per_chunk = 2048)
      : lines_per_chunk_(lines_per_chunk == 0 ? 1 : lines_per_chunk) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override;

 private:
  struct CachedSplit {
    std::string data;
  };
  std::shared_ptr<CachedSplit> split_data(const InputSplit& split, Context& ctx);
  void drop_split(const InputSplit& split);
  static std::string split_key(const InputSplit& split);

  const uint64_t lines_per_chunk_;
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<CachedSplit>> cache_;
};

// Streaming source base: load_chunk() emits `records_per_chunk` synthetic
// records per call, paced so the split's aggregate rate approximates
// `records_per_sec`, until Context::stream_stopping(). Subclasses provide
// the record content.
class RateLimitedSource : public LoaderFlowlet {
 public:
  RateLimitedSource(double records_per_sec, uint64_t records_per_chunk = 512)
      : gate_(records_per_sec),
        records_per_chunk_(records_per_chunk == 0 ? 1 : records_per_chunk) {}

  bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) final;

 protected:
  // Produces record number `index` of `split` (monotonically increasing).
  virtual void make_record(const InputSplit& split, uint64_t index,
                           std::string* key, std::string* value) = 0;

 private:
  RateGate gate_;
  const uint64_t records_per_chunk_;
};

}  // namespace hamr::engine
