// ShardedScheduler: per-worker deques with work stealing, replacing the
// engine's former single sched_mu_/sched_cv_ global queue.
//
// Layout: one shard per worker thread, each holding a bin deque and a task
// deque behind its own mutex. The delivery thread routes every received item
// of sender s to shard (s mod workers), so one sender's items land in one
// deque in arrival order and every consumer - owner or thief - pops from the
// FRONT under the shard lock: dequeue order stays FIFO per sender, which
// keeps the bin/control arrival accounting honest even though processing
// overlaps. Tasks are spread round-robin.
//
// A worker pops its own shard first (bins before tasks: draining received
// data keeps upstream nodes unblocked), then tries to steal from the other
// shards (try_lock only - a contended victim is skipped, not waited on), and
// only then sleeps. Sleep/wake uses one idle condition variable guarded by a
// mutex that covers no queue data: pushes bump an atomic pending count and
// notify, so the enqueue fast path never serializes against workers.
//
// The receiver-side byte budget is a shared atomic: the delivery thread
// blocks in push_bin while the queued bytes exceed the budget (receiver
// backpressure, exactly as before), and workers wake it when a pop crosses
// back under. Queue-depth/bytes gauges are written OUTSIDE every lock from
// the atomics. Steal counts and contended-lock wait time are surfaced as
// engine.sched_steal / engine.sched_lock_wait_ns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace hamr::engine {

// One received item: a data bin or a control message, plus the retry count
// fault recovery stamps on it.
struct QueueItem {
  bool is_control = false;
  uint32_t src = 0;
  uint32_t attempts = 0;  // crash-retry count for this bin
  // Per-destination-flowlet enqueue index (bins_enqueued fetch_add value),
  // carried so completion can advance the flowlet's processed-bin prefix.
  uint64_t bin_index = 0;
  std::string payload;
};

class ShardedScheduler {
 public:
  // Hot-path metric handles, all optional (null = not recorded).
  struct Hooks {
    Counter* steals = nullptr;         // engine.sched_steal
    Counter* lock_wait_ns = nullptr;   // engine.sched_lock_wait_ns
    Counter* budget_wait_ns = nullptr; // engine.bin_queue_wait_ns
    Gauge* depth = nullptr;            // engine.bin_queue_depth
    Gauge* bytes = nullptr;            // engine.bin_queue_bytes
  };

  // Either a bin/control item or a task, never both.
  struct Work {
    bool is_item = false;
    QueueItem item;
    std::function<void()> task;
  };

  ShardedScheduler(uint32_t workers, uint64_t byte_budget);

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  void set_hooks(const Hooks& hooks) { hooks_ = hooks; }
  uint32_t workers() const { return static_cast<uint32_t>(shards_.size()); }

  // Delivery-thread ingress. Blocks while the queued bytes exceed the budget
  // unless `force` (crash retries re-add bytes they already own; blocking
  // there could deadlock against the delivery thread). Returns false if the
  // scheduler stopped while waiting (the item is dropped).
  bool push_bin(QueueItem&& item, bool force = false);

  // Round-robin task submission (any thread).
  void push_task(std::function<void()> task);

  // Blocking worker pop for worker `self` (0-based). Returns false when the
  // scheduler is stopping and every shard has drained.
  bool next(uint32_t self, Work* out);

  // Batched pop: drains up to `max` units from worker self's own shard under
  // ONE lock acquisition (one atomics update, one gauge publish, one budget
  // check for the whole run), falling back to stealing a single unit when the
  // own shard is empty. The batch is front-popped in order from one shard, so
  // processing it in order preserves FIFO per sender. Appends to `out`;
  // returns the number taken, 0 only when stopping and fully drained.
  size_t next_batch(uint32_t self, std::vector<Work>* out, size_t max);

  // Wakes everything; workers drain remaining work, push_bin waiters return.
  void stop();

  uint64_t queued_bytes() const {
    return queued_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t queued_items() const {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    std::deque<QueueItem> bins;
    std::deque<std::function<void()>> tasks;
  };

  // Pop one unit from a shard whose mutex the caller already holds.
  bool take_locked(Shard& shard, Work* out);
  // Flush dequeue accounting for a drained batch (after the shard lock is
  // dropped): one atomics update, one gauge publish, one budget-cross check.
  void settle_batch(uint64_t units, uint64_t bins, uint64_t bytes);
  void publish_gauges();

  // deque: shards are immovable (mutex member), constructed in place.
  std::deque<Shard> shards_;
  const uint64_t byte_budget_;
  Hooks hooks_;

  // Wakes sleeping workers after new work is visible (or on stop).
  void notify_workers();

  std::atomic<uint64_t> pending_{0};      // bins + tasks across all shards
  std::atomic<uint64_t> pending_bins_{0};
  std::atomic<uint64_t> queued_bytes_{0};
  std::atomic<uint64_t> task_rr_{0};
  std::atomic<bool> stopping_{false};

  // Sleep/wake for idle workers; guards no queue data. Sleeping is
  // edge-triggered on wake_seq_: a worker snapshots it, scans every shard,
  // and sleeps only until the seq moves past its snapshot - so a worker
  // that saw nothing parks instead of re-scanning (no spin), yet can never
  // sleep through a push that happened after its snapshot. Pushers skip the
  // notify entirely while no worker is registered in sleepers_.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<uint64_t> wake_seq_{0};
  std::atomic<uint32_t> sleepers_{0};

  // Budget wait for the delivery thread.
  std::mutex space_mu_;
  std::condition_variable space_cv_;
};

}  // namespace hamr::engine
