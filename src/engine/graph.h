// Flowlet DAG construction and validation.
//
// Unlike MapReduce's fixed map->reduce shape, a HAMR job is an arbitrary DAG:
// any flowlet may feed any other, with fan-in and fan-out (paper §3.2). Each
// connect() call adds one out-port to the source (ports are numbered in
// connect order) and one upstream channel set to the destination.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/flowlet.h"

namespace hamr::engine {

struct EdgeOptions {
  // Sender-side combining: fold records with the destination partial-reduce
  // flowlet's fold() before packing bins (Table 3's combiner). Only valid
  // when the destination is a PartialReduce flowlet.
  bool combine = false;
  // Local routing: records stay on the emitting node instead of being
  // hash-partitioned by key. The data-locality primitive of §3.3 - used on
  // loader->map edges so raw input is processed where its disk lives, with
  // only derived (small) records crossing the network downstream.
  bool local = false;
  // Custom key partitioner (key, num_nodes) -> destination node. When unset,
  // records route by key hash. Range-partitioned edges (distributed sort)
  // install one built from sampled boundaries; must be deterministic and
  // identical on every node. Ignored for local edges.
  std::function<uint32_t(std::string_view, uint32_t)> partitioner;
  // Sender-side observer invoked once per emitted record, after routing,
  // with the record's destination node. The dataset cache uses it to publish
  // a flowlet's output shard-by-shard with the exact shard->node mapping the
  // edge produced (src/cache/). Taps see each record exactly once: task
  // crashes are injected before flowlet code runs, and the reliable channel
  // dedups delivered bins, so retried sends never replay the emit. Not valid
  // together with `combine` (combined records fold before routing, so no
  // per-record destination exists); validate() rejects the combination.
  std::function<void(uint32_t dst_node, std::string_view key,
                     std::string_view value)>
      tap;
};

// Shorthand for a locality-preserving edge.
inline EdgeOptions local_edge() {
  EdgeOptions options;
  options.local = true;
  return options;
}

struct GraphEdge {
  EdgeId id = 0;
  FlowletId src = 0;
  FlowletId dst = 0;
  uint32_t src_port = 0;  // index among src's out-edges
  EdgeOptions options;
};

struct GraphNode {
  FlowletId id = 0;
  std::string name;
  FlowletKind kind = FlowletKind::kMap;
  FlowletFactory factory;
  std::vector<EdgeId> out_edges;  // ordered by port
  std::vector<EdgeId> in_edges;
};

class FlowletGraph {
 public:
  FlowletId add_loader(std::string name, FlowletFactory factory) {
    return add(std::move(name), FlowletKind::kLoader, std::move(factory));
  }
  FlowletId add_map(std::string name, FlowletFactory factory) {
    return add(std::move(name), FlowletKind::kMap, std::move(factory));
  }
  FlowletId add_reduce(std::string name, FlowletFactory factory) {
    return add(std::move(name), FlowletKind::kReduce, std::move(factory));
  }
  FlowletId add_partial_reduce(std::string name, FlowletFactory factory) {
    return add(std::move(name), FlowletKind::kPartialReduce, std::move(factory));
  }

  // Connects src -> dst; returns the edge id. The edge becomes src's next
  // out-port (emit(port, ...) indexes them in connect order).
  EdgeId connect(FlowletId src, FlowletId dst, EdgeOptions options = {});

  // Structural checks: ids valid, acyclic, loaders have no inputs, combine
  // edges target partial reduces. Throws std::invalid_argument on violation.
  void validate() const;

  size_t num_flowlets() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const GraphNode& flowlet(FlowletId id) const { return nodes_.at(id); }
  const GraphEdge& edge(EdgeId id) const { return edges_.at(id); }
  const std::vector<GraphNode>& flowlets() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  // Flowlet ids in a topological order (validate() must pass first).
  std::vector<FlowletId> topological_order() const;

 private:
  FlowletId add(std::string name, FlowletKind kind, FlowletFactory factory);

  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace hamr::engine
