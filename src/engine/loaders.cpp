#include "engine/loaders.h"

#include "obs/trace.h"

namespace hamr::engine {

std::string TextLoader::split_key(const InputSplit& split) {
  return split.path + "@" + std::to_string(split.offset) + "+" +
         std::to_string(split.length);
}

std::shared_ptr<TextLoader::CachedSplit> TextLoader::split_data(
    const InputSplit& split, Context& ctx) {
  const std::string key = split_key(split);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Read outside the lock (pays the disk cost); concurrent first-chunk calls
  // for the same split cannot happen (one task chain per split).
  auto cached = std::make_shared<CachedSplit>();
  const uint64_t len = split.length == 0 ? UINT64_MAX : split.length;
  obs::TraceSpan span("loader.read_split", "engine.io", ctx.node(), -1,
                      static_cast<int64_t>(split.offset));
  auto data = ctx.local_store().read_range(split.path, split.offset, len);
  data.status().ExpectOk();
  cached->data = std::move(data).value();
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.emplace(key, std::move(cached)).first->second;
}

void TextLoader::drop_split(const InputSplit& split) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(split_key(split));
}

bool TextLoader::load_chunk(const InputSplit& split, uint64_t* cursor,
                            Context& ctx) {
  auto cached = split_data(split, ctx);
  const std::string& data = cached->data;
  uint64_t pos = *cursor;
  uint64_t lines = 0;
  while (pos < data.size() && lines < lines_per_chunk_) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string::npos) eol = data.size();
    if (eol > pos) {  // skip empty lines
      const std::string key = std::to_string(split.offset + pos);
      ctx.emit(0, key, std::string_view(data).substr(pos, eol - pos));
    }
    pos = eol + 1;
    ++lines;
  }
  if (pos >= data.size()) {
    drop_split(split);
    return false;
  }
  *cursor = pos;
  return true;
}

bool RateLimitedSource::load_chunk(const InputSplit& split, uint64_t* cursor,
                                   Context& ctx) {
  if (ctx.stream_stopping()) return false;
  gate_.charge(records_per_chunk_);
  std::string key, value;
  for (uint64_t i = 0; i < records_per_chunk_; ++i) {
    key.clear();
    value.clear();
    make_record(split, *cursor + i, &key, &value);
    ctx.emit(0, key, value);
  }
  *cursor += records_per_chunk_;
  return true;
}

}  // namespace hamr::engine
