// Engine: the cluster-wide HAMR instance and job driver.
//
// One Engine is deployed per cluster (like the HAMR daemon set in the paper);
// it owns a NodeRuntime on every node plus the distributed key-value store,
// and runs jobs - batch or streaming - one at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "cluster/cluster.h"
#include "engine/config.h"
#include "engine/graph.h"
#include "engine/runtime.h"
#include "engine/split.h"
#include "kvstore/kv_store.h"
#include "obs/metrics_snapshot.h"

namespace hamr::engine {

struct JobResult {
  double wall_seconds = 0;
  uint64_t records_emitted = 0;
  uint64_t bins_sent = 0;
  uint64_t bin_bytes = 0;
  uint64_t spill_bytes = 0;
  uint64_t flow_control_stalls = 0;
  double flow_control_stall_seconds = 0;
  // Fault recovery (all zero on a fault-free run without an injector):
  uint64_t task_retries = 0;       // crashed flowlet tasks re-enqueued
  uint64_t spill_retries = 0;      // failed spill writes retried
  uint64_t frames_resent = 0;      // reliable-channel retransmissions
  uint64_t duplicate_frames = 0;   // frames suppressed by seq dedup
  uint64_t faults_injected = 0;    // injector events during this job

  // True when the job was aborted via Engine::request_cancel(): the run
  // completed the shutdown protocol cleanly but skipped remaining work, so
  // outputs are partial and must be discarded by the caller.
  bool cancelled = false;

  // Cluster-wide metrics delta for this job: every counter that moved,
  // final gauge levels, and latency histograms - including the per-flowlet
  // task-latency histograms engine.flowlet.<id>.task_us registered at job
  // build time. The scalar fields above are views into this snapshot kept
  // for compatibility.
  obs::MetricsSnapshot metrics;
};

class Engine {
 public:
  Engine(cluster::Cluster& cluster, EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Runs a batch job to completion. Graphs are validated on entry; jobs run
  // one at a time per engine.
  JobResult run(const FlowletGraph& graph, const JobInputs& inputs);

  // Runs a streaming job: stream loaders (LoaderFlowlets that keep returning
  // true from load_chunk until Context::stream_stopping()) are stopped after
  // `duration`; every partial-reduce flowlet's window is flushed downstream
  // each `window_every` until then. Completion then cascades as in batch.
  JobResult run_streaming(const FlowletGraph& graph, const JobInputs& inputs,
                          Duration duration, Duration window_every);

  // Asks the currently running job (if any) to abort: loaders stop, queued
  // bins are drained without processing, reduce stages are skipped, and the
  // completion protocol still runs so run() returns promptly with
  // JobResult::cancelled set. Safe from any thread; a no-op when idle.
  void request_cancel();

  // Gracefully winds down the in-flight *streaming* job: sources observe
  // stream_stopping() at their next chunk, buffered state flushes through
  // the normal completion cascade, and run_streaming returns early with a
  // normal (non-cancelled) result whose outputs are complete. Safe from any
  // thread; harmless for batch jobs. Returns false when no job is running
  // yet (callers racing a dispatch retry until it lands or the job ends).
  bool request_stream_drain();

  // True while a cancel is pending for the in-flight job.
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

  kv::KvStore& kv() { return kv_; }
  cluster::Cluster& cluster() { return cluster_; }
  const EngineConfig& config() const { return config_; }

  // Cluster-wide counter sum convenience (engine.* counters live on node
  // metrics).
  uint64_t total_counter(const std::string& name) const {
    return cluster_.total_counter(name);
  }

 private:
  friend class NodeRuntime;
  friend class TaskContext;

  JobResult run_internal(const FlowletGraph& graph, const JobInputs& inputs,
                         Duration stream_duration, Duration window_every);
  void node_job_done(uint32_t node);
  NodeRuntime& runtime(uint32_t node) { return *runtimes_.at(node); }

  cluster::Cluster& cluster_;
  EngineConfig config_;
  kv::KvStore kv_;
  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;

  uint64_t epoch_ = 0;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  uint32_t nodes_done_ = 0;
  bool job_running_ = false;
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> drain_requested_{false};
};

}  // namespace hamr::engine
