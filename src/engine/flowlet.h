// The flowlet programming model - HAMR's public API (paper §2).
//
// A job is a DAG of flowlets. Four kinds exist, mirroring the paper:
//
//   * LoaderFlowlet        - pulls records from a data source, split by split,
//                            in chunks (fine-grain, throttled by flow control).
//   * MapFlowlet           - record-at-a-time transform; runs the moment a bin
//                            of input is available (Dormant -> Ready on data).
//   * ReduceFlowlet        - sees all values of a key, grouped; internally
//                            barriers on upstream completion, spilling staged
//                            input to disk beyond the memory budget.
//   * PartialReduceFlowlet - commutative+associative incremental aggregation;
//                            folds each record on arrival into a node-shared
//                            accumulator table and emits on upstream
//                            completion (or on a streaming window flush).
//
// Application code interacts with the runtime only through Context.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "engine/bin.h"
#include "engine/split.h"
#include "kvstore/kv_store.h"
#include "storage/file_store.h"

namespace hamr::engine {

using NodeId = uint32_t;
using FlowletId = uint32_t;

enum class FlowletKind { kLoader, kMap, kReduce, kPartialReduce };

const char* flowlet_kind_name(FlowletKind kind);

// Runtime services available to flowlet code. One Context is handed to each
// task execution; emitted records are buffered per (out-port, destination)
// and packed into bins.
class Context {
 public:
  virtual ~Context() = default;

  // Routes by key: the record goes to node partition_of(key, num_nodes) -
  // "each node works on a portion of the whole key space" (paper §2).
  virtual void emit(uint32_t port, std::string_view key, std::string_view value) = 0;

  // Locality-aware direct routing (paper §3.3: pass small index records back
  // to the node holding the data).
  virtual void emit_to_node(uint32_t port, NodeId node, std::string_view key,
                            std::string_view value) = 0;

  // Sends the record to every node (e.g. centroid broadcast in K-Means).
  virtual void emit_broadcast(uint32_t port, std::string_view key,
                              std::string_view value) = 0;

  virtual NodeId node() const = 0;
  virtual uint32_t num_nodes() const = 0;
  virtual uint32_t num_out_ports() const = 0;

  // Node-shared distributed key-value store (paper §5.2/§7).
  virtual kv::KvStore& kv() = 0;

  // This node's local disk (reads/writes pay the modeled disk cost).
  virtual storage::FileStore& local_store() = 0;

  virtual Metrics& metrics() = 0;

  // True once the driver has asked streaming sources to wind down. Batch
  // jobs always return false; stream loaders poll this from load_chunk.
  virtual bool stream_stopping() const = 0;
};

class Flowlet {
 public:
  virtual ~Flowlet() = default;

  // Invoked once per node when the job starts, before any data.
  virtual void start(Context& ctx) { (void)ctx; }

  // Invoked once per node after every upstream channel has completed and all
  // received data has been processed. Flush final state here.
  virtual void finish(Context& ctx) { (void)ctx; }
};

class LoaderFlowlet : public Flowlet {
 public:
  // Processes one chunk of `split`, advancing *cursor (opaque to the engine,
  // 0 on the first call). Returns false when the split is exhausted. The
  // engine re-schedules chunks as separate fine-grain tasks, deferring them
  // under flow-control backpressure.
  virtual bool load_chunk(const InputSplit& split, uint64_t* cursor,
                          Context& ctx) = 0;
};

class MapFlowlet : public Flowlet {
 public:
  // One record. May be called concurrently from several worker threads
  // (distinct bins); implementations keep per-call state on the stack or
  // synchronize their own members.
  virtual void process(const KvPair& record, Context& ctx) = 0;
};

class ReduceFlowlet : public Flowlet {
 public:
  // All values of `key`, after shuffling and grouping. Distinct keys may be
  // reduced concurrently (sub-partitioned); same-key values arrive together.
  virtual void reduce(std::string_view key,
                      const std::vector<std::string_view>& values,
                      Context& ctx) = 0;
};

class PartialReduceFlowlet : public Flowlet {
 public:
  // Folds `value` into `acc` (empty on the key's first record). Must be
  // commutative + associative in effect. Runs under the key's stripe lock;
  // the stripe's serialized-update cost model is charged by the engine.
  virtual void fold(std::string_view key, std::string_view value,
                    std::string& acc) = 0;

  // Emits one final accumulator; default forwards (key, acc) on port 0 when
  // a port exists (sink partial reduces override to write output instead).
  virtual void emit_result(std::string_view key, std::string_view acc,
                           Context& ctx);

  // --- event-time windowing hooks (see src/stream/) ------------------------
  // A *windowed* partial reduce accumulates per-(window, key) state and
  // closes windows when in-band watermark punctuation aligns, instead of the
  // processing-time flush. Batch flowlets keep the defaults; the engine
  // caches stream_windowed() at job build so the batch hot path pays nothing.

  virtual bool stream_windowed() const { return false; }

  // True when `key` is a watermark punctuation record rather than data; such
  // records are routed to on_punctuation() and never touch the accumulator
  // table.
  virtual bool is_punctuation(std::string_view key) const {
    (void)key;
    return false;
  }

  // Handles one punctuation record. Returns the operator's new aligned
  // watermark (every expected origin has reported at least this, in
  // event-time microseconds), or INT64_MIN when the watermark did not
  // advance. Called without the stripe locks held; implementations
  // synchronize their own state.
  virtual int64_t on_punctuation(std::string_view key, std::string_view value) {
    (void)key;
    (void)value;
    return INT64_MIN;
  }

  // Window end (event-time us) encoded in a composite accumulator key, or
  // INT64_MIN when the key carries no window.
  virtual int64_t window_end_of(std::string_view key) const {
    (void)key;
    return INT64_MIN;
  }

  // Drains the window ends first opened since the last call (the runtime
  // logs them as kWindowOpen). Appends to *out.
  virtual void take_opened_windows(std::vector<int64_t>* out) { (void)out; }
};

using FlowletFactory = std::function<std::unique_ptr<Flowlet>()>;

}  // namespace hamr::engine
