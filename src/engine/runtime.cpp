#include "engine/runtime.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "storage/run_file.h"

namespace hamr::engine {

namespace {

// Control message kinds carried in kEngineControl payloads.
constexpr uint64_t kCtlComplete = 1;

// Sub-partition / stripe selection must be independent of the node-partition
// hash, or all of a node's keys would land in one stage.
uint32_t stage_of(std::string_view key, uint32_t stages) {
  return stages <= 1
             ? 0
             : static_cast<uint32_t>(hash_combine(hash_bytes(key), 0x5743) % stages);
}

uint32_t stripe_of(std::string_view key, uint32_t stripes) {
  return stripes <= 1
             ? 0
             : static_cast<uint32_t>(hash_combine(hash_bytes(key), 0x9d13) % stripes);
}

// Exponential backoff: base doubled per attempt, capped.
Duration backoff_after(Duration base, Duration cap, uint32_t attempt) {
  Duration d = base;
  for (uint32_t i = 0; i < attempt && d < cap; ++i) d += d;
  return std::min(d, cap);
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskContext: the Context implementation handed to flowlet code for the
// duration of one task. Buffers emissions into per-(edge, destination) bin
// builders, flushing full bins immediately and the rest at task end.
// ---------------------------------------------------------------------------
class TaskContext : public Context {
 public:
  TaskContext(NodeRuntime* rt, internal::JobState* job, FlowletId fid,
              bool allow_emit = true)
      : rt_(rt), job_(job), fid_(fid), allow_emit_(allow_emit) {}

  ~TaskContext() override { flush_all(); }

  void emit(uint32_t port, std::string_view key, std::string_view value) override {
    require_emit();
    const GraphEdge& edge = out_edge(port);
    if (edge.options.combine) {
      combine_emit(edge, key, value);
      return;
    }
    const NodeId dst =
        edge.options.local ? rt_->node_id() : partition_of(key, num_nodes());
    add_record(edge.id, dst, key, value);
  }

  void emit_to_node(uint32_t port, NodeId node, std::string_view key,
                    std::string_view value) override {
    require_emit();
    add_record(out_edge(port).id, node % num_nodes(), key, value);
  }

  void emit_broadcast(uint32_t port, std::string_view key,
                      std::string_view value) override {
    require_emit();
    const EdgeId edge = out_edge(port).id;
    for (NodeId n = 0; n < num_nodes(); ++n) add_record(edge, n, key, value);
  }

  NodeId node() const override { return rt_->node_id(); }
  uint32_t num_nodes() const override { return rt_->engine_->cluster().size(); }
  uint32_t num_out_ports() const override {
    return static_cast<uint32_t>(job_->graph->flowlet(fid_).out_edges.size());
  }
  kv::KvStore& kv() override { return rt_->engine_->kv(); }
  storage::FileStore& local_store() override { return rt_->node().store(); }
  Metrics& metrics() override { return rt_->metrics(); }
  bool stream_stopping() const override {
    return rt_->streaming_stop_.load(std::memory_order_relaxed);
  }

  void flush_all() {
    for (auto& [key, builder] : builders_) {
      flush_builder(key.second, builder);
    }
    charge_combine_gates();
  }

 private:
  void require_emit() const {
    if (!allow_emit_) {
      throw std::logic_error(
          "Flowlet::start() must not emit records (load/process/finish only)");
    }
  }

  const GraphEdge& out_edge(uint32_t port) const {
    const GraphNode& node = job_->graph->flowlet(fid_);
    return job_->graph->edge(node.out_edges.at(port));
  }

  void add_record(EdgeId edge, NodeId dst, std::string_view key,
                  std::string_view value) {
    auto [it, inserted] = builders_.try_emplace({edge, dst}, job_->epoch, edge);
    it->second.add(key, value);
    rt_->metrics().counter("engine.records")->inc();
    if (it->second.payload_bytes() >= rt_->config_.bin_size_bytes) {
      flush_builder(dst, it->second);
    }
  }

  void flush_builder(NodeId dst, BinBuilder& builder) {
    if (builder.empty()) return;
    std::string bin = builder.take();
    rt_->metrics().counter("engine.bins")->inc();
    rt_->metrics().counter("engine.bin_bytes")->add(bin.size());
    rt_->enqueue_out(dst, net::msg_type::kEngineBin, std::move(bin));
  }

  // Sender-side combining: fold into the node-shared combine table for this
  // edge. The table is shared by all worker threads of the node (one engine
  // instance per node), so updates pay the stripe's serialized-update cost,
  // charged in batch at task end.
  void combine_emit(const GraphEdge& edge, std::string_view key,
                    std::string_view value) {
    internal::FlowletState& src_state = *job_->flowlets[edge.src];
    internal::PartialTable* table = src_state.combine_tables.at(edge.id).get();
    auto* dst_flowlet = static_cast<PartialReduceFlowlet*>(
        job_->flowlets[edge.dst]->instance.get());

    const uint32_t si =
        stripe_of(key, static_cast<uint32_t>(table->stripes.size()));
    internal::PartialTable::Stripe& stripe = table->stripes[si];
    bool overflow = false;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      std::string& acc = stripe.acc[std::string(key)];
      dst_flowlet->fold(key, value, acc);
      overflow = stripe.acc.size() > kCombineStripeKeys;
    }
    rt_->metrics().counter("engine.combine_folds")->inc();
    combine_gate_debt_[{edge.id, si}] += 1;
    if (overflow) {
      charge_combine_gates();
      rt_->flush_combine_stripe(*job_, edge.id, si);
    }
  }

  void charge_combine_gates() {
    for (auto& [key, count] : combine_gate_debt_) {
      internal::FlowletState& src_state =
          *job_->flowlets[job_->graph->edge(key.first).src];
      src_state.combine_tables.at(key.first)->stripes[key.second].gate->charge(count);
    }
    combine_gate_debt_.clear();
  }

  static constexpr size_t kCombineStripeKeys = 4096;

  NodeRuntime* rt_;
  internal::JobState* job_;
  FlowletId fid_;
  bool allow_emit_;
  std::map<std::pair<EdgeId, NodeId>, BinBuilder> builders_;
  std::map<std::pair<EdgeId, uint32_t>, uint64_t> combine_gate_debt_;
};

// ---------------------------------------------------------------------------
// NodeRuntime
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Engine* engine, cluster::Node* node,
                         const EngineConfig& config)
    : engine_(engine), node_(node), config_(config) {
  node_->router().register_type(
      net::msg_type::kEngineBin,
      [this](net::Message&& m) { on_bin_message(std::move(m)); });
  node_->router().register_type(
      net::msg_type::kEngineControl,
      [this](net::Message&& m) { on_control_message(std::move(m)); });
  node_->router().register_type(
      net::msg_type::kEngineFrame,
      [this](net::Message&& m) { on_frame_message(std::move(m)); });
  node_->router().register_type(
      net::msg_type::kEngineAck,
      [this](net::Message&& m) { on_ack_message(std::move(m)); });
  // One reliable channel per peer, even when the reliable layer is off (the
  // structs are tiny and the handlers above are always registered).
  send_channels_.resize(engine_->cluster().size());
  recv_channels_.resize(engine_->cluster().size());
  frames_sent_c_ = metrics().counter("engine.frames_sent");
  frames_recv_c_ = metrics().counter("engine.frames_recv");
  bin_queue_depth_g_ = metrics().gauge("engine.bin_queue_depth");
  bin_queue_bytes_g_ = metrics().gauge("engine.bin_queue_bytes");
  task_us_h_ = metrics().histogram("engine.task_us");
  const uint32_t workers = engine_->cluster().config().threads_per_node;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  sender_ = std::thread([this] { sender_loop(); });
}

NodeRuntime::~NodeRuntime() {
  stopping_.store(true);
  sched_cv_.notify_all();
  sched_space_.notify_all();
  out_cv_.notify_all();
  // Under fault plans the transport can still hold delayed duplicates or
  // resends after the job completes; unregistering blocks until in-flight
  // dispatches into this runtime drain (they wake via stopping_ above), and
  // later stragglers are dropped as unroutable instead of hitting freed
  // memory.
  node_->router().unregister_type(net::msg_type::kEngineBin);
  node_->router().unregister_type(net::msg_type::kEngineControl);
  node_->router().unregister_type(net::msg_type::kEngineFrame);
  node_->router().unregister_type(net::msg_type::kEngineAck);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (sender_.joinable()) sender_.join();
}

void NodeRuntime::attach_job(std::shared_ptr<internal::JobState> job) {
  std::lock_guard<std::mutex> lock(job_mu_);
  job_ = std::move(job);
  staged_bytes_.store(0);
  streaming_stop_.store(false);
}

std::shared_ptr<internal::JobState> NodeRuntime::current_job() const {
  std::lock_guard<std::mutex> lock(job_mu_);
  return job_;
}

void NodeRuntime::activate_job(
    const std::map<FlowletId, std::vector<InputSplit>>& my_splits) {
  auto job = current_job();
  internal::JobState& js = *job;

  // start() for every flowlet instance, inline and emission-free (enforced).
  for (FlowletId f = 0; f < js.flowlets.size(); ++f) {
    TaskContext ctx(this, &js, f, /*allow_emit=*/false);
    js.flowlets[f]->instance->start(ctx);
  }

  // Record split counts first so completions can't race the last chunk.
  for (const auto& [loader, split_list] : my_splits) {
    js.flowlets[loader]->splits_outstanding.store(split_list.size());
  }
  for (const auto& [loader, split_list] : my_splits) {
    for (const InputSplit& split : split_list) {
      const FlowletId loader_id = loader;
      submit_task([this, loader_id, split] { run_split_chunk(loader_id, split, 0); });
    }
  }

  // Flowlets with no upstream channels and no splits complete immediately.
  for (FlowletId f = 0; f < js.flowlets.size(); ++f) {
    maybe_schedule_finish(f);
  }
}

// --- ingress ---------------------------------------------------------------

void NodeRuntime::on_bin_message(net::Message&& msg) {
  auto job = current_job();
  if (!job) return;
  // Parse only the header to account the pending bin (cheap).
  try {
    BinView view(msg.payload);
    if (view.job_epoch() != job->epoch) return;  // stale job traffic
    const GraphEdge& edge = job->graph->edge(view.edge());
    // Log before the pending_bins increment becomes visible so the event's
    // log position always precedes any completion it could enable.
    log_event(obs::EventKind::kBinEnqueued, edge.dst,
              static_cast<int64_t>(view.records()));
    obs::trace().record_instant("bin.enqueue", "engine.bin", node_id(),
                                edge.dst, static_cast<int64_t>(view.records()));
    job->flowlets[edge.dst]->pending_bins.fetch_add(1);
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed bin: " << e.what();
    return;
  }
  QueueItem item;
  item.src = msg.src;
  item.payload = std::move(msg.payload);
  enqueue_item(std::move(item));
}

void NodeRuntime::on_control_message(net::Message&& msg) {
  QueueItem item;
  item.is_control = true;
  item.src = msg.src;
  item.payload = std::move(msg.payload);
  enqueue_item(std::move(item));
}

// Reliable channel ingress: unwrap the frame, suppress duplicates, stash
// out-of-order arrivals, and hand the in-order prefix to the regular bin /
// control handlers - restoring exactly the per-(src,dst) FIFO the completion
// protocol relies on. The cumulative ack goes out *before* inner delivery:
// delivery can block on the bin-queue budget (receiver backpressure), and a
// stalled ack would make the sender retransmit frames we already hold.
void NodeRuntime::on_frame_message(net::Message&& msg) {
  const uint32_t src = msg.src;
  uint64_t seq = 0;
  uint32_t inner_type = 0;
  std::string inner;
  try {
    serde::Reader r(msg.payload);
    seq = r.get_varint();
    inner_type = static_cast<uint32_t>(r.get_varint());
    inner = std::string(r.get_bytes());
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed frame from " << src << ": "
               << e.what();
    return;
  }

  std::vector<std::pair<uint32_t, std::string>> deliverable;
  uint64_t ack = 0;
  {
    RecvChannel& ch = recv_channels_.at(src);
    std::lock_guard<std::mutex> lock(ch.mu);
    if (seq < ch.next_expected || ch.stash.count(seq) != 0) {
      // Retransmission of a frame we already have (its ack was lost or late).
      metrics().counter("engine.dup_frames")->inc();
      obs::trace().record_instant("shuffle.dup", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
    } else {
      frames_recv_c_->inc();
      obs::trace().record_instant("shuffle.recv", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
      ch.stash.emplace(seq, std::make_pair(inner_type, std::move(inner)));
      for (auto it = ch.stash.find(ch.next_expected); it != ch.stash.end();
           it = ch.stash.find(ch.next_expected)) {
        deliverable.push_back(std::move(it->second));
        ch.stash.erase(it);
        ++ch.next_expected;
      }
    }
    ack = ch.next_expected;
  }

  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(ack);
  raw_enqueue_out(src, net::msg_type::kEngineAck, std::string(buf.view()));

  for (auto& [type, payload] : deliverable) {
    net::Message m;
    m.type = type;
    m.src = src;
    m.payload = std::move(payload);
    if (type == net::msg_type::kEngineControl) {
      on_control_message(std::move(m));
    } else {
      on_bin_message(std::move(m));
    }
  }
}

void NodeRuntime::on_ack_message(net::Message&& msg) {
  uint64_t cum = 0;
  try {
    serde::Reader r(msg.payload);
    cum = r.get_varint();
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed ack from " << msg.src << ": "
               << e.what();
    return;
  }
  SendChannel& ch = send_channels_.at(msg.src);
  uint64_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    for (auto it = ch.unacked.begin(); it != ch.unacked.end() && it->first < cum;
         it = ch.unacked.erase(it)) {
      ++erased;
    }
  }
  if (erased != 0) {
    metrics().gauge("engine.unacked_frames")->sub(static_cast<int64_t>(erased));
  }
}

void NodeRuntime::enqueue_item(QueueItem&& item) {
  const uint64_t bytes = item.payload.size();
  const TimePoint t0 = now();
  {
    std::unique_lock<std::mutex> lock(sched_mu_);
    // Receiver-side backpressure: the delivery thread (our only caller)
    // blocks when the queue is over budget, which in turn fills the
    // transport ingress and stalls remote senders. Control items ride the
    // same queue to preserve per-sender FIFO.
    sched_space_.wait(lock, [&] {
      return stopping_.load() || bin_queue_bytes_ < config_.bin_queue_bytes;
    });
    if (stopping_.load()) return;
    bin_queue_bytes_ += bytes;
    bin_queue_.push_back(std::move(item));
    bin_queue_depth_g_->set(static_cast<int64_t>(bin_queue_.size()));
    bin_queue_bytes_g_->set(static_cast<int64_t>(bin_queue_bytes_));
  }
  const Duration waited = now() - t0;
  if (waited >= micros(100)) {
    // The delivery thread actually blocked on the queue budget: receiver-side
    // backpressure in action, worth surfacing.
    metrics().counter("engine.bin_queue_wait_ns")
        ->add(static_cast<uint64_t>(waited.count()));
  }
  sched_cv_.notify_one();
}

// --- scheduler ---------------------------------------------------------------

void NodeRuntime::submit_task(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    task_queue_.push_back(std::move(task));
  }
  sched_cv_.notify_one();
}

void NodeRuntime::defer_task(FlowletId flowlet, int64_t tag,
                             std::function<void()> task) {
  // Paper §2: a flow-controlled task "stops the current execution
  // immediately and will be scheduled in a later time". Re-queue it and let
  // this worker nap briefly so the outbox can drain.
  metrics().counter("engine.stalls")->inc();
  log_event(obs::EventKind::kStallBegin, flowlet, tag);
  const TimePoint t0 = now();
  {
    obs::TraceSpan span("flow.stall", "engine.flow", node_id(), flowlet, tag);
    std::this_thread::sleep_for(config_.defer_retry);
  }
  const Duration stalled = now() - t0;
  metrics().counter("engine.stall_ns")->add(
      static_cast<uint64_t>(stalled.count()));
  metrics().histogram("engine.stall_us")->observe(
      static_cast<uint64_t>(stalled.count() / 1000));
  // StallEnd is logged before the task is re-queued, so in every legal log
  // each stall interval of a (flowlet, tag) task closes before that task can
  // run again.
  log_event(obs::EventKind::kStallEnd, flowlet, tag);
  submit_task(std::move(task));
}

void NodeRuntime::worker_loop() {
  for (;;) {
    QueueItem item;
    std::function<void()> task;
    bool have_item = false;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock, [&] {
        return stopping_.load() || !bin_queue_.empty() || !task_queue_.empty();
      });
      if (stopping_.load() && bin_queue_.empty() && task_queue_.empty()) return;
      // Bins first: draining received data keeps upstream nodes unblocked.
      if (!bin_queue_.empty()) {
        item = std::move(bin_queue_.front());
        bin_queue_.pop_front();
        bin_queue_bytes_ -= item.payload.size();
        bin_queue_depth_g_->set(static_cast<int64_t>(bin_queue_.size()));
        bin_queue_bytes_g_->set(static_cast<int64_t>(bin_queue_bytes_));
        sched_space_.notify_one();
        have_item = true;
      } else {
        task = std::move(task_queue_.front());
        task_queue_.pop_front();
      }
    }
    if (have_item) {
      if (item.is_control) {
        process_control(item);
      } else {
        process_bin(item);
      }
    } else {
      task();
    }
  }
}

void NodeRuntime::process_bin(const QueueItem& item) {
  auto job = current_job();
  if (!job) return;
  BinView view(item.payload);
  if (view.job_epoch() != job->epoch) return;
  const GraphEdge& edge = job->graph->edge(view.edge());
  internal::FlowletState& fs = *job->flowlets[edge.dst];

  // Injected task crash: happens at task start, before any emission or state
  // mutation, so a retry redoes the bin cleanly. The retry path keeps the
  // flowlet's pending_bins reference - completion cannot race past a bin
  // that is merely waiting to be retried.
  if (should_crash_task(edge.dst, item.attempts)) {
    log_event(obs::EventKind::kTaskRetry, edge.dst, item.attempts + 1);
    retry_bin(item);
    return;
  }

  const auto records = static_cast<int64_t>(view.records());
  const char* task_name = fs.kind == FlowletKind::kMap ? "task.map"
                          : fs.kind == FlowletKind::kPartialReduce
                              ? "task.fold"
                              : "task.stage";
  const TimePoint t0 = now();
  {
    obs::TraceSpan span(task_name, "engine.task", node_id(), edge.dst, records);
    switch (fs.kind) {
      case FlowletKind::kMap: {
        TaskContext ctx(this, job.get(), edge.dst);
        auto* map = static_cast<MapFlowlet*>(fs.instance.get());
        KvPair record;
        while (view.next(&record)) map->process(record, ctx);
        break;
      }
      case FlowletKind::kPartialReduce:
        fold_partial_bin(fs, view);
        break;
      case FlowletKind::kReduce:
        stage_reduce_bin(edge.dst, fs, view);
        break;
      case FlowletKind::kLoader:
        HLOG_ERROR << "bin routed to loader flowlet " << edge.dst;
        break;
    }
  }
  const auto task_us = static_cast<uint64_t>((now() - t0).count() / 1000);
  task_us_h_->observe(task_us);
  if (fs.task_us != nullptr) fs.task_us->observe(task_us);
  // Log before the pending_bins decrement becomes visible: completion is
  // only reachable once pending_bins hits zero, so every kBinProcessed
  // event of a flowlet precedes its kFlowletComplete in the log.
  log_event(obs::EventKind::kBinProcessed, edge.dst, records);
  fs.pending_bins.fetch_sub(1);
  maybe_schedule_finish(edge.dst);
}

void NodeRuntime::process_control(const QueueItem& item) {
  auto job = current_job();
  if (!job) return;
  serde::Reader r(item.payload);
  const uint64_t epoch = r.get_varint();
  if (epoch != job->epoch) return;
  const uint64_t kind = r.get_varint();
  const auto flowlet = static_cast<FlowletId>(r.get_varint());
  if (kind != kCtlComplete) return;

  // The completed flowlet is the *source*; each distinct downstream flowlet
  // gains one completed channel (per sending node).
  const GraphNode& src_node = job->graph->flowlet(flowlet);
  std::vector<FlowletId> seen;
  for (EdgeId eid : src_node.out_edges) {
    const FlowletId dst = job->graph->edge(eid).dst;
    if (std::find(seen.begin(), seen.end(), dst) != seen.end()) continue;
    seen.push_back(dst);
    // Log before the channels_done increment becomes visible (same ordering
    // argument as kBinProcessed).
    log_event(obs::EventKind::kChannelComplete, dst,
              static_cast<int64_t>(item.src));
    job->flowlets[dst]->channels_done.fetch_add(1);
    maybe_schedule_finish(dst);
  }
}

// --- loader path -------------------------------------------------------------

void NodeRuntime::run_split_chunk(FlowletId loader, const InputSplit& split,
                                  uint64_t cursor, uint32_t attempt) {
  auto job = current_job();
  if (!job) return;

  if (config_.flow_control_enabled && backpressured()) {
    // The split cursor identifies the parked task: the retry resumes exactly
    // where this invocation stopped.
    defer_task(loader, static_cast<int64_t>(cursor),
               [this, loader, split, cursor, attempt] {
                 run_split_chunk(loader, split, cursor, attempt);
               });
    return;
  }

  // Injected crash at chunk start (after the defer check, so parked tasks do
  // not consume crash slots): the cursor has not advanced, so the retry
  // reloads exactly the same chunk - loaders are pure functions of the
  // cursor.
  if (should_crash_task(loader, attempt)) {
    metrics().counter("engine.task_retries")->inc();
    log_event(obs::EventKind::kTaskRetry, loader, attempt + 1);
    const Duration nap = retry_backoff(attempt);
    submit_task([this, loader, split, cursor, attempt, nap] {
      std::this_thread::sleep_for(nap);
      run_split_chunk(loader, split, cursor, attempt + 1);
    });
    return;
  }

  internal::FlowletState& fs = *job->flowlets[loader];
  auto* ld = static_cast<LoaderFlowlet*>(fs.instance.get());
  uint64_t cur = cursor;
  bool more = false;
  const TimePoint t0 = now();
  {
    obs::TraceSpan span("task.load", "engine.task", node_id(), loader,
                        static_cast<int64_t>(cursor));
    TaskContext ctx(this, job.get(), loader);
    more = ld->load_chunk(split, &cur, ctx);
  }
  const auto chunk_us = static_cast<uint64_t>((now() - t0).count() / 1000);
  task_us_h_->observe(chunk_us);
  if (fs.task_us != nullptr) fs.task_us->observe(chunk_us);
  if (more) {
    submit_task([this, loader, split, cursor = cur] {
      run_split_chunk(loader, split, cursor);
    });
    return;
  }
  if (fs.splits_outstanding.fetch_sub(1) == 1) {
    maybe_schedule_finish(loader);
  }
}

// --- partial reduce ----------------------------------------------------------

void NodeRuntime::fold_partial_bin(internal::FlowletState& fs, BinView& bin) {
  auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
  internal::PartialTable& table = *fs.table;
  const uint32_t num_stripes = static_cast<uint32_t>(table.stripes.size());

  // Fold record by record under the stripe lock; charge each stripe's
  // serialized-update gate once per bin (batched cost model).
  KvPair record;
  std::vector<uint64_t> per_stripe(num_stripes, 0);
  while (bin.next(&record)) {
    const uint32_t si = stripe_of(record.key, num_stripes);
    internal::PartialTable::Stripe& stripe = table.stripes[si];
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      std::string& acc = stripe.acc[std::string(record.key)];
      pr->fold(record.key, record.value, acc);
    }
    ++per_stripe[si];
  }
  uint64_t folds = 0;
  for (uint32_t si = 0; si < num_stripes; ++si) {
    if (per_stripe[si] == 0) continue;
    folds += per_stripe[si];
    table.stripes[si].gate->charge(per_stripe[si]);
  }
  metrics().counter("engine.folds")->add(folds);
}

// --- reduce staging / firing ---------------------------------------------

void NodeRuntime::stage_reduce_bin(FlowletId flowlet, internal::FlowletState& fs,
                                   BinView& bin) {
  KvPair record;
  while (bin.next(&record)) {
    const uint32_t si = stage_of(record.key, config_.reduce_subpartitions);
    internal::ReduceStage& stage = *fs.stages[si];
    uint64_t spill_bytes = 0;
    std::vector<std::pair<std::string, std::string>> to_spill;
    std::string spill_file;
    {
      std::lock_guard<std::mutex> lock(stage.mu);
      stage.records.emplace_back(std::string(record.key), std::string(record.value));
      const uint64_t rec_bytes = record.key.size() + record.value.size() + 16;
      stage.bytes += rec_bytes;
      staged_bytes_.fetch_add(rec_bytes);
      const uint64_t min_spill =
          config_.memory_budget_bytes / (4ull * std::max(1u, config_.reduce_subpartitions));
      if (staged_bytes_.load() > config_.memory_budget_bytes &&
          stage.bytes >= min_spill) {
        // Spill this stage: move its records out and write a sorted run.
        to_spill.swap(stage.records);
        spill_bytes = stage.bytes;
        stage.bytes = 0;
        spill_file = spill_path(flowlet, si, stage.next_spill++);
        stage.spill_paths.push_back(spill_file);
      }
    }
    if (!to_spill.empty()) {
      staged_bytes_.fetch_sub(spill_bytes);
      obs::TraceSpan span("spill.write", "engine.spill", node_id(), flowlet,
                          static_cast<int64_t>(spill_bytes));
      std::stable_sort(to_spill.begin(), to_spill.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      storage::RunWriter writer(&node_->store(), spill_file);
      for (const auto& [k, v] : to_spill) writer.add(k, v);
      write_spill_with_retry(writer);
      log_event(obs::EventKind::kSpill, flowlet,
                static_cast<int64_t>(spill_bytes));
    }
  }
}

void NodeRuntime::fire_reduce(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  const uint32_t stages = std::max(1u, config_.reduce_subpartitions);
  fs.reduce_tasks_outstanding.store(stages);
  for (uint32_t si = 0; si < stages; ++si) {
    submit_task([this, flowlet, si] { run_reduce_stage(flowlet, si); });
  }
}

void NodeRuntime::run_reduce_stage(FlowletId flowlet, uint32_t stage_index,
                                   uint32_t attempt) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];

  // Injected crash at stage start: staged records and spill runs are still
  // intact (they are only consumed below), so the retry re-merges the same
  // inputs and emits identical output.
  if (should_crash_task(flowlet, attempt)) {
    metrics().counter("engine.task_retries")->inc();
    log_event(obs::EventKind::kTaskRetry, flowlet, attempt + 1);
    const Duration nap = retry_backoff(attempt);
    submit_task([this, flowlet, stage_index, attempt, nap] {
      std::this_thread::sleep_for(nap);
      run_reduce_stage(flowlet, stage_index, attempt + 1);
    });
    return;
  }

  log_event(obs::EventKind::kReduceStageRun, flowlet,
            static_cast<int64_t>(stage_index));
  internal::ReduceStage& stage = *fs.stages[stage_index];
  auto* red = static_cast<ReduceFlowlet*>(fs.instance.get());

  const TimePoint reduce_t0 = now();
  obs::TraceSpan reduce_span("task.reduce", "engine.task", node_id(), flowlet,
                             static_cast<int64_t>(stage_index));

  // No staging lock needed: every bin was staged (upstream complete) before
  // the reduce fires.
  std::stable_sort(stage.records.begin(), stage.records.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  {
    TaskContext ctx(this, job.get(), flowlet);

    // Merge in-memory records with any spilled sorted runs, group by key,
    // and hand each group to reduce().
    struct Source {
      std::unique_ptr<storage::RunReader> reader;  // null => memory source
      size_t mem_pos = 0;
      std::string_view key, value;
      bool done = false;
    };
    std::vector<Source> sources;
    sources.reserve(stage.spill_paths.size() + 1);
    for (const std::string& path : stage.spill_paths) {
      Source s;
      s.reader = std::make_unique<storage::RunReader>(&node_->store(), path);
      sources.push_back(std::move(s));
    }
    sources.emplace_back();  // in-memory source, last for merge stability

    auto advance = [&](Source& s) {
      if (s.reader) {
        s.done = !s.reader->next(&s.key, &s.value);
      } else if (s.mem_pos < stage.records.size()) {
        s.key = stage.records[s.mem_pos].first;
        s.value = stage.records[s.mem_pos].second;
        ++s.mem_pos;
      } else {
        s.done = true;
      }
    };
    for (auto& s : sources) advance(s);

    std::string current_key;
    std::vector<std::string_view> values;
    bool have_group = false;
    auto flush_group = [&] {
      if (have_group) {
        red->reduce(current_key, values, ctx);
        values.clear();
        have_group = false;
      }
    };

    for (;;) {
      Source* best = nullptr;
      for (auto& s : sources) {
        if (s.done) continue;
        if (best == nullptr || s.key < best->key) best = &s;
      }
      if (best == nullptr) break;
      if (!have_group || best->key != current_key) {
        flush_group();
        current_key.assign(best->key);
        have_group = true;
      }
      values.push_back(best->value);
      advance(*best);
    }
    flush_group();
  }

  // Release staged memory.
  staged_bytes_.fetch_sub(stage.bytes);
  stage.bytes = 0;
  stage.records.clear();
  stage.records.shrink_to_fit();
  for (const std::string& path : stage.spill_paths) {
    (void)node_->store().remove(path);
  }
  stage.spill_paths.clear();

  const auto stage_us =
      static_cast<uint64_t>((now() - reduce_t0).count() / 1000);
  task_us_h_->observe(stage_us);
  if (fs.task_us != nullptr) fs.task_us->observe(stage_us);

  if (fs.reduce_tasks_outstanding.fetch_sub(1) == 1) {
    submit_task([this, flowlet] { run_finish(flowlet); });
  }
}

// --- completion --------------------------------------------------------------

void NodeRuntime::maybe_schedule_finish(FlowletId flowlet) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  if (fs.channels_done.load() < fs.channels_total) return;
  if (fs.pending_bins.load() != 0) return;
  if (fs.kind == FlowletKind::kLoader && fs.splits_outstanding.load() != 0) return;
  if (fs.finish_scheduled.exchange(true)) return;

  // Exactly once per (node, flowlet): the exchange above is the Ready gate.
  log_event(obs::EventKind::kFlowletReady, flowlet);

  if (fs.kind == FlowletKind::kReduce) {
    fire_reduce(flowlet);  // run_finish follows after the last stage task
  } else {
    submit_task([this, flowlet] { run_finish(flowlet); });
  }
}

void NodeRuntime::run_finish(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  obs::TraceSpan span("task.finish", "engine.task", node_id(), flowlet);

  {
    TaskContext ctx(this, job.get(), flowlet);
    if (fs.kind == FlowletKind::kPartialReduce) {
      // Emit accumulated results before the user finish() hook (paper §2:
      // partial reduce outputs only on upstream completion).
      auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
      for (auto& stripe : fs.table->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mu);
        for (auto& [key, acc] : stripe.acc) pr->emit_result(key, acc, ctx);
        stripe.acc.clear();
      }
    }
    fs.instance->finish(ctx);
  }

  // Flush sender-side combine tables of this flowlet's combine out-edges
  // (after finish() so finish-time emissions are combined too).
  const GraphNode& gnode = job->graph->flowlet(flowlet);
  for (EdgeId eid : gnode.out_edges) {
    if (!job->graph->edge(eid).options.combine) continue;
    internal::PartialTable& table = *fs.combine_tables.at(eid);
    for (uint32_t si = 0; si < table.stripes.size(); ++si) {
      flush_combine_stripe(*job, eid, si);
    }
  }

  flowlet_locally_complete(flowlet);
}

void NodeRuntime::flush_combine_stripe(internal::JobState& job, EdgeId edge_id,
                                       uint32_t stripe_index) {
  const GraphEdge& edge = job.graph->edge(edge_id);
  internal::PartialTable::Stripe& stripe =
      job.flowlets[edge.src]->combine_tables.at(edge_id)->stripes[stripe_index];

  std::unordered_map<std::string, std::string> drained;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    drained.swap(stripe.acc);
  }
  if (drained.empty()) return;

  std::map<NodeId, BinBuilder> builders;
  auto send = [&](NodeId dst, BinBuilder& builder) {
    std::string bin = builder.take();
    metrics().counter("engine.bins")->inc();
    metrics().counter("engine.bin_bytes")->add(bin.size());
    enqueue_out(dst, net::msg_type::kEngineBin, std::move(bin));
  };
  for (const auto& [key, acc] : drained) {
    const NodeId dst = partition_of(key, engine_->cluster().size());
    auto [it, inserted] = builders.try_emplace(dst, job.epoch, edge_id);
    it->second.add(key, acc);
    if (it->second.payload_bytes() >= config_.bin_size_bytes) send(dst, it->second);
  }
  for (auto& [dst, builder] : builders) {
    if (!builder.empty()) send(dst, builder);
  }
}

void NodeRuntime::flowlet_locally_complete(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  log_event(obs::EventKind::kFlowletComplete, flowlet);
  fs.complete.store(true);
  broadcast_complete(flowlet);
  const uint32_t done = job->flowlets_complete.fetch_add(1) + 1;
  if (done == job->flowlets.size() && !job->done_signaled.exchange(true)) {
    engine_->node_job_done(node_id());
  }
}

void NodeRuntime::broadcast_complete(FlowletId flowlet) {
  auto job = current_job();
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(job->epoch);
  w.put_varint(kCtlComplete);
  w.put_varint(flowlet);
  log_event(obs::EventKind::kCompleteBroadcast, flowlet,
            static_cast<int64_t>(engine_->cluster().size()));
  std::string payload(buf.view());
  for (uint32_t n = 0; n < engine_->cluster().size(); ++n) {
    enqueue_out(n, net::msg_type::kEngineControl, payload);
  }
}

// --- streaming -----------------------------------------------------------

void NodeRuntime::flush_window(FlowletId flowlet) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  if (fs.kind != FlowletKind::kPartialReduce || fs.complete.load() ||
      fs.finish_scheduled.load()) {
    return;
  }
  auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
  TaskContext ctx(this, job.get(), flowlet);
  for (auto& stripe : fs.table->stripes) {
    std::unordered_map<std::string, std::string> drained;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      drained.swap(stripe.acc);
    }
    for (auto& [key, acc] : drained) pr->emit_result(key, acc, ctx);
  }
}

// --- fault recovery ----------------------------------------------------------

bool NodeRuntime::should_crash_task(FlowletId flowlet, uint32_t attempt) {
  fault::FaultInjector* injector = config_.fault_injector;
  if (injector == nullptr) return false;
  if (!injector->on_task_start(node_id(), flowlet)) return false;
  if (attempt >= injector->plan().max_task_retries) {
    // Past the retry bound the task proceeds anyway (logged): dropping the
    // bin would silently lose data, which no retry policy may do.
    HLOG_ERROR << "node " << node_id() << " flowlet " << flowlet << " crashed "
               << attempt << " times; executing despite injected crash";
    return false;
  }
  return true;
}

Duration NodeRuntime::retry_backoff(uint32_t attempt) const {
  Duration base = millis(1);
  Duration cap = millis(64);
  if (config_.fault_injector != nullptr) {
    base = config_.fault_injector->plan().retry_backoff;
    cap = config_.fault_injector->plan().retry_backoff_cap;
  }
  return backoff_after(base, cap, attempt);
}

void NodeRuntime::retry_bin(const QueueItem& item) {
  metrics().counter("engine.task_retries")->inc();
  const Duration nap = retry_backoff(item.attempts);
  metrics().histogram("engine.retry_backoff_us")->observe(
      static_cast<uint64_t>(nap.count() / 1000));
  QueueItem copy = item;
  ++copy.attempts;
  // Re-enqueue through a task so the bin queue is never wedged by a crashing
  // bin: the worker naps the (bounded) backoff, then pushes the bin back
  // WITHOUT the capacity wait - blocking here could deadlock against the
  // delivery thread, and the item's bytes were budgeted before the pop.
  submit_task([this, item = std::move(copy), nap]() mutable {
    std::this_thread::sleep_for(nap);
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      bin_queue_bytes_ += item.payload.size();
      bin_queue_.push_back(std::move(item));
    }
    sched_cv_.notify_one();
  });
}

void NodeRuntime::write_spill_with_retry(storage::RunWriter& writer) {
  const uint32_t max_retries = config_.fault_injector != nullptr
                                   ? config_.fault_injector->plan().max_write_retries
                                   : 0;
  for (uint32_t attempt = 0;; ++attempt) {
    Result<uint64_t> written = writer.finish();
    if (written.ok()) {
      metrics().counter("engine.spills")->inc();
      metrics().counter("engine.spill_bytes")->add(written.value());
      return;
    }
    if (attempt >= max_retries) {
      // Persistent injected failure: fall back to the infallible write so the
      // job still completes with correct output (and say so loudly).
      HLOG_ERROR << "node " << node_id() << " spill write failed "
                 << (attempt + 1) << " times (" << written.status().ToString()
                 << "); forcing unchecked write";
      const uint64_t bytes = writer.close();
      metrics().counter("engine.spills")->inc();
      metrics().counter("engine.spill_bytes")->add(bytes);
      return;
    }
    metrics().counter("engine.spill_retries")->inc();
    std::this_thread::sleep_for(retry_backoff(attempt));
  }
}

// --- egress --------------------------------------------------------------

void NodeRuntime::enqueue_out(uint32_t dst, uint32_t type, std::string payload) {
  // Reliable shuffle: wrap engine payloads destined for a *remote* node in a
  // sequence-numbered frame and remember it for retransmission until the
  // cumulative ack passes it. Local traffic is never faulted (the transport
  // guarantees this), so it skips the frame overhead entirely.
  if (reliable() && dst != node_id() &&
      (type == net::msg_type::kEngineBin ||
       type == net::msg_type::kEngineControl)) {
    SendChannel& ch = send_channels_.at(dst);
    ByteBuffer buf;
    serde::Writer w(buf);
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      const uint64_t seq = ch.next_seq++;
      w.put_varint(seq);
      w.put_varint(type);
      w.put_bytes(payload);
      SendChannel::Unacked& u = ch.unacked[seq];
      u.frame = std::string(buf.view());
      // Armed for real by the sender thread once the frame leaves the node;
      // until then the frame is in our own outbox and cannot be "lost".
      u.next_resend = TimePoint::max();
      u.attempts = 0;
      frames_sent_c_->inc();
      obs::trace().record_instant("shuffle.send", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
    }
    metrics().gauge("engine.unacked_frames")->inc();
    raw_enqueue_out(dst, net::msg_type::kEngineFrame, std::string(buf.view()));
    return;
  }
  if (type == net::msg_type::kEngineBin && dst != node_id()) {
    obs::trace().record_instant("shuffle.send", "engine.shuffle", node_id(),
                                -1, static_cast<int64_t>(payload.size()));
  }
  raw_enqueue_out(dst, type, std::move(payload));
}

void NodeRuntime::raw_enqueue_out(uint32_t dst, uint32_t type, std::string payload) {
  outbox_bytes_.fetch_add(payload.size());
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    // Acks jump the queue: they are tiny, cumulative (reordering them ahead
    // of data is harmless), and a sender waiting behind megabytes of queued
    // bins would retransmit frames the receiver already holds.
    if (type == net::msg_type::kEngineAck) {
      outbox_.push_front(OutMsg{dst, type, std::move(payload)});
    } else {
      outbox_.push_back(OutMsg{dst, type, std::move(payload)});
    }
  }
  out_cv_.notify_one();
}

void NodeRuntime::sender_loop() {
  // With the reliable layer on, the sender doubles as the retransmission
  // timer: it wakes periodically even with an empty outbox and re-pushes any
  // unacked frames whose resend deadline has passed.
  const bool rel = reliable();
  TimePoint next_check = now() + resend_check_every();
  for (;;) {
    OutMsg msg;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      if (rel) {
        out_cv_.wait_until(lock, next_check, [&] {
          return stopping_.load() || !outbox_.empty();
        });
      } else {
        out_cv_.wait(lock, [&] { return stopping_.load() || !outbox_.empty(); });
      }
      if (stopping_.load() && outbox_.empty()) return;
      if (!outbox_.empty()) {
        msg = std::move(outbox_.front());
        outbox_.pop_front();
        have = true;
      }
    }
    if (have) {
      const uint64_t size = msg.payload.size();
      uint64_t frame_seq = 0;
      bool is_frame = false;
      if (rel && msg.type == net::msg_type::kEngineFrame) {
        serde::Reader r(msg.payload);
        frame_seq = r.get_varint();
        is_frame = true;
      }
      node_->router().endpoint()->send(msg.dst, msg.type, std::move(msg.payload));
      outbox_bytes_.fetch_sub(size);
      if (is_frame) {
        // Arm (or re-arm) the retransmission timer only now that the frame
        // has actually left the node: send() can block for a long time on
        // outbox drain order, NIC serialization, and the receiver's bounded
        // ingress, and none of that time is evidence of loss.
        SendChannel& ch = send_channels_.at(msg.dst);
        std::lock_guard<std::mutex> lock(ch.mu);
        auto it = ch.unacked.find(frame_seq);
        if (it != ch.unacked.end()) {
          it->second.next_resend = now() + resend_timeout(it->second.attempts);
        }
      }
    }
    if (rel && now() >= next_check) {
      resend_due_frames();
      next_check = now() + resend_check_every();
    }
  }
}

Duration NodeRuntime::resend_timeout(uint32_t attempts) const {
  const Duration base = config_.fault_injector != nullptr
                            ? config_.fault_injector->plan().resend_after
                            : millis(150);
  return backoff_after(base, base * 16, attempts);
}

Duration NodeRuntime::resend_check_every() const {
  return std::max<Duration>(resend_timeout(0) / 4, millis(5));
}

void NodeRuntime::resend_due_frames() {
  const TimePoint t = now();
  const uint32_t max_attempts =
      config_.fault_injector != nullptr
          ? config_.fault_injector->plan().max_resend_attempts
          : 30;
  for (uint32_t dst = 0; dst < send_channels_.size(); ++dst) {
    SendChannel& ch = send_channels_[dst];
    std::vector<std::string> due;
    uint64_t lost = 0;
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      for (auto it = ch.unacked.begin(); it != ch.unacked.end();) {
        SendChannel::Unacked& u = it->second;
        if (u.next_resend > t) {
          ++it;
          continue;
        }
        if (u.attempts >= max_attempts) {
          HLOG_ERROR << "node " << node_id() << " frame seq " << it->first
                     << " to node " << dst << " unacked after " << u.attempts
                     << " resends; giving up";
          ++lost;
          it = ch.unacked.erase(it);
          continue;
        }
        ++u.attempts;
        u.next_resend = t + resend_timeout(u.attempts);
        due.push_back(u.frame);
        ++it;
      }
    }
    if (lost != 0) {
      metrics().counter("engine.frames_lost")->add(lost);
      metrics().gauge("engine.unacked_frames")->sub(static_cast<int64_t>(lost));
    }
    for (std::string& frame : due) {
      metrics().counter("engine.resends")->inc();
      obs::trace().record_instant("shuffle.resend", "engine.shuffle",
                                  node_id(), -1,
                                  static_cast<int64_t>(frame.size()));
      raw_enqueue_out(dst, net::msg_type::kEngineFrame, std::move(frame));
    }
  }
}

bool NodeRuntime::backpressured() const {
  return outbox_bytes_.load(std::memory_order_relaxed) >
         config_.flow_control_high_bytes;
}

std::string NodeRuntime::spill_path(FlowletId flowlet, uint32_t stage,
                                    uint64_t n) const {
  auto job = current_job();
  return "engine/spill/e" + std::to_string(job ? job->epoch : 0) + "/f" +
         std::to_string(flowlet) + "/s" + std::to_string(stage) + "/r" +
         std::to_string(n);
}

}  // namespace hamr::engine
