#include "engine/runtime.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"
#include "engine/engine.h"
#include "fault/fault.h"
#include "obs/trace.h"
#include "sort/merge.h"
#include "storage/run_file.h"

namespace hamr::engine {

namespace {

// Control message kinds carried in kEngineControl payloads.
constexpr uint64_t kCtlComplete = 1;

// Sub-partition / stripe selection must be independent of the node-partition
// hash, or all of a node's keys would land in one stage.
uint32_t stage_of(std::string_view key, uint32_t stages) {
  return stages <= 1
             ? 0
             : static_cast<uint32_t>(hash_combine(hash_bytes(key), 0x5743) % stages);
}

uint32_t stripe_of(std::string_view key, uint32_t stripes) {
  return stripes <= 1
             ? 0
             : static_cast<uint32_t>(hash_combine(hash_bytes(key), 0x9d13) % stripes);
}

// Exponential backoff: base doubled per attempt, capped.
Duration backoff_after(Duration base, Duration cap, uint32_t attempt) {
  Duration d = base;
  for (uint32_t i = 0; i < attempt && d < cap; ++i) d += d;
  return std::min(d, cap);
}

}  // namespace

// ---------------------------------------------------------------------------
// TaskContext: the Context implementation handed to flowlet code for the
// duration of one task. Buffers emissions into per-(edge, destination) bin
// builders - a dense vector indexed by edge * num_nodes + dst, one
// allocation per task instead of a map node per stream - flushing full bins
// immediately and the rest at task end.
// ---------------------------------------------------------------------------
class TaskContext : public Context {
 public:
  TaskContext(NodeRuntime* rt, internal::JobState* job, FlowletId fid,
              bool allow_emit = true)
      : rt_(rt),
        job_(job),
        fid_(fid),
        allow_emit_(allow_emit),
        nodes_(rt->engine_->cluster().size()),
        builders_(job->graph->num_edges() * nodes_) {}

  ~TaskContext() override { flush_all(); }

  void emit(uint32_t port, std::string_view key, std::string_view value) override {
    require_emit();
    const GraphEdge& edge = out_edge(port);
    if (edge.options.combine) {
      combine_emit(edge, key, value);
      return;
    }
    const NodeId dst =
        edge.options.local ? rt_->node_id()
        : edge.options.partitioner
            ? edge.options.partitioner(key, num_nodes()) % num_nodes()
            : partition_of(key, num_nodes());
    if (edge.options.tap) edge.options.tap(dst, key, value);
    add_record(edge.id, dst, key, value);
  }

  void emit_to_node(uint32_t port, NodeId node, std::string_view key,
                    std::string_view value) override {
    require_emit();
    const GraphEdge& edge = out_edge(port);
    const NodeId dst = node % num_nodes();
    if (edge.options.tap) edge.options.tap(dst, key, value);
    add_record(edge.id, dst, key, value);
  }

  void emit_broadcast(uint32_t port, std::string_view key,
                      std::string_view value) override {
    require_emit();
    const GraphEdge& edge = out_edge(port);
    for (NodeId n = 0; n < num_nodes(); ++n) {
      if (edge.options.tap) edge.options.tap(n, key, value);
      add_record(edge.id, n, key, value);
    }
  }

  NodeId node() const override { return rt_->node_id(); }
  uint32_t num_nodes() const override { return rt_->engine_->cluster().size(); }
  uint32_t num_out_ports() const override {
    return static_cast<uint32_t>(job_->graph->flowlet(fid_).out_edges.size());
  }
  kv::KvStore& kv() override { return rt_->engine_->kv(); }
  storage::FileStore& local_store() override { return rt_->node().store(); }
  Metrics& metrics() override { return rt_->metrics(); }
  bool stream_stopping() const override {
    return rt_->streaming_stop_.load(std::memory_order_relaxed);
  }

  void flush_all() {
    for (size_t slot = 0; slot < builders_.size(); ++slot) {
      flush_builder(static_cast<NodeId>(slot % nodes_), builders_[slot]);
    }
    charge_combine_gates();
    flush_record_count();
  }

 private:
  void require_emit() const {
    if (!allow_emit_) {
      throw std::logic_error(
          "Flowlet::start() must not emit records (load/process/finish only)");
    }
  }

  // Emits run once per record; resolving port -> graph edge through two
  // bounds-checked vector hops each time showed up in profiles, so the
  // resolved pointers are cached per port after the first lookup.
  const GraphEdge& out_edge(uint32_t port) {
    if (port < out_edges_.size() && out_edges_[port] != nullptr) {
      return *out_edges_[port];
    }
    const GraphNode& node = job_->graph->flowlet(fid_);
    const GraphEdge& edge = job_->graph->edge(node.out_edges.at(port));
    if (out_edges_.size() <= port) out_edges_.resize(port + 1, nullptr);
    out_edges_[port] = &edge;
    return edge;
  }

  void add_record(EdgeId edge, NodeId dst, std::string_view key,
                  std::string_view value) {
    BinBuilder& builder = builders_[static_cast<size_t>(edge) * nodes_ + dst];
    if (!builder.is_open()) builder.open(job_->epoch, edge, rt_->pool_.get());
    builder.add(key, value);
    // Counted locally and charged to the shared counter per flushed bin /
    // at task end - one atomic per record was measurable on 10^6-record
    // shuffles.
    ++records_pending_;
    if (builder.payload_bytes() >= rt_->config_.bin_size_bytes) {
      flush_builder(dst, builder);
    }
  }

  void flush_builder(NodeId dst, BinBuilder& builder) {
    if (builder.empty()) return;
    flush_record_count();
    // The sealed bin becomes a shared body: transport queues and the
    // retransmission slot all reference these bytes, never copy them.
    std::shared_ptr<std::string> bin = builder.take_shared(rt_->pool_);
    rt_->bins_c_->inc();
    rt_->bin_bytes_c_->add(bin->size());
    rt_->enqueue_out(dst, rt_->bin_type_,
                     net::Payload::with_body(std::string(), std::move(bin)));
  }

  void flush_record_count() {
    if (records_pending_ == 0) return;
    rt_->records_c_->add(records_pending_);
    records_pending_ = 0;
  }

  // Sender-side combining: fold into the node-shared combine table for this
  // edge. The table is shared by all worker threads of the node (one engine
  // instance per node), so updates pay the stripe's serialized-update cost,
  // charged in batch at task end.
  void combine_emit(const GraphEdge& edge, std::string_view key,
                    std::string_view value) {
    internal::FlowletState& src_state = *job_->flowlets[edge.src];
    internal::PartialTable* table = src_state.combine_tables.at(edge.id).get();
    auto* dst_flowlet = static_cast<PartialReduceFlowlet*>(
        job_->flowlets[edge.dst]->instance.get());

    const uint32_t si =
        stripe_of(key, static_cast<uint32_t>(table->stripes.size()));
    internal::PartialTable::Stripe& stripe = table->stripes[si];
    bool overflow = false;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      // Heterogeneous probe: the record's string_view goes straight into the
      // flat table, no per-fold std::string key.
      std::string& acc = stripe.acc.find_or_insert(key);
      dst_flowlet->fold(key, value, acc);
      overflow = stripe.acc.size() > kCombineStripeKeys;
    }
    rt_->combine_folds_c_->inc();
    // Debt is keyed by the gate pointer itself, so the batch charge at task
    // end does not re-resolve graph edge -> table -> stripe per entry.
    combine_gate_debt_[stripe.gate.get()] += 1;
    if (overflow) {
      charge_combine_gates();
      rt_->flush_combine_stripe(*job_, edge.id, si);
    }
  }

  void charge_combine_gates() {
    for (auto& [gate, count] : combine_gate_debt_) gate->charge(count);
    combine_gate_debt_.clear();
  }

  static constexpr size_t kCombineStripeKeys = 4096;

  NodeRuntime* rt_;
  internal::JobState* job_;
  FlowletId fid_;
  bool allow_emit_;
  uint32_t nodes_;
  std::vector<BinBuilder> builders_;  // indexed by edge * nodes_ + dst
  std::vector<const GraphEdge*> out_edges_;  // per-port cache, lazily filled
  uint64_t records_pending_ = 0;
  std::map<RateGate*, uint64_t> combine_gate_debt_;
};

// ---------------------------------------------------------------------------
// NodeRuntime
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Engine* engine, cluster::Node* node,
                         const EngineConfig& config)
    : engine_(engine),
      node_(node),
      config_(config),
      bin_type_(net::msg_type::engine_bin(config.lane)),
      control_type_(net::msg_type::engine_control(config.lane)),
      frame_type_(net::msg_type::engine_frame(config.lane)),
      ack_type_(net::msg_type::engine_ack(config.lane)),
      sched_(config.worker_threads != 0
                 ? config.worker_threads
                 : engine->cluster().config().threads_per_node,
             config.bin_queue_bytes) {
  node_->router().register_type(
      bin_type_, [this](net::Message&& m) { on_bin_message(std::move(m)); });
  node_->router().register_type(
      control_type_,
      [this](net::Message&& m) { on_control_message(std::move(m)); });
  node_->router().register_type(
      frame_type_, [this](net::Message&& m) { on_frame_message(std::move(m)); });
  node_->router().register_type(
      ack_type_, [this](net::Message&& m) { on_ack_message(std::move(m)); });
  // One reliable channel per peer, even when the reliable layer is off (the
  // structs are tiny and the handlers above are always registered).
  send_channels_.resize(engine_->cluster().size());
  recv_channels_.resize(engine_->cluster().size());
  frames_sent_c_ = metrics().counter("engine.frames_sent");
  frames_recv_c_ = metrics().counter("engine.frames_recv");
  records_c_ = metrics().counter("engine.records");
  bins_c_ = metrics().counter("engine.bins");
  bin_bytes_c_ = metrics().counter("engine.bin_bytes");
  combine_folds_c_ = metrics().counter("engine.combine_folds");
  folds_c_ = metrics().counter("engine.folds");
  stalls_c_ = metrics().counter("engine.stalls");
  stall_ns_c_ = metrics().counter("engine.stall_ns");
  task_retries_c_ = metrics().counter("engine.task_retries");
  frame_copies_c_ = metrics().counter("engine.shuffle_frame_copies");
  spill_runs_c_ = metrics().counter("sort.spill_runs");
  stall_us_h_ = metrics().histogram("engine.stall_us");
  task_us_h_ = metrics().histogram("engine.task_us");
  merge_fan_in_h_ = metrics().histogram("sort.merge_fan_in");
  arena_bytes_g_ = metrics().gauge("engine.arena_bytes");
  windows_emitted_c_ = metrics().counter("stream.windows_emitted");
  window_emit_us_h_ = metrics().histogram("stream.window_emit_latency_us");
  wm_lag_us_h_ = metrics().histogram("stream.watermark_lag_us");
  ShardedScheduler::Hooks hooks;
  hooks.steals = metrics().counter("engine.sched_steal");
  hooks.lock_wait_ns = metrics().counter("engine.sched_lock_wait_ns");
  hooks.budget_wait_ns = metrics().counter("engine.bin_queue_wait_ns");
  hooks.depth = metrics().gauge("engine.bin_queue_depth");
  hooks.bytes = metrics().gauge("engine.bin_queue_bytes");
  sched_.set_hooks(hooks);
  pool_->set_metrics(metrics().counter("engine.pool_hits"),
                     metrics().counter("engine.pool_misses"),
                     metrics().gauge("pool.hit_rate"));
  const uint32_t workers = sched_.workers();
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  sender_ = std::thread([this] { sender_loop(); });
}

NodeRuntime::~NodeRuntime() {
  stopping_.store(true);
  sched_.stop();
  out_cv_.notify_all();
  // Under fault plans the transport can still hold delayed duplicates or
  // resends after the job completes; unregistering blocks until in-flight
  // dispatches into this runtime drain (they wake via stopping_ above), and
  // later stragglers are dropped as unroutable instead of hitting freed
  // memory.
  node_->router().unregister_type(bin_type_);
  node_->router().unregister_type(control_type_);
  node_->router().unregister_type(frame_type_);
  node_->router().unregister_type(ack_type_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (sender_.joinable()) sender_.join();
}

bool NodeRuntime::job_cancelled() const { return engine_->cancel_requested(); }

void NodeRuntime::attach_job(std::shared_ptr<internal::JobState> job) {
  std::lock_guard<std::mutex> lock(job_mu_);
  job_ = std::move(job);
  staged_bytes_.store(0);
  streaming_stop_.store(false);
}

std::shared_ptr<internal::JobState> NodeRuntime::current_job() const {
  std::lock_guard<std::mutex> lock(job_mu_);
  return job_;
}

void NodeRuntime::activate_job(
    const std::map<FlowletId, std::vector<InputSplit>>& my_splits) {
  auto job = current_job();
  internal::JobState& js = *job;

  // start() for every flowlet instance, inline and emission-free (enforced).
  for (FlowletId f = 0; f < js.flowlets.size(); ++f) {
    TaskContext ctx(this, &js, f, /*allow_emit=*/false);
    js.flowlets[f]->instance->start(ctx);
  }

  // Record split counts first so completions can't race the last chunk.
  for (const auto& [loader, split_list] : my_splits) {
    js.flowlets[loader]->splits_outstanding.store(split_list.size());
  }
  for (const auto& [loader, split_list] : my_splits) {
    for (const InputSplit& split : split_list) {
      const FlowletId loader_id = loader;
      submit_task([this, loader_id, split] { run_split_chunk(loader_id, split, 0); });
    }
  }

  // Flowlets with no upstream channels and no splits complete immediately.
  for (FlowletId f = 0; f < js.flowlets.size(); ++f) {
    maybe_schedule_finish(f);
  }
}

// --- ingress ---------------------------------------------------------------

void NodeRuntime::on_bin_message(net::Message&& msg) {
  auto job = current_job();
  if (!job) return;
  uint64_t bin_index = 0;
  // Parse only the header to account the pending bin (cheap).
  try {
    BinView view(msg.payload);
    if (view.job_epoch() != job->epoch) return;  // stale job traffic
    const GraphEdge& edge = job->graph->edge(view.edge());
    // Log before the pending_bins increment becomes visible so the event's
    // log position always precedes any completion it could enable.
    log_event(obs::EventKind::kBinEnqueued, edge.dst,
              static_cast<int64_t>(view.records()));
    obs::trace().record_instant("bin.enqueue", "engine.bin", node_id(),
                                edge.dst, static_cast<int64_t>(view.records()));
    job->flowlets[edge.dst]->pending_bins.fetch_add(1);
    // The fetch_add return value is this bin's enqueue index: any watermark
    // barrier armed after this point has armed_target > index, and the close
    // waits for the processed prefix to pass it.
    bin_index = job->flowlets[edge.dst]->bins_enqueued.fetch_add(1);
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed bin: " << e.what();
    return;
  }
  QueueItem item;
  item.src = msg.src;
  item.bin_index = bin_index;
  item.payload = std::move(msg.payload);
  sched_.push_bin(std::move(item));
}

void NodeRuntime::on_control_message(net::Message&& msg) {
  QueueItem item;
  item.is_control = true;
  item.src = msg.src;
  item.payload = std::move(msg.payload);
  sched_.push_bin(std::move(item));
}

// Reliable channel ingress: unwrap the frame, suppress duplicates, stash
// out-of-order arrivals, and hand the in-order prefix to the regular bin /
// control handlers - restoring exactly the per-(src,dst) FIFO the completion
// protocol relies on. The cumulative ack goes out *before* inner delivery:
// delivery can block on the bin-queue budget (receiver backpressure), and a
// stalled ack would make the sender retransmit frames we already hold.
void NodeRuntime::on_frame_message(net::Message&& msg) {
  const uint32_t src = msg.src;
  uint64_t seq = 0;
  uint32_t inner_type = 0;
  std::string inner;
  try {
    serde::Reader r(msg.payload);
    seq = r.get_varint();
    inner_type = static_cast<uint32_t>(r.get_varint());
    inner = std::string(r.get_bytes());
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed frame from " << src << ": "
               << e.what();
    return;
  }

  std::vector<std::pair<uint32_t, std::string>> deliverable;
  uint64_t ack = 0;
  {
    RecvChannel& ch = recv_channels_.at(src);
    std::lock_guard<std::mutex> lock(ch.mu);
    if (seq < ch.next_expected || ch.stash.count(seq) != 0) {
      // Retransmission of a frame we already have (its ack was lost or late).
      metrics().counter("engine.dup_frames")->inc();
      obs::trace().record_instant("shuffle.dup", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
    } else {
      frames_recv_c_->inc();
      obs::trace().record_instant("shuffle.recv", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
      ch.stash.emplace(seq, std::make_pair(inner_type, std::move(inner)));
      for (auto it = ch.stash.find(ch.next_expected); it != ch.stash.end();
           it = ch.stash.find(ch.next_expected)) {
        deliverable.push_back(std::move(it->second));
        ch.stash.erase(it);
        ++ch.next_expected;
      }
    }
    ack = ch.next_expected;
  }

  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(ack);
  raw_enqueue_out(src, ack_type_, std::string(buf.view()));

  for (auto& [type, payload] : deliverable) {
    net::Message m;
    m.type = type;
    m.src = src;
    m.payload = std::move(payload);
    if (type == control_type_) {
      on_control_message(std::move(m));
    } else {
      on_bin_message(std::move(m));
    }
  }
}

void NodeRuntime::on_ack_message(net::Message&& msg) {
  uint64_t cum = 0;
  try {
    serde::Reader r(msg.payload);
    cum = r.get_varint();
  } catch (const serde::DecodeError& e) {
    HLOG_ERROR << "node " << node_id() << " malformed ack from " << msg.src << ": "
               << e.what();
    return;
  }
  SendChannel& ch = send_channels_.at(msg.src);
  uint64_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    for (auto it = ch.unacked.begin(); it != ch.unacked.end() && it->first < cum;
         it = ch.unacked.erase(it)) {
      // Dropping the entry releases the frame's shared body; when this was
      // the last reference the buffer's capacity returns to the pool.
      ++erased;
    }
  }
  if (erased != 0) {
    metrics().gauge("engine.unacked_frames")->sub(static_cast<int64_t>(erased));
  }
}

// --- scheduler ---------------------------------------------------------------

void NodeRuntime::submit_task(std::function<void()> task) {
  sched_.push_task(std::move(task));
}

void NodeRuntime::defer_task(FlowletId flowlet, int64_t tag,
                             std::function<void()> task) {
  // Paper §2: a flow-controlled task "stops the current execution
  // immediately and will be scheduled in a later time". Park it on the
  // deadline queue - the worker goes straight back to the scheduler instead
  // of napping, and the sender loop re-submits the task once the retry
  // deadline passes (by which point the outbox it was waiting on has had
  // time to drain).
  stalls_c_->inc();
  log_event(obs::EventKind::kStallBegin, flowlet, tag);
  DeferredTask d;
  d.stall = true;
  d.flowlet = flowlet;
  d.tag = tag;
  d.begin = now();
  d.task = std::move(task);
  schedule_deferred(d.begin + config_.defer_retry, std::move(d));
}

void NodeRuntime::schedule_deferred(TimePoint due, DeferredTask&& d) {
  {
    std::lock_guard<std::mutex> lock(defer_mu_);
    deferred_.emplace(due, std::move(d));
  }
  // Wake the sender (never while holding defer_mu_: the sender nests
  // defer_mu_ inside out_mu_) so it recomputes its wait deadline.
  {
    std::lock_guard<std::mutex> lock(out_mu_);
  }
  out_cv_.notify_one();
}

TimePoint NodeRuntime::next_deferred_deadline() {
  std::lock_guard<std::mutex> lock(defer_mu_);
  return deferred_.empty() ? TimePoint::max() : deferred_.begin()->first;
}

void NodeRuntime::drain_due_deferred() {
  const TimePoint t = now();
  std::vector<DeferredTask> due;
  {
    std::lock_guard<std::mutex> lock(defer_mu_);
    auto it = deferred_.begin();
    while (it != deferred_.end() && it->first <= t) {
      due.push_back(std::move(it->second));
      it = deferred_.erase(it);
    }
  }
  for (DeferredTask& d : due) {
    if (d.stall) {
      const Duration stalled = t - d.begin;
      stall_ns_c_->add(static_cast<uint64_t>(stalled.count()));
      stall_us_h_->observe(static_cast<uint64_t>(stalled.count() / 1000));
      obs::trace().record_span("flow.stall", "engine.flow", node_id(),
                               d.flowlet, d.tag, d.begin, t);
      // StallEnd is logged before the task is re-queued, so in every legal
      // log each stall interval of a (flowlet, tag) task closes before that
      // task can run again.
      log_event(obs::EventKind::kStallEnd, d.flowlet, d.tag);
    }
    submit_task(std::move(d.task));
  }
}

void NodeRuntime::worker_loop(uint32_t self) {
  // Batched pop: one shard-lock acquisition covers a run of items, and the
  // batch is in-order from one shard, so per-sender FIFO survives. 32 bins
  // of backlog per wakeup amortizes the scheduler's per-item costs without
  // holding work hostage from thieves for long.
  constexpr size_t kBatch = 32;
  std::vector<ShardedScheduler::Work> batch;
  batch.reserve(kBatch);
  while (sched_.next_batch(self, &batch, kBatch) > 0) {
    for (ShardedScheduler::Work& work : batch) {
      if (work.is_item) {
        if (work.item.is_control) {
          process_control(work.item);
        } else {
          process_bin(work.item);
        }
        // Recycle the payload buffer (retry paths copied what they needed).
        pool_->release(std::move(work.item.payload));
        work.item.payload.clear();
      } else {
        work.task();
        work.task = nullptr;  // release captures before the next blocking pop
      }
    }
    batch.clear();
  }
}

void NodeRuntime::process_bin(const QueueItem& item) {
  auto job = current_job();
  if (!job) return;
  BinView view(item.payload);
  if (view.job_epoch() != job->epoch) return;
  const GraphEdge& edge = job->graph->edge(view.edge());
  internal::FlowletState& fs = *job->flowlets[edge.dst];

  // Cancelled job: drain the bin without processing it. The completion
  // bookkeeping below still runs so the shutdown cascade reaches every node.
  if (job_cancelled()) {
    log_event(obs::EventKind::kBinProcessed, edge.dst, 0);
    if (fs.stream_windowed) mark_bin_done(fs, item.bin_index);
    fs.pending_bins.fetch_sub(1);
    maybe_schedule_finish(edge.dst);
    return;
  }

  // Injected task crash: happens at task start, before any emission or state
  // mutation, so a retry redoes the bin cleanly. The retry path keeps the
  // flowlet's pending_bins reference - completion cannot race past a bin
  // that is merely waiting to be retried.
  if (should_crash_task(edge.dst, item.attempts)) {
    log_event(obs::EventKind::kTaskRetry, edge.dst, item.attempts + 1);
    retry_bin(item);
    return;
  }

  const auto records = static_cast<int64_t>(view.records());
  const char* task_name = fs.kind == FlowletKind::kMap ? "task.map"
                          : fs.kind == FlowletKind::kPartialReduce
                              ? "task.fold"
                              : "task.stage";
  const TimePoint t0 = now();
  {
    obs::TraceSpan span(task_name, "engine.task", node_id(), edge.dst, records);
    switch (fs.kind) {
      case FlowletKind::kMap: {
        TaskContext ctx(this, job.get(), edge.dst);
        auto* map = static_cast<MapFlowlet*>(fs.instance.get());
        KvPair record;
        while (view.next(&record)) map->process(record, ctx);
        break;
      }
      case FlowletKind::kPartialReduce:
        fold_partial_bin(edge.dst, fs, view);
        break;
      case FlowletKind::kReduce:
        stage_reduce_bin(edge.dst, fs, view);
        break;
      case FlowletKind::kLoader:
        HLOG_ERROR << "bin routed to loader flowlet " << edge.dst;
        break;
    }
  }
  const auto task_us = static_cast<uint64_t>((now() - t0).count() / 1000);
  task_us_h_->observe(task_us);
  if (fs.task_us != nullptr) fs.task_us->observe(task_us);
  // Log before the pending_bins decrement becomes visible: completion is
  // only reachable once pending_bins hits zero, so every kBinProcessed
  // event of a flowlet precedes its kFlowletComplete in the log.
  log_event(obs::EventKind::kBinProcessed, edge.dst, records);
  if (fs.stream_windowed) mark_bin_done(fs, item.bin_index);
  fs.pending_bins.fetch_sub(1);
  maybe_schedule_finish(edge.dst);
  // This completion may be the one that satisfies an armed watermark barrier.
  if (fs.stream_windowed) maybe_close_event_windows(edge.dst);
}

void NodeRuntime::process_control(const QueueItem& item) {
  auto job = current_job();
  if (!job) return;
  serde::Reader r(item.payload);
  const uint64_t epoch = r.get_varint();
  if (epoch != job->epoch) return;
  const uint64_t kind = r.get_varint();
  const auto flowlet = static_cast<FlowletId>(r.get_varint());
  if (kind != kCtlComplete) return;

  // The completed flowlet is the *source*; each distinct downstream flowlet
  // gains one completed channel (per sending node).
  const GraphNode& src_node = job->graph->flowlet(flowlet);
  std::vector<FlowletId> seen;
  for (EdgeId eid : src_node.out_edges) {
    const FlowletId dst = job->graph->edge(eid).dst;
    if (std::find(seen.begin(), seen.end(), dst) != seen.end()) continue;
    seen.push_back(dst);
    // Log before the channels_done increment becomes visible (same ordering
    // argument as kBinProcessed).
    log_event(obs::EventKind::kChannelComplete, dst,
              static_cast<int64_t>(item.src));
    job->flowlets[dst]->channels_done.fetch_add(1);
    maybe_schedule_finish(dst);
  }
}

// --- loader path -------------------------------------------------------------

void NodeRuntime::run_split_chunk(FlowletId loader, const InputSplit& split,
                                  uint64_t cursor, uint32_t attempt) {
  auto job = current_job();
  if (!job) return;

  // Cancelled job: abandon the split. The chunk chain is the split's only
  // live task, so the completion decrement fires exactly once here.
  if (job_cancelled()) {
    internal::FlowletState& cfs = *job->flowlets[loader];
    if (cfs.splits_outstanding.fetch_sub(1) == 1) {
      maybe_schedule_finish(loader);
    }
    return;
  }

  if (config_.flow_control_enabled && backpressured()) {
    // The split cursor identifies the parked task: the retry resumes exactly
    // where this invocation stopped.
    defer_task(loader, static_cast<int64_t>(cursor),
               [this, loader, split, cursor, attempt] {
                 run_split_chunk(loader, split, cursor, attempt);
               });
    return;
  }

  // Injected crash at chunk start (after the defer check, so parked tasks do
  // not consume crash slots): the cursor has not advanced, so the retry
  // reloads exactly the same chunk - loaders are pure functions of the
  // cursor.
  if (should_crash_task(loader, attempt)) {
    task_retries_c_->inc();
    log_event(obs::EventKind::kTaskRetry, loader, attempt + 1);
    // The backoff waits on the deferred queue, not on this worker thread.
    DeferredTask d;
    d.task = [this, loader, split, cursor, attempt] {
      run_split_chunk(loader, split, cursor, attempt + 1);
    };
    schedule_deferred(now() + retry_backoff(attempt), std::move(d));
    return;
  }

  internal::FlowletState& fs = *job->flowlets[loader];
  auto* ld = static_cast<LoaderFlowlet*>(fs.instance.get());
  uint64_t cur = cursor;
  bool more = false;
  const TimePoint t0 = now();
  {
    obs::TraceSpan span("task.load", "engine.task", node_id(), loader,
                        static_cast<int64_t>(cursor));
    TaskContext ctx(this, job.get(), loader);
    more = ld->load_chunk(split, &cur, ctx);
  }
  const auto chunk_us = static_cast<uint64_t>((now() - t0).count() / 1000);
  task_us_h_->observe(chunk_us);
  if (fs.task_us != nullptr) fs.task_us->observe(chunk_us);
  if (more) {
    submit_task([this, loader, split, cursor = cur] {
      run_split_chunk(loader, split, cursor);
    });
    return;
  }
  if (fs.splits_outstanding.fetch_sub(1) == 1) {
    maybe_schedule_finish(loader);
  }
}

// --- partial reduce ----------------------------------------------------------

void NodeRuntime::fold_partial_bin(FlowletId flowlet, internal::FlowletState& fs,
                                   BinView& bin) {
  auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
  internal::PartialTable& table = *fs.table;
  const uint32_t num_stripes = static_cast<uint32_t>(table.stripes.size());

  // Fold record by record under the stripe lock; charge each stripe's
  // serialized-update gate once per bin (batched cost model). Windowed
  // flowlets route in-band watermark punctuation around the table (handled
  // after the loop, outside any stripe lock).
  KvPair record;
  std::vector<uint64_t> per_stripe(num_stripes, 0);
  int64_t aligned = INT64_MIN;
  while (bin.next(&record)) {
    if (fs.stream_windowed && pr->is_punctuation(record.key)) {
      const int64_t w = pr->on_punctuation(record.key, record.value);
      if (w > aligned) aligned = w;
      continue;
    }
    const uint32_t si = stripe_of(record.key, num_stripes);
    internal::PartialTable::Stripe& stripe = table.stripes[si];
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      // Heterogeneous probe: no std::string key materialized per fold.
      std::string& acc = stripe.acc.find_or_insert(record.key);
      pr->fold(record.key, record.value, acc);
    }
    ++per_stripe[si];
  }
  uint64_t folds = 0;
  for (uint32_t si = 0; si < num_stripes; ++si) {
    if (per_stripe[si] == 0) continue;
    folds += per_stripe[si];
    table.stripes[si].gate->charge(per_stripe[si]);
  }
  folds_c_->add(folds);

  if (!fs.stream_windowed) return;

  // Log windows first opened by this bin, then arm the close barrier if the
  // operator watermark advanced. kWindowOpen is logged before the bin's
  // pending_bins decrement, and any close covering these windows needs that
  // decrement, so in every legal log open precedes emit for the same end.
  std::vector<int64_t> opened;
  pr->take_opened_windows(&opened);
  if (opened.empty() && aligned == INT64_MIN) return;
  std::lock_guard<std::mutex> lock(fs.wm_mu);
  for (const int64_t end : opened) {
    if (end > fs.max_open_end) fs.max_open_end = end;
    log_event(obs::EventKind::kWindowOpen, flowlet, end);
  }
  if (aligned > fs.armed_watermark && aligned > fs.closed_watermark) {
    fs.armed_watermark = aligned;
    // Channel FIFO guarantees every event covered by this watermark was
    // enqueued before the punctuation that carried it, so this snapshot
    // covers them all (plus possibly later bins - a late close is safe).
    fs.armed_target = fs.bins_enqueued.load();
    fs.armed_at = now();
    log_event(obs::EventKind::kWatermarkAdvance, flowlet, aligned);
    if (fs.max_open_end != INT64_MIN && aligned != INT64_MAX) {
      const int64_t lag = fs.max_open_end > aligned ? fs.max_open_end - aligned : 0;
      wm_lag_us_h_->observe(static_cast<uint64_t>(lag));
    }
  }
}

// --- reduce staging / firing ---------------------------------------------

void NodeRuntime::stage_reduce_bin(FlowletId flowlet, internal::FlowletState& fs,
                                   BinView& bin) {
  // Bucket the bin's records by sub-partition first, then stage each bucket
  // under a single lock acquisition. Bins carry hundreds of records, and the
  // per-record lock/unlock plus spill bookkeeping used to dominate the
  // shuffle receive path. Record views stay valid while `bin` is alive.
  const uint32_t num_stages = std::max(1u, config_.reduce_subpartitions);
  thread_local std::vector<std::vector<KvPair>> buckets;
  if (buckets.size() < num_stages) buckets.resize(num_stages);
  KvPair record;
  while (bin.next(&record)) {
    buckets[stage_of(record.key, config_.reduce_subpartitions)].push_back(record);
  }

  for (uint32_t si = 0; si < num_stages; ++si) {
    std::vector<KvPair>& bucket = buckets[si];
    if (bucket.empty()) continue;
    internal::ReduceStage& stage = *fs.stages[si];
    uint64_t batch_bytes = 0;
    for (const KvPair& r : bucket) {
      batch_bytes += r.key.size() + r.value.size() + 16;
    }
    uint64_t spill_bytes = 0;
    Arena spill_arena;
    std::vector<internal::ReduceStage::Rec> to_spill;
    std::string spill_file;
    {
      std::lock_guard<std::mutex> lock(stage.mu);
      for (const KvPair& r : bucket) {
        // One arena bump holds key and value contiguously; the index entry
        // caches an 8-byte key prefix so the pre-reduce sort is mostly
        // integer compares.
        char* data = stage.arena.alloc(r.key.size() + r.value.size());
        std::memcpy(data, r.key.data(), r.key.size());
        std::memcpy(data + r.key.size(), r.value.data(), r.value.size());
        internal::ReduceStage::Rec rec;
        rec.prefix = internal::key_prefix(r.key);
        rec.key_len = static_cast<uint32_t>(r.key.size());
        rec.value_len = static_cast<uint32_t>(r.value.size());
        rec.data = data;
        stage.index.push_back(rec);
      }
      stage.bytes += batch_bytes;
      staged_bytes_.fetch_add(batch_bytes);
      // Spill check per batch, not per record: the budget can overshoot by
      // at most one bin's worth of records.
      const uint64_t min_spill =
          config_.memory_budget_bytes / (4ull * std::max(1u, config_.reduce_subpartitions));
      if (staged_bytes_.load() > config_.memory_budget_bytes &&
          stage.bytes >= min_spill) {
        // Spill this stage: move its arena + index out wholesale and re-arm
        // an empty arena (the gauge charge moves with the old one).
        spill_arena = std::move(stage.arena);
        stage.arena = Arena(arena_bytes_g_);
        to_spill.swap(stage.index);
        spill_bytes = stage.bytes;
        stage.bytes = 0;
        spill_file = spill_path(flowlet, si, stage.next_spill++);
        stage.spill_paths.push_back(spill_file);
      }
    }
    bucket.clear();
    if (!to_spill.empty()) {
      staged_bytes_.fetch_sub(spill_bytes);
      obs::TraceSpan span("spill.write", "engine.spill", node_id(), flowlet,
                          static_cast<int64_t>(spill_bytes));
      std::stable_sort(to_spill.begin(), to_spill.end(),
                       internal::reduce_rec_less);
      storage::RunWriter writer(&node_->store(), spill_file);
      for (const internal::ReduceStage::Rec& r : to_spill) {
        writer.add(r.key(), r.value());
      }
      write_spill_with_retry(writer);
      spill_runs_c_->inc();
      log_event(obs::EventKind::kSpill, flowlet,
                static_cast<int64_t>(spill_bytes));
    }
  }
}

void NodeRuntime::fire_reduce(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  const uint32_t stages = std::max(1u, config_.reduce_subpartitions);
  fs.reduce_tasks_outstanding.store(stages);
  for (uint32_t si = 0; si < stages; ++si) {
    submit_task([this, flowlet, si] { run_reduce_stage(flowlet, si); });
  }
}

void NodeRuntime::run_reduce_stage(FlowletId flowlet, uint32_t stage_index,
                                   uint32_t attempt) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];

  // Injected crash at stage start: staged records and spill runs are still
  // intact (they are only consumed below), so the retry re-merges the same
  // inputs and emits identical output.
  if (should_crash_task(flowlet, attempt)) {
    task_retries_c_->inc();
    log_event(obs::EventKind::kTaskRetry, flowlet, attempt + 1);
    DeferredTask d;
    d.task = [this, flowlet, stage_index, attempt] {
      run_reduce_stage(flowlet, stage_index, attempt + 1);
    };
    schedule_deferred(now() + retry_backoff(attempt), std::move(d));
    return;
  }

  log_event(obs::EventKind::kReduceStageRun, flowlet,
            static_cast<int64_t>(stage_index));
  internal::ReduceStage& stage = *fs.stages[stage_index];
  auto* red = static_cast<ReduceFlowlet*>(fs.instance.get());

  // Cancelled job: skip the sort/merge but still release staged memory,
  // drop spill runs, and cascade so the completion protocol finishes.
  if (job_cancelled()) {
    staged_bytes_.fetch_sub(stage.bytes);
    stage.bytes = 0;
    stage.index.clear();
    stage.index.shrink_to_fit();
    stage.arena.clear();
    for (const std::string& path : stage.spill_paths) {
      (void)node_->store().remove(path);
    }
    stage.spill_paths.clear();
    if (fs.reduce_tasks_outstanding.fetch_sub(1) == 1) {
      submit_task([this, flowlet] { run_finish(flowlet); });
    }
    return;
  }

  const TimePoint reduce_t0 = now();
  obs::TraceSpan reduce_span("task.reduce", "engine.task", node_id(), flowlet,
                             static_cast<int64_t>(stage_index));

  // No staging lock needed: every bin was staged (upstream complete) before
  // the reduce fires. Stable: same-key records keep arrival order, and the
  // cached prefixes make most comparisons a single integer compare.
  std::stable_sort(stage.index.begin(), stage.index.end(),
                   internal::reduce_rec_less);

  {
    TaskContext ctx(this, job.get(), flowlet);

    // Merge in-memory records with any spilled sorted runs through a loser
    // tree (O(log k) per record instead of a linear best-of-k scan), group
    // by key, and hand each group to reduce(). The in-memory run goes last:
    // the tree breaks ties toward smaller source indices, so spill order
    // followed by memory reproduces stable arrival order.
    struct Source {
      std::unique_ptr<storage::RunReader> reader;  // null => memory source
      const std::vector<internal::ReduceStage::Rec>* mem = nullptr;
      size_t mem_pos = 0;
      bool next(std::string_view* key, std::string_view* value) {
        if (reader) return reader->next(key, value);
        if (mem_pos >= mem->size()) return false;
        const internal::ReduceStage::Rec& r = (*mem)[mem_pos++];
        *key = r.key();
        *value = r.value();
        return true;
      }
    };
    std::vector<Source> sources;
    sources.reserve(stage.spill_paths.size() + 1);
    for (const std::string& path : stage.spill_paths) {
      Source s;
      s.reader = std::make_unique<storage::RunReader>(&node_->store(), path);
      sources.push_back(std::move(s));
    }
    Source mem;
    mem.mem = &stage.index;
    sources.push_back(std::move(mem));
    merge_fan_in_h_->observe(sources.size());
    sort::LoserTree<Source> tree(std::move(sources));

    std::string current_key;
    std::vector<std::string_view> values;
    bool have_group = false;
    auto flush_group = [&] {
      if (have_group) {
        red->reduce(current_key, values, ctx);
        values.clear();
        have_group = false;
      }
    };

    // The accumulated value views stay valid across tree.next() calls: run
    // readers and the arena index both back their views with storage that
    // lives for the whole merge.
    std::string_view key, value;
    while (tree.next(&key, &value)) {
      if (!have_group || key != current_key) {
        flush_group();
        current_key.assign(key);
        have_group = true;
      }
      values.push_back(value);
    }
    flush_group();
  }

  // Release staged memory (the arena drops its chunks wholesale and
  // un-charges engine.arena_bytes).
  staged_bytes_.fetch_sub(stage.bytes);
  stage.bytes = 0;
  stage.index.clear();
  stage.index.shrink_to_fit();
  stage.arena.clear();
  for (const std::string& path : stage.spill_paths) {
    (void)node_->store().remove(path);
  }
  stage.spill_paths.clear();

  const auto stage_us =
      static_cast<uint64_t>((now() - reduce_t0).count() / 1000);
  task_us_h_->observe(stage_us);
  if (fs.task_us != nullptr) fs.task_us->observe(stage_us);

  if (fs.reduce_tasks_outstanding.fetch_sub(1) == 1) {
    submit_task([this, flowlet] { run_finish(flowlet); });
  }
}

// --- completion --------------------------------------------------------------

void NodeRuntime::maybe_schedule_finish(FlowletId flowlet) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  if (fs.channels_done.load() < fs.channels_total) return;
  if (fs.pending_bins.load() != 0) return;
  if (fs.kind == FlowletKind::kLoader && fs.splits_outstanding.load() != 0) return;
  if (fs.finish_scheduled.exchange(true)) return;

  // Exactly once per (node, flowlet): the exchange above is the Ready gate.
  log_event(obs::EventKind::kFlowletReady, flowlet);

  if (fs.kind == FlowletKind::kReduce) {
    fire_reduce(flowlet);  // run_finish follows after the last stage task
  } else {
    submit_task([this, flowlet] { run_finish(flowlet); });
  }
}

void NodeRuntime::run_finish(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  obs::TraceSpan span("task.finish", "engine.task", node_id(), flowlet);

  const bool cancelled = job_cancelled();
  if (!cancelled) {
    TaskContext ctx(this, job.get(), flowlet);
    if (fs.kind == FlowletKind::kPartialReduce) {
      // Emit accumulated results before the user finish() hook (paper §2:
      // partial reduce outputs only on upstream completion). For a windowed
      // flowlet this is the still-open remainder - every window already
      // closed by a watermark was drained out of the table, so the union of
      // mid-stream closes and this final flush is exactly-once. wm_mu
      // serializes against a close still in flight.
      auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
      std::unique_lock<std::mutex> wm_lock;
      if (fs.stream_windowed) {
        wm_lock = std::unique_lock<std::mutex>(fs.wm_mu);
      }
      std::vector<int64_t> ends;
      for (auto& stripe : fs.table->stripes) {
        std::lock_guard<std::mutex> lock(stripe.mu);
        for (auto& e : stripe.acc.entries()) {
          if (fs.stream_windowed) {
            const int64_t end = pr->window_end_of(e.key);
            if (end != INT64_MIN &&
                std::find(ends.begin(), ends.end(), end) == ends.end()) {
              ends.push_back(end);
            }
          }
          pr->emit_result(e.key, e.acc, ctx);
        }
        stripe.acc.clear();
      }
      // kFlowletReady already precedes these in the (node, flowlet) stream,
      // which is the ordering invariant finish-path emissions satisfy.
      for (const int64_t end : ends) {
        log_event(obs::EventKind::kWindowEmit, flowlet, end);
      }
      if (!ends.empty()) windows_emitted_c_->add(ends.size());
    }
    fs.instance->finish(ctx);
  }

  // Flush sender-side combine tables of this flowlet's combine out-edges
  // (after finish() so finish-time emissions are combined too).
  const GraphNode& gnode = job->graph->flowlet(flowlet);
  for (EdgeId eid : gnode.out_edges) {
    if (cancelled || !job->graph->edge(eid).options.combine) continue;
    internal::PartialTable& table = *fs.combine_tables.at(eid);
    for (uint32_t si = 0; si < table.stripes.size(); ++si) {
      flush_combine_stripe(*job, eid, si);
    }
  }

  flowlet_locally_complete(flowlet);
}

void NodeRuntime::flush_combine_stripe(internal::JobState& job, EdgeId edge_id,
                                       uint32_t stripe_index) {
  const GraphEdge& edge = job.graph->edge(edge_id);
  internal::PartialTable::Stripe& stripe =
      job.flowlets[edge.src]->combine_tables.at(edge_id)->stripes[stripe_index];

  // Move the whole table out under the lock (entries, slots, and the key
  // arena with its gauge charge travel together) and re-arm an empty one.
  FlatAccTable drained;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.acc.empty()) return;
    drained = std::move(stripe.acc);
    stripe.acc = FlatAccTable(arena_bytes_g_);
  }

  // Dense per-destination builders (one vector, no map nodes), pooled output
  // buffers.
  const uint32_t nodes = engine_->cluster().size();
  std::vector<BinBuilder> builders(nodes);
  auto send = [&](NodeId dst, BinBuilder& builder) {
    std::shared_ptr<std::string> bin = builder.take_shared(pool_);
    bins_c_->inc();
    bin_bytes_c_->add(bin->size());
    enqueue_out(dst, bin_type_,
                net::Payload::with_body(std::string(), std::move(bin)));
  };
  for (const auto& e : drained.entries()) {
    const NodeId dst = edge.options.partitioner
                           ? edge.options.partitioner(e.key, nodes) % nodes
                           : partition_of(e.key, nodes);
    BinBuilder& builder = builders[dst];
    if (!builder.is_open()) builder.open(job.epoch, edge_id, pool_.get());
    builder.add(e.key, e.acc);
    if (builder.payload_bytes() >= config_.bin_size_bytes) send(dst, builder);
  }
  for (NodeId dst = 0; dst < nodes; ++dst) {
    if (!builders[dst].empty()) send(dst, builders[dst]);
  }
}

void NodeRuntime::flowlet_locally_complete(FlowletId flowlet) {
  auto job = current_job();
  internal::FlowletState& fs = *job->flowlets[flowlet];
  log_event(obs::EventKind::kFlowletComplete, flowlet);
  fs.complete.store(true);
  broadcast_complete(flowlet);
  const uint32_t done = job->flowlets_complete.fetch_add(1) + 1;
  if (done == job->flowlets.size() && !job->done_signaled.exchange(true)) {
    engine_->node_job_done(node_id());
  }
}

void NodeRuntime::broadcast_complete(FlowletId flowlet) {
  auto job = current_job();
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(job->epoch);
  w.put_varint(kCtlComplete);
  w.put_varint(flowlet);
  log_event(obs::EventKind::kCompleteBroadcast, flowlet,
            static_cast<int64_t>(engine_->cluster().size()));
  // One shared body serves every destination: each enqueue copies a few
  // header bytes and bumps a refcount instead of duplicating the payload.
  std::shared_ptr<std::string> body = acquire_shared(pool_);
  body->append(buf.view());
  for (uint32_t n = 0; n < engine_->cluster().size(); ++n) {
    enqueue_out(n, control_type_,
                net::Payload::with_body(std::string(), body));
  }
}

// --- streaming -----------------------------------------------------------

void NodeRuntime::flush_window(FlowletId flowlet) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  if (fs.kind != FlowletKind::kPartialReduce || fs.complete.load() ||
      fs.finish_scheduled.load() || job_cancelled()) {
    return;
  }
  // Event-time flowlets close on watermarks only: a processing-time flush
  // here would emit still-open windows and break exactly-once.
  if (fs.stream_windowed) return;
  auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
  TaskContext ctx(this, job.get(), flowlet);
  for (auto& stripe : fs.table->stripes) {
    FlatAccTable drained;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      drained = std::move(stripe.acc);
      stripe.acc = FlatAccTable(arena_bytes_g_);
    }
    for (auto& e : drained.entries()) pr->emit_result(e.key, e.acc, ctx);
  }
}

void NodeRuntime::mark_bin_done(internal::FlowletState& fs, uint64_t index) {
  std::lock_guard<std::mutex> lock(fs.done_mu);
  uint64_t prefix = fs.done_prefix.load(std::memory_order_relaxed);
  if (index != prefix) {
    fs.done_out_of_order.insert(index);
    return;
  }
  ++prefix;
  for (auto it = fs.done_out_of_order.begin();
       it != fs.done_out_of_order.end() && *it == prefix;
       it = fs.done_out_of_order.erase(it)) {
    ++prefix;
  }
  fs.done_prefix.store(prefix, std::memory_order_release);
}

void NodeRuntime::maybe_close_event_windows(FlowletId flowlet) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(fs.wm_mu);
      if (fs.armed_watermark == INT64_MIN) return;
      // Prefix, not count: every bin enqueued before the arm must be done.
      // Out-of-order completions (work stealing, crash-retry backoff) of
      // later bins must not stand in for a parked covered bin.
      if (fs.done_prefix.load(std::memory_order_acquire) < fs.armed_target) {
        return;
      }
    }
    // One closer at a time; a loser's armed state is re-checked by the
    // winner's loop after its close finishes.
    if (fs.close_running.exchange(true)) return;
    int64_t watermark = INT64_MIN;
    TimePoint armed_at{};
    {
      std::lock_guard<std::mutex> lock(fs.wm_mu);
      if (fs.armed_watermark != INT64_MIN &&
          fs.done_prefix.load(std::memory_order_acquire) >= fs.armed_target) {
        watermark = fs.armed_watermark;
        armed_at = fs.armed_at;
        fs.armed_watermark = INT64_MIN;
        if (watermark > fs.closed_watermark) fs.closed_watermark = watermark;
      }
    }
    if (watermark != INT64_MIN) close_event_windows(flowlet, watermark, armed_at);
    fs.close_running.store(false);
    // Loop: a newer watermark may have armed while this close ran.
  }
}

void NodeRuntime::close_event_windows(FlowletId flowlet, int64_t watermark,
                                      TimePoint armed_at) {
  auto job = current_job();
  if (!job) return;
  internal::FlowletState& fs = *job->flowlets[flowlet];
  auto* pr = static_cast<PartialReduceFlowlet*>(fs.instance.get());
  // wm_mu held for the whole close: the finish path takes it around its
  // final emission, so finish can never emit a stripe this close is about to
  // re-insert keepers into (which would lose them).
  std::lock_guard<std::mutex> wm_lock(fs.wm_mu);
  if (fs.complete.load() || fs.finish_scheduled.load() || job_cancelled()) {
    // The finish path owns (or will own) the remaining table contents.
    return;
  }
  TaskContext ctx(this, job.get(), flowlet);
  obs::TraceSpan span("task.window_close", "engine.task", node_id(), flowlet,
                      watermark == INT64_MAX ? -1 : watermark);
  std::vector<int64_t> ends;
  for (auto& stripe : fs.table->stripes) {
    FlatAccTable drained;
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      bool any = false;
      for (const auto& e : stripe.acc.entries()) {
        const int64_t end = pr->window_end_of(e.key);
        if (end != INT64_MIN && end <= watermark) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      // Drain-and-reinsert under the stripe lock: FlatAccTable has no erase,
      // and releasing the lock between drain and reinsert would let a
      // concurrent fold insert a second accumulator for a kept key.
      drained = std::move(stripe.acc);
      stripe.acc = FlatAccTable(arena_bytes_g_);
      for (auto& e : drained.entries()) {
        const int64_t end = pr->window_end_of(e.key);
        if (end != INT64_MIN && end <= watermark) continue;  // closes below
        stripe.acc.find_or_insert(e.key) = std::move(e.acc);
      }
    }
    // Emit outside the stripe lock; `drained` keeps the key arena alive.
    for (auto& e : drained.entries()) {
      const int64_t end = pr->window_end_of(e.key);
      if (end == INT64_MIN || end > watermark) continue;
      pr->emit_result(e.key, e.acc, ctx);
      if (std::find(ends.begin(), ends.end(), end) == ends.end()) {
        ends.push_back(end);
      }
    }
  }
  for (const int64_t end : ends) {
    log_event(obs::EventKind::kWindowEmit, flowlet, end);
  }
  if (!ends.empty()) {
    windows_emitted_c_->add(ends.size());
    window_emit_us_h_->observe(
        static_cast<uint64_t>((now() - armed_at).count() / 1000));
  }
}

// --- fault recovery ----------------------------------------------------------

bool NodeRuntime::should_crash_task(FlowletId flowlet, uint32_t attempt) {
  fault::FaultInjector* injector = config_.fault_injector;
  if (injector == nullptr) return false;
  if (!injector->on_task_start(node_id(), flowlet)) return false;
  if (attempt >= injector->plan().max_task_retries) {
    // Past the retry bound the task proceeds anyway (logged): dropping the
    // bin would silently lose data, which no retry policy may do.
    HLOG_ERROR << "node " << node_id() << " flowlet " << flowlet << " crashed "
               << attempt << " times; executing despite injected crash";
    return false;
  }
  return true;
}

Duration NodeRuntime::retry_backoff(uint32_t attempt) const {
  Duration base = millis(1);
  Duration cap = millis(64);
  if (config_.fault_injector != nullptr) {
    base = config_.fault_injector->plan().retry_backoff;
    cap = config_.fault_injector->plan().retry_backoff_cap;
  }
  return backoff_after(base, cap, attempt);
}

void NodeRuntime::retry_bin(const QueueItem& item) {
  task_retries_c_->inc();
  const Duration nap = retry_backoff(item.attempts);
  metrics().histogram("engine.retry_backoff_us")->observe(
      static_cast<uint64_t>(nap.count() / 1000));
  QueueItem copy = item;
  ++copy.attempts;
  // Park the bin on the deferred queue for the (bounded) backoff - no worker
  // naps - then push it back WITHOUT the capacity wait: blocking there could
  // deadlock against the delivery thread, and the item's bytes re-enter the
  // shared budget via the forced push.
  DeferredTask d;
  d.task = [this, item = std::move(copy)]() mutable {
    sched_.push_bin(std::move(item), /*force=*/true);
  };
  schedule_deferred(now() + nap, std::move(d));
}

void NodeRuntime::write_spill_with_retry(storage::RunWriter& writer) {
  const uint32_t max_retries = config_.fault_injector != nullptr
                                   ? config_.fault_injector->plan().max_write_retries
                                   : 0;
  for (uint32_t attempt = 0;; ++attempt) {
    Result<uint64_t> written = writer.finish();
    if (written.ok()) {
      metrics().counter("engine.spills")->inc();
      metrics().counter("engine.spill_bytes")->add(written.value());
      return;
    }
    if (attempt >= max_retries) {
      // Persistent injected failure: fall back to the infallible write so the
      // job still completes with correct output (and say so loudly).
      HLOG_ERROR << "node " << node_id() << " spill write failed "
                 << (attempt + 1) << " times (" << written.status().ToString()
                 << "); forcing unchecked write";
      const uint64_t bytes = writer.close();
      metrics().counter("engine.spills")->inc();
      metrics().counter("engine.spill_bytes")->add(bytes);
      return;
    }
    metrics().counter("engine.spill_retries")->inc();
    std::this_thread::sleep_for(retry_backoff(attempt));
  }
}

// --- egress --------------------------------------------------------------

void NodeRuntime::enqueue_out(uint32_t dst, uint32_t type, net::Payload payload) {
  // Reliable shuffle: wrap engine payloads destined for a *remote* node in a
  // sequence-numbered frame and remember it for retransmission until the
  // cumulative ack passes it. Local traffic is never faulted (the transport
  // guarantees this), so it skips the frame overhead entirely.
  if (reliable() && dst != node_id() &&
      (type == bin_type_ || type == control_type_)) {
    SendChannel& ch = send_channels_.at(dst);

    // The frame is head + shared body: the head carries the seq/ack header
    // (varint seq | varint type | varint len), the body is the bin's pooled
    // buffer itself. Live send, outbox, and retransmission slot all
    // reference the same bytes. Payloads that arrive without a shared body
    // (raw strings from auxiliary paths) are materialized into one - that
    // copy is what engine.shuffle_frame_copies counts, and the steady-state
    // bin/control path never takes it.
    std::shared_ptr<std::string> body;
    size_t body_off = 0;
    size_t body_len = 0;
    if (payload.has_body() && payload.head().empty()) {
      body_off = payload.body_offset();
      body_len = payload.body_length();
      body = std::move(payload).body();
    } else {
      frame_copies_c_->inc();
      body = to_shared(pool_, std::move(payload).into_string());
      body_len = body->size();
    }

    ByteBuffer buf;
    serde::Writer w(buf);
    uint64_t seq = 0;
    net::Payload frame;
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      seq = ch.next_seq++;
      w.put_varint(seq);
      w.put_varint(type);
      w.put_varint(body_len);
      frame = net::Payload::with_body(std::string(buf.view()), std::move(body),
                                      body_off, body_len);
      SendChannel::Unacked& u = ch.unacked[seq];
      u.frame = frame;
      // Armed for real by the sender thread once the frame leaves the node;
      // until then the frame is in our own outbox and cannot be "lost".
      u.next_resend = TimePoint::max();
      u.attempts = 0;
      frames_sent_c_->inc();
      obs::trace().record_instant("shuffle.send", "engine.shuffle", node_id(),
                                  -1, static_cast<int64_t>(seq));
    }
    metrics().gauge("engine.unacked_frames")->inc();
    raw_enqueue_out(dst, frame_type_, std::move(frame), seq, /*is_frame=*/true);
    return;
  }
  if (type == bin_type_ && dst != node_id()) {
    obs::trace().record_instant("shuffle.send", "engine.shuffle", node_id(),
                                -1, static_cast<int64_t>(payload.size()));
  }
  raw_enqueue_out(dst, type, std::move(payload));
}

void NodeRuntime::raw_enqueue_out(uint32_t dst, uint32_t type,
                                  net::Payload payload, uint64_t frame_seq,
                                  bool is_frame) {
  outbox_bytes_.fetch_add(payload.size());
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    // Acks jump the queue: they are tiny, cumulative (reordering them ahead
    // of data is harmless), and a sender waiting behind megabytes of queued
    // bins would retransmit frames the receiver already holds.
    if (type == ack_type_) {
      outbox_.push_front(OutMsg{dst, type, std::move(payload), frame_seq, is_frame});
    } else {
      outbox_.push_back(OutMsg{dst, type, std::move(payload), frame_seq, is_frame});
    }
  }
  out_cv_.notify_one();
}

void NodeRuntime::sender_loop() {
  // The sender is the node's timer thread as well as its egress drain: with
  // the reliable layer on it wakes periodically to re-push unacked frames,
  // and in all modes it wakes at the earliest deferred-task deadline to move
  // parked tasks (flow-control stalls, crash-retry backoffs) back onto the
  // scheduler - no worker thread ever sleeps a backoff away.
  const bool rel = reliable();
  TimePoint next_check = now() + resend_check_every();
  for (;;) {
    OutMsg msg;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(out_mu_);
      while (!stopping_.load() && outbox_.empty()) {
        // Lock order: out_mu_ then defer_mu_ (schedule_deferred releases
        // defer_mu_ before notifying out_cv_, so there is no inversion).
        TimePoint wake = next_deferred_deadline();
        if (rel) wake = std::min(wake, next_check);
        if (wake == TimePoint::max()) {
          out_cv_.wait(lock);
        } else if (out_cv_.wait_until(lock, wake) == std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_.load() && outbox_.empty()) return;
      if (!outbox_.empty()) {
        msg = std::move(outbox_.front());
        outbox_.pop_front();
        have = true;
      }
    }
    drain_due_deferred();
    if (have) {
      const uint64_t size = msg.payload.size();
      // The frame's seq was stamped at enqueue; no payload re-parse here.
      const uint64_t frame_seq = msg.frame_seq;
      const bool is_frame = rel && msg.is_frame;
      node_->router().endpoint()->send(msg.dst, msg.type, std::move(msg.payload));
      outbox_bytes_.fetch_sub(size);
      if (is_frame) {
        // Arm (or re-arm) the retransmission timer only now that the frame
        // has actually left the node: send() can block for a long time on
        // outbox drain order, NIC serialization, and the receiver's bounded
        // ingress, and none of that time is evidence of loss.
        SendChannel& ch = send_channels_.at(msg.dst);
        std::lock_guard<std::mutex> lock(ch.mu);
        auto it = ch.unacked.find(frame_seq);
        if (it != ch.unacked.end()) {
          it->second.next_resend = now() + resend_timeout(it->second.attempts);
        }
      }
    }
    if (rel && now() >= next_check) {
      resend_due_frames();
      next_check = now() + resend_check_every();
    }
  }
}

Duration NodeRuntime::resend_timeout(uint32_t attempts) const {
  const Duration base = config_.fault_injector != nullptr
                            ? config_.fault_injector->plan().resend_after
                            : millis(150);
  return backoff_after(base, base * 16, attempts);
}

Duration NodeRuntime::resend_check_every() const {
  return std::max<Duration>(resend_timeout(0) / 4, millis(5));
}

void NodeRuntime::resend_due_frames() {
  const TimePoint t = now();
  const uint32_t max_attempts =
      config_.fault_injector != nullptr
          ? config_.fault_injector->plan().max_resend_attempts
          : 30;
  for (uint32_t dst = 0; dst < send_channels_.size(); ++dst) {
    SendChannel& ch = send_channels_[dst];
    // A re-enqueued frame is a Payload copy: a few header bytes plus a
    // refcount bump on the shared body. The bin bytes are never re-copied
    // for retransmission.
    std::vector<std::pair<uint64_t, net::Payload>> due;
    uint64_t lost = 0;
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      for (auto it = ch.unacked.begin(); it != ch.unacked.end();) {
        SendChannel::Unacked& u = it->second;
        if (u.next_resend > t) {
          ++it;
          continue;
        }
        if (u.attempts >= max_attempts) {
          HLOG_ERROR << "node " << node_id() << " frame seq " << it->first
                     << " to node " << dst << " unacked after " << u.attempts
                     << " resends; giving up";
          ++lost;
          it = ch.unacked.erase(it);
          continue;
        }
        ++u.attempts;
        u.next_resend = t + resend_timeout(u.attempts);
        due.emplace_back(it->first, u.frame);
        ++it;
      }
    }
    if (lost != 0) {
      metrics().counter("engine.frames_lost")->add(lost);
      metrics().gauge("engine.unacked_frames")->sub(static_cast<int64_t>(lost));
    }
    for (auto& [seq, frame] : due) {
      metrics().counter("engine.resends")->inc();
      obs::trace().record_instant("shuffle.resend", "engine.shuffle",
                                  node_id(), -1,
                                  static_cast<int64_t>(frame.size()));
      raw_enqueue_out(dst, frame_type_, std::move(frame), seq, /*is_frame=*/true);
    }
  }
}

bool NodeRuntime::backpressured() const {
  return outbox_bytes_.load(std::memory_order_relaxed) >
         config_.flow_control_high_bytes;
}

std::string NodeRuntime::spill_path(FlowletId flowlet, uint32_t stage,
                                    uint64_t n) const {
  auto job = current_job();
  return "engine/spill/l" + std::to_string(config_.lane) + "/e" +
         std::to_string(job ? job->epoch : 0) + "/f" + std::to_string(flowlet) +
         "/s" + std::to_string(stage) + "/r" + std::to_string(n);
}

}  // namespace hamr::engine
