#include "engine/graph.h"

#include <stdexcept>

namespace hamr::engine {

const char* flowlet_kind_name(FlowletKind kind) {
  switch (kind) {
    case FlowletKind::kLoader:
      return "loader";
    case FlowletKind::kMap:
      return "map";
    case FlowletKind::kReduce:
      return "reduce";
    case FlowletKind::kPartialReduce:
      return "partial_reduce";
  }
  return "?";
}

void PartialReduceFlowlet::emit_result(std::string_view key, std::string_view acc,
                                       Context& ctx) {
  if (ctx.num_out_ports() > 0) ctx.emit(0, key, acc);
}

FlowletId FlowletGraph::add(std::string name, FlowletKind kind,
                            FlowletFactory factory) {
  GraphNode node;
  node.id = static_cast<FlowletId>(nodes_.size());
  node.name = std::move(name);
  node.kind = kind;
  node.factory = std::move(factory);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

EdgeId FlowletGraph::connect(FlowletId src, FlowletId dst, EdgeOptions options) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::invalid_argument("connect: unknown flowlet id");
  }
  GraphEdge edge;
  edge.id = static_cast<EdgeId>(edges_.size());
  edge.src = src;
  edge.dst = dst;
  edge.src_port = static_cast<uint32_t>(nodes_[src].out_edges.size());
  edge.options = options;
  edges_.push_back(edge);
  nodes_[src].out_edges.push_back(edge.id);
  nodes_[dst].in_edges.push_back(edge.id);
  return edge.id;
}

void FlowletGraph::validate() const {
  for (const GraphNode& node : nodes_) {
    if (!node.factory) {
      throw std::invalid_argument("flowlet '" + node.name + "' has no factory");
    }
    if (node.kind == FlowletKind::kLoader && !node.in_edges.empty()) {
      throw std::invalid_argument("loader '" + node.name + "' has inputs");
    }
  }
  for (const GraphEdge& edge : edges_) {
    if (edge.options.combine &&
        nodes_[edge.dst].kind != FlowletKind::kPartialReduce) {
      throw std::invalid_argument("combine edge into non-partial-reduce '" +
                                  nodes_[edge.dst].name + "'");
    }
    if (edge.options.combine && edge.options.tap) {
      throw std::invalid_argument(
          "tap on combine edge into '" + nodes_[edge.dst].name +
          "': combined records have no per-record destination");
    }
  }
  // Cycle check == topological sort succeeding.
  (void)topological_order();
}

std::vector<FlowletId> FlowletGraph::topological_order() const {
  std::vector<uint32_t> indegree(nodes_.size(), 0);
  for (const GraphEdge& edge : edges_) ++indegree[edge.dst];

  std::vector<FlowletId> order;
  order.reserve(nodes_.size());
  std::vector<FlowletId> frontier;
  for (const GraphNode& node : nodes_) {
    if (indegree[node.id] == 0) frontier.push_back(node.id);
  }
  while (!frontier.empty()) {
    const FlowletId id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (EdgeId eid : nodes_[id].out_edges) {
      const GraphEdge& edge = edges_[eid];
      if (--indegree[edge.dst] == 0) frontier.push_back(edge.dst);
    }
  }
  if (order.size() != nodes_.size()) {
    throw std::invalid_argument("flowlet graph has a cycle");
  }
  return order;
}

}  // namespace hamr::engine
