#include "engine/engine.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "fault/fault.h"
#include "net/message.h"

namespace hamr::engine {

namespace {

internal::PartialTable* make_table(uint32_t stripes, double gate_rate,
                                   Gauge* arena_gauge) {
  auto* table = new internal::PartialTable();
  table->stripes.resize(stripes == 0 ? 1 : stripes);
  for (auto& stripe : table->stripes) {
    stripe.acc = FlatAccTable(arena_gauge);
    stripe.gate = std::make_unique<RateGate>(gate_rate);
  }
  return table;
}

}  // namespace

Engine::Engine(cluster::Cluster& cluster, EngineConfig config)
    : cluster_(cluster),
      config_(config),
      kv_(cluster, kv::rpc_id::lane_base(config.lane)) {
  if (config_.lane >= net::msg_type::kMaxEngineLanes) {
    throw std::invalid_argument("engine lane out of range");
  }
  runtimes_.reserve(cluster_.size());
  for (uint32_t i = 0; i < cluster_.size(); ++i) {
    runtimes_.push_back(
        std::make_unique<NodeRuntime>(this, &cluster_.node(i), config_));
  }
}

Engine::~Engine() = default;

JobResult Engine::run(const FlowletGraph& graph, const JobInputs& inputs) {
  return run_internal(graph, inputs, Duration::zero(), Duration::zero());
}

JobResult Engine::run_streaming(const FlowletGraph& graph, const JobInputs& inputs,
                                Duration duration, Duration window_every) {
  if (duration <= Duration::zero()) {
    throw std::invalid_argument("streaming duration must be positive");
  }
  return run_internal(graph, inputs, duration, window_every);
}

namespace {

// Releases the single-job slot if run_internal() throws after claiming it
// (e.g. a null factory): without this a failed run would wedge the engine
// with job_running_ stuck true.
class RunGuard {
 public:
  RunGuard(std::mutex& mu, bool& running, std::atomic<bool>& cancel)
      : mu_(mu), running_(running), cancel_(cancel) {}
  ~RunGuard() {
    cancel_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }

 private:
  std::mutex& mu_;
  bool& running_;
  std::atomic<bool>& cancel_;
};

}  // namespace

JobResult Engine::run_internal(const FlowletGraph& graph, const JobInputs& inputs,
                               Duration stream_duration, Duration window_every) {
  graph.validate();
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (job_running_) throw std::logic_error("engine runs one job at a time");
    job_running_ = true;
    nodes_done_ = 0;
    cancel_requested_.store(false, std::memory_order_relaxed);
    drain_requested_.store(false, std::memory_order_relaxed);
    ++epoch_;
  }
  RunGuard guard(done_mu_, job_running_, cancel_requested_);

  const uint32_t num_nodes = cluster_.size();

  // Baseline cluster-wide metrics snapshot; the result reports the delta.
  obs::MetricsSnapshot before;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    before.merge_from(obs::MetricsSnapshot::capture(cluster_.node(n).metrics()));
  }
  const uint64_t faults_before =
      config_.fault_injector != nullptr ? config_.fault_injector->stats().total() : 0;

  // Distinct upstream flowlet count per flowlet (channels arrive per node).
  std::vector<uint32_t> distinct_upstreams(graph.num_flowlets(), 0);
  for (FlowletId f = 0; f < graph.num_flowlets(); ++f) {
    std::set<FlowletId> ups;
    for (EdgeId eid : graph.flowlet(f).in_edges) ups.insert(graph.edge(eid).src);
    distinct_upstreams[f] = static_cast<uint32_t>(ups.size());
  }

  // Phase 1: build and attach per-node job state everywhere, so that the
  // earliest bins from any node already resolve on every other node.
  // The graph is copied into shared ownership: completion broadcasts can
  // still be crossing the fabric after run() returns.
  auto graph_shared = std::make_shared<const FlowletGraph>(graph);
  std::vector<std::shared_ptr<internal::JobState>> jobs(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    auto job = std::make_shared<internal::JobState>();
    job->epoch = epoch_;
    job->graph = graph_shared;
    job->flowlets.reserve(graph.num_flowlets());
    for (FlowletId f = 0; f < graph.num_flowlets(); ++f) {
      const GraphNode& gnode = graph.flowlet(f);
      auto fs = std::make_unique<internal::FlowletState>();
      fs->kind = gnode.kind;
      fs->instance = gnode.factory();
      if (!fs->instance) {
        throw std::invalid_argument("factory for '" + gnode.name + "' returned null");
      }
      // Per-flowlet task latency histogram on this node's registry. Keyed by
      // flowlet id (stable within a graph); accumulates across jobs, but
      // JobResult reports the per-job delta.
      fs->task_us = cluster_.node(n).metrics().histogram(
          "engine.flowlet." + std::to_string(f) + ".task_us");
      fs->channels_total = distinct_upstreams[f] * num_nodes;
      // All of a node's staging arenas (reduce stages, partial-reduce and
      // combine key arenas) report into one engine.arena_bytes gauge.
      Gauge* arena_gauge = cluster_.node(n).metrics().gauge("engine.arena_bytes");
      if (gnode.kind == FlowletKind::kReduce) {
        const uint32_t stages = std::max(1u, config_.reduce_subpartitions);
        for (uint32_t s = 0; s < stages; ++s) {
          fs->stages.push_back(
              std::make_unique<internal::ReduceStage>(arena_gauge));
        }
      }
      if (gnode.kind == FlowletKind::kPartialReduce) {
        fs->table.reset(make_table(config_.partial_reduce_stripes,
                                   config_.shared_update_rate_per_stripe,
                                   arena_gauge));
        // Cached once so the batch fold hot path pays nothing for the
        // event-time windowing hooks.
        fs->stream_windowed =
            static_cast<PartialReduceFlowlet*>(fs->instance.get())
                ->stream_windowed();
      }
      for (EdgeId eid : gnode.out_edges) {
        if (graph.edge(eid).options.combine) {
          fs->combine_tables.emplace(
              eid, std::unique_ptr<internal::PartialTable>(make_table(
                       config_.partial_reduce_stripes,
                       config_.shared_update_rate_per_stripe, arena_gauge)));
        }
      }
      job->flowlets.push_back(std::move(fs));
    }
    jobs[n] = std::move(job);
    runtimes_[n]->attach_job(jobs[n]);
  }

  // Split assignment: every split runs on its preferred node (HAMR reads
  // from local disks, paper §5.1).
  std::vector<std::map<FlowletId, std::vector<InputSplit>>> assignment(num_nodes);
  for (const auto& [loader, splits] : inputs.splits) {
    if (loader >= graph.num_flowlets() ||
        graph.flowlet(loader).kind != FlowletKind::kLoader) {
      throw std::invalid_argument("inputs reference non-loader flowlet " +
                                  std::to_string(loader));
    }
    for (const InputSplit& split : splits) {
      assignment[split.preferred_node % num_nodes][loader].push_back(split);
    }
  }
  // Loaders with no splits at all on a node must still be tracked; the
  // activate path completes them immediately (splits_outstanding == 0).

  Stopwatch watch;

  // Phase 2: activate.
  for (uint32_t n = 0; n < num_nodes; ++n) {
    runtimes_[n]->activate_job(assignment[n]);
  }

  // Streaming: punctuate windows until the duration elapses, then ask the
  // sources to stop; completion cascades exactly as in batch.
  if (stream_duration > Duration::zero()) {
    const TimePoint deadline = now() + stream_duration;
    while (now() < deadline && !cancel_requested() &&
           !drain_requested_.load(std::memory_order_relaxed)) {
      const Duration nap = window_every > Duration::zero()
                               ? std::min(window_every, deadline - now())
                               : deadline - now();
      {
        // Interruptible nap: request_cancel() / request_stream_drain()
        // notify done_cv_ so a cancelled or drained streaming job stops its
        // sources promptly instead of sleeping out the remaining duration.
        std::unique_lock<std::mutex> lock(done_mu_);
        done_cv_.wait_for(lock, nap, [&] {
          return cancel_requested_.load(std::memory_order_relaxed) ||
                 drain_requested_.load(std::memory_order_relaxed);
        });
      }
      if (now() >= deadline || cancel_requested() ||
          drain_requested_.load(std::memory_order_relaxed)) {
        break;
      }
      if (window_every > Duration::zero()) {
        for (uint32_t n = 0; n < num_nodes; ++n) {
          for (FlowletId f = 0; f < graph.num_flowlets(); ++f) {
            if (graph.flowlet(f).kind != FlowletKind::kPartialReduce) continue;
            NodeRuntime* rt = runtimes_[n].get();
            rt->submit_task([rt, f] { rt->flush_window(f); });
          }
        }
      }
    }
    for (auto& rt : runtimes_) rt->request_stream_stop();
  }

  // Wait for every node to report all flowlets complete. (job_running_ stays
  // true until the RunGuard releases it on return.)
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return nodes_done_ == num_nodes; });
  }

  obs::MetricsSnapshot after;
  for (uint32_t n = 0; n < num_nodes; ++n) {
    after.merge_from(obs::MetricsSnapshot::capture(cluster_.node(n).metrics()));
  }

  JobResult result;
  result.cancelled = cancel_requested();
  result.wall_seconds = watch.elapsed_seconds();
  result.metrics = after.delta_since(before);
  const obs::MetricsSnapshot& m = result.metrics;
  result.records_emitted = m.counter("engine.records");
  result.bins_sent = m.counter("engine.bins");
  result.bin_bytes = m.counter("engine.bin_bytes");
  result.spill_bytes = m.counter("engine.spill_bytes");
  result.flow_control_stalls = m.counter("engine.stalls");
  result.flow_control_stall_seconds =
      static_cast<double>(m.counter("engine.stall_ns")) * 1e-9;
  result.task_retries = m.counter("engine.task_retries");
  result.spill_retries = m.counter("engine.spill_retries");
  result.frames_resent = m.counter("engine.resends");
  result.duplicate_frames = m.counter("engine.dup_frames");
  if (config_.fault_injector != nullptr) {
    result.faults_injected = config_.fault_injector->stats().total() - faults_before;
  }
  return result;
}

void Engine::request_cancel() {
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (!job_running_) return;
    cancel_requested_.store(true, std::memory_order_relaxed);
  }
  // Streaming sources observe stream_stopping(); batch tasks check the
  // cancel flag at their next boundary.
  for (auto& rt : runtimes_) rt->request_stream_stop();
  done_cv_.notify_all();
}

bool Engine::request_stream_drain() {
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    if (!job_running_) return false;
    drain_requested_.store(true, std::memory_order_relaxed);
  }
  // Unlike cancel, only the sources stop; all in-flight data still folds and
  // the completion cascade flushes every remaining window downstream.
  for (auto& rt : runtimes_) rt->request_stream_stop();
  done_cv_.notify_all();
  return true;
}

void Engine::node_job_done(uint32_t node) {
  (void)node;
  std::lock_guard<std::mutex> lock(done_mu_);
  ++nodes_done_;
  done_cv_.notify_all();
}

}  // namespace hamr::engine
