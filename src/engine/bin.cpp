#include "engine/bin.h"

namespace hamr::engine {

BinBuilder::BinBuilder(uint64_t job_epoch, EdgeId edge)
    : job_epoch_(job_epoch), edge_(edge), open_(true) {}

void BinBuilder::open(uint64_t job_epoch, EdgeId edge) {
  job_epoch_ = job_epoch;
  edge_ = edge;
  open_ = true;
}

void BinBuilder::add(std::string_view key, std::string_view value) {
  serde::Writer w(buf_);
  w.put_bytes(key);
  w.put_bytes(value);
  ++count_;
}

std::string BinBuilder::take(BufferPool* pool) {
  ByteBuffer header(32);
  serde::Writer w(header);
  w.put_varint(job_epoch_);
  w.put_varint(edge_);
  w.put_varint(count_);
  std::string out = pool != nullptr ? pool->acquire() : std::string();
  out.reserve(header.size() + buf_.size());
  out.append(header.view());
  out.append(buf_.view());
  buf_.clear();
  count_ = 0;
  return out;
}

BinView::BinView(std::string_view data) : data_(data) {
  serde::Reader r(data_);
  job_epoch_ = r.get_varint();
  edge_ = static_cast<EdgeId>(r.get_varint());
  count_ = r.get_varint();
  records_start_ = r.position();
  pos_ = records_start_;
}

bool BinView::next(KvPair* out) {
  if (seen_ >= count_) return false;
  serde::Reader r(data_.substr(pos_));
  out->key = r.get_bytes();
  out->value = r.get_bytes();
  pos_ += r.position();
  ++seen_;
  return true;
}

void BinView::rewind() {
  pos_ = records_start_;
  seen_ = 0;
}

}  // namespace hamr::engine
