#include "engine/bin.h"

namespace hamr::engine {

namespace {

constexpr size_t kCountSlotBytes = 5;

void append_varint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Writes `v` as exactly kCountSlotBytes varint bytes at `pos` (continuation
// bits forced on the leading four so short values still fill the slot).
void patch_padded_varint(std::string* out, size_t pos, uint64_t v) {
  for (size_t i = 0; i + 1 < kCountSlotBytes; ++i) {
    (*out)[pos + i] = static_cast<char>(((v >> (7 * i)) & 0x7f) | 0x80);
  }
  (*out)[pos + kCountSlotBytes - 1] =
      static_cast<char>((v >> (7 * (kCountSlotBytes - 1))) & 0x7f);
}

}  // namespace

BinBuilder::BinBuilder(uint64_t job_epoch, EdgeId edge)
    : job_epoch_(job_epoch), edge_(edge), open_(true) {}

void BinBuilder::open(uint64_t job_epoch, EdgeId edge, BufferPool* pool) {
  job_epoch_ = job_epoch;
  edge_ = edge;
  if (pool != nullptr) pool_ = pool;
  open_ = true;
}

void BinBuilder::ensure_header() {
  if (header_written_) return;
  if (payload_.empty() && pool_ != nullptr) payload_ = pool_->acquire();
  append_varint(&payload_, job_epoch_);
  append_varint(&payload_, edge_);
  count_pos_ = payload_.size();
  payload_.append(kCountSlotBytes, '\0');
  header_written_ = true;
}

void BinBuilder::add(std::string_view key, std::string_view value) {
  ensure_header();
  append_varint(&payload_, key.size());
  payload_.append(key.data(), key.size());
  append_varint(&payload_, value.size());
  payload_.append(value.data(), value.size());
  ++count_;
}

std::string BinBuilder::seal() {
  ensure_header();  // a taken-but-empty bin still carries a valid header
  patch_padded_varint(&payload_, count_pos_, count_);
  std::string out = std::move(payload_);
  payload_.clear();
  header_written_ = false;
  count_ = 0;
  return out;
}

std::string BinBuilder::take(BufferPool* pool) {
  if (pool != nullptr) pool_ = pool;
  return seal();
}

std::shared_ptr<std::string> BinBuilder::take_shared(
    const std::shared_ptr<BufferPool>& pool) {
  if (pool != nullptr) pool_ = pool.get();
  return to_shared(pool, seal());
}

BinView::BinView(std::string_view data) : data_(data) {
  serde::Reader r(data_);
  job_epoch_ = r.get_varint();
  edge_ = static_cast<EdgeId>(r.get_varint());
  count_ = r.get_varint();
  records_start_ = r.position();
  pos_ = records_start_;
}

bool BinView::next(KvPair* out) {
  if (seen_ >= count_) return false;
  serde::Reader r(data_.substr(pos_));
  out->key = r.get_bytes();
  out->value = r.get_bytes();
  pos_ += r.position();
  ++seen_;
  return true;
}

void BinView::rewind() {
  pos_ = records_start_;
  seen_ = 0;
}

}  // namespace hamr::engine
