// FlatAccTable: open-addressing key -> accumulator table for partial-reduce
// and sender-side combine stripes.
//
// The previous unordered_map<std::string, std::string> paid a std::string
// key allocation per fold just to probe the map. This table stores key bytes
// in a chunked Arena (stable views, no per-key allocation beyond the arena
// bump) and probes with the caller's string_view directly - heterogeneous
// lookup with zero temporaries. Entries live in insertion order in a flat
// vector; the slot array is a power-of-two linear-probe index of entry
// positions, rebuilt on growth (entries themselves never move relative to
// their accumulators, so `std::string& acc` references stay valid only until
// the next insert - callers fold under the stripe lock and never hold the
// reference across inserts).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"

namespace hamr::engine {

class FlatAccTable {
 public:
  struct Entry {
    uint64_t hash = 0;
    std::string_view key;  // stable view into the arena
    std::string acc;
  };

  explicit FlatAccTable(Gauge* arena_gauge = nullptr) : arena_(arena_gauge) {}

  FlatAccTable(FlatAccTable&&) noexcept = default;
  FlatAccTable& operator=(FlatAccTable&&) noexcept = default;
  FlatAccTable(const FlatAccTable&) = delete;
  FlatAccTable& operator=(const FlatAccTable&) = delete;

  // The accumulator for `key`, default-constructed on first sight. The
  // reference is invalidated by the next find_or_insert (vector growth).
  std::string& find_or_insert(std::string_view key) {
    if (slots_.empty()) rebuild(kInitialSlots);
    const uint64_t h = hash_bytes(key);
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(h) & mask;
    for (;; i = (i + 1) & mask) {
      const uint32_t s = slots_[i];
      if (s == 0) break;
      Entry& e = entries_[s - 1];
      if (e.hash == h && e.key == key) return e.acc;
    }
    // Insert: grow first if the load factor would pass ~0.7 so the probe
    // above never sees a full table.
    if ((entries_.size() + 1) * 10 >= slots_.size() * 7) {
      rebuild(slots_.size() * 2);
      i = static_cast<size_t>(h) & (slots_.size() - 1);
      while (slots_[i] != 0) i = (i + 1) & (slots_.size() - 1);
    }
    entries_.push_back(Entry{h, arena_.store(key), std::string()});
    slots_[i] = static_cast<uint32_t>(entries_.size());
    return entries_.back().acc;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  uint64_t arena_bytes() const { return arena_.reserved_bytes(); }

  // Entries in insertion order (keys are stable arena views).
  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  void clear() {
    entries_.clear();
    slots_.clear();
    arena_.clear();
  }

 private:
  static constexpr size_t kInitialSlots = 64;

  void rebuild(size_t slot_count) {
    slots_.assign(slot_count, 0);
    const size_t mask = slot_count - 1;
    for (size_t n = 0; n < entries_.size(); ++n) {
      size_t i = static_cast<size_t>(entries_[n].hash) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = static_cast<uint32_t>(n + 1);
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;  // entry index + 1; 0 = empty
  Arena arena_;
};

}  // namespace hamr::engine
