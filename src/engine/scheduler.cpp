#include "engine/scheduler.h"

#include <algorithm>
#include <thread>

#include "common/clock.h"

namespace hamr::engine {

ShardedScheduler::ShardedScheduler(uint32_t workers, uint64_t byte_budget)
    : byte_budget_(byte_budget) {
  shards_.resize(workers == 0 ? 1 : workers);
}

bool ShardedScheduler::push_bin(QueueItem&& item, bool force) {
  const uint64_t bytes = item.payload.size();
  if (!force &&
      (stopping_.load() ||
       queued_bytes_.load(std::memory_order_relaxed) >= byte_budget_)) {
    // Receiver-side backpressure: the delivery thread (our only non-retry
    // caller) blocks when the queue is over budget, which in turn fills the
    // transport ingress and stalls remote senders. Control items ride the
    // same path to preserve per-sender FIFO. The under-budget fast path
    // above never touches space_mu_; only an actually-full queue pays for
    // the lock and the wait.
    std::unique_lock<std::mutex> lock(space_mu_);
    const TimePoint t0 = now();
    space_cv_.wait(lock, [&] {
      return stopping_.load() ||
             queued_bytes_.load(std::memory_order_relaxed) < byte_budget_;
    });
    const Duration waited = now() - t0;
    if (waited >= micros(100) && hooks_.budget_wait_ns != nullptr) {
      // The delivery thread actually blocked on the queue budget:
      // receiver-side backpressure in action, worth surfacing.
      hooks_.budget_wait_ns->add(static_cast<uint64_t>(waited.count()));
    }
    if (stopping_.load()) return false;
  }
  Shard& shard = shards_[item.src % shards_.size()];
  bool was_workless;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    was_workless = shard.bins.empty() && shard.tasks.empty();
    shard.bins.push_back(std::move(item));
  }
  queued_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  pending_bins_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1);
  publish_gauges();
  // Only a workless -> workful transition wakes a worker: appends to an
  // already-workful shard ride the wakeup that transition already sent (a
  // woken worker drains until a clean all-shards-empty scan before it may
  // sleep again). In the backlogged steady state pushes make no syscalls.
  if (was_workless) notify_workers();
  return true;
}

void ShardedScheduler::push_task(std::function<void()> task) {
  const size_t i = task_rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  Shard& shard = shards_[i];
  bool was_workless;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    was_workless = shard.bins.empty() && shard.tasks.empty();
    shard.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1);
  if (was_workless) notify_workers();
}

void ShardedScheduler::notify_workers() {
  // The seq bump keeps a worker that snapshotted wake_seq_ before our push
  // from sleeping on a stale snapshot; the empty critical section pairs with
  // the waiter's predicate check (without it a worker could evaluate the
  // predicate and sleep right past this notify). Skip the syscall entirely
  // when nobody is registered asleep.
  wake_seq_.fetch_add(1);
  if (sleepers_.load() == 0) return;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  // One transition, one worker: notify_all would wake every idle worker per
  // transition (a thundering herd that re-scans all shards and goes back to
  // sleep).
  idle_cv_.notify_one();
}

bool ShardedScheduler::next(uint32_t self, Work* out) {
  std::vector<Work> batch;
  if (next_batch(self, &batch, 1) == 0) return false;
  *out = std::move(batch.front());
  return true;
}

size_t ShardedScheduler::next_batch(uint32_t self, std::vector<Work>* out,
                                    size_t max) {
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  if (max == 0) max = 1;
  for (;;) {
    // Snapshot before scanning: a transition-notify after this point moves
    // the seq and defeats the sleep below.
    const uint64_t seen = wake_seq_.load();
    bool clean = true;
    size_t taken = 0;
    uint64_t bins = 0;
    uint64_t bytes = 0;
    {
      Shard& own = shards_[self];
      std::unique_lock<std::mutex> lock(own.mu, std::try_to_lock);
      if (!lock.owns_lock()) {
        // The own shard is waited on (unlike steal victims) and the wait is
        // surfaced: it measures exactly the producer/owner convoy the
        // sharding exists to keep rare.
        const TimePoint t0 = now();
        lock.lock();
        if (hooks_.lock_wait_ns != nullptr) {
          hooks_.lock_wait_ns->add(static_cast<uint64_t>((now() - t0).count()));
        }
      }
      while (taken < max) {
        Work w;
        if (!take_locked(own, &w)) break;
        if (w.is_item) {
          ++bins;
          bytes += w.item.payload.size();
        }
        out->push_back(std::move(w));
        ++taken;
      }
    }
    if (taken > 0) {
      settle_batch(taken, bins, bytes);
      return taken;
    }
    if (n > 1) {
      for (uint32_t k = 1; k < n && taken == 0; ++k) {
        Shard& victim = shards_[(self + k) % n];
        std::unique_lock<std::mutex> lock(victim.mu, std::try_to_lock);
        if (!lock.owns_lock()) {
          // A contended victim is skipped, not waited on - but it may hold
          // work, so this scan no longer proves the scheduler is drained.
          clean = false;
          continue;
        }
        // Steal up to half the victim's backlog (capped at the batch size):
        // enough to amortize the scan, while the owner keeps the rest. The
        // stolen run is front-popped in order, so FIFO per sender holds.
        const size_t avail = victim.bins.size() + victim.tasks.size();
        const size_t want =
            std::min(max, avail == 1 ? size_t{1} : avail / 2);
        while (taken < want) {
          Work w;
          if (!take_locked(victim, &w)) break;
          if (w.is_item) {
            ++bins;
            bytes += w.item.payload.size();
          }
          out->push_back(std::move(w));
          ++taken;
        }
      }
      if (taken > 0) {
        settle_batch(taken, bins, bytes);
        // One steal event per scan, however many units it moved.
        if (hooks_.steals != nullptr) hooks_.steals->inc();
        return taken;
      }
    }
    if (stopping_.load() && pending_.load() == 0) return 0;
    if (!clean) {
      // Never sleep off a scan that skipped a locked shard: the wakeup
      // protocol only re-notifies on workless -> workful transitions, so a
      // missed item behind a contended lock would have no wakeup left.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    sleepers_.fetch_add(1);
    idle_cv_.wait(lock, [&] {
      return stopping_.load() || wake_seq_.load() != seen;
    });
    sleepers_.fetch_sub(1);
    if (stopping_.load() && pending_.load() == 0) return 0;
  }
}

// Moves one unit of work out of a shard whose mutex the caller holds. Queue
// accounting is NOT touched here; the caller settles it once per batch after
// dropping the lock (settle_batch), so the critical section stays a pure
// deque operation.
bool ShardedScheduler::take_locked(Shard& shard, Work* out) {
  if (!shard.bins.empty()) {
    // Bins first: draining received data keeps upstream nodes unblocked.
    // Front pop (owner and thief alike) keeps dequeue order FIFO per sender.
    out->is_item = true;
    out->item = std::move(shard.bins.front());
    shard.bins.pop_front();
    return true;
  }
  if (!shard.tasks.empty()) {
    out->is_item = false;
    out->task = std::move(shard.tasks.front());
    shard.tasks.pop_front();
    return true;
  }
  return false;
}

void ShardedScheduler::settle_batch(uint64_t units, uint64_t bins,
                                    uint64_t bytes) {
  pending_.fetch_sub(units);
  if (bins != 0) pending_bins_.fetch_sub(bins, std::memory_order_relaxed);
  const uint64_t before =
      queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  publish_gauges();
  if (bytes != 0 && before >= byte_budget_) {
    // Possibly just crossed back under budget: wake the delivery thread.
    {
      std::lock_guard<std::mutex> space(space_mu_);
    }
    space_cv_.notify_all();
  }
}

void ShardedScheduler::publish_gauges() {
  // Gauge writes happen here, outside every shard lock, from the atomics.
  if (hooks_.depth != nullptr) {
    hooks_.depth->set(
        static_cast<int64_t>(pending_bins_.load(std::memory_order_relaxed)));
  }
  if (hooks_.bytes != nullptr) {
    hooks_.bytes->set(
        static_cast<int64_t>(queued_bytes_.load(std::memory_order_relaxed)));
  }
}

void ShardedScheduler::stop() {
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
  }
  idle_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(space_mu_);
  }
  space_cv_.notify_all();
}

}  // namespace hamr::engine
