// NodeRuntime: HAMR's per-node dataflow runtime (paper §2, Fig. 2).
//
// Each node holds the WHOLE flowlet graph (contrast with Dryad subgraphs),
// a worker thread pool, and a bin queue. Scheduling is event-driven:
//   * bins arriving for map/partial-reduce flowlets become Ready work;
//   * reduce flowlets stage incoming bins (spilling beyond the memory
//     budget) and fire only after the completion message has propagated
//     from every upstream flowlet instance on every node;
//   * loader splits are processed in chunks, deferred under flow control.
//
// Completion protocol: a flowlet that has finished on a node broadcasts a
// COMPLETE control message through the same per-channel FIFO path as its
// data bins, so "complete received" implies "all bins received" per sender.
//
// Flow control: each node has a single sender thread draining an outbox; the
// outbox byte count is the backpressure probe. Loader chunks (and any other
// task checking backpressured()) park and reschedule while it is high, and
// the transport's bounded ingress stalls the sender thread itself when a
// receiver falls behind - the end-to-end analog of the paper's "output bin
// buffer full" rule.
//
// Fault tolerance (see DESIGN.md "Fault model & recovery"): with a fault
// injector attached (or reliable_shuffle set), engine bins and control
// messages travel as sequence-numbered frames over a per-(src,dst) reliable
// channel - cumulative acks, timeout resend with exponential backoff, and
// receiver-side reordering + duplicate suppression that restores exactly the
// per-channel FIFO the completion protocol relies on. Task crashes injected
// at task start re-enqueue the task's bin (or split chunk / reduce stage)
// after a bounded exponential backoff instead of wedging the bin queue, and
// failed spill writes are retried the same way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "engine/config.h"
#include "engine/graph.h"
#include "engine/rate_gate.h"
#include "engine/split.h"
#include "obs/event_log.h"

namespace hamr::storage {
class RunWriter;
}  // namespace hamr::storage

namespace hamr::engine {

class Engine;
class TaskContext;

namespace internal {

// Reduce-input staging for one sub-partition of a node's key range.
struct ReduceStage {
  std::mutex mu;
  std::vector<std::pair<std::string, std::string>> records;
  uint64_t bytes = 0;
  std::vector<std::string> spill_paths;
  uint64_t next_spill = 0;
};

// Node-shared partial-reduce accumulator table, striped. Each stripe models
// one contended shared-variable set (see RateGate).
struct PartialTable {
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::string, std::string> acc;
    std::unique_ptr<RateGate> gate;
  };
  // deque: stripes are immovable (mutex member) and deque constructs them in
  // place without relocation.
  std::deque<Stripe> stripes;
};

// Per-(node, flowlet) state for one job.
struct FlowletState {
  std::unique_ptr<Flowlet> instance;
  FlowletKind kind = FlowletKind::kMap;
  // Bins enqueued locally for this flowlet but not yet fully processed.
  std::atomic<uint64_t> pending_bins{0};
  // Channels = one per (distinct upstream flowlet, node). All must complete
  // before this flowlet can finish locally.
  uint32_t channels_total = 0;
  std::atomic<uint32_t> channels_done{0};
  std::atomic<bool> finish_scheduled{false};
  std::atomic<bool> complete{false};
  // Loader bookkeeping.
  std::atomic<uint64_t> splits_outstanding{0};
  // Reduce staging (kind == kReduce), one per sub-partition.
  std::vector<std::unique_ptr<ReduceStage>> stages;
  std::atomic<uint32_t> reduce_tasks_outstanding{0};
  // Partial-reduce accumulators (kind == kPartialReduce).
  std::unique_ptr<PartialTable> table;
  // Sender-side combine tables for this flowlet's combine out-edges.
  std::map<EdgeId, std::unique_ptr<PartialTable>> combine_tables;
  // Per-flowlet task latency histogram (engine.flowlet.<id>.task_us),
  // registered in the node's Metrics at job build time; pointer is stable.
  Histogram* task_us = nullptr;
};

// One job's per-node state. Built by the Engine, owned jointly by the
// runtime and in-flight tasks via shared_ptr.
struct JobState {
  uint64_t epoch = 0;
  // Shared copy: completion broadcasts from other nodes can still be in
  // flight after the driver's run() returns, so the graph must outlive the
  // caller's stack frame.
  std::shared_ptr<const FlowletGraph> graph;
  std::vector<std::unique_ptr<FlowletState>> flowlets;
  std::atomic<uint32_t> flowlets_complete{0};
  std::atomic<bool> done_signaled{false};
};

}  // namespace internal

// The per-node runtime. Constructed once per Engine and reused across jobs.
class NodeRuntime {
 public:
  NodeRuntime(Engine* engine, cluster::Node* node, const EngineConfig& config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  uint32_t node_id() const { return node_->id(); }
  cluster::Node& node() { return *node_; }
  Metrics& metrics() { return node_->metrics(); }

 private:
  friend class Engine;
  friend class TaskContext;

  struct QueueItem {
    bool is_control = false;
    uint32_t src = 0;
    uint32_t attempts = 0;  // crash-retry count for this bin
    std::string payload;
  };

  // Reliable shuffle channel state (active when reliable()).
  struct SendChannel {
    std::mutex mu;
    uint64_t next_seq = 0;
    struct Unacked {
      std::string frame;       // full framed payload, for retransmission
      TimePoint next_resend{};
      uint32_t attempts = 0;
    };
    std::map<uint64_t, Unacked> unacked;
  };
  struct RecvChannel {
    std::mutex mu;
    uint64_t next_expected = 0;
    // Out-of-order frames staged until the gap fills: seq -> (type, payload).
    std::map<uint64_t, std::pair<uint32_t, std::string>> stash;
  };

  // --- job lifecycle (driven by Engine) ---
  // Phase 1 on every node: publish the job state so incoming bins resolve.
  void attach_job(std::shared_ptr<internal::JobState> job);
  // Phase 2: run start() hooks and schedule this node's loader splits.
  void activate_job(const std::map<FlowletId, std::vector<InputSplit>>& my_splits);
  void request_stream_stop() { streaming_stop_.store(true); }
  std::shared_ptr<internal::JobState> current_job() const;

  // --- ingress (called on transport delivery thread) ---
  void on_bin_message(net::Message&& msg);
  void on_control_message(net::Message&& msg);
  void on_frame_message(net::Message&& msg);  // reliable channel ingress
  void on_ack_message(net::Message&& msg);
  void enqueue_item(QueueItem&& item);

  // --- worker-side processing ---
  void worker_loop();
  void submit_task(std::function<void()> task);
  // Parks a flow-controlled task and re-queues it. `flowlet` and `tag`
  // identify the parked task (loaders pass their split cursor) so the event
  // log can pair each StallBegin with the StallEnd of the *same* task.
  void defer_task(FlowletId flowlet, int64_t tag, std::function<void()> task);
  void process_bin(const QueueItem& item);
  void process_control(const QueueItem& item);
  void run_split_chunk(FlowletId loader, const InputSplit& split, uint64_t cursor,
                       uint32_t attempt = 0);
  void stage_reduce_bin(FlowletId flowlet, internal::FlowletState& fs, BinView& bin);
  void fold_partial_bin(internal::FlowletState& fs, BinView& bin);
  void maybe_schedule_finish(FlowletId flowlet);
  void run_finish(FlowletId flowlet);
  void fire_reduce(FlowletId flowlet);
  void run_reduce_stage(FlowletId flowlet, uint32_t stage_index,
                        uint32_t attempt = 0);
  void flowlet_locally_complete(FlowletId flowlet);
  void broadcast_complete(FlowletId flowlet);
  void flush_combine_stripe(internal::JobState& job, EdgeId edge_id,
                            uint32_t stripe_index);
  void flush_window(FlowletId flowlet);  // streaming punctuation

  // --- fault recovery ---
  bool reliable() const {
    return config_.fault_injector != nullptr || config_.reliable_shuffle;
  }
  // True if this task execution must crash (injected) AND may still retry;
  // retries past the bound proceed (logged) so data is never silently lost.
  bool should_crash_task(FlowletId flowlet, uint32_t attempt);
  Duration retry_backoff(uint32_t attempt) const;
  void retry_bin(const QueueItem& item);
  void write_spill_with_retry(storage::RunWriter& writer);

  // --- egress ---
  void enqueue_out(uint32_t dst, uint32_t type, std::string payload);
  void raw_enqueue_out(uint32_t dst, uint32_t type, std::string payload);
  void sender_loop();
  Duration resend_timeout(uint32_t attempts) const;
  Duration resend_check_every() const;
  void resend_due_frames();
  bool backpressured() const;

  std::string spill_path(FlowletId flowlet, uint32_t stage, uint64_t n) const;

  // Appends to the deterministic event log when one is attached (see
  // EngineConfig::event_log); one branch when it is not.
  void log_event(obs::EventKind kind, int64_t flowlet, int64_t aux = -1) {
    if (config_.event_log != nullptr) {
      config_.event_log->record(node_id(), kind, flowlet, aux);
    }
  }

  Engine* engine_;
  cluster::Node* node_;
  EngineConfig config_;

  // Cached hot-path metric handles (registry pointers are stable for the
  // node's lifetime, so per-bin paths skip the name lookup).
  Counter* frames_sent_c_ = nullptr;
  Counter* frames_recv_c_ = nullptr;
  Gauge* bin_queue_depth_g_ = nullptr;
  Gauge* bin_queue_bytes_g_ = nullptr;
  Histogram* task_us_h_ = nullptr;

  // Scheduler: a FIFO queue of received items (bins + control; per-sender
  // FIFO order is what the completion protocol relies on) plus a task queue.
  // The item queue is unbounded here; end-to-end backpressure comes from the
  // transport ingress cap and the outbox watermark.
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::condition_variable sched_space_;  // delivery thread waits for room
  std::deque<QueueItem> bin_queue_;
  uint64_t bin_queue_bytes_ = 0;
  std::deque<std::function<void()>> task_queue_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  // Egress: unbounded outbox drained by one sender thread; its byte count is
  // the flow-control probe.
  std::mutex out_mu_;
  std::condition_variable out_cv_;
  struct OutMsg {
    uint32_t dst;
    uint32_t type;
    std::string payload;
  };
  std::deque<OutMsg> outbox_;
  std::atomic<uint64_t> outbox_bytes_{0};
  std::thread sender_;

  // Reliable shuffle channels, one per peer node (deque: immovable mutex
  // members, constructed in place). Allocated in the constructor; state
  // persists across jobs (sequence numbers keep counting).
  std::deque<SendChannel> send_channels_;  // indexed by destination
  std::deque<RecvChannel> recv_channels_;  // indexed by source

  // Reduce staging memory accounting (node-wide).
  std::atomic<uint64_t> staged_bytes_{0};

  std::shared_ptr<internal::JobState> job_;  // guarded by job_mu_
  mutable std::mutex job_mu_;

  std::atomic<bool> streaming_stop_{false};
};

}  // namespace hamr::engine
