// NodeRuntime: HAMR's per-node dataflow runtime (paper §2, Fig. 2).
//
// Each node holds the WHOLE flowlet graph (contrast with Dryad subgraphs),
// a worker thread pool, and a bin queue. Scheduling is event-driven:
//   * bins arriving for map/partial-reduce flowlets become Ready work;
//   * reduce flowlets stage incoming bins (spilling beyond the memory
//     budget) and fire only after the completion message has propagated
//     from every upstream flowlet instance on every node;
//   * loader splits are processed in chunks, deferred under flow control.
//
// Completion protocol: a flowlet that has finished on a node broadcasts a
// COMPLETE control message through the same per-channel FIFO path as its
// data bins, so "complete received" implies "all bins received" per sender.
//
// Flow control: each node has a single sender thread draining an outbox; the
// outbox byte count is the backpressure probe. Loader chunks (and any other
// task checking backpressured()) park and reschedule while it is high, and
// the transport's bounded ingress stalls the sender thread itself when a
// receiver falls behind - the end-to-end analog of the paper's "output bin
// buffer full" rule.
//
// Fault tolerance (see DESIGN.md "Fault model & recovery"): with a fault
// injector attached (or reliable_shuffle set), engine bins and control
// messages travel as sequence-numbered frames over a per-(src,dst) reliable
// channel - cumulative acks, timeout resend with exponential backoff, and
// receiver-side reordering + duplicate suppression that restores exactly the
// per-channel FIFO the completion protocol relies on. Task crashes injected
// at task start re-enqueue the task's bin (or split chunk / reduce stage)
// after a bounded exponential backoff instead of wedging the bin queue, and
// failed spill writes are retried the same way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/arena.h"
#include "common/metrics.h"
#include "common/pool.h"
#include "engine/config.h"
#include "engine/flat_table.h"
#include "engine/graph.h"
#include "engine/rate_gate.h"
#include "engine/scheduler.h"
#include "engine/split.h"
#include "net/payload.h"
#include "obs/event_log.h"

namespace hamr::storage {
class RunWriter;
}  // namespace hamr::storage

namespace hamr::engine {

class Engine;
class TaskContext;

namespace internal {

// Big-endian 8-byte key prefix: integer compare of prefixes orders exactly
// like the lexicographic compare of the first 8 key bytes, so the staging
// sort only touches key bytes on a prefix tie.
inline uint64_t key_prefix(std::string_view key) {
  uint64_t p = 0;
  const size_t n = key.size() < 8 ? key.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    p |= static_cast<uint64_t>(static_cast<uint8_t>(key[i])) << (56 - 8 * i);
  }
  return p;
}

// Reduce-input staging for one sub-partition of a node's key range: record
// bytes live contiguously in a chunked arena, the index carries views plus a
// cached key prefix, so staging a record is one arena bump + one index push
// (the old layout allocated two std::strings per record) and the pre-reduce
// sort compares 8-byte integers instead of dereferencing two heap strings.
struct ReduceStage {
  // One staged record: key bytes at [data, data+key_len), value bytes
  // immediately after.
  struct Rec {
    uint64_t prefix = 0;
    uint32_t key_len = 0;
    uint32_t value_len = 0;
    const char* data = nullptr;
    std::string_view key() const { return {data, key_len}; }
    std::string_view value() const { return {data + key_len, value_len}; }
  };

  explicit ReduceStage(Gauge* arena_gauge) : arena(arena_gauge) {}

  std::mutex mu;
  Arena arena;
  std::vector<Rec> index;
  uint64_t bytes = 0;
  std::vector<std::string> spill_paths;
  uint64_t next_spill = 0;
};

// Orders staged records by key (prefix first); stable sorts with it keep
// same-key values in arrival order, exactly like the old pair-sort.
inline bool reduce_rec_less(const ReduceStage::Rec& a, const ReduceStage::Rec& b) {
  if (a.prefix != b.prefix) return a.prefix < b.prefix;
  return a.key() < b.key();
}

// Node-shared partial-reduce accumulator table, striped. Each stripe models
// one contended shared-variable set (see RateGate). The accumulator map is a
// flat open-addressing table with arena-backed keys: folding a record probes
// with the record's string_view directly, no per-fold key allocation.
struct PartialTable {
  struct Stripe {
    std::mutex mu;
    FlatAccTable acc;
    std::unique_ptr<RateGate> gate;
  };
  // deque: stripes are immovable (mutex member) and deque constructs them in
  // place without relocation.
  std::deque<Stripe> stripes;
};

// Per-(node, flowlet) state for one job.
struct FlowletState {
  std::unique_ptr<Flowlet> instance;
  FlowletKind kind = FlowletKind::kMap;
  // Bins enqueued locally for this flowlet but not yet fully processed.
  std::atomic<uint64_t> pending_bins{0};
  // Channels = one per (distinct upstream flowlet, node). All must complete
  // before this flowlet can finish locally.
  uint32_t channels_total = 0;
  std::atomic<uint32_t> channels_done{0};
  std::atomic<bool> finish_scheduled{false};
  std::atomic<bool> complete{false};
  // Loader bookkeeping.
  std::atomic<uint64_t> splits_outstanding{0};
  // Reduce staging (kind == kReduce), one per sub-partition.
  std::vector<std::unique_ptr<ReduceStage>> stages;
  std::atomic<uint32_t> reduce_tasks_outstanding{0};
  // Partial-reduce accumulators (kind == kPartialReduce).
  std::unique_ptr<PartialTable> table;
  // Sender-side combine tables for this flowlet's combine out-edges.
  std::map<EdgeId, std::unique_ptr<PartialTable>> combine_tables;
  // Per-flowlet task latency histogram (engine.flowlet.<id>.task_us),
  // registered in the node's Metrics at job build time; pointer is stable.
  Histogram* task_us = nullptr;

  // --- event-time windowing (kind == kPartialReduce, stream_windowed()) ---
  // Cached PartialReduceFlowlet::stream_windowed() (set at job build).
  bool stream_windowed = false;
  // Bins ever enqueued locally for this flowlet (monotone). The fetch_add
  // return value is the bin's enqueue index, carried on the QueueItem so
  // completion can be tracked per bin.
  std::atomic<uint64_t> bins_enqueued{0};
  // Prefix-processed tracking: done_prefix = smallest enqueue index not yet
  // fully processed (every index below it is done). A simple
  // enqueued - pending >= target count is NOT a barrier: the work-stealing
  // scheduler and crash-retry backoffs complete bins out of order, so later
  // bins (enqueued after an arm) can stand in for a parked earlier one and
  // the count reaches the target while covered data is still unfolded.
  // done_prefix cannot be fooled that way. Guarded by done_mu; read
  // lock-free by the close barrier.
  std::mutex done_mu;
  std::atomic<uint64_t> done_prefix{0};
  std::set<uint64_t> done_out_of_order;
  // Watermark close barrier, guarded by wm_mu. Punctuation alignment arms it
  // with a target = bins_enqueued snapshot; it fires once every bin enqueued
  // before arming has been processed (done_prefix >= armed_target). The
  // barrier exists because "punctuation processed" alone does not imply
  // "covered data folded" when bins complete out of order.
  // wm_mu also serializes window close against the finish-path emission, so
  // a drain-and-reinsert close can never race a concurrent final flush.
  std::mutex wm_mu;
  int64_t armed_watermark = INT64_MIN;  // INT64_MIN = not armed
  uint64_t armed_target = 0;
  TimePoint armed_at{};
  int64_t closed_watermark = INT64_MIN;
  int64_t max_open_end = INT64_MIN;  // newest window end opened (lag probe)
  std::atomic<bool> close_running{false};
};

// One job's per-node state. Built by the Engine, owned jointly by the
// runtime and in-flight tasks via shared_ptr.
struct JobState {
  uint64_t epoch = 0;
  // Shared copy: completion broadcasts from other nodes can still be in
  // flight after the driver's run() returns, so the graph must outlive the
  // caller's stack frame.
  std::shared_ptr<const FlowletGraph> graph;
  std::vector<std::unique_ptr<FlowletState>> flowlets;
  std::atomic<uint32_t> flowlets_complete{0};
  std::atomic<bool> done_signaled{false};
};

}  // namespace internal

// The per-node runtime. Constructed once per Engine and reused across jobs.
class NodeRuntime {
 public:
  NodeRuntime(Engine* engine, cluster::Node* node, const EngineConfig& config);
  ~NodeRuntime();

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  uint32_t node_id() const { return node_->id(); }
  cluster::Node& node() { return *node_; }
  Metrics& metrics() { return node_->metrics(); }

 private:
  friend class Engine;
  friend class TaskContext;

  // A task parked off the worker pool: flow-control stalls and crash-retry
  // backoffs wait here (deadline-ordered, drained by the sender loop)
  // instead of sleeping on a worker thread.
  struct DeferredTask {
    bool stall = false;  // flow-control stall: log StallEnd + metrics on wake
    FlowletId flowlet = 0;
    int64_t tag = 0;
    TimePoint begin{};
    std::function<void()> task;
  };

  // Reliable shuffle channel state (active when reliable()).
  struct SendChannel {
    std::mutex mu;
    uint64_t next_seq = 0;
    struct Unacked {
      // Framed payload held for retransmission: the seq/ack head plus a view
      // of the same shared body the live send carries - no retransmission
      // copy. Dropping the entry (on ack) releases the body to the pool.
      net::Payload frame;
      TimePoint next_resend{};
      uint32_t attempts = 0;
    };
    std::map<uint64_t, Unacked> unacked;
  };
  struct RecvChannel {
    std::mutex mu;
    uint64_t next_expected = 0;
    // Out-of-order frames staged until the gap fills: seq -> (type, payload).
    std::map<uint64_t, std::pair<uint32_t, std::string>> stash;
  };

  // --- job lifecycle (driven by Engine) ---
  // Phase 1 on every node: publish the job state so incoming bins resolve.
  void attach_job(std::shared_ptr<internal::JobState> job);
  // Phase 2: run start() hooks and schedule this node's loader splits.
  void activate_job(const std::map<FlowletId, std::vector<InputSplit>>& my_splits);
  void request_stream_stop() { streaming_stop_.store(true); }
  std::shared_ptr<internal::JobState> current_job() const;

  // --- ingress (called on transport delivery thread) ---
  void on_bin_message(net::Message&& msg);
  void on_control_message(net::Message&& msg);
  void on_frame_message(net::Message&& msg);  // reliable channel ingress
  void on_ack_message(net::Message&& msg);

  // --- worker-side processing ---
  void worker_loop(uint32_t self);
  void submit_task(std::function<void()> task);
  // Parks a flow-controlled task on the deferred queue. `flowlet` and `tag`
  // identify the parked task (loaders pass their split cursor) so the event
  // log can pair each StallBegin with the StallEnd of the *same* task. The
  // worker returns to the scheduler immediately; the sender loop re-submits
  // the task once the retry deadline passes.
  void defer_task(FlowletId flowlet, int64_t tag, std::function<void()> task);
  // Deadline-ordered parking lot shared by stalls and crash-retry backoffs.
  void schedule_deferred(TimePoint due, DeferredTask&& d);
  TimePoint next_deferred_deadline();
  void drain_due_deferred();
  void process_bin(const QueueItem& item);
  void process_control(const QueueItem& item);
  void run_split_chunk(FlowletId loader, const InputSplit& split, uint64_t cursor,
                       uint32_t attempt = 0);
  void stage_reduce_bin(FlowletId flowlet, internal::FlowletState& fs, BinView& bin);
  void fold_partial_bin(FlowletId flowlet, internal::FlowletState& fs, BinView& bin);
  // Advances the flowlet's processed-bin prefix past `index` (stream_windowed
  // close-barrier bookkeeping; see FlowletState::done_prefix).
  void mark_bin_done(internal::FlowletState& fs, uint64_t index);
  void maybe_schedule_finish(FlowletId flowlet);
  void run_finish(FlowletId flowlet);
  void fire_reduce(FlowletId flowlet);
  void run_reduce_stage(FlowletId flowlet, uint32_t stage_index,
                        uint32_t attempt = 0);
  void flowlet_locally_complete(FlowletId flowlet);
  void broadcast_complete(FlowletId flowlet);
  void flush_combine_stripe(internal::JobState& job, EdgeId edge_id,
                            uint32_t stripe_index);
  void flush_window(FlowletId flowlet);  // processing-time streaming flush
  // Event-time close path: fires the armed watermark barrier once all bins
  // enqueued before arming are processed, then drains every accumulator
  // whose window end <= watermark through emit_result (exactly once; open
  // windows are re-inserted under the stripe lock).
  void maybe_close_event_windows(FlowletId flowlet);
  void close_event_windows(FlowletId flowlet, int64_t watermark,
                           TimePoint armed_at);

  // --- fault recovery ---
  bool reliable() const {
    return config_.fault_injector != nullptr || config_.reliable_shuffle;
  }
  // True if this task execution must crash (injected) AND may still retry;
  // retries past the bound proceed (logged) so data is never silently lost.
  bool should_crash_task(FlowletId flowlet, uint32_t attempt);
  Duration retry_backoff(uint32_t attempt) const;
  void retry_bin(const QueueItem& item);
  void write_spill_with_retry(storage::RunWriter& writer);

  // --- egress ---
  void enqueue_out(uint32_t dst, uint32_t type, net::Payload payload);
  void raw_enqueue_out(uint32_t dst, uint32_t type, net::Payload payload,
                       uint64_t frame_seq = 0, bool is_frame = false);
  void sender_loop();
  Duration resend_timeout(uint32_t attempts) const;
  Duration resend_check_every() const;
  void resend_due_frames();
  bool backpressured() const;

  std::string spill_path(FlowletId flowlet, uint32_t stage, uint64_t n) const;

  // Appends to the deterministic event log when one is attached (see
  // EngineConfig::event_log); one branch when it is not.
  void log_event(obs::EventKind kind, int64_t flowlet, int64_t aux = -1) {
    if (config_.event_log != nullptr) {
      config_.event_log->record(node_id(), kind, flowlet, aux);
    }
  }

  // True while the engine's in-flight job has a pending cancel; checked at
  // task boundaries (chunk, bin, reduce stage, finish) so a cancelled job
  // skips remaining work but still runs the completion protocol.
  bool job_cancelled() const;

  Engine* engine_;
  cluster::Node* node_;
  EngineConfig config_;

  // This engine lane's message-type quad (net::msg_type::engine_*(lane)),
  // resolved once: every hot-path send/dispatch compares against these.
  uint32_t bin_type_;
  uint32_t control_type_;
  uint32_t frame_type_;
  uint32_t ack_type_;

  // Cached hot-path metric handles (registry pointers are stable for the
  // node's lifetime, so per-record/per-bin paths skip the name lookup).
  Counter* frames_sent_c_ = nullptr;
  Counter* frames_recv_c_ = nullptr;
  Counter* records_c_ = nullptr;
  Counter* bins_c_ = nullptr;
  Counter* bin_bytes_c_ = nullptr;
  Counter* combine_folds_c_ = nullptr;
  Counter* folds_c_ = nullptr;
  Counter* stalls_c_ = nullptr;
  Counter* stall_ns_c_ = nullptr;
  Counter* task_retries_c_ = nullptr;
  // Fallback byte-copies on the reliable frame path (a framed payload that
  // arrived without a shared body); ~0 in zero-copy steady state.
  Counter* frame_copies_c_ = nullptr;
  Counter* spill_runs_c_ = nullptr;
  Histogram* stall_us_h_ = nullptr;
  Histogram* task_us_h_ = nullptr;
  Histogram* merge_fan_in_h_ = nullptr;
  Gauge* arena_bytes_g_ = nullptr;
  // Streaming (stream.* family; idle unless a windowed flowlet runs).
  Counter* windows_emitted_c_ = nullptr;
  Histogram* window_emit_us_h_ = nullptr;
  Histogram* wm_lag_us_h_ = nullptr;

  // Scheduler: per-worker sharded deques with work stealing (see
  // scheduler.h). The delivery thread routes each sender to a fixed shard
  // (per-sender FIFO dequeue order), idle workers steal before sleeping, and
  // the receiver byte budget is a shared atomic inside the scheduler.
  ShardedScheduler sched_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  // Payload buffer recycling: bins and frames acquire their output strings
  // here; processed bins and acked frames return them. Shared so pooled
  // frame bodies still in a transport queue at teardown keep the pool alive
  // through their deleters.
  std::shared_ptr<BufferPool> pool_ = std::make_shared<BufferPool>();

  // Deferred tasks (flow-control stalls, crash-retry backoffs), ordered by
  // deadline; the sender loop drains due entries back onto the scheduler.
  std::mutex defer_mu_;
  std::multimap<TimePoint, DeferredTask> deferred_;

  // Egress: unbounded outbox drained by one sender thread; its byte count is
  // the flow-control probe.
  std::mutex out_mu_;
  std::condition_variable out_cv_;
  struct OutMsg {
    uint32_t dst;
    uint32_t type;
    net::Payload payload;
    // Reliable-frame bookkeeping, stamped at enqueue so the sender loop
    // never re-parses the payload to find the sequence number.
    uint64_t frame_seq = 0;
    bool is_frame = false;
  };
  std::deque<OutMsg> outbox_;
  std::atomic<uint64_t> outbox_bytes_{0};
  std::thread sender_;

  // Reliable shuffle channels, one per peer node (deque: immovable mutex
  // members, constructed in place). Allocated in the constructor; state
  // persists across jobs (sequence numbers keep counting).
  std::deque<SendChannel> send_channels_;  // indexed by destination
  std::deque<RecvChannel> recv_channels_;  // indexed by source

  // Reduce staging memory accounting (node-wide).
  std::atomic<uint64_t> staged_bytes_{0};

  std::shared_ptr<internal::JobState> job_;  // guarded by job_mu_
  mutable std::mutex job_mu_;

  std::atomic<bool> streaming_stop_{false};
};

}  // namespace hamr::engine
