// Engine tuning knobs. One EngineConfig applies to every node runtime.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace hamr::fault {
class FaultInjector;
}  // namespace hamr::fault

namespace hamr::obs {
class EventLog;
}  // namespace hamr::obs

namespace hamr::engine {

struct EngineConfig {
  // Executor lane of this engine instance. Several engines may share one
  // cluster (the job service runs one per lane): each lane claims its own
  // shuffle message-type quad (net::msg_type::engine_bin(lane)..), its own
  // kv RPC id range, and lane-scoped spill paths, so concurrent jobs on
  // different lanes never cross wires. Must be < net::msg_type::kMaxEngineLanes.
  uint32_t lane = 0;

  // Worker threads per node runtime. 0 = the cluster's threads_per_node;
  // the job service sets this to carve a node's task slots across lanes.
  uint32_t worker_threads = 0;

  // Target packed size of a shuffle bin. Bins are the unit of scheduling
  // ("the minimum data required to enable a flowlet", paper §2).
  uint64_t bin_size_bytes = 64 * 1024;

  // Per-node memory budget for reduce-input staging. Beyond it, staged data
  // is sorted and spilled to the node's (throttled) local disk (paper §3.1:
  // "if the data is too large to fit into memory, it will be spilled").
  uint64_t memory_budget_bytes = 64ull * 1024 * 1024;

  // Flow control: when a node's outbox exceeds this many buffered bytes,
  // running tasks park and loader tasks are deferred (paper §2: "the flowlet
  // stops the current execution immediately and will be scheduled in a later
  // time... the number of concurrent loader tasks can be decreased").
  uint64_t flow_control_high_bytes = 4ull * 1024 * 1024;
  bool flow_control_enabled = true;
  Duration defer_retry = millis(2);

  // Receiver-side bound on buffered incoming bins (bytes). When a node's
  // workers cannot drain this fast enough, its delivery thread blocks, the
  // transport ingress fills, senders stall, their outboxes grow past the
  // watermark, and loaders throttle - the full end-to-end backpressure chain
  // of paper §2. NOTE: because the delivery thread may block here, flowlet
  // data-path code must not wait synchronously on remote RPCs (use the
  // node-local kv shard, as every built-in benchmark does).
  uint64_t bin_queue_bytes = 16ull * 1024 * 1024;

  // Parallel reduce streams per node (sub-partitions of the node's key
  // range); the fine-grain analog of multiple reduce slots.
  uint32_t reduce_subpartitions = 4;

  // Striping of partial-reduce accumulator tables. Each stripe is a serial
  // resource: in HAMR's one-runtime-per-node model all worker threads share
  // the node's accumulators, so updates to the same stripe serialize
  // (paper §5.2: "all threads atomically update only one variable on each
  // node... severe memory contention").
  uint32_t partial_reduce_stripes = 64;

  // Cost model for that serialization: max updates/second a single stripe
  // (~ a single contended shared variable) sustains. 0 disables the model.
  // The value is scaled together with the disk/NIC models; see DESIGN.md.
  double shared_update_rate_per_stripe = 150e3;

  // Loader tasks emit in chunks of this many records, re-checking flow
  // control between chunks (fine-grain loading).
  uint64_t loader_chunk_records = 2048;

  // Fault tolerance. When an injector is attached (not owned; must outlive
  // the engine) the runtime consults it for task-crash points and reads its
  // retry/resend policy; attaching one also enables the reliable shuffle
  // channel. `reliable_shuffle` turns on the seq/ack channel even without an
  // injector (e.g. over a lossy transport).
  fault::FaultInjector* fault_injector = nullptr;
  bool reliable_shuffle = false;

  // Observability. When set (not owned; must outlive the engine) every node
  // runtime appends scheduling-relevant events - bin enqueue/process,
  // flowlet ready/complete, completion broadcasts, stalls, spills, retries -
  // to this log, counter-indexed per (node, flowlet) stream so tests can
  // assert ordering invariants deterministically. Null = one branch per
  // site, no recording.
  obs::EventLog* event_log = nullptr;

  // Convenience: cost-model-free config for correctness tests.
  static EngineConfig fast() {
    EngineConfig c;
    c.shared_update_rate_per_stripe = 0;
    return c;
  }
};

}  // namespace hamr::engine
