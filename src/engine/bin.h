// Bins: packed batches of key-value records, the engine's unit of transfer
// and scheduling.
//
// Wire layout:
//   header := varint job_epoch | varint edge_id | varint record_count
//   records := (varint key_len | key | varint value_len | value)*
//
// The record_count varint is written padded to a fixed 5 bytes (continuation
// bits on the leading four) so the builder can reserve the slot up front and
// patch it when the bin is sealed. It decodes with the ordinary varint
// reader; counts up to 2^35-1 fit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/pool.h"
#include "serde/serde.h"

namespace hamr::engine {

using EdgeId = uint32_t;

struct KvPair {
  std::string_view key;
  std::string_view value;
};

// Builds one bin. Not thread-safe; each task uses its own builders.
// Default-constructed builders are closed (dense per-task builder tables
// construct every slot up front and open slots on first use).
//
// Records are appended straight into the output string — header first, then
// records — so sealing a bin is a count patch plus a move, never a copy.
class BinBuilder {
 public:
  BinBuilder() = default;
  BinBuilder(uint64_t job_epoch, EdgeId edge);

  // Arms a closed (or freshly taken) builder for a new (epoch, edge). With a
  // pool, the payload buffer is acquired from it on first add().
  void open(uint64_t job_epoch, EdgeId edge, BufferPool* pool = nullptr);
  bool is_open() const { return open_; }

  void add(std::string_view key, std::string_view value);

  uint64_t payload_bytes() const { return payload_.size(); }
  uint64_t records() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Seals the bin (patches the record count) and moves the payload out,
  // resetting the builder for reuse. The pool argument is kept for
  // compatibility: it seeds the builder's pool for the next bin.
  std::string take(BufferPool* pool = nullptr);

  // Like take(), but wraps the payload in shared ownership whose deleter
  // returns the buffer to `pool` when the last holder (transport queue,
  // retransmission slot, ...) drops it.
  std::shared_ptr<std::string> take_shared(
      const std::shared_ptr<BufferPool>& pool);

 private:
  void ensure_header();
  std::string seal();

  uint64_t job_epoch_ = 0;
  EdgeId edge_ = 0;
  bool open_ = false;
  BufferPool* pool_ = nullptr;
  std::string payload_;
  size_t count_pos_ = 0;
  bool header_written_ = false;
  uint64_t count_ = 0;
};

// Parses a received bin. Views returned by the iterator point into the
// message payload owned by the caller.
class BinView {
 public:
  // Throws serde::DecodeError on malformed input.
  explicit BinView(std::string_view data);

  uint64_t job_epoch() const { return job_epoch_; }
  EdgeId edge() const { return edge_; }
  uint64_t records() const { return count_; }

  // Iteration: returns false at end.
  bool next(KvPair* out);
  void rewind();

 private:
  std::string_view data_;
  uint64_t job_epoch_ = 0;
  EdgeId edge_ = 0;
  uint64_t count_ = 0;
  size_t records_start_ = 0;
  size_t pos_ = 0;
  uint64_t seen_ = 0;
};

}  // namespace hamr::engine
