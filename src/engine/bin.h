// Bins: packed batches of key-value records, the engine's unit of transfer
// and scheduling.
//
// Wire layout:
//   header := varint job_epoch | varint edge_id | varint record_count
//   records := (varint key_len | key | varint value_len | value)*
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/pool.h"
#include "serde/serde.h"

namespace hamr::engine {

using EdgeId = uint32_t;

struct KvPair {
  std::string_view key;
  std::string_view value;
};

// Builds one bin. Not thread-safe; each task uses its own builders.
// Default-constructed builders are closed (dense per-task builder tables
// construct every slot up front and open slots on first use).
class BinBuilder {
 public:
  BinBuilder() = default;
  BinBuilder(uint64_t job_epoch, EdgeId edge);

  // Arms a closed (or freshly taken) builder for a new (epoch, edge).
  void open(uint64_t job_epoch, EdgeId edge);
  bool is_open() const { return open_; }

  void add(std::string_view key, std::string_view value);

  uint64_t payload_bytes() const { return buf_.size(); }
  uint64_t records() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Finalizes into a transferable string (header + records) and resets the
  // builder for reuse. With a pool, the output string reuses a recycled
  // payload buffer's capacity instead of allocating.
  std::string take(BufferPool* pool = nullptr);

 private:
  uint64_t job_epoch_ = 0;
  EdgeId edge_ = 0;
  bool open_ = false;
  ByteBuffer buf_;
  uint64_t count_ = 0;
};

// Parses a received bin. Views returned by the iterator point into the
// message payload owned by the caller.
class BinView {
 public:
  // Throws serde::DecodeError on malformed input.
  explicit BinView(std::string_view data);

  uint64_t job_epoch() const { return job_epoch_; }
  EdgeId edge() const { return edge_; }
  uint64_t records() const { return count_; }

  // Iteration: returns false at end.
  bool next(KvPair* out);
  void rewind();

 private:
  std::string_view data_;
  uint64_t job_epoch_ = 0;
  EdgeId edge_ = 0;
  uint64_t count_ = 0;
  size_t records_start_ = 0;
  size_t pos_ = 0;
  uint64_t seen_ = 0;
};

}  // namespace hamr::engine
