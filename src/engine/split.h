// Input splits: the unit of loader work assignment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hamr::engine {

struct InputSplit {
  // Interpreted by the loader; for file loaders this is a path in the
  // preferred node's local store.
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
  // The node whose local disk holds the data. The engine always schedules
  // the split there (HAMR reads input from local disks, paper §5.1).
  uint32_t preferred_node = 0;
  // Free-form tag for synthetic sources (e.g. generator seed or record count).
  uint64_t user_tag = 0;
};

// Per-loader splits for one job submission.
struct JobInputs {
  std::map<uint32_t /*FlowletId*/, std::vector<InputSplit>> splits;

  void add(uint32_t loader, InputSplit split) {
    splits[loader].push_back(std::move(split));
  }
};

}  // namespace hamr::engine
