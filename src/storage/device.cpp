#include "storage/device.h"

#include <algorithm>
#include <thread>

namespace hamr::storage {

ThrottledDevice::ThrottledDevice(DeviceConfig config, Metrics* metrics)
    : config_(config), metrics_(metrics) {}

void ThrottledDevice::charge(uint64_t bytes) {
  if (!config_.enabled) return;
  const uint64_t billed = bytes == 0 ? 0 : std::max(bytes, config_.min_request_bytes);
  const Duration transfer =
      from_seconds(static_cast<double>(billed) / config_.bandwidth_bytes_per_sec);

  TimePoint finish;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimePoint start = std::max(now(), busy_until_);
    finish = start + config_.seek_latency + transfer;
    busy_until_ = finish;
    total_bytes_ += bytes;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("disk.bytes")->add(bytes);
    metrics_->counter("disk.ops")->inc();
  }
  std::this_thread::sleep_until(finish);
}

}  // namespace hamr::storage
