#include "storage/device.h"

#include <algorithm>
#include <thread>

#include "fault/fault.h"
#include "obs/trace.h"

namespace hamr::storage {

ThrottledDevice::ThrottledDevice(DeviceConfig config, Metrics* metrics)
    : config_(config), metrics_(metrics) {}

void ThrottledDevice::charge(uint64_t bytes) {
  if (!config_.enabled) return;
  const uint64_t billed = bytes == 0 ? 0 : std::max(bytes, config_.min_request_bytes);
  const Duration transfer =
      from_seconds(static_cast<double>(billed) / config_.bandwidth_bytes_per_sec);

  const TimePoint t0 = now();
  obs::TraceSpan span("disk.io", "storage", node_id_,
                      -1, static_cast<int64_t>(bytes));
  TimePoint finish;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimePoint start = std::max(t0, busy_until_);
    finish = start + config_.seek_latency + transfer;
    busy_until_ = finish;
    total_bytes_ += bytes;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("disk.bytes")->add(bytes);
    metrics_->counter("disk.ops")->inc();
  }
  std::this_thread::sleep_until(finish);
  if (metrics_ != nullptr) {
    // Modeled request latency: queueing behind busy_until_ + seek + transfer.
    metrics_->histogram("disk.request_us")
        ->observe(static_cast<uint64_t>((now() - t0).count() / 1000));
  }
}

Status ThrottledDevice::charge_write(uint64_t bytes) {
  if (fault::FaultInjector* fi = fault_injector_.load(std::memory_order_acquire);
      fi != nullptr && fi->on_disk_write(node_id_)) {
    charge_seek();  // the failed attempt still costs positioning time
    if (metrics_ != nullptr) metrics_->counter("disk.write_errors")->inc();
    return Status::Unavailable("injected disk write error on node " +
                               std::to_string(node_id_));
  }
  charge(bytes);
  return Status::Ok();
}

}  // namespace hamr::storage
