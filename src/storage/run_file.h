// Sorted-run files: the on-disk format shared by the baseline engine's
// map-side sort/spill/merge and by HAMR's reduce-input spill path.
//
// A run file is a sequence of length-prefixed (key, value) records whose keys
// are non-decreasing. RunWriter enforces the ordering in debug builds;
// RunReader streams records back without materializing the file as records;
// merge_runs k-way merges many runs into one (paying device cost for both the
// reads and the writes, exactly like Hadoop's multi-pass merge).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "storage/file_store.h"

namespace hamr::storage {

struct KvRecord {
  std::string key;
  std::string value;

  bool operator==(const KvRecord&) const = default;
};

// Streams sorted records into an in-memory buffer and flushes the final file
// once on close() so device cost is charged for the file's full size exactly
// once (sequential write).
class RunWriter {
 public:
  RunWriter(FileStore* store, std::string path);
  ~RunWriter();

  void add(std::string_view key, std::string_view value);

  // Flushes and finalizes the file. Returns total bytes written.
  uint64_t close();

  // Fallible close: on an injected device write error the buffer is kept and
  // the writer stays open, so the caller can back off and call finish()
  // again (or fall back to the infallible close()).
  Result<uint64_t> finish();

  uint64_t records() const { return records_; }

 private:
  FileStore* store_;
  std::string path_;
  ByteBuffer buf_;
  uint64_t records_ = 0;
  bool closed_ = false;
  std::string last_key_;  // ordering check
};

// Sequentially decodes a run file. The whole file is fetched once (charging
// the device for one sequential read) and then iterated in memory.
class RunReader {
 public:
  RunReader(const FileStore* store, const std::string& path);

  // Returns false at end of file. Views are valid until the next call… they
  // point into the reader-owned buffer, so copies are taken by callers that
  // keep them.
  bool next(std::string_view* key, std::string_view* value);

  bool done() const { return pos_ >= data_.size(); }

 private:
  std::string data_;
  size_t pos_ = 0;
};

// K-way merges sorted runs into `out_path`. Stable on equal keys (run order).
// Returns the number of records written. `max_fan_in` (>= 2) bounds how many
// runs merge at once, like Hadoop's io.sort.factor: with more runs than the
// fan-in, intermediate merge files are written and re-read (extra disk
// passes - the behavior the paper's in-memory engine avoids). 0 = unlimited.
uint64_t merge_runs(FileStore* store, const std::vector<std::string>& run_paths,
                    const std::string& out_path, size_t max_fan_in = 0);

}  // namespace hamr::storage
