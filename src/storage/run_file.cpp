#include "storage/run_file.h"

#include <cassert>

#include "serde/serde.h"

namespace hamr::storage {

RunWriter::RunWriter(FileStore* store, std::string path)
    : store_(store), path_(std::move(path)) {}

RunWriter::~RunWriter() {
  if (!closed_) close();
}

void RunWriter::add(std::string_view key, std::string_view value) {
  assert(!closed_);
  assert(last_key_.empty() || key >= last_key_);
  last_key_.assign(key);
  serde::Writer w(buf_);
  w.put_bytes(key);
  w.put_bytes(value);
  ++records_;
}

uint64_t RunWriter::close() {
  if (closed_) return buf_.size();
  closed_ = true;
  store_->write_file(path_, buf_.view());
  return buf_.size();
}

Result<uint64_t> RunWriter::finish() {
  if (closed_) return static_cast<uint64_t>(buf_.size());
  Status status = store_->write_file_checked(path_, buf_.view());
  if (!status.ok()) return status;
  closed_ = true;
  return static_cast<uint64_t>(buf_.size());
}

RunReader::RunReader(const FileStore* store, const std::string& path) {
  auto result = store->read_file(path);
  result.status().ExpectOk();
  data_ = std::move(result).value();
}

bool RunReader::next(std::string_view* key, std::string_view* value) {
  if (pos_ >= data_.size()) return false;
  serde::Reader r(std::string_view(data_).substr(pos_));
  *key = r.get_bytes();
  *value = r.get_bytes();
  pos_ += r.position();
  return true;
}

namespace {

uint64_t merge_runs_once(FileStore* store, const std::vector<std::string>& run_paths,
                         const std::string& out_path) {
  struct Head {
    std::string_view key;
    std::string_view value;
    size_t run;
  };
  struct HeadGreater {
    bool operator()(const Head& a, const Head& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.run > b.run;  // stability across runs
    }
  };

  std::vector<RunReader> readers;
  readers.reserve(run_paths.size());
  for (const auto& path : run_paths) readers.emplace_back(store, path);

  std::priority_queue<Head, std::vector<Head>, HeadGreater> heap;
  for (size_t i = 0; i < readers.size(); ++i) {
    std::string_view k, v;
    if (readers[i].next(&k, &v)) heap.push({k, v, i});
  }

  RunWriter out(store, out_path);
  uint64_t written = 0;
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    out.add(head.key, head.value);
    ++written;
    std::string_view k, v;
    if (readers[head.run].next(&k, &v)) heap.push({k, v, head.run});
  }
  out.close();
  return written;
}

}  // namespace

uint64_t merge_runs(FileStore* store, const std::vector<std::string>& run_paths,
                    const std::string& out_path, size_t max_fan_in) {
  if (max_fan_in < 2 || run_paths.size() <= max_fan_in) {
    return merge_runs_once(store, run_paths, out_path);
  }
  // Bounded fan-in: merge groups into intermediate files, repeat.
  std::vector<std::string> current = run_paths;
  uint64_t pass = 0;
  while (current.size() > max_fan_in) {
    std::vector<std::string> next;
    for (size_t i = 0; i < current.size(); i += max_fan_in) {
      const size_t end = std::min(i + max_fan_in, current.size());
      std::vector<std::string> group(current.begin() + i, current.begin() + end);
      if (group.size() == 1) {
        next.push_back(group[0]);
        continue;
      }
      const std::string intermediate =
          out_path + ".merge" + std::to_string(pass) + "_" + std::to_string(i);
      merge_runs_once(store, group, intermediate);
      for (const std::string& path : group) {
        if (path != intermediate) (void)store->remove(path);
      }
      next.push_back(intermediate);
    }
    current = std::move(next);
    ++pass;
  }
  const uint64_t written = merge_runs_once(store, current, out_path);
  for (const std::string& path : current) {
    if (path != out_path) (void)store->remove(path);
  }
  return written;
}

}  // namespace hamr::storage
