// Disk cost model.
//
// Each simulated node owns one ThrottledDevice standing in for its local
// SATA disk (paper Table 1). Every byte the baseline MapReduce engine spills,
// merges, shuffles through, or writes to DFS passes through this device, as
// does the HAMR engine's spill path. The device serializes concurrent
// requests (one spindle) and charges seek latency + bytes/bandwidth, then
// makes the caller actually wait until its modeled completion time - so
// modeled I/O time composes correctly with real compute time and overlaps
// across nodes exactly as independent disks would.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"

namespace hamr::fault {
class FaultInjector;
}  // namespace hamr::fault

namespace hamr::storage {

struct DeviceConfig {
  // Sequential bandwidth in bytes/second. 64 MB/s default approximates a
  // scaled-down SATA-III disk shared by several task slots.
  double bandwidth_bytes_per_sec = 64.0 * 1024 * 1024;
  // Per-request positioning cost (seek + rotational).
  Duration seek_latency = micros(4000);
  // Requests smaller than this still pay for this many bytes (sector floor).
  uint64_t min_request_bytes = 4096;
  // Global switch: when false the device is free (used to ablate the model
  // and by unit tests that only care about data correctness).
  bool enabled = true;
};

class ThrottledDevice {
 public:
  explicit ThrottledDevice(DeviceConfig config, Metrics* metrics = nullptr);

  // Charges one I/O of `bytes` and blocks the calling thread until the
  // modeled completion time. Safe to call from many threads; requests are
  // serialized in arrival order like a single disk queue.
  void charge(uint64_t bytes);

  // Charges a pure seek (metadata touch, file open).
  void charge_seek() { charge(0); }

  // Fallible write: consults the attached fault injector first. On an
  // injected error the write is NOT considered done - the device charges a
  // seek (the failed attempt still positions the head) and returns
  // kUnavailable so the caller can retry with backoff. Without an injector
  // this is charge() returning Ok.
  Status charge_write(uint64_t bytes);

  // Attaches a fault injector (not owned; null detaches) and the node id it
  // should attribute this device's write errors to.
  void set_fault_injector(fault::FaultInjector* injector, uint32_t node_id) {
    fault_injector_.store(injector, std::memory_order_release);
    node_id_ = node_id;
  }

  const DeviceConfig& config() const { return config_; }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  DeviceConfig config_;
  Metrics* metrics_;
  std::atomic<fault::FaultInjector*> fault_injector_{nullptr};
  uint32_t node_id_ = 0;
  std::mutex mu_;
  TimePoint busy_until_{};
  uint64_t total_bytes_ = 0;
};

}  // namespace hamr::storage
