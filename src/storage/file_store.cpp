#include "storage/file_store.h"

#include <algorithm>

namespace hamr::storage {

void FileStore::write_file(const std::string& path, std::string_view data) {
  if (device_ != nullptr) device_->charge(data.size());
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::make_shared<std::string>(data);
}

Status FileStore::write_file_checked(const std::string& path,
                                     std::string_view data) {
  if (device_ != nullptr) {
    Status status = device_->charge_write(data.size());
    if (!status.ok()) return status;
  }
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::make_shared<std::string>(data);
  return Status::Ok();
}

void FileStore::append(const std::string& path, std::string_view data) {
  if (device_ != nullptr) device_->charge(data.size());
  std::shared_ptr<std::string> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = files_[path];
    if (!slot) slot = std::make_shared<std::string>();
    file = slot;
  }
  // Appends to a given file are not concurrent in any caller (each spill file
  // has a single writer); the store lock above only protects the map.
  file->append(data.data(), data.size());
}

Result<std::string> FileStore::read_file(const std::string& path) const {
  std::shared_ptr<std::string> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file: " + path);
    file = it->second;
  }
  if (device_ != nullptr) device_->charge(file->size());
  return *file;
}

Result<std::string> FileStore::read_range(const std::string& path,
                                          uint64_t offset, uint64_t len) const {
  std::shared_ptr<std::string> file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("file: " + path);
    file = it->second;
  }
  if (offset >= file->size()) return std::string();
  const uint64_t n = std::min<uint64_t>(len, file->size() - offset);
  if (device_ != nullptr) device_->charge(n);
  return file->substr(offset, n);
}

Result<uint64_t> FileStore::file_size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("file: " + path);
  return static_cast<uint64_t>(it->second->size());
}

bool FileStore::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status FileStore::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.erase(path) > 0 ? Status::Ok() : Status::NotFound("file: " + path);
}

std::vector<std::string> FileStore::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t FileStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, file] : files_) total += file->size();
  return total;
}

}  // namespace hamr::storage
