// Per-node local file system, hermetic and in-memory, fronted by the node's
// ThrottledDevice for cost accounting.
//
// This stands in for each cluster node's local disks: map-task spill files,
// shuffle segments, HAMR spill runs, and MiniDfs block storage all live here.
// Keeping bytes in memory (with modeled I/O cost) makes every test and bench
// deterministic and independent of the host file system.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/device.h"

namespace hamr::storage {

class FileStore {
 public:
  // `device` may be null (free I/O); when set, reads and writes are charged.
  explicit FileStore(ThrottledDevice* device = nullptr) : device_(device) {}

  // Creates or truncates a file and writes `data` to it.
  void write_file(const std::string& path, std::string_view data);

  // Fallible variant: consults the device's fault injector and, on an
  // injected write error, leaves the file untouched and returns the error.
  // Recovery-aware writers (the engine's spill path) use this and retry.
  Status write_file_checked(const std::string& path, std::string_view data);

  // Appends to a file, creating it if absent.
  void append(const std::string& path, std::string_view data);

  // Reads the whole file.
  Result<std::string> read_file(const std::string& path) const;

  // Reads [offset, offset+len) clamped to file size.
  Result<std::string> read_range(const std::string& path, uint64_t offset,
                                 uint64_t len) const;

  Result<uint64_t> file_size(const std::string& path) const;
  bool exists(const std::string& path) const;
  Status remove(const std::string& path);

  // All paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;

  // Total bytes across all files (memory-footprint probe for tests).
  uint64_t total_bytes() const;

  ThrottledDevice* device() const { return device_; }

 private:
  ThrottledDevice* device_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<std::string>> files_;
};

}  // namespace hamr::storage
