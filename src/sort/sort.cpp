#include "sort/sort.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/arena.h"
#include "common/logging.h"
#include "engine/runtime.h"
#include "serde/batch.h"
#include "sort/merge.h"
#include "storage/run_file.h"

namespace hamr::sort {

namespace {

using engine::internal::key_prefix;
using Rec = engine::internal::ReduceStage::Rec;

// Streams the node-local framed input file in record chunks. One split per
// node covers the whole file; the cursor is the byte offset into it.
class SortRunLoader : public engine::LoaderFlowlet {
 public:
  explicit SortRunLoader(SortSpec spec) : spec_(std::move(spec)) {}

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!loaded_) {
        Result<std::string> file = ctx.local_store().read_file(split.path);
        if (!file.ok()) {
          HLOG_ERROR << "sort loader: cannot read " << split.path << ": "
                     << file.status().ToString();
          loaded_ = true;  // treat as empty: the job still completes
        } else {
          data_ = std::move(file).value();
          loaded_ = true;
        }
      }
    }
    size_t pos = static_cast<size_t>(*cursor);
    if (pos >= data_.size()) return false;
    // The shared framed-record decode loop (also used by the query layer's
    // row scan): one bounds-checked cursor walk per chunk.
    std::vector<std::string_view> records;
    records.reserve(spec_.records_per_chunk);
    serde::get_framed_run(data_, &pos, spec_.records_per_chunk, &records);
    for (const std::string_view rec : records) {
      ctx.emit(0, rec, std::string_view());
    }
    *cursor = pos;
    return pos < data_.size();
  }

 private:
  SortSpec spec_;
  std::mutex mu_;
  bool loaded_ = false;
  std::string data_;  // stable: chunks hand out views into it within a call
};

// Receives this node's key range, staging records through an arena + prefix
// index, spilling sorted runs past the budget, and loser-tree merging
// everything into the node's output partition at finish.
class SortSink : public engine::MapFlowlet {
 public:
  explicit SortSink(SortSpec spec) : spec_(std::move(spec)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    // Stage under the sink lock: one arena bump holds the record, the index
    // entry caches the 8-byte key prefix so run sorts are mostly integer
    // compares. Spill state is moved out wholesale while locked and sorted /
    // written outside the lock.
    Arena spill_arena;
    std::vector<Rec> to_spill;
    std::string spill_file;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wire_metrics(ctx);
      char* data = arena_.alloc(record.key.size() + record.value.size());
      std::memcpy(data, record.key.data(), record.key.size());
      std::memcpy(data + record.key.size(), record.value.data(),
                  record.value.size());
      Rec rec;
      rec.prefix = key_prefix(record.key);
      rec.key_len = static_cast<uint32_t>(record.key.size());
      rec.value_len = static_cast<uint32_t>(record.value.size());
      rec.data = data;
      index_.push_back(rec);
      bytes_ += record.key.size() + record.value.size() + sizeof(Rec);
      if (bytes_ >= spec_.memory_budget_bytes) {
        spill_arena = std::move(arena_);
        arena_ = Arena(arena_gauge_);
        to_spill.swap(index_);
        bytes_ = 0;
        spill_file = spill_path(ctx.node(), next_spill_++);
        spill_paths_.push_back(spill_file);
      }
    }
    if (!to_spill.empty()) {
      std::stable_sort(to_spill.begin(), to_spill.end(),
                       engine::internal::reduce_rec_less);
      storage::RunWriter writer(&ctx.local_store(), spill_file);
      for (const Rec& r : to_spill) writer.add(r.key(), r.value());
      writer.close();
      spill_runs_c_->inc();
    }
  }

  void finish(engine::Context& ctx) override {
    // Upstream complete: no process() can race this. Sort the in-memory
    // remainder and merge it with the spill runs through the loser tree.
    {
      std::lock_guard<std::mutex> lock(mu_);
      wire_metrics(ctx);  // a node may receive zero records for its range
    }
    std::stable_sort(index_.begin(), index_.end(),
                     engine::internal::reduce_rec_less);

    struct Source {
      std::unique_ptr<storage::RunReader> reader;  // null => memory source
      const std::vector<Rec>* mem = nullptr;
      size_t mem_pos = 0;
      bool next(std::string_view* key, std::string_view* value) {
        if (reader) return reader->next(key, value);
        if (mem_pos >= mem->size()) return false;
        const Rec& r = (*mem)[mem_pos++];
        *key = r.key();
        *value = r.value();
        return true;
      }
    };
    std::vector<Source> sources;
    sources.reserve(spill_paths_.size() + 1);
    for (const std::string& path : spill_paths_) {
      Source s;
      s.reader = std::make_unique<storage::RunReader>(&ctx.local_store(), path);
      sources.push_back(std::move(s));
    }
    Source mem;
    mem.mem = &index_;
    sources.push_back(std::move(mem));
    merge_fan_in_h_->observe(sources.size());

    LoserTree<Source> tree(std::move(sources));
    storage::RunWriter out(&ctx.local_store(),
                           spec_.output_prefix + "/p" + std::to_string(ctx.node()));
    std::string_view key, value;
    uint64_t records = 0;
    while (tree.next(&key, &value)) {
      out.add(key, value);
      ++records;
    }
    out.close();
    ctx.metrics().counter("sort.records_out")->add(records);

    index_.clear();
    index_.shrink_to_fit();
    arena_.clear();
    for (const std::string& path : spill_paths_) {
      (void)ctx.local_store().remove(path);
    }
    spill_paths_.clear();
  }

 private:
  // Called under mu_. Bins can arrive and be processed before this node's
  // activate_job has run the flowlet's start() hook (cross-node activation
  // is not barriered), so the metric wiring happens lazily on the first
  // record instead of in start() - and the arena is NEVER reassigned once a
  // record has been staged into it.
  void wire_metrics(engine::Context& ctx) {
    if (wired_) return;
    wired_ = true;
    arena_gauge_ = ctx.metrics().gauge("engine.arena_bytes");
    arena_ = Arena(arena_gauge_);  // safe: nothing staged yet
    spill_runs_c_ = ctx.metrics().counter("sort.spill_runs");
    merge_fan_in_h_ = ctx.metrics().histogram("sort.merge_fan_in");
  }

  std::string spill_path(uint32_t node, uint64_t n) const {
    return spec_.output_prefix + "/spill/n" + std::to_string(node) + "/r" +
           std::to_string(n);
  }

  SortSpec spec_;
  bool wired_ = false;
  Gauge* arena_gauge_ = nullptr;
  Counter* spill_runs_c_ = nullptr;
  Histogram* merge_fan_in_h_ = nullptr;
  std::mutex mu_;
  Arena arena_;
  std::vector<Rec> index_;
  uint64_t bytes_ = 0;
  std::vector<std::string> spill_paths_;
  uint64_t next_spill_ = 0;
};

}  // namespace

std::string frame_records(const std::vector<std::string>& records) {
  ByteBuffer buf;
  serde::Writer w(buf);
  for (const std::string& rec : records) serde::put_framed(w, rec);
  return std::string(buf.view());
}

void stage_sort_input(cluster::Cluster& cluster, const SortSpec& spec,
                      const std::vector<std::string>& shards) {
  for (uint32_t n = 0; n < cluster.size() && n < shards.size(); ++n) {
    cluster.node(n).store().write_file(spec.input_path, shards[n]);
  }
}

RangePartitioner sample_partitioner(cluster::Cluster& cluster,
                                    const SortSpec& spec, uint32_t parts) {
  KeySampler sampler(spec.sample_capacity, spec.sample_seed);
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    Result<std::string> file = cluster.node(n).store().read_file(spec.input_path);
    if (!file.ok()) continue;  // node without input contributes no samples
    const std::string& data = file.value();
    size_t pos = 0;
    std::vector<std::string_view> records;
    while (pos < data.size()) {
      records.clear();
      serde::get_framed_run(data, &pos, 4096, &records);
      for (const std::string_view rec : records) sampler.add(rec);
    }
  }
  return RangePartitioner::from_samples(sampler.take_samples(), parts);
}

SortStats run_distributed_sort(engine::Engine& engine, const SortSpec& spec) {
  cluster::Cluster& cluster = engine.cluster();
  SortStats stats;
  stats.partitioner = sample_partitioner(cluster, spec, cluster.size());

  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "sort_load", [spec] { return std::make_unique<SortRunLoader>(spec); });
  const auto sink = graph.add_map(
      "sort_sink", [spec] { return std::make_unique<SortSink>(spec); });
  engine::EdgeOptions range_edge;
  range_edge.partitioner = stats.partitioner.as_edge_partitioner();
  graph.connect(loader, sink, range_edge);

  engine::JobInputs inputs;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    engine::InputSplit split;
    split.path = spec.input_path;
    split.offset = 0;
    split.length = cluster.node(n).store().file_size(spec.input_path).value_or(0);
    split.preferred_node = n;
    inputs.add(loader, split);
  }

  stats.job = engine.run(graph, inputs);
  stats.input_records = stats.job.records_emitted;
  return stats;
}

std::vector<std::string> collect_sorted(cluster::Cluster& cluster,
                                        const SortSpec& spec) {
  std::vector<std::string> out;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    const std::string path = spec.output_prefix + "/p" + std::to_string(n);
    if (!cluster.node(n).store().exists(path)) continue;
    storage::RunReader reader(&cluster.node(n).store(), path);
    std::string_view key, value;
    while (reader.next(&key, &value)) out.emplace_back(key);
  }
  return out;
}

}  // namespace hamr::sort
