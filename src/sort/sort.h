// Distributed sort (TeraSort-class) on the flowlet engine.
//
// Pipeline (one job):
//
//   SortRunLoader (per node)  --range-partitioned edge-->  SortSink (per node)
//
// The loader streams a node-local framed-record file in chunks; the edge
// routes each record by a RangePartitioner built from a seeded sampling pass
// over the inputs; the sink stages arrivals in an arena with 8-byte
// key-prefix index entries, spills sorted runs past the memory budget, and
// on upstream completion merges spills + memory through a loser tree into
// one sorted run file per node. Because partition i's keys all precede
// partition i+1's, concatenating the per-node outputs in node order is the
// globally sorted dataset.
//
// Records are opaque byte strings sorted lexicographically (carried as keys
// with empty values), so equal records are byte-identical and the output is
// byte-for-byte deterministic under any merge order, work stealing, or
// chaos-plan retries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "engine/engine.h"
#include "sort/partitioner.h"

namespace hamr::sort {

struct SortSpec {
  // Node-local framed input file ((varint len | bytes)* records).
  std::string input_path = "sort/input";
  // Sorted partition written to "<output_prefix>/p<node>" per node; spill
  // runs live under "<output_prefix>/spill/".
  std::string output_prefix = "sort/out";
  // Per-node staging bytes before a sorted run is spilled.
  uint64_t memory_budget_bytes = 8ull << 20;
  // Records decoded per loader chunk (fine-grain task size).
  size_t records_per_chunk = 2048;
  // Sampling pass: reservoir capacity and seed (deterministic boundaries).
  size_t sample_capacity = 4096;
  uint64_t sample_seed = 0x5eed;
};

struct SortStats {
  engine::JobResult job;
  uint64_t input_records = 0;
  RangePartitioner partitioner;
};

// Encodes records into the framed on-disk layout the loader streams.
std::string frame_records(const std::vector<std::string>& records);

// Writes shard i to node i's local store at spec.input_path.
void stage_sort_input(cluster::Cluster& cluster, const SortSpec& spec,
                      const std::vector<std::string>& shards);

// Seeded sampling pass over every node's staged input; boundaries balanced
// for `parts` partitions (normally cluster size).
RangePartitioner sample_partitioner(cluster::Cluster& cluster,
                                    const SortSpec& spec, uint32_t parts);

// Runs the full sort: sampling pass, range-partitioned shuffle, per-node
// spill/merge. Output partitions land in each node's local store.
SortStats run_distributed_sort(engine::Engine& engine, const SortSpec& spec);

// Reads the per-node sorted partitions back in node order (the globally
// sorted record sequence).
std::vector<std::string> collect_sorted(cluster::Cluster& cluster,
                                        const SortSpec& spec);

}  // namespace hamr::sort
