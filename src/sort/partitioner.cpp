#include "sort/partitioner.h"

#include <algorithm>

#include "serde/serde.h"

namespace hamr::sort {

KeySampler::KeySampler(size_t capacity, uint64_t seed)
    : capacity_(capacity), state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

uint64_t KeySampler::next_rand() {
  // xorshift64*: tiny, seedable, plenty for reservoir selection.
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dull;
}

void KeySampler::add(std::string_view key) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.emplace_back(key);
    return;
  }
  // Classic reservoir step: element i replaces a slot with probability
  // capacity/i, keeping every prefix uniformly represented.
  const uint64_t j = next_rand() % seen_;
  if (j < capacity_) samples_[j] = std::string(key);
}

RangePartitioner RangePartitioner::from_samples(std::vector<std::string> samples,
                                                uint32_t parts) {
  RangePartitioner p;
  if (parts <= 1 || samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  for (uint32_t i = 1; i < parts; ++i) {
    const std::string& b = samples[i * n / parts];
    if (!p.boundaries_.empty() && p.boundaries_.back() == b) continue;
    p.boundaries_.push_back(b);
  }
  return p;
}

uint32_t RangePartitioner::partition_of(std::string_view key) const {
  const auto it = std::upper_bound(
      boundaries_.begin(), boundaries_.end(), key,
      [](std::string_view k, const std::string& b) { return k < b; });
  return static_cast<uint32_t>(it - boundaries_.begin());
}

std::string RangePartitioner::encode() const {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(boundaries_.size());
  for (const std::string& b : boundaries_) w.put_bytes(b);
  return std::string(buf.view());
}

RangePartitioner RangePartitioner::decode(std::string_view data) {
  RangePartitioner p;
  serde::Reader r(data);
  const uint64_t n = r.get_varint();
  p.boundaries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) p.boundaries_.emplace_back(r.get_bytes());
  return p;
}

std::function<uint32_t(std::string_view, uint32_t)>
RangePartitioner::as_edge_partitioner() const {
  return [p = *this](std::string_view key, uint32_t num_nodes) -> uint32_t {
    if (num_nodes == 0) return 0;
    const uint32_t part = p.partition_of(key);
    return part < num_nodes ? part : num_nodes - 1;
  };
}

}  // namespace hamr::sort
