// K-way merge via a loser tree (tree of losers selection sort).
//
// A linear best-of-k scan costs O(k) comparisons per output record; the
// loser tree costs O(log k): after the winner is consumed, only the path
// from its leaf to the root is replayed. For TeraSort-class merges with
// dozens of spill runs per stage this is the difference between the merge
// being comparison-bound and being memcpy-bound.
//
// Source concept:
//   bool next(std::string_view* key, std::string_view* value);
//     Advances to the next record, filling the views, or returns false when
//     exhausted. Views must stay valid until the source's following next()
//     call (arena- or file-buffer-backed sources satisfy this trivially).
//
// Stability: ties are broken by the smaller source index, so listing spill
// runs in creation order followed by the in-memory run reproduces exactly
// the arrival-order semantics of a stable merge.
#pragma once

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

namespace hamr::sort {

template <typename Source>
class LoserTree {
 public:
  explicit LoserTree(std::vector<Source> sources)
      : sources_(std::move(sources)),
        k_(sources_.size()),
        tree_(k_, 0),
        key_(k_),
        value_(k_),
        exhausted_(k_, false) {}

  size_t fan_in() const { return k_; }

  // Pops the globally smallest record. The output views point into the
  // winning source and remain valid until the next call.
  bool next(std::string_view* key, std::string_view* value) {
    if (k_ == 0) return false;
    if (!started_) {
      for (size_t i = 0; i < k_; ++i) advance(i);
      winner_ = build(1);
      started_ = true;
    } else {
      // Advance the previous winner only now: pulling its source earlier
      // would invalidate the views handed out by the last call.
      advance(winner_);
      replay();
    }
    if (exhausted_[winner_]) return false;
    *key = key_[winner_];
    *value = value_[winner_];
    return true;
  }

 private:
  void advance(size_t i) {
    if (exhausted_[i]) return;
    if (!sources_[i].next(&key_[i], &value_[i])) {
      exhausted_[i] = true;
      key_[i] = {};
      value_[i] = {};
    }
  }

  // True when source a must come out before source b. Exhausted sources
  // always lose; key ties go to the smaller index (stability).
  bool wins(size_t a, size_t b) const {
    if (exhausted_[a]) return false;
    if (exhausted_[b]) return true;
    if (key_[a] != key_[b]) return key_[a] < key_[b];
    return a < b;
  }

  // Array-heap layout: internal nodes 1..k-1 hold the loser of their
  // subtree's playoff; leaf node k+i is source i. Returns the subtree
  // winner; called once as build(1) after the leaves are primed.
  size_t build(size_t node) {
    if (node >= k_) return node - k_;
    const size_t l = build(2 * node);
    const size_t r = build(2 * node + 1);
    const size_t w = wins(l, r) ? l : r;
    tree_[node] = w == l ? r : l;
    return w;
  }

  // Replays the path from the previous winner's leaf to the root against
  // the stored losers.
  void replay() {
    size_t w = winner_;
    for (size_t node = (w + k_) / 2; node >= 1; node /= 2) {
      if (wins(tree_[node], w)) std::swap(tree_[node], w);
    }
    winner_ = w;
  }

  std::vector<Source> sources_;
  size_t k_;
  std::vector<size_t> tree_;
  std::vector<std::string_view> key_;
  std::vector<std::string_view> value_;
  // vector<char>, not vector<bool>: flags are read in the comparator's
  // innermost path.
  std::vector<char> exhausted_;
  size_t winner_ = 0;
  bool started_ = false;
};

}  // namespace hamr::sort
