// Range partitioning for TeraSort-class distributed sorts.
//
// A hash partitioner balances load but destroys order; a sorted output needs
// every key on node i to be <= every key on node i+1. The classic TeraSort
// answer: sample the input, pick p-1 quantile boundaries, and route each key
// to the partition whose range contains it. KeySampler is the seeded
// (deterministic) reservoir used for the sampling pass; RangePartitioner
// holds the boundaries and plugs into the engine via
// EdgeOptions::partitioner.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace hamr::sort {

// Uniform reservoir sampler over a key stream. Deterministic for a given
// (capacity, seed, stream): every node and the driver can reproduce the
// same sample without coordination.
class KeySampler {
 public:
  KeySampler(size_t capacity, uint64_t seed);

  void add(std::string_view key);

  uint64_t seen() const { return seen_; }
  const std::vector<std::string>& samples() const { return samples_; }
  std::vector<std::string> take_samples() { return std::move(samples_); }

 private:
  uint64_t next_rand();

  size_t capacity_;
  uint64_t state_;
  uint64_t seen_ = 0;
  std::vector<std::string> samples_;
};

// p-way range partitioner: boundaries b_1 <= ... <= b_{p-1} split the key
// space into p ranges; partition_of(key) counts the boundaries <= key, so
// outputs are monotone in key order - concatenating partition outputs in
// index order yields a globally sorted sequence.
class RangePartitioner {
 public:
  RangePartitioner() = default;

  // Builds balanced boundaries from a key sample: the samples are sorted and
  // boundaries placed at the i*n/parts quantiles. Duplicate boundaries
  // (skew: one hot key dominating the sample) are collapsed, so heavy
  // duplicates cost partitions, never correctness.
  static RangePartitioner from_samples(std::vector<std::string> samples,
                                       uint32_t parts);

  uint32_t partitions() const {
    return static_cast<uint32_t>(boundaries_.size()) + 1;
  }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

  // Monotone: key_a <= key_b implies partition_of(a) <= partition_of(b).
  uint32_t partition_of(std::string_view key) const;

  // Wire form, for shipping the driver's boundaries to job submissions.
  std::string encode() const;
  static RangePartitioner decode(std::string_view data);

  // Engine hook for EdgeOptions::partitioner; the partition index is clamped
  // into [0, num_nodes) so a partitioner built for p > n nodes still routes
  // validly (at some balance cost).
  std::function<uint32_t(std::string_view, uint32_t)> as_edge_partitioner() const;

 private:
  std::vector<std::string> boundaries_;
};

}  // namespace hamr::sort
