// Tiny metrics registry: named monotonic counters, gauges, and fixed-bucket
// histograms.
//
// Every node runtime, transport, and disk device owns a Metrics instance;
// the benches aggregate them to report bytes spilled, flow-control stalls,
// network bytes, etc. Counters are atomic so tasks can bump them lock-free.
// Gauges track instantaneous levels (outstanding frames, queue depths);
// histograms capture distributions (retry backoff delays, RPC latencies)
// that a plain counter cannot.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hamr {

class Counter {
 public:
  void add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  uint64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// An instantaneous signed level. Unlike Counter it can go down.
class Gauge {
 public:
  void set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  void dec() { sub(1); }
  int64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
// extra overflow bucket counts the rest. Observation is lock-free (atomic
// bucket bump), so hot paths can record latencies directly.
class Histogram {
 public:
  // Default bounds: exponential 1us .. ~16s, suitable for latency in
  // microseconds (the unit used by every engine/net histogram).
  static std::vector<uint64_t> default_latency_bounds() {
    std::vector<uint64_t> bounds;
    for (uint64_t b = 1; b <= (1ull << 24); b *= 2) bounds.push_back(b);
    return bounds;
  }

  explicit Histogram(std::vector<uint64_t> bounds = default_latency_bounds())
      : bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1)) {
    for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  }

  void observe(uint64_t value) {
    // lower_bound: first bound >= value, so each bound is inclusive.
    const size_t i = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  size_t num_buckets() const { return bounds_.size() + 1; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Upper bound of the bucket holding the q-quantile observation (q in
  // [0, 1]). Returns 0 on an empty histogram; the overflow bucket reports
  // the last finite bound.
  uint64_t quantile(double q) const {
    const uint64_t n = count();
    if (n == 0 || bounds_.empty()) return 0;
    const uint64_t rank = static_cast<uint64_t>(
        std::clamp(q, 0.0, 1.0) * static_cast<double>(n - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      seen += bucket_count(i);
      if (seen > rank) return bounds_[std::min(i, bounds_.size() - 1)];
    }
    return bounds_.back();
  }

  // Adds another histogram's observations. Requires identical bounds.
  void merge_from(const Histogram& other) {
    if (other.bounds_ != bounds_) return;  // incompatible; skip silently
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      buckets_[i].fetch_add(other.bucket_count(i), std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  }

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// A registry of counters, gauges, and histograms, keyed by name. Pointers
// remain stable for the registry's lifetime, so hot paths can cache them.
class Metrics {
 public:
  Counter* counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return slot.get();
  }

  Gauge* gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return slot.get();
  }

  // First caller fixes the bounds; later callers get the existing histogram.
  Histogram* histogram(const std::string& name,
                       std::vector<uint64_t> bounds =
                           Histogram::default_latency_bounds()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return slot.get();
  }

  // Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->get());
    return out;
  }

  // Snapshot of all gauges, sorted by name.
  std::vector<std::pair<std::string, int64_t>> gauges_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, int64_t>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge->get());
    return out;
  }

  // Stable histogram pointers, sorted by name. Pointers live as long as the
  // registry; contents are atomic, so callers may read without the lock.
  std::vector<std::pair<std::string, const Histogram*>> histograms_snapshot()
      const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, const Histogram*>> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
    return out;
  }

  uint64_t value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->get();
  }

  int64_t gauge_value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second->get();
  }

  // Adds every counter/gauge/histogram of `other` into this registry (for
  // cluster-wide sums).
  void merge_from(const Metrics& other) {
    for (const auto& [name, value] : other.snapshot()) counter(name)->add(value);
    // Collect stable pointers under the source lock, merge outside it (their
    // contents are atomic), so two registries can merge concurrently without
    // lock-order inversion.
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const Histogram*>> histograms;
    {
      std::lock_guard<std::mutex> lock(other.mu_);
      for (const auto& [name, g] : other.gauges_) gauges.emplace_back(name, g.get());
      for (const auto& [name, h] : other.histograms_) {
        histograms.emplace_back(name, h.get());
      }
    }
    for (const auto& [name, g] : gauges) gauge(name)->add(g->get());
    for (const auto& [name, h] : histograms) {
      histogram(name, h->bounds())->merge_from(*h);
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hamr
