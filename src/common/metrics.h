// Tiny metrics registry: named monotonic counters and gauges.
//
// Every node runtime, transport, and disk device owns a Metrics instance;
// the benches aggregate them to report bytes spilled, flow-control stalls,
// network bytes, etc. Counters are atomic so tasks can bump them lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hamr {

class Counter {
 public:
  void add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  uint64_t get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A registry of counters, keyed by name. Counter pointers remain stable for
// the registry's lifetime, so hot paths can cache them.
class Metrics {
 public:
  Counter* counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return slot.get();
  }

  // Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->get());
    return out;
  }

  uint64_t value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->get();
  }

  // Adds every counter of `other` into this registry (for cluster-wide sums).
  void merge_from(const Metrics& other) {
    for (const auto& [name, value] : other.snapshot()) counter(name)->add(value);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace hamr
