#include "common/clock.h"

#include <cstdio>

namespace hamr {

std::string format_duration(Duration d) {
  char buf[64];
  const double s = to_seconds(d);
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", s * 1e6);
  }
  return buf;
}

}  // namespace hamr
