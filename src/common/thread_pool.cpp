#include "common/thread_pool.h"

#include <utility>

namespace hamr {

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Another caller already initiated shutdown; fall through to join below
      // only from the first caller (threads_ emptied exactly once).
    }
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        // stopping_ and drained: exit. (Queued tasks still run to completion
        // so shutdown never abandons submitted work.)
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace hamr
