// BufferPool: node-level recycling of payload buffers.
//
// Every shuffle bin and every retransmission frame used to allocate a fresh
// std::string on build and free it after send/ack. A BufferPool keeps a
// bounded freelist of those strings so their heap capacity survives the
// round trip: BinBuilder::take() acquires, the worker loop releases a
// processed bin's payload, and the reliable channel releases acked frames.
//
// Bounded on both axes: at most `max_buffers` strings are retained, and a
// returned string whose capacity exceeds `max_buffer_bytes` is dropped so a
// single jumbo bin cannot pin memory forever. Thread-safe; the counters (one
// atomic bump per acquire) feed `engine.pool_hits` / `engine.pool_misses`.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace hamr {

class BufferPool {
 public:
  explicit BufferPool(size_t max_buffers = 256,
                      size_t max_buffer_bytes = 1024 * 1024)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  void set_metrics(Counter* hits, Counter* misses) {
    hits_ = hits;
    misses_ = misses;
  }

  // An empty string, reusing a pooled buffer's capacity when one is free.
  std::string acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::string buf = std::move(free_.back());
        free_.pop_back();
        if (hits_ != nullptr) hits_->inc();
        return buf;
      }
    }
    if (misses_ != nullptr) misses_->inc();
    return std::string();
  }

  // Returns a buffer to the pool (cleared; capacity kept). Oversized or
  // surplus buffers are simply freed.
  void release(std::string&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_buffer_bytes_) return;
    buf.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_buffers_) return;  // drop: pool is full
    free_.push_back(std::move(buf));
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  const size_t max_buffers_;
  const size_t max_buffer_bytes_;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  mutable std::mutex mu_;
  std::vector<std::string> free_;
};

}  // namespace hamr
