// BufferPool: node-level recycling of payload buffers.
//
// Every shuffle bin and every retransmission frame used to allocate a fresh
// std::string on build and free it after send/ack. A BufferPool keeps a
// bounded freelist of those strings so their heap capacity survives the
// round trip: BinBuilder::take() acquires, the worker loop releases a
// processed bin's payload, and the reliable channel releases acked frames.
//
// Bounded on both axes: at most `max_buffers` strings are retained, and a
// returned string whose capacity exceeds `max_buffer_bytes` is dropped so a
// single jumbo bin cannot pin memory forever. Thread-safe; the counters (one
// atomic bump per acquire) feed `engine.pool_hits` / `engine.pool_misses`.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace hamr {

class BufferPool {
 public:
  explicit BufferPool(size_t max_buffers = 256,
                      size_t max_buffer_bytes = 1024 * 1024)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  void set_metrics(Counter* hits, Counter* misses, Gauge* hit_rate = nullptr) {
    hits_ = hits;
    misses_ = misses;
    hit_rate_ = hit_rate;
  }

  // An empty string, reusing a pooled buffer's capacity when one is free.
  std::string acquire() {
    bool hit = false;
    std::string buf;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
        hit = true;
      }
    }
    if (hit) {
      hits_n_.fetch_add(1, std::memory_order_relaxed);
      if (hits_ != nullptr) hits_->inc();
    } else {
      misses_n_.fetch_add(1, std::memory_order_relaxed);
      if (misses_ != nullptr) misses_->inc();
    }
    if (hit_rate_ != nullptr) hit_rate_->set(hit_rate_percent());
    return buf;
  }

  // Recycled-capacity ratio over the pool's lifetime, in whole percent.
  int64_t hit_rate_percent() const {
    const uint64_t h = hits_n_.load(std::memory_order_relaxed);
    const uint64_t total = h + misses_n_.load(std::memory_order_relaxed);
    return total == 0 ? 0 : static_cast<int64_t>(h * 100 / total);
  }

  // Returns a buffer to the pool (cleared; capacity kept). Oversized or
  // surplus buffers are simply freed.
  void release(std::string&& buf) {
    if (buf.capacity() == 0 || buf.capacity() > max_buffer_bytes_) return;
    buf.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_buffers_) return;  // drop: pool is full
    free_.push_back(std::move(buf));
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  const size_t max_buffers_;
  const size_t max_buffer_bytes_;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Gauge* hit_rate_ = nullptr;
  std::atomic<uint64_t> hits_n_{0};
  std::atomic<uint64_t> misses_n_{0};
  mutable std::mutex mu_;
  std::vector<std::string> free_;
};

// Wraps a buffer in shared ownership; when the last holder drops its
// reference the buffer's capacity goes back to `pool`. The deleter captures
// the shared_ptr to the pool itself, so pooled payloads may safely outlive
// the runtime that created them (frames can still sit in a transport queue
// while their node is being torn down).
inline std::shared_ptr<std::string> to_shared(std::shared_ptr<BufferPool> pool,
                                              std::string&& buf) {
  auto* raw = new std::string(std::move(buf));
  return std::shared_ptr<std::string>(
      raw, [pool = std::move(pool)](std::string* p) {
        pool->release(std::move(*p));
        delete p;
      });
}

inline std::shared_ptr<std::string> acquire_shared(
    std::shared_ptr<BufferPool> pool) {
  std::string buf = pool->acquire();
  return to_shared(std::move(pool), std::move(buf));
}

}  // namespace hamr
