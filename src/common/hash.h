// Hashing used for key partitioning and container keys.
//
// Partitioning must be stable across runs and platforms (the tests pin golden
// partition assignments), so we implement FNV-1a + an avalanche finalizer
// rather than relying on std::hash.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace hamr {

inline uint64_t fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Murmur3-style finalizer; spreads low-entropy FNV outputs before modulo.
inline uint64_t mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

inline uint64_t hash_bytes(std::string_view bytes) {
  return mix64(fnv1a64(bytes.data(), bytes.size()));
}

inline uint64_t hash_u64(uint64_t value) { return mix64(value * 0x9e3779b97f4a7c15ULL); }

inline uint64_t hash_combine(uint64_t a, uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Deterministic key -> partition mapping shared by the engine shuffle, the
// baseline shuffle, and the KV store (so locality reasoning lines up).
inline uint32_t partition_of(std::string_view key, uint32_t num_partitions) {
  return num_partitions == 0
             ? 0
             : static_cast<uint32_t>(hash_bytes(key) % num_partitions);
}

}  // namespace hamr
