#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace hamr::log {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    const char* env = std::getenv("HAMR_LOG");
    Level initial = env != nullptr ? parse_level(env) : Level::kWarn;
    return static_cast<int>(initial);
  }();
  return level;
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "D";
    case Level::kInfo:
      return "I";
    case Level::kWarn:
      return "W";
    case Level::kError:
      return "E";
  }
  return "?";
}

}  // namespace

Level log_level() { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(Level level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

Level parse_level(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lowered == "debug") return Level::kDebug;
  if (lowered == "info") return Level::kInfo;
  if (lowered == "warn" || lowered == "warning") return Level::kWarn;
  if (lowered == "error") return Level::kError;
  return Level::kWarn;
}

namespace internal {

LogLine::LogLine(Level level, const char* file, int line) : level_(level) {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(steady_clock::now().time_since_epoch()).count();
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << level_tag(level) << " " << now << " " << base << ":" << line << "] ";
}

LogLine::~LogLine() {
  stream_ << "\n";
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fwrite(text.data(), 1, text.size(), stderr);
  if (level_ >= Level::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace hamr::log
