// Byte-buffer primitives shared by serde, net, and the engine's bins.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hamr {

// A growable, contiguous byte buffer. Thin wrapper over std::vector<uint8_t>
// with append helpers; serde::Writer builds on it.
class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t reserve_bytes) { data_.reserve(reserve_bytes); }

  void append(const void* src, size_t len) {
    const auto* p = static_cast<const uint8_t*>(src);
    data_.insert(data_.end(), p, p + len);
  }
  void append(std::string_view sv) { append(sv.data(), sv.size()); }
  void push_back(uint8_t b) { data_.push_back(b); }

  void clear() { data_.clear(); }
  void resize(size_t n) { data_.resize(n); }
  void reserve(size_t n) { data_.reserve(n); }

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  uint8_t* data() { return data_.data(); }

  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_.data()), data_.size()};
  }

  std::vector<uint8_t>& vec() { return data_; }
  const std::vector<uint8_t>& vec() const { return data_; }

  // Moves the contents out as an immutable shared payload (used when a buffer
  // is handed to the transport and may be delivered to several local readers).
  std::shared_ptr<const std::vector<uint8_t>> release_shared() {
    return std::make_shared<const std::vector<uint8_t>>(std::move(data_));
  }

 private:
  std::vector<uint8_t> data_;
};

// Non-owning view of bytes with a read cursor; serde::Reader builds on it.
using BytesView = std::string_view;

inline BytesView as_view(const std::vector<uint8_t>& v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

}  // namespace hamr
