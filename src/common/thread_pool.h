// Fixed-size worker pool ("think in terms of tasks, not threads" - CP.4).
//
// Each simulated cluster node owns one ThreadPool; flowlet tasks, map tasks,
// and reduce tasks are all submitted here. Threads are joined in the
// destructor (CP.25/CP.26: never detach).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hamr {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  // Blocks until the task queue is empty AND no task is executing.
  void wait_idle();

  // Stops accepting work, drains queued tasks, joins all threads. Idempotent.
  void shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t pending() const;

 private:
  void worker_loop();

  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// Go-style WaitGroup: add() before scheduling, done() when finished, wait()
// blocks until the count returns to zero. Used for fan-out/fan-in of tasks.
class WaitGroup {
 public:
  void add(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0) --count_;
    if (count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

}  // namespace hamr
