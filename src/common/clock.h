// Time helpers shared by the runtime, the cost models, and the benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace hamr {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = std::chrono::nanoseconds;

inline TimePoint now() { return SteadyClock::now(); }

inline double to_seconds(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

inline double to_millis(Duration d) { return to_seconds(d) * 1e3; }

inline Duration from_seconds(double s) {
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double>(s));
}

inline Duration micros(int64_t us) { return std::chrono::microseconds(us); }
inline Duration millis(int64_t ms) { return std::chrono::milliseconds(ms); }

// Formats a duration as e.g. "1.234s" / "56.7ms" / "890us".
std::string format_duration(Duration d);

// Wall-clock stopwatch. Starts running at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(now()) {}

  void reset() { start_ = now(); }
  Duration elapsed() const { return now() - start_; }
  double elapsed_seconds() const { return to_seconds(elapsed()); }

 private:
  TimePoint start_;
};

}  // namespace hamr
