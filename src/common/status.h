// Lightweight error-handling types used across the library.
//
// Most internal APIs are infallible by construction (bounded queues, in-memory
// stores); Status/Result are used at module boundaries where I/O, lookup, or
// protocol failures are expected outcomes rather than bugs.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hamr {

enum class StatusCode : int {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kDeadlineExceeded,
  kDataLoss,
  kInternal,
};

// Returns a human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* status_code_name(StatusCode code);

// A cheap value type carrying success or an error code + message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "CODE: message".
  std::string ToString() const;

  // Throws std::runtime_error when not ok. For use in tests, examples, and
  // top-level drivers where an error is unrecoverable.
  void ExpectOk() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value or an error Status. Named Result to avoid colliding with
// absl-style StatusOr expectations.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    require_ok();
    return *value_;
  }
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T&& value() && {
    require_ok();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!value_.has_value()) {
      throw std::runtime_error("Result accessed without value: " + status_.ToString());
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace hamr
