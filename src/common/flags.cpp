#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hamr {

Flags::Flags(int argc, char** argv, const std::string& usage) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s\n", usage.c_str());
      std::exit(0);
    }
    if (arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s\n",
                   argv[i], usage.c_str());
      std::exit(2);
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // --name value  or bare boolean --name
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

std::string Flags::get_string(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::get_int(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace hamr
