// Arena: a chunked byte allocator for hot-path record staging.
//
// The engine's combine tables and reduce staging used to pay one (or two)
// std::string heap allocations per record. An Arena instead hands out slices
// of large chunks: allocation is a pointer bump, freeing is wholesale
// (clear / destruction). Chunks are never relocated, so slices stay stable
// as the arena grows - callers can hold string_views into it across inserts.
//
// An optional Gauge tracks the bytes currently reserved by live arenas
// (charged per chunk, so the gauge costs nothing per allocation); the engine
// wires every staging arena to `engine.arena_bytes`.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace hamr {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(Gauge* reserved_gauge = nullptr,
                 size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes), gauge_(reserved_gauge) {}

  ~Arena() { release_all(); }

  Arena(Arena&& other) noexcept { *this = std::move(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      release_all();
      chunks_ = std::move(other.chunks_);
      chunk_bytes_ = other.chunk_bytes_;
      head_ = other.head_;
      head_left_ = other.head_left_;
      used_ = other.used_;
      reserved_ = other.reserved_;
      gauge_ = other.gauge_;
      other.chunks_.clear();
      other.head_ = nullptr;
      other.head_left_ = 0;
      other.used_ = 0;
      other.reserved_ = 0;
    }
    return *this;
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized slice of `n` bytes; stable for the arena's lifetime.
  char* alloc(size_t n) {
    if (n > head_left_) refill(n);
    char* p = head_;
    head_ += n;
    head_left_ -= n;
    used_ += n;
    return p;
  }

  // Copies `bytes` into the arena and returns the stable copy.
  std::string_view store(std::string_view bytes) {
    char* p = alloc(bytes.size());
    std::memcpy(p, bytes.data(), bytes.size());
    return {p, bytes.size()};
  }

  // Bytes handed out since the last clear().
  uint64_t used_bytes() const { return used_; }
  // Bytes reserved from the allocator (what the gauge reports).
  uint64_t reserved_bytes() const { return reserved_; }

  // Drops every chunk. Slices returned earlier become dangling.
  void clear() {
    release_all();
    chunks_.clear();
    head_ = nullptr;
    head_left_ = 0;
    used_ = 0;
  }

 private:
  void refill(size_t need) {
    const size_t size = std::max(need, chunk_bytes_);
    chunks_.push_back(std::make_unique<char[]>(size));
    head_ = chunks_.back().get();
    head_left_ = size;
    reserved_ += size;
    if (gauge_ != nullptr) gauge_->add(static_cast<int64_t>(size));
  }

  void release_all() {
    if (gauge_ != nullptr && reserved_ != 0) {
      gauge_->sub(static_cast<int64_t>(reserved_));
    }
    reserved_ = 0;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_bytes_ = kDefaultChunkBytes;
  char* head_ = nullptr;
  size_t head_left_ = 0;
  uint64_t used_ = 0;
  uint64_t reserved_ = 0;
  Gauge* gauge_ = nullptr;
};

}  // namespace hamr
