// Tiny command-line flag parser for the bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unknown flags abort with the usage string so typos in bench sweeps fail
// loudly instead of silently benchmarking the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hamr {

class Flags {
 public:
  // Parses argv. On "--help" prints `usage` and exits 0; on unknown flag
  // prints an error + usage and exits 2.
  Flags(int argc, char** argv, const std::string& usage = "");

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get_string(const std::string& name, const std::string& def) const;
  int64_t get_int(const std::string& name, int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hamr
