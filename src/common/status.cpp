#include "common/status.h"

namespace hamr {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::ExpectOk() const {
  if (!ok()) throw std::runtime_error("Status not OK: " + ToString());
}

}  // namespace hamr
