// Deterministic, fast random number generation.
//
// All workload generators take explicit seeds so every experiment is exactly
// reproducible; we avoid std::mt19937 for speed and for a stable cross-
// platform stream.
#pragma once

#include <cstdint>

namespace hamr {

// SplitMix64 - used to seed other generators and for cheap hashing of seeds.
inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna - the main workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough reduction.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t next_in(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

// Zipfian sampler over {0, 1, ..., n-1} with exponent `theta` (typically
// ~0.99 for "web-like" skew). Uses the Gray/Jim-Gray YCSB rejection-free
// formula; O(1) per sample after O(n)-free setup.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);

  uint64_t sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double threshold_;  // 1 + 0.5^theta
};

}  // namespace hamr
