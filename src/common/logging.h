// Minimal thread-safe leveled logger.
//
// Usage:
//   HLOG(INFO) << "node " << id << " started";
//
// The default level is WARN so that tests and benches stay quiet; set
// HAMR_LOG=debug|info|warn|error (or call set_log_level) to change it.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace hamr::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Returns the current global level (initialized once from $HAMR_LOG).
Level log_level();

// Overrides the global level for the rest of the process lifetime.
void set_log_level(Level level);

// Parses "debug"/"info"/"warn"/"error" (case-insensitive); defaults to WARN.
Level parse_level(std::string_view text);

namespace internal {

// Accumulates one log line and emits it to stderr (with a held lock so
// concurrent lines never interleave) when destroyed.
class LogLine {
 public:
  LogLine(Level level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hamr::log

#define HLOG_LEVEL_kDebug ::hamr::log::Level::kDebug
#define HLOG_LEVEL_kInfo ::hamr::log::Level::kInfo
#define HLOG_LEVEL_kWarn ::hamr::log::Level::kWarn
#define HLOG_LEVEL_kError ::hamr::log::Level::kError

#define HLOG(severity)                                                 \
  if (::hamr::log::Level::k##severity >= ::hamr::log::log_level())     \
  ::hamr::log::internal::LogLine(::hamr::log::Level::k##severity,      \
                                 __FILE__, __LINE__)

#define HLOG_DEBUG HLOG(Debug)
#define HLOG_INFO HLOG(Info)
#define HLOG_WARN HLOG(Warn)
#define HLOG_ERROR HLOG(Error)
