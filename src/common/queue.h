// Bounded multi-producer multi-consumer queue with close semantics.
//
// The node runtime's bin queue and the transport inboxes are instances of
// this. The bound is load-bearing: it is where backpressure (the paper's
// "flow control") physically happens. Follows CP.42 (never wait without a
// condition) and CP.20 (RAII locking).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.h"

namespace hamr {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  // Blocks until there is room or the queue is closed.
  // Returns false iff the queue was closed (the item is dropped).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Waits at most `timeout`; nullopt on timeout or closed-and-drained.
  std::optional<T> pop_for(Duration timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After close(), pushes fail and pops drain the remaining items then
  // return nullopt. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  // True when at (or beyond) capacity - the flow-control trigger probe.
  bool full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size() >= capacity_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hamr
