#include "common/random.h"

#include <cmath>

namespace hamr {
namespace {

// zeta(n, theta) = sum_{i=1..n} 1/i^theta. O(n) but only run at construction;
// generator instances are reused across an entire dataset.
double zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

}  // namespace

Zipf::Zipf(uint64_t n, double theta) : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  threshold_ = 1.0 + std::pow(0.5, theta_);
}

uint64_t Zipf::sample(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < threshold_) return 1;
  const auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace hamr
