// JobService: the resident, multi-tenant serving layer above the engine.
//
// The paper's HAMR daemon is long-lived, but a single Engine still runs jobs
// one at a time. The service turns the cluster into a job server:
//
//   * Admission queue - bounded depth, per-tenant priority ordering, explicit
//     load shedding: a submit against a full queue returns a ticket already
//     in kRejected, it never blocks the caller (or the RPC delivery thread).
//   * Executor lanes - a fixed pool of Engine instances over the *shared*
//     cluster. Lane L claims its own shuffle message-type quad
//     (net::msg_type::engine_*(L)), its own kv RPC id range, and lane-scoped
//     spill paths, so independent jobs run concurrently on the same nodes
//     without crossing wires. Worker threads and (optionally) the reduce
//     memory budget are carved across lanes.
//   * Weighted fair share - stride scheduling across tenants: dispatching a
//     tenant's job advances its pass by 1/weight, and the lowest-pass tenant
//     with queued work runs next, so one tenant cannot starve others.
//   * Lifecycle - Queued -> Running -> Done/Failed/Cancelled/Rejected/
//     DeadlineExceeded, surfaced through a JobTicket; cancel works on queued
//     and running jobs (plumbed into Engine::request_cancel), and a deadline
//     reaper aborts overrunning jobs cleanly.
//
// The RPC front-end lives in service/job_rpc.h.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "engine/engine.h"
#include "obs/event_log.h"

namespace hamr::cache {
class Dataset;
class DatasetCache;
class DatasetWriter;
}  // namespace hamr::cache

namespace hamr::service {

// Wire-stable values (the RPC front-end ships them as a single byte).
enum class JobStatus : uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kCancelled = 4,
  kRejected = 5,
  kDeadlineExceeded = 6,
};

const char* to_string(JobStatus status);

inline bool is_terminal(JobStatus s) {
  return s != JobStatus::kQueued && s != JobStatus::kRunning;
}

// What the client asks for. `job_type`/`args` select a registered JobBuilder
// (the RPC submit path); direct submit(spec, work) callers may leave them
// empty.
struct JobSpec {
  std::string tenant = "default";
  int32_t priority = 0;                    // higher dispatches earlier in-tenant
  Duration deadline = Duration::zero();    // from submit time; zero = none
  std::string job_type;
  std::string args;
};

// The executable payload of a job. `collect` (optional) runs on the lane
// thread after a successful run and produces the byte payload clients fetch
// through the ticket / RPC result verb - typically a serialized read of the
// lane engine's kv store.
struct JobWork {
  engine::FlowletGraph graph;
  engine::JobInputs inputs;
  Duration stream_duration = Duration::zero();  // > 0 = streaming job
  Duration window_every = Duration::zero();
  std::function<std::string(engine::Engine&)> collect;

  // Cross-job dataset cache hooks (src/cache/, DESIGN.md §15). `pins` are
  // read leases the service holds from dispatch until the job is terminal,
  // so a dataset the graph scans cannot be evicted mid-run. `publish` are
  // writers the graph appends to (via EdgeOptions taps or flowlet code):
  // the service commits them when the job succeeds; on failure, cancel, or
  // deadline it aborts them AND invalidates the name's resident generation,
  // because a failed writer may have been re-deriving state whose upstream
  // already changed (readers of a stale chain must fall back cold).
  std::vector<std::shared_ptr<const cache::Dataset>> pins;
  std::vector<std::shared_ptr<cache::DatasetWriter>> publish;
};

using JobBuilder = std::function<JobWork(const JobSpec&)>;

// Client-side view of one submitted job. Thread-safe; shared between the
// caller, the service, and the RPC server.
class JobTicket {
 public:
  uint64_t id() const { return id_; }
  const JobSpec& spec() const { return spec_; }

  JobStatus status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  // Blocks until the job reaches a terminal status (or the timeout elapses);
  // returns the status either way.
  JobStatus wait(Duration timeout = std::chrono::seconds(60)) const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return is_terminal(status_); });
    return status_;
  }

  // Valid once terminal. For kFailed, error() holds the exception text; for
  // kDone, payload() holds the collect() bytes (empty when no collector).
  engine::JobResult result() const {
    std::lock_guard<std::mutex> lock(mu_);
    return result_;
  }
  std::string payload() const {
    std::lock_guard<std::mutex> lock(mu_);
    return payload_;
  }
  std::string error() const {
    std::lock_guard<std::mutex> lock(mu_);
    return error_;
  }

  TimePoint submitted_at() const { return submitted_; }
  // Zero until dispatched.
  Duration queue_wait() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_wait_;
  }

 private:
  friend class JobService;

  uint64_t id_ = 0;
  JobSpec spec_;
  TimePoint submitted_{};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  JobStatus status_ = JobStatus::kQueued;
  Duration queue_wait_ = Duration::zero();
  engine::JobResult result_;
  std::string payload_;
  std::string error_;
};

struct ServiceConfig {
  // Executor lanes (concurrent jobs). Must be in [1, kMaxEngineLanes].
  uint32_t lanes = 2;

  // Admission bound: jobs waiting for a lane (running jobs do not count).
  // Submits beyond it are shed with kRejected.
  size_t max_queued = 16;

  // Engine template; each lane gets a copy with `lane`, `worker_threads`,
  // and (optionally) `memory_budget_bytes` overridden.
  engine::EngineConfig engine;

  // Divide the template's memory budget by the lane count, so the lanes
  // together stay inside one node budget.
  bool carve_memory_budget = true;

  // Worker threads per lane per node; 0 = threads_per_node / lanes (min 1).
  uint32_t worker_threads_per_lane = 0;

  // Fair-share weight per tenant (default 1.0). A weight-2 tenant receives
  // twice the dispatch share of a weight-1 tenant under contention.
  std::map<std::string, double> tenant_weights;

  // Optional lifecycle log (not owned). Job events are recorded as node 0,
  // flowlet = job id; the engine template's event_log defaults to this too.
  obs::EventLog* event_log = nullptr;

  // Optional cross-job dataset cache (not owned; shared by all lanes). Needed
  // for the writer-failure invalidation path; jobs that only pin may leave it
  // null (pins release through their own handles).
  cache::DatasetCache* dataset_cache = nullptr;
};

class JobService {
 public:
  JobService(cluster::Cluster& cluster, ServiceConfig config = {});
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  // Non-blocking admission: returns a ticket immediately, in kQueued or -
  // when the queue is full or the service is shutting down - kRejected.
  std::shared_ptr<JobTicket> submit(const JobSpec& spec, JobWork work);

  // RPC-path submit: builds the work from the registered builder for
  // spec.job_type. Throws std::invalid_argument on an unknown type (or
  // whatever the builder throws).
  std::shared_ptr<JobTicket> submit(const JobSpec& spec);

  void register_builder(std::string job_type, JobBuilder builder);

  // Cancels a queued or running job. Returns false when unknown or already
  // terminal. Running jobs abort at their next task boundary.
  bool cancel(uint64_t job_id);

  // Gracefully drains a streaming job: its sources stop, buffered windows
  // flush, and the job completes as kDone with its collect() payload (a
  // queued streaming job runs with a token duration and drains immediately).
  // Returns false when unknown or already terminal; harmless for batch jobs
  // (they run to completion anyway).
  bool drain(uint64_t job_id);

  // Ticket lookup (RPC poll/result path); null when unknown.
  std::shared_ptr<JobTicket> ticket(uint64_t job_id) const;

  // Cancels queued and running jobs, then joins the lane and reaper
  // threads. Idempotent; the destructor calls it.
  void shutdown();

  // Service-scoped registry: service.jobs_* gauges/counters and the
  // service.queue_wait_us histogram (merged into each JobResult::metrics).
  Metrics& metrics() { return metrics_; }

  uint32_t lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  // The lane's resident engine (tests and collect() callbacks read its kv).
  engine::Engine& lane_engine(uint32_t lane) { return *lanes_.at(lane); }

 private:
  struct Job {
    std::shared_ptr<JobTicket> ticket;
    JobWork work;
    std::atomic<bool> cancel_requested{false};
    std::atomic<bool> drain_requested{false};
    std::atomic<bool> deadline_hit{false};
    // Lane the job was dispatched to; -1 while queued.
    std::atomic<int32_t> lane{-1};
  };

  void lane_loop(uint32_t lane);
  void deadline_loop();
  void run_job(uint32_t lane, const std::shared_ptr<Job>& job);
  void finalize(const std::shared_ptr<Job>& job, JobStatus status,
                std::string error, engine::JobResult result,
                std::string payload);
  std::shared_ptr<Job> pop_next_locked();
  size_t queued_total_locked() const;
  bool remove_from_queue_locked(const std::shared_ptr<Job>& job);
  double weight_of(const std::string& tenant) const;
  void log_job_event(obs::EventKind kind, uint64_t job_id, int64_t aux = -1);

  cluster::Cluster& cluster_;
  ServiceConfig config_;
  Metrics metrics_;
  std::vector<std::unique_ptr<engine::Engine>> lanes_;

  Gauge* jobs_queued_g_;
  Gauge* jobs_running_g_;
  Counter* jobs_submitted_c_;
  Counter* jobs_rejected_c_;
  Counter* jobs_cancelled_c_;
  Counter* jobs_done_c_;
  Counter* jobs_failed_c_;
  Counter* jobs_deadline_c_;
  Histogram* queue_wait_us_h_;

  mutable std::mutex mu_;  // queues, passes, jobs_, deadlines_, stopping_
  std::condition_variable work_cv_;      // lanes wait here
  std::condition_variable deadline_cv_;  // reaper waits here
  bool stopping_ = false;

  // Per-tenant FIFO queues, priority-ordered on insert.
  std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_;
  // Stride-scheduling pass values; global_pass_ tracks the last dispatched
  // pass so an idle tenant re-enters at the current line, not with hoarded
  // credit.
  std::map<std::string, double> passes_;
  double global_pass_ = 0;

  // What each lane is running right now (null = idle). Transitions happen
  // under mu_, so cancel/deadline paths can verify the lane still runs the
  // job they target before firing Engine::request_cancel at it.
  std::vector<std::shared_ptr<Job>> lane_jobs_;

  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  std::multimap<TimePoint, std::weak_ptr<Job>> deadlines_;
  std::map<std::string, JobBuilder> builders_;  // guarded by builders_mu_
  mutable std::mutex builders_mu_;

  std::atomic<uint64_t> next_id_{1};
  std::vector<std::thread> lane_threads_;
  std::thread reaper_;
};

}  // namespace hamr::service
