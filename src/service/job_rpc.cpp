#include "service/job_rpc.h"

#include <stdexcept>
#include <thread>

#include "serde/serde.h"

namespace hamr::service {

namespace {

JobStatus status_from_wire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(JobStatus::kDeadlineExceeded)) {
    throw serde::DecodeError("bad job status byte " + std::to_string(raw));
  }
  return static_cast<JobStatus>(raw);
}

uint64_t decode_job_id(std::string_view arg) {
  serde::Reader r(arg);
  return r.get_varint();
}

std::string encode_status(JobStatus status) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_u8(static_cast<uint8_t>(status));
  return std::string(buf.view());
}

}  // namespace

JobRpcServer::JobRpcServer(JobService* service, net::Rpc* rpc)
    : service_(service) {
  rpc->register_method(rpc_id::kSubmit,
                       [this](net::NodeId, std::string_view arg) {
                         return handle_submit(arg);
                       });
  rpc->register_method(rpc_id::kPoll, [this](net::NodeId, std::string_view arg) {
    return handle_poll(arg);
  });
  rpc->register_method(rpc_id::kCancel,
                       [this](net::NodeId, std::string_view arg) {
                         return handle_cancel(arg);
                       });
  rpc->register_method(rpc_id::kDrain,
                       [this](net::NodeId, std::string_view arg) {
                         return handle_drain(arg);
                       });
  rpc->register_method(rpc_id::kResult,
                       [this](net::NodeId, std::string_view arg) {
                         return handle_result(arg);
                       });
}

std::string JobRpcServer::handle_submit(std::string_view arg) {
  serde::Reader r(arg);
  JobSpec spec;
  spec.tenant = std::string(r.get_bytes());
  spec.priority = static_cast<int32_t>(r.get_zigzag());
  spec.deadline = millis(static_cast<int64_t>(r.get_varint()));
  spec.job_type = std::string(r.get_bytes());
  spec.args = std::string(r.get_bytes());

  // Non-blocking: builds the work and takes an immediate admission decision.
  std::shared_ptr<JobTicket> ticket = service_->submit(spec);

  // The reply reports the admission outcome (kQueued or kRejected), not the
  // live status: an admitted job may already be running - or done - by the
  // time the reply is encoded.
  const JobStatus admission = ticket->status() == JobStatus::kRejected
                                  ? JobStatus::kRejected
                                  : JobStatus::kQueued;
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(ticket->id());
  w.put_u8(static_cast<uint8_t>(admission));
  return std::string(buf.view());
}

std::string JobRpcServer::handle_poll(std::string_view arg) {
  std::shared_ptr<JobTicket> ticket = service_->ticket(decode_job_id(arg));
  if (!ticket) throw std::invalid_argument("unknown job id");
  return encode_status(ticket->status());
}

std::string JobRpcServer::handle_cancel(std::string_view arg) {
  const bool ok = service_->cancel(decode_job_id(arg));
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_bool(ok);
  return std::string(buf.view());
}

std::string JobRpcServer::handle_drain(std::string_view arg) {
  const bool ok = service_->drain(decode_job_id(arg));
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_bool(ok);
  return std::string(buf.view());
}

std::string JobRpcServer::handle_result(std::string_view arg) {
  std::shared_ptr<JobTicket> ticket = service_->ticket(decode_job_id(arg));
  if (!ticket) throw std::invalid_argument("unknown job id");
  const engine::JobResult result = ticket->result();
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_u8(static_cast<uint8_t>(ticket->status()));
  w.put_bytes(ticket->payload());
  w.put_bytes(ticket->error());
  w.put_double(result.wall_seconds);
  w.put_varint(result.records_emitted);
  return std::string(buf.view());
}

// --- client ----------------------------------------------------------------

namespace {

std::string check(Result<std::string> res, const char* verb) {
  if (!res.ok()) {
    throw std::runtime_error(std::string("job rpc ") + verb + " failed: " +
                             res.status().ToString());
  }
  return std::move(res).value();
}

std::string encode_job_id(uint64_t job_id) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_varint(job_id);
  return std::string(buf.view());
}

}  // namespace

uint64_t JobClient::submit(const JobSpec& spec, JobStatus* status) {
  ByteBuffer buf;
  serde::Writer w(buf);
  w.put_bytes(spec.tenant);
  w.put_zigzag(spec.priority);
  w.put_varint(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(spec.deadline)
          .count()));
  w.put_bytes(spec.job_type);
  w.put_bytes(spec.args);
  const std::string reply = check(
      rpc_.call_sync(server_, rpc_id::kSubmit, std::string(buf.view())),
      "submit");
  serde::Reader r(reply);
  const uint64_t id = r.get_varint();
  const JobStatus st = status_from_wire(r.get_u8());
  if (status != nullptr) *status = st;
  return id;
}

JobStatus JobClient::poll(uint64_t job_id) {
  const std::string reply = check(
      rpc_.call_sync(server_, rpc_id::kPoll, encode_job_id(job_id)), "poll");
  serde::Reader r(reply);
  return status_from_wire(r.get_u8());
}

bool JobClient::cancel(uint64_t job_id) {
  const std::string reply = check(
      rpc_.call_sync(server_, rpc_id::kCancel, encode_job_id(job_id)),
      "cancel");
  serde::Reader r(reply);
  return r.get_bool();
}

bool JobClient::drain(uint64_t job_id) {
  const std::string reply = check(
      rpc_.call_sync(server_, rpc_id::kDrain, encode_job_id(job_id)),
      "drain");
  serde::Reader r(reply);
  return r.get_bool();
}

JobClient::RemoteResult JobClient::result(uint64_t job_id) {
  const std::string reply = check(
      rpc_.call_sync(server_, rpc_id::kResult, encode_job_id(job_id)),
      "result");
  serde::Reader r(reply);
  RemoteResult out;
  out.status = status_from_wire(r.get_u8());
  out.payload = std::string(r.get_bytes());
  out.error = std::string(r.get_bytes());
  out.wall_seconds = r.get_double();
  out.records_emitted = r.get_varint();
  return out;
}

JobStatus JobClient::wait(uint64_t job_id, Duration timeout,
                          Duration poll_every) {
  const TimePoint deadline = now() + timeout;
  for (;;) {
    const JobStatus st = poll(job_id);
    if (is_terminal(st) || now() >= deadline) return st;
    std::this_thread::sleep_for(poll_every);
  }
}

}  // namespace hamr::service
