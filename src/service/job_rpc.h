// RPC front-end for the JobService: submit / poll / cancel / result verbs
// registered on a net::Rpc, so clients drive jobs over the transport fabric
// (InProcTransport or TcpTransport alike).
//
// Handlers never block: submit is non-blocking admission (a full queue
// answers kRejected immediately), poll/cancel/result only read or flip
// ticket state. Clients that want to wait poll (JobClient::wait).
//
// Wire formats (serde):
//   submit arg   : bytes tenant | zigzag priority | varint deadline_ms |
//                  bytes job_type | bytes args
//   submit reply : varint job_id | u8 status
//   poll arg     : varint job_id        -> reply: u8 status
//   cancel arg   : varint job_id        -> reply: bool cancelled
//   drain arg    : varint job_id        -> reply: bool draining
//   result arg   : varint job_id        -> reply: u8 status | bytes payload |
//                  bytes error | double wall_seconds | varint records_emitted
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "net/rpc.h"
#include "service/job_service.h"

namespace hamr::service {

// Service RPC method ids: above the kv lane range [100, 260), below nothing
// else registered today.
namespace rpc_id {
inline constexpr uint32_t kSubmit = 300;
inline constexpr uint32_t kPoll = 301;
inline constexpr uint32_t kCancel = 302;
inline constexpr uint32_t kResult = 303;
inline constexpr uint32_t kDrain = 304;
}  // namespace rpc_id

// Server side: registers the verbs on `rpc` (not owned; both must outlive
// the fabric). Jobs are built from the service's registered JobBuilders.
class JobRpcServer {
 public:
  JobRpcServer(JobService* service, net::Rpc* rpc);

 private:
  std::string handle_submit(std::string_view arg);
  std::string handle_poll(std::string_view arg);
  std::string handle_cancel(std::string_view arg);
  std::string handle_drain(std::string_view arg);
  std::string handle_result(std::string_view arg);

  JobService* service_;
};

// Client side: thin wrapper over blocking RPC calls to the server node.
class JobClient {
 public:
  struct RemoteResult {
    JobStatus status = JobStatus::kQueued;
    std::string payload;
    std::string error;
    double wall_seconds = 0;
    uint64_t records_emitted = 0;
  };

  explicit JobClient(net::Rpc& rpc, net::NodeId server = 0)
      : rpc_(rpc), server_(server) {}

  // Returns the job id; the returned status is kQueued or kRejected.
  uint64_t submit(const JobSpec& spec, JobStatus* status = nullptr);
  JobStatus poll(uint64_t job_id);
  bool cancel(uint64_t job_id);
  // Graceful streaming wind-down (JobService::drain): the job completes as
  // kDone with its payload instead of kCancelled.
  bool drain(uint64_t job_id);
  RemoteResult result(uint64_t job_id);

  // Polls until terminal or timeout; returns the last observed status.
  JobStatus wait(uint64_t job_id, Duration timeout = std::chrono::seconds(60),
                 Duration poll_every = millis(5));

 private:
  net::Rpc& rpc_;
  net::NodeId server_;
};

}  // namespace hamr::service
