#include "service/job_service.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "cache/dataset_cache.h"
#include "common/logging.h"
#include "net/message.h"
#include "obs/metrics_snapshot.h"

namespace hamr::service {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kDone:
      return "done";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

JobService::JobService(cluster::Cluster& cluster, ServiceConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  if (config_.lanes == 0 || config_.lanes > net::msg_type::kMaxEngineLanes) {
    throw std::invalid_argument("service lanes must be in [1, " +
                                std::to_string(net::msg_type::kMaxEngineLanes) +
                                "]");
  }
  jobs_queued_g_ = metrics_.gauge("service.jobs_queued");
  jobs_running_g_ = metrics_.gauge("service.jobs_running");
  jobs_submitted_c_ = metrics_.counter("service.jobs_submitted");
  jobs_rejected_c_ = metrics_.counter("service.jobs_rejected");
  jobs_cancelled_c_ = metrics_.counter("service.jobs_cancelled");
  jobs_done_c_ = metrics_.counter("service.jobs_done");
  jobs_failed_c_ = metrics_.counter("service.jobs_failed");
  jobs_deadline_c_ = metrics_.counter("service.jobs_deadline_exceeded");
  queue_wait_us_h_ = metrics_.histogram("service.queue_wait_us");

  engine::EngineConfig tmpl = config_.engine;
  if (tmpl.event_log == nullptr) tmpl.event_log = config_.event_log;
  const uint32_t tpn = cluster_.config().threads_per_node;
  for (uint32_t l = 0; l < config_.lanes; ++l) {
    engine::EngineConfig ec = tmpl;
    ec.lane = l;
    ec.worker_threads = config_.worker_threads_per_lane != 0
                            ? config_.worker_threads_per_lane
                            : std::max(1u, tpn / config_.lanes);
    if (config_.carve_memory_budget) {
      ec.memory_budget_bytes =
          std::max<uint64_t>(tmpl.memory_budget_bytes / config_.lanes,
                             1ull * 1024 * 1024);
    }
    lanes_.push_back(std::make_unique<engine::Engine>(cluster_, ec));
  }
  lane_jobs_.resize(config_.lanes);

  lane_threads_.reserve(config_.lanes);
  for (uint32_t l = 0; l < config_.lanes; ++l) {
    lane_threads_.emplace_back([this, l] { lane_loop(l); });
  }
  reaper_ = std::thread([this] { deadline_loop(); });
}

JobService::~JobService() { shutdown(); }

double JobService::weight_of(const std::string& tenant) const {
  auto it = config_.tenant_weights.find(tenant);
  if (it == config_.tenant_weights.end() || it->second <= 0) return 1.0;
  return it->second;
}

void JobService::log_job_event(obs::EventKind kind, uint64_t job_id,
                               int64_t aux) {
  if (config_.event_log != nullptr) {
    config_.event_log->record(0, kind, static_cast<int64_t>(job_id), aux);
  }
}

size_t JobService::queued_total_locked() const {
  size_t n = 0;
  for (const auto& [tenant, q] : queues_) n += q.size();
  return n;
}

bool JobService::remove_from_queue_locked(const std::shared_ptr<Job>& job) {
  auto qit = queues_.find(job->ticket->spec().tenant);
  if (qit == queues_.end()) return false;
  auto& q = qit->second;
  auto it = std::find(q.begin(), q.end(), job);
  if (it == q.end()) return false;
  q.erase(it);
  return true;
}

std::shared_ptr<JobService::Job> JobService::pop_next_locked() {
  // Stride scheduling: the nonempty tenant with the lowest pass runs next;
  // its pass advances by 1/weight, so a weight-2 tenant is chosen twice as
  // often under contention. Ties break by tenant name for determinism.
  const std::string* best = nullptr;
  double best_pass = 0;
  for (const auto& [tenant, q] : queues_) {
    if (q.empty()) continue;
    const double pass = passes_[tenant];
    if (best == nullptr || pass < best_pass) {
      best = &tenant;
      best_pass = pass;
    }
  }
  if (best == nullptr) return nullptr;
  auto& q = queues_[*best];
  std::shared_ptr<Job> job = q.front();
  q.pop_front();
  global_pass_ = best_pass;
  passes_[*best] = best_pass + 1.0 / weight_of(*best);
  return job;
}

std::shared_ptr<JobTicket> JobService::submit(const JobSpec& spec,
                                              JobWork work) {
  auto job = std::make_shared<Job>();
  job->ticket = std::make_shared<JobTicket>();
  JobTicket& t = *job->ticket;
  t.id_ = next_id_.fetch_add(1);
  t.spec_ = spec;
  t.submitted_ = now();
  job->work = std::move(work);
  jobs_submitted_c_->inc();

  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_[t.id_] = job;
    if (stopping_ || queued_total_locked() >= config_.max_queued) {
      // Load shedding: never block the submitter (this may be an RPC
      // delivery thread) - reject immediately and explicitly.
      finalize(job, JobStatus::kRejected,
               stopping_ ? "service shutting down" : "admission queue full",
               {}, {});
      return job->ticket;
    }
    log_job_event(obs::EventKind::kJobSubmitted, t.id_, spec.priority);
    auto& q = queues_[spec.tenant];
    if (q.empty()) {
      // Re-entering tenant joins at the current line: no hoarded credit
      // from idle time, no penalty from a stale high pass either.
      passes_[spec.tenant] = std::max(passes_[spec.tenant], global_pass_);
    }
    // Priority-ordered stable insert: higher priority dispatches first,
    // FIFO within a priority level.
    auto pos = q.end();
    for (auto it = q.begin(); it != q.end(); ++it) {
      if ((*it)->ticket->spec().priority < spec.priority) {
        pos = it;
        break;
      }
    }
    q.insert(pos, job);
    jobs_queued_g_->inc();
    queued = true;
    if (spec.deadline > Duration::zero()) {
      deadlines_.emplace(t.submitted_ + spec.deadline, job);
      deadline_cv_.notify_all();
    }
  }
  if (queued) work_cv_.notify_one();
  return job->ticket;
}

std::shared_ptr<JobTicket> JobService::submit(const JobSpec& spec) {
  JobBuilder builder;
  {
    std::lock_guard<std::mutex> lock(builders_mu_);
    auto it = builders_.find(spec.job_type);
    if (it == builders_.end()) {
      throw std::invalid_argument("unknown job type '" + spec.job_type + "'");
    }
    builder = it->second;
  }
  return submit(spec, builder(spec));
}

void JobService::register_builder(std::string job_type, JobBuilder builder) {
  std::lock_guard<std::mutex> lock(builders_mu_);
  builders_[std::move(job_type)] = std::move(builder);
}

std::shared_ptr<JobTicket> JobService::ticket(uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second->ticket;
}

bool JobService::cancel(uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  const std::shared_ptr<Job>& job = it->second;
  if (is_terminal(job->ticket->status())) return false;
  job->cancel_requested.store(true);
  if (remove_from_queue_locked(job)) {
    jobs_queued_g_->dec();
    finalize(job, JobStatus::kCancelled, "cancelled while queued", {}, {});
    return true;
  }
  // Dispatched (or mid-dispatch: run_job re-checks the flag before running).
  // lane_jobs_ transitions happen under mu_, so the lane cannot have moved
  // on to a different job between this check and the engine cancel.
  const int32_t lane = job->lane.load();
  if (lane >= 0 && lane_jobs_[lane] == job) {
    lanes_[lane]->request_cancel();
  }
  return true;
}

bool JobService::drain(uint64_t job_id) {
  std::shared_ptr<Job> job;
  int32_t lane = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    job = it->second;
    if (is_terminal(job->ticket->status())) return false;
    job->drain_requested.store(true);
    // Queued: leave it queued; run_job sees the flag and runs the stream
    // with a token duration (start, flush, complete).
    lane = job->lane.load();
    if (lane < 0 || lane_jobs_[lane] != job) return true;
  }
  // Dispatched: hand the drain to the lane's engine. Between run_job's
  // drain-flag check and the engine claiming the job there is a gap where
  // request_stream_drain lands on an idle engine and is lost, so retry until
  // it sticks or the job reaches a terminal state on its own.
  while (!is_terminal(job->ticket->status())) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (lane_jobs_[lane] != job) break;  // lane moved on: job is winding up
      if (lanes_[lane]->request_stream_drain()) return true;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

void JobService::lane_loop(uint32_t lane) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      lane_jobs_[lane].reset();
      work_cv_.wait(lock,
                    [&] { return stopping_ || queued_total_locked() > 0; });
      if (stopping_) return;
      job = pop_next_locked();
      if (!job) continue;
      jobs_queued_g_->dec();
      job->lane.store(static_cast<int32_t>(lane));
      lane_jobs_[lane] = job;
    }
    run_job(lane, job);
  }
}

void JobService::run_job(uint32_t lane, const std::shared_ptr<Job>& job) {
  JobTicket& t = *job->ticket;
  const TimePoint started = now();
  const Duration waited = started - t.submitted_;
  queue_wait_us_h_->observe(static_cast<uint64_t>(waited.count() / 1000));
  {
    std::lock_guard<std::mutex> lock(t.mu_);
    t.queue_wait_ = waited;
  }
  // A cancel or deadline that raced the dispatch: honor it without running.
  if (job->deadline_hit.load()) {
    finalize(job, JobStatus::kDeadlineExceeded,
             "deadline exceeded before dispatch", {}, {});
    return;
  }
  if (job->cancel_requested.load()) {
    finalize(job, JobStatus::kCancelled, "cancelled before dispatch", {}, {});
    return;
  }
  {
    std::lock_guard<std::mutex> lock(t.mu_);
    t.status_ = JobStatus::kRunning;
  }
  t.cv_.notify_all();
  jobs_running_g_->inc();
  log_job_event(obs::EventKind::kJobDispatched, t.id_,
                static_cast<int64_t>(lane));

  engine::Engine& eng = *lanes_[lane];
  engine::JobResult result;
  std::string payload;
  std::string error;
  bool failed = false;
  // A drain that landed while the job was still queued: run the stream with
  // a token duration so it starts, flushes, and completes immediately. (A
  // drain arriving in the microscopic gap between this check and the engine
  // claiming the job just waits out the clamped duration.)
  Duration stream_duration = job->work.stream_duration;
  if (job->drain_requested.load() && stream_duration > Duration::zero()) {
    stream_duration = std::chrono::milliseconds(1);
  }
  try {
    result = stream_duration > Duration::zero()
                 ? eng.run_streaming(job->work.graph, job->work.inputs,
                                     stream_duration,
                                     job->work.window_every)
                 : eng.run(job->work.graph, job->work.inputs);
    if (!result.cancelled && job->work.collect) {
      payload = job->work.collect(eng);
    }
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }
  jobs_running_g_->dec();

  JobStatus status;
  if (failed) {
    status = JobStatus::kFailed;
  } else if (job->deadline_hit.load()) {
    status = JobStatus::kDeadlineExceeded;
    error = "deadline exceeded";
  } else if (result.cancelled || job->cancel_requested.load()) {
    status = JobStatus::kCancelled;
    error = "cancelled";
  } else {
    status = JobStatus::kDone;
  }
  finalize(job, status, std::move(error), std::move(result),
           std::move(payload));
}

void JobService::finalize(const std::shared_ptr<Job>& job, JobStatus status,
                          std::string error, engine::JobResult result,
                          std::string payload) {
  JobTicket& t = *job->ticket;
  switch (status) {
    case JobStatus::kDone:
      jobs_done_c_->inc();
      log_job_event(obs::EventKind::kJobDone, t.id_, 1);
      break;
    case JobStatus::kFailed:
      jobs_failed_c_->inc();
      log_job_event(obs::EventKind::kJobDone, t.id_, 0);
      break;
    case JobStatus::kCancelled:
      jobs_cancelled_c_->inc();
      log_job_event(obs::EventKind::kJobCancelled, t.id_);
      break;
    case JobStatus::kRejected:
      jobs_rejected_c_->inc();
      log_job_event(obs::EventKind::kJobRejected, t.id_);
      break;
    case JobStatus::kDeadlineExceeded:
      jobs_deadline_c_->inc();
      log_job_event(obs::EventKind::kJobDeadline, t.id_);
      break;
    default:
      break;
  }
  // Resolve cache publications at the terminal transition: success commits
  // the writer's generation; every other outcome aborts it AND invalidates
  // the name's resident generation, so readers chained on this job's output
  // fall back to a cold load instead of consuming a snapshot the failed
  // writer was supposed to replace (DESIGN.md §15).
  for (auto& writer : job->work.publish) {
    if (!writer) continue;
    if (status == JobStatus::kDone) {
      writer->commit();
    } else {
      writer->abort();
      if (config_.dataset_cache != nullptr) {
        config_.dataset_cache->invalidate(writer->name());
      }
    }
  }
  job->work.publish.clear();
  // Cross-job read leases end with the job; eviction may reclaim now.
  job->work.pins.clear();
  // Service-scoped observability rides along in the job's metric snapshot
  // (names are disjoint from the engine.* counters already in there).
  result.metrics.merge_from(obs::MetricsSnapshot::capture(metrics_));
  {
    std::lock_guard<std::mutex> lock(t.mu_);
    t.status_ = status;
    t.error_ = std::move(error);
    t.result_ = std::move(result);
    t.payload_ = std::move(payload);
  }
  t.cv_.notify_all();
}

void JobService::deadline_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock);
      continue;
    }
    auto it = deadlines_.begin();
    const TimePoint due = it->first;
    if (now() < due) {
      deadline_cv_.wait_until(lock, due);
      continue;
    }
    std::shared_ptr<Job> job = it->second.lock();
    deadlines_.erase(it);
    if (!job) continue;
    if (is_terminal(job->ticket->status())) continue;
    job->deadline_hit.store(true);
    if (remove_from_queue_locked(job)) {
      jobs_queued_g_->dec();
      finalize(job, JobStatus::kDeadlineExceeded,
               "deadline exceeded before dispatch", {}, {});
      continue;
    }
    const int32_t lane = job->lane.load();
    if (lane >= 0 && lane_jobs_[lane] == job) {
      lanes_[lane]->request_cancel();
    }
  }
}

void JobService::shutdown() {
  std::vector<std::shared_ptr<Job>> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      for (auto& [tenant, q] : queues_) {
        for (auto& job : q) drained.push_back(job);
        q.clear();
      }
      jobs_queued_g_->set(0);
      for (auto& job : drained) {
        job->cancel_requested.store(true);
        finalize(job, JobStatus::kCancelled, "service shutdown", {}, {});
      }
      for (auto& eng : lanes_) eng->request_cancel();
    }
  }
  work_cv_.notify_all();
  deadline_cv_.notify_all();
  for (auto& th : lane_threads_) {
    if (th.joinable()) th.join();
  }
  if (reaper_.joinable()) reaper_.join();
}

}  // namespace hamr::service
