#include "dfs/mini_dfs.h"

#include <algorithm>

#include "common/logging.h"
#include "serde/serde.h"

namespace hamr::dfs {

MiniDfs::MiniDfs(cluster::Cluster& cluster, DfsConfig config)
    : cluster_(cluster), config_(config) {
  config_.replication = std::max<uint32_t>(
      1, std::min<uint32_t>(config_.replication, cluster_.size()));
  for (uint32_t i = 0; i < cluster_.size(); ++i) {
    cluster::Node& node = cluster_.node(i);
    node.rpc().register_method(
        rpc_id::kReadBlock, [&node](NodeId /*caller*/, std::string_view arg) {
          auto data = node.store().read_file(std::string(arg));
          data.status().ExpectOk();
          return std::move(data).value();
        });
    node.rpc().register_method(
        rpc_id::kWriteBlock, [&node](NodeId /*caller*/, std::string_view arg) {
          // arg := varint path_len | path | data
          serde::Reader r(arg);
          const std::string path(r.get_bytes());
          node.store().write_file(path, arg.substr(r.position()));
          return std::string();
        });
  }
}

std::string MiniDfs::block_path(uint64_t block_id) const {
  return "dfs/blk_" + std::to_string(block_id);
}

Status MiniDfs::write(NodeId writer_node, const std::string& path,
                      std::string_view data) {
  DfsFileInfo info;
  info.path = path;
  info.size = data.size();

  // Carve out blocks and reserve ids under the namenode lock, then do the
  // data transfers without holding it.
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t offset = 0;
    do {
      const uint64_t len = std::min<uint64_t>(config_.block_size, data.size() - offset);
      BlockInfo block;
      block.block_id = next_block_id_++;
      block.offset = offset;
      block.length = len;
      // First replica on the writer (Hadoop's local-write policy), the rest
      // round-robin so data spreads across the cluster.
      block.replicas.push_back(writer_node);
      for (uint32_t r = 1; r < config_.replication; ++r) {
        NodeId candidate = (writer_node + 1 + next_placement_++) % cluster_.size();
        if (candidate == writer_node) candidate = (candidate + 1) % cluster_.size();
        block.replicas.push_back(candidate);
      }
      info.blocks.push_back(block);
      offset += len;
    } while (offset < data.size());
  }

  for (const BlockInfo& block : info.blocks) {
    const std::string_view chunk = data.substr(block.offset, block.length);
    for (NodeId replica : block.replicas) {
      if (replica == writer_node) {
        cluster_.node(replica).store().write_file(block_path(block.block_id), chunk);
      } else {
        ByteBuffer buf;
        serde::Writer w(buf);
        w.put_bytes(block_path(block.block_id));
        buf.append(chunk);
        auto result = cluster_.node(writer_node)
                          .rpc()
                          .call_sync(replica, rpc_id::kWriteBlock,
                                     std::string(buf.view()));
        if (!result.ok()) return result.status();
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(info);
  return Status::Ok();
}

Result<std::string> MiniDfs::fetch_block(NodeId reader_node, const BlockInfo& block) {
  // Prefer the local replica; otherwise fetch from the first replica through
  // the network (disk charge happens on the replica inside the RPC handler).
  for (NodeId replica : block.replicas) {
    if (replica == reader_node) {
      return cluster_.node(reader_node).store().read_file(block_path(block.block_id));
    }
  }
  const NodeId source = block.replicas.at(reader_node % block.replicas.size());
  return cluster_.node(reader_node)
      .rpc()
      .call_sync(source, rpc_id::kReadBlock, block_path(block.block_id));
}

Result<std::string> MiniDfs::read(NodeId reader_node, const std::string& path) {
  auto info = stat(path);
  if (!info.ok()) return info.status();
  std::string out;
  out.reserve(info.value().size);
  for (const BlockInfo& block : info.value().blocks) {
    auto chunk = fetch_block(reader_node, block);
    if (!chunk.ok()) return chunk.status();
    out += chunk.value();
  }
  return out;
}

Result<std::string> MiniDfs::read_range(NodeId reader_node, const std::string& path,
                                        uint64_t offset, uint64_t length) {
  auto info = stat(path);
  if (!info.ok()) return info.status();
  const DfsFileInfo& file = info.value();
  if (offset >= file.size) return std::string();
  length = std::min<uint64_t>(length, file.size - offset);

  std::string out;
  out.reserve(length);
  for (const BlockInfo& block : file.blocks) {
    const uint64_t block_end = block.offset + block.length;
    if (block_end <= offset || block.offset >= offset + length) continue;
    auto chunk = fetch_block(reader_node, block);
    if (!chunk.ok()) return chunk.status();
    const uint64_t from = std::max(offset, block.offset) - block.offset;
    const uint64_t to = std::min(offset + length, block_end) - block.offset;
    out.append(chunk.value(), from, to - from);
  }
  return out;
}

Result<DfsFileInfo> MiniDfs::stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("dfs file: " + path);
  return it->second;
}

bool MiniDfs::exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MiniDfs::remove(const std::string& path) {
  DfsFileInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("dfs file: " + path);
    info = std::move(it->second);
    files_.erase(it);
  }
  for (const BlockInfo& block : info.blocks) {
    for (NodeId replica : block.replicas) {
      (void)cluster_.node(replica).store().remove(block_path(block.block_id));
    }
  }
  return Status::Ok();
}

std::vector<std::string> MiniDfs::list(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t MiniDfs::total_size(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second.size;
  }
  return total;
}

}  // namespace hamr::dfs
