// MiniDfs: an HDFS-style distributed file system over the simulated cluster.
//
// Files are split into fixed-size blocks; each block is replicated onto
// `replication` nodes' local stores (paying their disk cost). Readers prefer
// a local replica; remote reads fetch the block through an RPC whose bytes
// traverse the modeled network. Block locations are exposed so the MapReduce
// baseline can schedule map tasks with data locality, exactly as Hadoop does.
//
// The namenode is simulated as shared in-process metadata guarded by a mutex
// (namenode CPU cost is negligible in the paper's workloads; what matters is
// block placement and the data path, which are fully modeled).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"

namespace hamr::dfs {

using cluster::NodeId;

struct DfsConfig {
  uint64_t block_size = 4 * 1024 * 1024;
  uint32_t replication = 2;
};

struct BlockInfo {
  uint64_t block_id = 0;
  uint64_t offset = 0;  // within the file
  uint64_t length = 0;
  std::vector<NodeId> replicas;
};

struct DfsFileInfo {
  std::string path;
  uint64_t size = 0;
  std::vector<BlockInfo> blocks;
};

// RPC method ids (dfs range: 50-59).
namespace rpc_id {
inline constexpr uint32_t kReadBlock = 50;
inline constexpr uint32_t kWriteBlock = 51;
}  // namespace rpc_id

class MiniDfs {
 public:
  // Registers block-server RPC methods on every node of `cluster`.
  MiniDfs(cluster::Cluster& cluster, DfsConfig config);

  // Writes a complete file from `writer_node`. Blocks are placed round-robin
  // starting at the writer (first replica local, Hadoop-style), remaining
  // replicas on successive nodes. Overwrites any existing file.
  Status write(NodeId writer_node, const std::string& path, std::string_view data);

  // Reads a whole file from the perspective of `reader_node`.
  Result<std::string> read(NodeId reader_node, const std::string& path);

  // Reads [offset, offset+length) of a file.
  Result<std::string> read_range(NodeId reader_node, const std::string& path,
                                 uint64_t offset, uint64_t length);

  Result<DfsFileInfo> stat(const std::string& path);
  bool exists(const std::string& path);
  Status remove(const std::string& path);
  std::vector<std::string> list(const std::string& prefix);

  // Sum of file sizes under the prefix (for input sizing in benches).
  uint64_t total_size(const std::string& prefix);

  const DfsConfig& config() const { return config_; }

 private:
  std::string block_path(uint64_t block_id) const;
  Result<std::string> fetch_block(NodeId reader_node, const BlockInfo& block);

  cluster::Cluster& cluster_;
  DfsConfig config_;
  std::mutex mu_;
  std::map<std::string, DfsFileInfo> files_;
  uint64_t next_block_id_ = 1;
  uint32_t next_placement_ = 0;
};

}  // namespace hamr::dfs
