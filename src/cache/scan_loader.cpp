#include "cache/scan_loader.h"

#include <utility>

namespace hamr::cache {

bool CachedScanLoader::load_chunk(const engine::InputSplit& split,
                                  uint64_t* cursor, engine::Context& ctx) {
  const uint32_t shard_idx = static_cast<uint32_t>(split.user_tag);
  if (shard_idx >= dataset_->nodes()) return false;
  const Dataset::Shard& shard = dataset_->shard(shard_idx);
  ShardCursor sc;
  sc.packed = *cursor;
  std::string_view key;
  std::string_view value;
  uint64_t emitted = 0;
  while (emitted < records_per_chunk_ && next_record(shard, &sc, &key, &value)) {
    // Views point into pinned resident blocks; the engine copies them into
    // outbound bins on emit, so no intermediate materialization happens.
    ctx.emit(0, key, value);
    ++emitted;
  }
  *cursor = sc.packed;
  return emitted == records_per_chunk_;
}

void add_scan_splits(engine::JobInputs* inputs, engine::FlowletId loader,
                     const Dataset& dataset) {
  for (uint32_t n = 0; n < dataset.nodes(); ++n) {
    engine::InputSplit split;
    split.path = "cache://" + dataset.name();
    split.offset = 0;
    split.length = dataset.shard(n).bytes;
    split.preferred_node = n;
    split.user_tag = n;
    inputs->add(loader, split);
  }
}

engine::EdgeOptions aligned_edge(const Dataset& dataset) {
  engine::EdgeOptions options;
  if (dataset.options().key_partitioned) {
    // Shard n already holds exactly the keys routed to node n, and the scan
    // runs on node n (preferred_node). A local edge therefore reproduces the
    // key-partitioned placement without re-shuffling a single record.
    options.local = true;
  } else if (dataset.options().partitioner) {
    options.partitioner = dataset.options().partitioner;
  }
  return options;
}

engine::EdgeOptions publish_tap(engine::EdgeOptions base,
                                std::shared_ptr<DatasetWriter> writer) {
  base.tap = [writer = std::move(writer)](uint32_t dst_node,
                                          std::string_view key,
                                          std::string_view value) {
    writer->append(dst_node, key, value);
  };
  return base;
}

}  // namespace hamr::cache
