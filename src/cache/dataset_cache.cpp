#include "cache/dataset_cache.h"

#include <algorithm>
#include <utility>

#include "serde/serde.h"

namespace hamr::cache {
namespace {

// Varint append directly into a std::string block (serde::Writer targets
// ByteBuffer; cache blocks are pooled strings so record appends stay a
// single buffer).
void put_varint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

}  // namespace

bool next_record(const Dataset::Shard& shard, ShardCursor* cursor,
                 std::string_view* key, std::string_view* value) {
  uint64_t block = cursor->block();
  uint64_t pos = cursor->pos();
  // Skip fully consumed blocks (a block is never empty once sealed).
  while (block < shard.blocks.size() && pos >= shard.blocks[block]->size()) {
    ++block;
    pos = 0;
  }
  if (block >= shard.blocks.size()) return false;
  const std::string& data = *shard.blocks[block];
  serde::Reader reader(std::string_view(data).substr(pos));
  *key = reader.get_bytes();
  *value = reader.get_bytes();
  cursor->set(block, pos + reader.position());
  return true;
}

// ---------------------------------------------------------------------------
// DatasetWriter

DatasetWriter::DatasetWriter(DatasetCache* cache, std::string name,
                             uint64_t generation, PublishOptions options,
                             uint32_t nodes)
    : cache_(cache),
      name_(std::move(name)),
      generation_(generation),
      options_(std::move(options)) {
  shards_.reserve(nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    shards_.push_back(std::make_unique<ShardBuilder>());
  }
}

void DatasetWriter::append(uint32_t node, std::string_view key,
                           std::string_view value) {
  ShardBuilder& b = *shards_.at(node);
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.open_block.empty()) b.open_block = cache_->pooled_block();
  put_varint(b.open_block, key.size());
  b.open_block.append(key.data(), key.size());
  put_varint(b.open_block, value.size());
  b.open_block.append(value.data(), value.size());
  b.shard.records++;
  // Seal at the block target. A single record larger than the target still
  // lands in one (oversized) block; the next append starts fresh.
  if (b.open_block.size() >= cache_->config_.block_bytes) seal_block(b);
}

void DatasetWriter::seal_block(ShardBuilder& b) {
  if (b.open_block.empty()) return;
  b.shard.bytes += b.open_block.size();
  b.shard.blocks.push_back(
      to_shared(cache_->pool_, std::move(b.open_block)));
  b.open_block = std::string();
}

bool DatasetWriter::commit() { return cache_->commit_writer(this); }
void DatasetWriter::abort() { cache_->abort_writer(this); }

// ---------------------------------------------------------------------------
// DatasetCache

DatasetCache::DatasetCache(cluster::Cluster& cluster)
    : DatasetCache(cluster, Config{}) {}

DatasetCache::DatasetCache(cluster::Cluster& cluster, Config config)
    : cluster_(cluster),
      config_(config),
      pool_(std::make_shared<BufferPool>(
          /*max_buffers=*/std::max<size_t>(
              8, config.byte_budget / std::max<uint64_t>(1, config.block_bytes)),
          /*max_buffer_bytes=*/config.block_bytes * 2)),
      alive_(std::make_shared<DatasetCache*>(this)) {
  // Cache-wide counters live on node 0's registry: the engine snapshots every
  // node's metrics around a run, so cache activity lands in
  // JobResult::metrics (and bench harvest) without extra plumbing.
  Metrics& m = cluster_.node(0).metrics();
  hits_c_ = m.counter("cache.hits");
  misses_c_ = m.counter("cache.misses");
  evictions_c_ = m.counter("cache.evictions");
  invalidations_c_ = m.counter("cache.invalidations");
  bytes_resident_g_ = m.gauge("cache.bytes_resident");
  hit_rate_g_ = m.gauge("cache.hit_rate");
  datasets_g_ = m.gauge("cache.datasets");
}

DatasetCache::~DatasetCache() {
  // Drop the liveness token first: pin leases released from now on (job
  // graphs can outlive the cache) see an expired weak_ptr and no-op.
  alive_.reset();
}

std::string DatasetCache::pooled_block() {
  std::string buf = pool_->acquire();
  buf.reserve(config_.block_bytes);
  return buf;
}

std::shared_ptr<DatasetWriter> DatasetCache::begin(const std::string& name,
                                                   PublishOptions options) {
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = next_generation_++;
  }
  // Private constructor: can't use make_shared.
  return std::shared_ptr<DatasetWriter>(new DatasetWriter(
      this, name, generation, std::move(options), cluster_.size()));
}

bool DatasetCache::commit(const std::shared_ptr<DatasetWriter>& writer) {
  return writer->commit();
}

void DatasetCache::abort(const std::shared_ptr<DatasetWriter>& writer) {
  writer->abort();
}

bool DatasetCache::commit_writer(DatasetWriter* writer) {
  auto data = std::make_shared<Dataset>();
  data->name_ = writer->name_;
  data->generation_ = writer->generation_;
  data->options_ = writer->options_;
  data->shards_.resize(writer->shards_.size());
  for (size_t n = 0; n < writer->shards_.size(); ++n) {
    DatasetWriter::ShardBuilder& b = *writer->shards_[n];
    std::lock_guard<std::mutex> lock(b.mu);
    writer->seal_block(b);
    data->shards_[n] = std::move(b.shard);
    b.shard = Dataset::Shard();
    data->total_bytes_ += data->shards_[n].bytes;
    data->total_records_ += data->shards_[n].records;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto fence = commit_fences_.find(writer->name_);
  if (fence != commit_fences_.end() && writer->generation_ < fence->second) {
    // The name was invalidated after this writer began: its input may have
    // been produced against state that no longer holds. Discard.
    return false;
  }
  auto [it, inserted] = entries_.try_emplace(writer->name_);
  Entry& entry = it->second;
  if (!inserted && entry.data) drop_entry_locked(it->first, entry);
  entry.data = std::move(data);
  entry.pins = 0;
  bytes_resident_ += entry.data->total_bytes_;
  touch_locked(it->first, entry);
  evict_to_budget_locked(writer->name_);
  update_gauges_locked();
  return true;
}

void DatasetCache::abort_writer(DatasetWriter* writer) {
  for (auto& b : writer->shards_) {
    std::lock_guard<std::mutex> lock(b->mu);
    b->shard = Dataset::Shard();
    if (!b->open_block.empty()) {
      pool_->release(std::move(b->open_block));
      b->open_block = std::string();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations++;
  invalidations_c_->inc();
}

std::shared_ptr<const Dataset> DatasetCache::pin(const std::string& name,
                                                 uint64_t expected_stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  const bool stale =
      it != entries_.end() && it->second.data && expected_stamp != 0 &&
      it->second.data->options_.stamp != expected_stamp;
  if (it == entries_.end() || !it->second.data || stale) {
    stats_.misses++;
    misses_c_->inc();
    update_gauges_locked();
    return nullptr;
  }
  Entry& entry = it->second;
  // Pinned entries leave the LRU list: they are not eviction candidates.
  if (entry.in_lru) {
    lru_.erase(entry.lru_it);
    entry.in_lru = false;
  }
  entry.pins++;
  stats_.hits++;
  hits_c_->inc();
  update_gauges_locked();
  if (config_.event_log != nullptr) {
    config_.event_log->record(
        0, obs::EventKind::kDatasetPin, /*flowlet=*/-1,
        static_cast<int64_t>(entry.data->generation_));
  }
  // The handle aliases the Dataset but its deleter releases the pin. It also
  // keeps `data` alive even if the entry is replaced/invalidated, so readers
  // of a superseded generation are never pulled out from under. The deleter
  // holds the cache weakly: a lease released after the cache's destruction
  // skips the accounting instead of touching freed memory.
  std::shared_ptr<Dataset> data = entry.data;
  const uint64_t generation = data->generation_;
  std::weak_ptr<DatasetCache*> alive = alive_;
  return std::shared_ptr<const Dataset>(
      data.get(), [alive, data, name, generation](const Dataset*) mutable {
        if (const auto cache = alive.lock()) {
          (*cache)->release_pin(name, generation);
        }
        data.reset();
      });
}

void DatasetCache::release_pin(const std::string& name, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  // The entry may have been replaced by a newer generation or invalidated
  // while this pin was out; only the matching generation's refcount applies.
  if (it == entries_.end() || !it->second.data ||
      it->second.data->generation_ != generation) {
    return;
  }
  Entry& entry = it->second;
  if (entry.pins > 0) entry.pins--;
  if (entry.pins == 0) {
    touch_locked(it->first, entry);
    evict_to_budget_locked(/*keep=*/"");
    update_gauges_locked();
  }
}

void DatasetCache::invalidate(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  // Fence out in-flight writers for this name regardless of residency.
  commit_fences_[name] = next_generation_++;
  auto it = entries_.find(name);
  if (it == entries_.end() || !it->second.data) return;
  drop_entry_locked(it->first, it->second);
  entries_.erase(it);
  stats_.invalidations++;
  invalidations_c_->inc();
  update_gauges_locked();
}

void DatasetCache::evict_to_budget_locked(const std::string& keep) {
  // Least-recently-used unpinned datasets go first; `keep` (a dataset
  // committed this instant) is only evicted when nothing else is left, so a
  // fresh commit larger than the whole budget still serves its first reader.
  while (bytes_resident_ > config_.byte_budget && !lru_.empty()) {
    std::string victim = lru_.front();
    if (victim == keep && lru_.size() == 1) break;
    if (victim == keep) {
      // Rotate: try the next candidate first.
      lru_.pop_front();
      lru_.push_back(victim);
      entries_.at(victim).lru_it = std::prev(lru_.end());
      continue;
    }
    auto it = entries_.find(victim);
    drop_entry_locked(it->first, it->second);
    entries_.erase(it);
    stats_.evictions++;
    evictions_c_->inc();
  }
}

void DatasetCache::drop_entry_locked(const std::string& name, Entry& entry) {
  (void)name;
  if (entry.in_lru) {
    lru_.erase(entry.lru_it);
    entry.in_lru = false;
  }
  if (entry.data) {
    bytes_resident_ -= entry.data->total_bytes_;
    if (config_.event_log != nullptr) {
      config_.event_log->record(
          0, obs::EventKind::kDatasetEvict, /*flowlet=*/-1,
          static_cast<int64_t>(entry.data->total_bytes_));
    }
    // Block buffers recycle into the pool when the last reader drops them
    // (to_shared deleter); outstanding pins keep their snapshot readable.
    entry.data.reset();
  }
  entry.pins = 0;
}

void DatasetCache::touch_locked(const std::string& name, Entry& entry) {
  if (entry.in_lru) lru_.erase(entry.lru_it);
  lru_.push_back(name);
  entry.lru_it = std::prev(lru_.end());
  entry.in_lru = true;
}

void DatasetCache::update_gauges_locked() {
  bytes_resident_g_->set(static_cast<int64_t>(bytes_resident_));
  datasets_g_->set(static_cast<int64_t>(entries_.size()));
  const uint64_t total = stats_.hits + stats_.misses;
  hit_rate_g_->set(total == 0 ? 0
                              : static_cast<int64_t>(stats_.hits * 100 / total));
}

uint64_t DatasetCache::bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_resident_;
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hamr::cache
